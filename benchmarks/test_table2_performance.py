"""Table 2 — performance of compiled code vs handwritten code (paper Tab. 2).

For each Table 2 program (ex-1, branching, gmm with importance sampling;
weight, vae with variational inference) this harness measures:

* ``CG``   — time to infer guide types and generate mini-Pyro code;
* ``GLOC`` — lines of generated code;
* ``GI``   — inference time on the compiled (coroutine-communicating) code;
* ``HLOC`` — lines of the handwritten mini-Pyro code;
* ``HI``   — inference time on the handwritten code, with the same
  hyper-parameters;
* the overhead ratio ``GI / HI`` (paper claim E5: coroutine communication
  does not introduce significant overhead — the paper's ratios are
  1.03–1.15×).

Absolute times differ from the paper's (different machine, substrate, and
iteration counts); the quantity that should reproduce is the *shape*: GI is
within a small factor of HI, and CG is measured in milliseconds.

Run with ``pytest benchmarks/test_table2_performance.py --benchmark-only``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

import numpy as np
import pytest

import _record
from repro.compiler import compile_pair, load_compiled
from repro.core.typecheck import infer_guide_types
from repro.minipyro import clear_param_store
from repro.minipyro.infer import SVI, Adam, Importance
from repro.models import get_benchmark
from repro.models.handwritten import get_handwritten

#: Shared hyper-parameters (identical for compiled and handwritten runs).
IS_NUM_SAMPLES = 300
VI_NUM_STEPS = 8
VI_NUM_PARTICLES = 2

TABLE2_PROGRAMS = ["ex-1", "branching", "gmm", "weight", "vae"]


@dataclass
class Table2Row:
    name: str
    algorithm: str
    codegen_ms: float
    generated_loc: int
    generated_inference_s: float
    handwritten_loc: int
    handwritten_inference_s: float

    @property
    def overhead(self) -> float:
        if self.handwritten_inference_s == 0:
            return float("inf")
        return self.generated_inference_s / self.handwritten_inference_s


def _compile_benchmark(name: str):
    bench = get_benchmark(name)
    start = time.perf_counter()
    infer_guide_types(bench.model_program())
    infer_guide_types(bench.guide_program())
    source = compile_pair(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
        guide_param_inits=bench.guide_param_inits or None,
    )
    codegen_ms = (time.perf_counter() - start) * 1000.0
    module = load_compiled(source, module_name=f"generated_{name.replace('-', '_')}")
    return bench, module, codegen_ms


def _run_compiled(bench, module) -> None:
    clear_param_store()
    if bench.inference == "IS":
        module.module.importance_sampling(
            obs_values=list(bench.obs_values), num_samples=IS_NUM_SAMPLES, seed=0
        )
    else:
        module.module.svi(
            obs_values=list(bench.obs_values),
            num_steps=VI_NUM_STEPS,
            num_particles=VI_NUM_PARTICLES,
            seed=0,
        )


def _run_handwritten(name: str) -> None:
    clear_param_store()
    pair = get_handwritten(name)
    if pair.algorithm == "IS":
        Importance(pair.model, pair.guide, num_samples=IS_NUM_SAMPLES).run(
            pair.data, rng=np.random.default_rng(0)
        )
    else:
        svi = SVI(pair.model, pair.guide, optim=Adam(lr=0.05), num_particles=VI_NUM_PARTICLES)
        rng = np.random.default_rng(0)
        for _ in range(VI_NUM_STEPS):
            svi.step(pair.data, rng=rng)


def _measure_row(name: str) -> Table2Row:
    bench, module, codegen_ms = _compile_benchmark(name)
    pair = get_handwritten(name)

    start = time.perf_counter()
    _run_compiled(bench, module)
    generated_s = time.perf_counter() - start

    start = time.perf_counter()
    _run_handwritten(name)
    handwritten_s = time.perf_counter() - start

    return Table2Row(
        name=name,
        algorithm=bench.inference,
        codegen_ms=codegen_ms,
        generated_loc=module.lines_of_code,
        generated_inference_s=generated_s,
        handwritten_loc=pair.lines_of_code,
        handwritten_inference_s=handwritten_s,
    )


@pytest.mark.parametrize("name", TABLE2_PROGRAMS, ids=str)
def test_table2_compiled_inference(benchmark, name):
    """GI column: inference time on compiled (coroutine) code."""
    bench, module, _ = _compile_benchmark(name)
    benchmark(lambda: _run_compiled(bench, module))


@pytest.mark.parametrize("name", TABLE2_PROGRAMS, ids=str)
def test_table2_handwritten_inference(benchmark, name):
    """HI column: inference time on handwritten mini-Pyro code."""
    benchmark(lambda: _run_handwritten(name))


@pytest.mark.parametrize("name", TABLE2_PROGRAMS, ids=str)
def test_table2_codegen_time(benchmark, name):
    """CG column: guide-type inference plus code generation, in milliseconds."""
    bench = get_benchmark(name)

    def codegen():
        infer_guide_types(bench.model_program())
        infer_guide_types(bench.guide_program())
        return compile_pair(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            guide_param_inits=bench.guide_param_inits or None,
        )

    benchmark(codegen)


def test_table2_report(benchmark):
    """Regenerate the full Table 2 (measured vs paper) and check the overhead claim."""
    rows: Dict[str, Table2Row] = benchmark.pedantic(
        lambda: {name: _measure_row(name) for name in TABLE2_PROGRAMS},
        iterations=1,
        rounds=1,
    )
    for row in rows.values():
        _record.record(
            suite="table2_performance", model=row.name, engine=row.algorithm,
            wall_time_s=row.generated_inference_s,
            codegen_ms=row.codegen_ms,
            handwritten_wall_time_s=row.handwritten_inference_s,
            generated_loc=row.generated_loc,
            handwritten_loc=row.handwritten_loc,
        )

    header = (
        f"{'program':<10} {'BI':<4} {'CG(ms)':>8} {'GLOC':>6} {'GI(s)':>8} "
        f"{'HLOC':>6} {'HI(s)':>8} {'GI/HI':>6}   paper: CG/GLOC/GI/HLOC/HI"
    )
    lines = ["", "Table 2 — performance (measured vs paper)", header, "-" * len(header)]
    for name in TABLE2_PROGRAMS:
        row = rows[name]
        paper = get_benchmark(name).paper_table2
        lines.append(
            f"{row.name:<10} {row.algorithm:<4} {row.codegen_ms:>8.2f} {row.generated_loc:>6d} "
            f"{row.generated_inference_s:>8.2f} {row.handwritten_loc:>6d} "
            f"{row.handwritten_inference_s:>8.2f} {row.overhead:>6.2f}   "
            f"{paper.codegen_ms:.2f}/{paper.generated_loc}/{paper.generated_inference_s:.2f}/"
            f"{paper.handwritten_loc}/{paper.handwritten_inference_s:.2f}"
        )
    lines.append("-" * len(header))
    overheads = [rows[name].overhead for name in TABLE2_PROGRAMS]
    lines.append(
        "coroutine-communication overhead GI/HI: "
        + ", ".join(f"{o:.2f}x" for o in overheads)
        + f" (paper range ≈ 1.03–1.15x)"
    )
    print("\n".join(lines))

    # Shape checks: code generation is fast, generated code is larger than
    # handwritten code, and the coroutine overhead is bounded.
    for name in TABLE2_PROGRAMS:
        row = rows[name]
        assert row.codegen_ms < 500.0
        assert row.generated_loc > row.handwritten_loc
        assert row.overhead < 5.0
