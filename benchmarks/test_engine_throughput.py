"""Engine throughput — vectorized vs sequential particle execution.

The vectorized particle engine's reason to exist is throughput: resolving
every sample site for all particles with one NumPy call must beat the
one-particle-at-a-time interpreter loop by a wide margin on models whose
particles (mostly) share control flow.  This harness pins that claim on a
Table-2 benchmark model (``ex-1``, the paper's Fig. 5 pair):

* vectorized importance sampling at 10k particles is at least 5x faster
  than the sequential ``importance_sampling`` loop (in practice the margin
  is far larger — the sequential path costs ~60us/particle, the vectorized
  path amortises to well under 1us/particle);
* both paths agree on the posterior mean and log evidence;
* the SMC engine recovers the Fig. 2 posterior within the same tolerance
  the existing importance-sampling reproducibility test uses (0.3).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import _record
from repro.core.semantics import traces as tr
from repro.engine import smc, vectorized_importance
from repro.inference import importance_sampling
from repro.models import get_benchmark

#: The CI fast-benchmark smoke job sets REPRO_FAST_BENCH=1 to run with
#: reduced particle counts; the speedup margin is ~2 orders of magnitude, so
#: the 5x assertion is insensitive to the reduction.
NUM_PARTICLES = 3_000 if os.environ.get("REPRO_FAST_BENCH") else 10_000
OBSERVED_Z = 0.8
MIN_SPEEDUP = 5.0
#: Agreement tolerance between estimators — the same |Δmean| the existing
#: Fig. 2 cross-seed reproducibility test allows between two IS runs.
MEAN_TOLERANCE = 0.3


def _pair():
    bench = get_benchmark("ex-1")
    return bench.model_program(), bench.guide_program(), bench.model_entry, bench.guide_entry


_best_of = _record.best_of


def test_vectorized_is_10k_particles_at_least_5x_faster():
    """Acceptance: >= 5x over the sequential loop at 10k particles on ex-1."""
    model, guide, model_entry, guide_entry = _pair()
    obs = (tr.ValP(OBSERVED_Z),)

    seq_seconds, seq_result = _best_of(
        2,
        lambda: importance_sampling(
            model, guide, model_entry, guide_entry,
            obs_trace=obs, num_samples=NUM_PARTICLES,
            rng=np.random.default_rng(0),
        ),
    )
    vec_seconds, vec_result = _best_of(
        3,
        lambda: vectorized_importance(
            model, guide, model_entry, guide_entry,
            obs_trace=obs, num_particles=NUM_PARTICLES,
            rng=np.random.default_rng(0),
        ),
    )

    speedup = seq_seconds / vec_seconds
    print(
        f"\nex-1 @ {NUM_PARTICLES} particles: sequential {seq_seconds*1e3:.1f}ms, "
        f"vectorized {vec_seconds*1e3:.1f}ms ({vec_result.run.num_groups} "
        f"control-flow groups) -> {speedup:.1f}x"
    )
    _record.record(
        suite="engine_throughput", model="ex-1", engine="is", backend="interp",
        particles=NUM_PARTICLES, wall_time_s=vec_seconds,
        speedup=speedup, baseline="is-sequential",
        sequential_wall_time_s=seq_seconds,
    )
    assert speedup >= MIN_SPEEDUP

    # Same estimator, same answers (up to Monte Carlo error).
    assert vec_result.posterior_expectation_of_site(0) == pytest.approx(
        seq_result.posterior_expectation_of_site(0), abs=MEAN_TOLERANCE
    )
    assert vec_result.log_evidence() == pytest.approx(seq_result.log_evidence(), abs=0.2)


def test_vectorized_is_matches_sequential_at_modest_size():
    """Estimator agreement away from the headline particle count."""
    model, guide, model_entry, guide_entry = _pair()
    obs = (tr.ValP(OBSERVED_Z),)
    vec = vectorized_importance(
        model, guide, model_entry, guide_entry,
        obs_trace=obs, num_particles=2000, rng=np.random.default_rng(7),
    )
    seq = importance_sampling(
        model, guide, model_entry, guide_entry,
        obs_trace=obs, num_samples=2000, rng=np.random.default_rng(8),
    )
    assert vec.posterior_expectation_of_site(0) == pytest.approx(
        seq.posterior_expectation_of_site(0), abs=MEAN_TOLERANCE
    )


def test_smc_recovers_fig2_posterior():
    """Acceptance: SMC agrees with the Fig. 2 posterior (IS reference)."""
    model, guide, model_entry, guide_entry = _pair()
    obs = (tr.ValP(OBSERVED_Z),)

    smc_seconds, smc_result = _best_of(
        1,
        lambda: smc(
            model, guide, model_entry, guide_entry,
            obs_trace=obs, num_particles=4000, rng=np.random.default_rng(0),
        ),
    )
    _record.record(
        suite="engine_throughput", model="ex-1", engine="smc", backend="interp",
        particles=4000, wall_time_s=smc_seconds,
    )
    is_result = importance_sampling(
        model, guide, model_entry, guide_entry,
        obs_trace=obs, num_samples=4000, rng=np.random.default_rng(1),
    )

    smc_mean = smc_result.posterior_mean(0)
    is_mean = is_result.posterior_expectation_of_site(0)
    print(f"\nFig. 2 posterior mean of @x: SMC {smc_mean:.3f}, IS {is_mean:.3f}")
    assert smc_mean == pytest.approx(is_mean, abs=MEAN_TOLERANCE)

    # The qualitative Fig. 2 shape checks the IS harness makes: the posterior
    # shifts above the Gamma(2,1) prior mean of 2.0.
    assert smc_mean > 2.0 + 0.2
    assert smc_result.log_evidence() == pytest.approx(is_result.log_evidence(), abs=0.2)
