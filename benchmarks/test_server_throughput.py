"""Server throughput — coalescing batches and exported counters.

Runs the async batch-inference service in-process, fires a burst of
concurrent same-session requests, and records the service's
throughput/latency counters into ``BENCH_results.json`` — the CI artifact
then carries server numbers alongside the engine/backend floors, so serving
regressions are visible PR-over-PR the same way kernel regressions are.

This harness is sized to run everywhere (single CPU included): it asserts
behavioural properties (all requests answered, coalescing happened, counters
consistent), not a parallel-speedup floor — that lives in
``test_sharded_throughput.py``.
"""

from __future__ import annotations

import asyncio
import os
import time

import _record
from repro.engine.server import InferenceService
from repro.engine.shard import shutdown_pool
from repro.models import get_benchmark

NUM_REQUESTS = 8 if os.environ.get("REPRO_FAST_BENCH") else 16
PARTICLES = 2_000 if os.environ.get("REPRO_FAST_BENCH") else 5_000
MODEL = "weight"


def _payload(seed: int) -> dict:
    bench = get_benchmark(MODEL)
    return {
        "id": f"bench-{seed}",
        "model": bench.model_source,
        "guide": bench.guide_source,
        "engine": "is",
        "sites": [0],
        "params": {
            "num_particles": PARTICLES,
            "seed": seed,
            "obs_values": list(bench.obs_values),
            "guide_args": [8.5, 0.0],
            "shards": 4,
        },
    }


def test_server_burst_coalesces_and_exports_counters():
    async def burst():
        service = InferenceService(workers=2, batch_window_s=0.005)
        await service.start()
        try:
            started = time.perf_counter()
            responses = await asyncio.gather(
                *[service.submit(_payload(seed)) for seed in range(NUM_REQUESTS)]
            )
            elapsed = time.perf_counter() - started
            return responses, elapsed, service.counters.snapshot()
        finally:
            await service.stop()

    responses, elapsed, counters = asyncio.run(burst())

    assert len(responses) == NUM_REQUESTS
    assert all(r["ok"] for r in responses)
    # Distinct seeds -> distinct estimates, all near the conjugate mean 9.14.
    means = [r["posterior_means"]["0"] for r in responses]
    assert len(set(means)) == NUM_REQUESTS
    assert all(abs(m - 9.14) < 0.5 for m in means)
    # The burst coalesced: some requests shared a dispatch batch.
    assert counters["coalesced_requests_total"] > 0
    assert counters["batches_total"] < NUM_REQUESTS
    assert counters["requests_total"] == NUM_REQUESTS
    assert counters["particles_total"] == NUM_REQUESTS * PARTICLES
    # Histogram-derived latency percentiles ride along in the snapshot —
    # the artifact carries tail latency, not just the mean.
    assert 0.0 < counters["latency_s_p50"] <= counters["latency_s_p90"]
    assert counters["latency_s_p90"] <= counters["latency_s_p99"]

    throughput = NUM_REQUESTS / elapsed
    print(
        f"\nserver burst: {NUM_REQUESTS} requests x {PARTICLES} particles in "
        f"{elapsed * 1e3:.1f}ms ({throughput:.1f} req/s, "
        f"{counters['coalesced_requests_total']} coalesced over "
        f"{counters['batches_total']} batches, latency p50/p99 "
        f"{counters['latency_s_p50'] * 1e3:.1f}/{counters['latency_s_p99'] * 1e3:.1f}ms)"
    )
    _record.record(
        suite="server_throughput", model=MODEL, engine="is", backend="interp",
        particles=PARTICLES, wall_time_s=elapsed,
        requests=NUM_REQUESTS, requests_per_s=throughput,
        latency_s_p50=counters["latency_s_p50"],
        latency_s_p90=counters["latency_s_p90"],
        latency_s_p99=counters["latency_s_p99"],
        counters=counters,
    )
    shutdown_pool()
