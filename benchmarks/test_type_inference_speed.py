"""E4 — "type inference completes in several milliseconds on all benchmarks".

The paper reports that guide-type inference finishes in a few milliseconds
per benchmark.  This harness benchmarks :func:`infer_guide_types` (parsing
excluded) on every expressible benchmark model and its guide, and asserts a
generous millisecond-scale bound.

Run with ``pytest benchmarks/test_type_inference_speed.py --benchmark-only``.
"""

from __future__ import annotations

import time

import pytest

import _record
from repro.core.typecheck import infer_guide_types
from repro.models import all_benchmarks

EXPRESSIBLE = [b for b in all_benchmarks() if b.expressible]


@pytest.mark.parametrize("bench", EXPRESSIBLE, ids=lambda b: b.name)
def test_guide_type_inference_speed(benchmark, bench):
    """Benchmark guide-type inference for one model (paper: a few ms)."""
    program = bench.model_program()  # parse once, outside the timed region
    result = benchmark(lambda: infer_guide_types(program))
    assert bench.model_entry in result.channel_types


def test_type_inference_speed_report(benchmark):
    """Print per-benchmark inference times and check the milliseconds claim."""

    def measure_all():
        rows = []
        for bench in EXPRESSIBLE:
            model = bench.model_program()
            guide = bench.guide_program() if bench.guide_source else None
            start = time.perf_counter()
            infer_guide_types(model)
            if guide is not None:
                infer_guide_types(guide)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            rows.append((bench.name, elapsed_ms))
        return rows

    rows = benchmark(measure_all)

    lines = ["", "Guide-type inference time per benchmark (model + guide)"]
    lines.append(f"{'program':<12} {'time (ms)':>10}")
    for name, elapsed in rows:
        lines.append(f"{name:<12} {elapsed:>10.3f}")
    worst = max(elapsed for _, elapsed in rows)
    for name, elapsed in rows:
        _record.record(
            suite="type_inference_speed", model=name, engine="guide-type-inference",
            wall_time_s=elapsed / 1000.0,
        )
    lines.append(f"slowest benchmark: {worst:.3f} ms (paper: a few milliseconds)")
    print("\n".join(lines))

    # Generous bound: every benchmark's inference completes within 100 ms.
    assert worst < 100.0
