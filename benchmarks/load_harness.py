"""Open-loop load harness: drive an in-process server past its capacity.

The harness starts a real :class:`~repro.engine.server.InferenceService`
behind the real TCP front-end, measures its sustained capacity with a short
closed-loop probe, then offers a multiple of that rate (2x by default) with
Poisson arrivals via :mod:`repro.engine.loadgen`.  What must hold at
overload is the hardening contract:

* the server stays up and keeps answering (``op: stats`` still works),
* every offered request gets exactly one response — zero client hangs,
* every rejection is structured (``overloaded`` / ``deadline_exceeded`` /
  ``quota_exceeded``), never a silent drop or an unhandled exception,
* the kernel/session caches stay within their configured capacity.

``run_overload_harness`` returns everything the caller needs to assert on;
``benchmarks/test_load_harness.py`` is the pytest entry point that records
p50/p90/p99-under-load and the shed rate into ``BENCH_results.json``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine.loadgen import (
    LoadConfig,
    LoadReport,
    build_payload,
    run_load,
    run_session_verify,
)
from repro.engine.server import InferenceService, serve_tcp


@dataclass
class HarnessOutcome:
    """One overload run: the loadgen report plus server-side evidence."""

    report: LoadReport
    capacity_rps: float
    offered_rps: float
    counters: Dict[str, object]
    kernel_cache_len: int
    session_cache_len: int
    kernel_cache_cap: int
    session_cache_cap: int


async def _estimate_capacity(
    service: InferenceService, config: LoadConfig, probe_s: float = 1.0, burst: int = 8
) -> float:
    """Closed-loop probe of *sustained* capacity, coalescing included.

    Submits ``burst`` concurrent requests per round (so dispatch waves fill
    the same way they do under real traffic) until ``probe_s`` elapses;
    offered rates derived from this number genuinely exceed what the server
    can serve, sequential-path headroom included.
    """
    completed = 0
    started = time.monotonic()
    while time.monotonic() - started < probe_s:
        responses = await asyncio.gather(
            *[service.submit(build_payload(config, completed + i)) for i in range(burst)]
        )
        for response in responses:
            assert response.get("ok"), f"capacity probe failed: {response}"
        completed += burst
    return completed / (time.monotonic() - started)


def run_overload_harness(
    duration_s: float = 3.0,
    rate_multiplier: float = 2.0,
    particles: int = 4000,
    max_queue: int = 16,
    max_batch: int = 8,
    deadline_ms: Optional[float] = 500.0,
    cache_cap: int = 8,
) -> HarnessOutcome:
    """Start a server, probe its capacity, drive ``rate_multiplier``x that."""
    from repro.engine.backend import kernel_cache_len, set_kernel_cache_capacity
    from repro.engine.session import session_cache_len, set_session_cache_capacity

    set_kernel_cache_capacity(cache_cap)
    set_session_cache_capacity(cache_cap)

    async def go() -> HarnessOutcome:
        service = InferenceService(
            workers=1,
            batch_window_s=0.002,
            max_queue=max_queue,
            max_batch=max_batch,
        )
        await service.start()
        server = await serve_tcp(service, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        probe_config = LoadConfig(port=port, particles=particles)
        try:
            capacity = await _estimate_capacity(service, probe_config, burst=max_batch)
            offered = max(10.0, rate_multiplier * capacity)
            config = LoadConfig(
                port=port,
                rate=offered,
                duration_s=duration_s,
                deadline_ms=deadline_ms,
                tenants=2,
                particles=particles,
            )
            report = await run_load(config)
            counters = service.counters.snapshot()
            return HarnessOutcome(
                report=report,
                capacity_rps=capacity,
                offered_rps=offered,
                counters=counters,
                kernel_cache_len=kernel_cache_len(),
                session_cache_len=session_cache_len(),
                kernel_cache_cap=cache_cap,
                session_cache_cap=cache_cap,
            )
        finally:
            server.close()
            await server.wait_closed()
            await service.stop()

    return asyncio.run(go())


@dataclass
class StreamingOutcome:
    """One streaming run plus the restart-recovery verdict."""

    report: LoadReport
    #: ``run_session_verify`` result from a *fresh* service pointed at the
    #: same checkpoint directory: ``{"checked", "recovered", "failed"}``.
    verify: Dict[str, object]
    session_stats: Dict[str, object]


def run_streaming_harness(
    checkpoint_dir: str,
    duration_s: float = 3.0,
    rate: float = 30.0,
    particles: int = 500,
    sessions: int = 3,
    pushes: int = 4,
) -> StreamingOutcome:
    """Streaming load against a real server, then prove restart recovery.

    Phase one starts a service with ``checkpoint_dir``, drives open-loop
    ``session.open/push/query`` cycles over the growable ``stream_rw``
    family, and stops the service (which checkpoints every live session).
    Phase two starts a *brand-new* service on the same directory and
    re-queries every session the load run opened — each must restore from
    its checkpoint (exact replay from seed + journal) and answer ``ok``.
    """

    async def go() -> StreamingOutcome:
        service = InferenceService(workers=1, checkpoint_dir=checkpoint_dir)
        await service.start()
        server = await serve_tcp(service, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            config = LoadConfig(
                port=port,
                rate=rate,
                duration_s=duration_s,
                deadline_ms=None,
                tenants=2,
                particles=particles,
                models=("stream_rw",),
                streaming=True,
                sessions=sessions,
                pushes=pushes,
            )
            report = await run_load(config)
            session_stats = service.sessions.stats()
        finally:
            server.close()
            await server.wait_closed()
            await service.stop()

        # Phase two: a fresh service, same checkpoint directory — every
        # recorded session must come back via restore-on-miss.
        service2 = InferenceService(workers=1, checkpoint_dir=checkpoint_dir)
        await service2.start()
        server2 = await serve_tcp(service2, "127.0.0.1", 0)
        port2 = server2.sockets[0].getsockname()[1]
        try:
            verify = await run_session_verify("127.0.0.1", port2, report.sessions)
        finally:
            server2.close()
            await server2.wait_closed()
            await service2.stop()
        return StreamingOutcome(report=report, verify=verify, session_stats=session_stats)

    return asyncio.run(go())
