"""Figure 2 — prior vs posterior density of @x in the Fig. 1 model (paper Fig. 2).

The paper's Figure 2 plots the prior density of the latent variable ``@x``
(a Gamma(2,1)) and its posterior density under the observation ``@z = 0.8``.
This harness regenerates the figure's data as two (grid point, density)
series using importance sampling with the Fig. 3 guide, and checks the
qualitative shape the figure shows:

* the posterior re-weights mass towards the region where the likelihood is
  high — under ``@z = 0.8`` the else-branch (``@x ≥ 2``) becomes *more*
  likely than under the prior, because the then-branch's likelihood is
  centred at −1;
* the posterior mean of ``@x`` exceeds the prior mean (2.0).

Run with ``pytest benchmarks/test_fig2_posterior.py --benchmark-only``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import _record

from repro.core.coroutines import run_prior
from repro.core.semantics import traces as tr
from repro.inference import importance_sampling
from repro.inference.diagnostics import posterior_histogram
from repro.models import get_benchmark

NUM_PARTICLES = 3000
NUM_PRIOR_DRAWS = 3000
OBSERVED_Z = 0.8
GRID_RANGE = (0.0, 8.0)
BINS = 24


def _run_inference(rng_seed: int = 0):
    bench = get_benchmark("ex-1")
    model = bench.model_program()
    guide = bench.guide_program()
    return importance_sampling(
        model, guide, bench.model_entry, bench.guide_entry,
        obs_trace=(tr.ValP(OBSERVED_Z),), num_samples=NUM_PARTICLES,
        rng=np.random.default_rng(rng_seed),
    )


def _prior_x_samples(rng_seed: int = 1):
    bench = get_benchmark("ex-1")
    model = bench.model_program()
    rng = np.random.default_rng(rng_seed)
    values = []
    for _ in range(NUM_PRIOR_DRAWS):
        joint = run_prior(model, bench.model_entry, rng=rng)
        values.append(float(tr.sample_values(joint.traces["latent"])[0]))
    return values


def test_fig2_posterior_series(benchmark):
    """Regenerate Figure 2's two density curves and check their shape."""
    start = time.perf_counter()
    result = benchmark.pedantic(_run_inference, iterations=1, rounds=1)
    _record.record(
        suite="fig2_posterior", model="ex-1", engine="is-sequential",
        particles=NUM_PARTICLES, wall_time_s=time.perf_counter() - start,
    )

    posterior_x = [float(s.latent_values[0]) for s in result.samples]
    posterior_weights = result.log_weights
    prior_x = _prior_x_samples()

    grid, prior_density = posterior_histogram(prior_x, bins=BINS, value_range=GRID_RANGE)
    _, posterior_density = posterior_histogram(
        posterior_x, posterior_weights, bins=BINS, value_range=GRID_RANGE
    )

    lines = ["", "Figure 2 — density of @x (prior vs posterior at @z = 0.8)"]
    lines.append(f"{'x':>6} {'prior':>10} {'posterior':>10}")
    for x, p, q in zip(grid, prior_density, posterior_density):
        lines.append(f"{x:>6.2f} {p:>10.4f} {q:>10.4f}")
    print("\n".join(lines))

    prior_mean = float(np.mean(prior_x))
    posterior_mean = result.posterior_expectation_of_site(0)
    print(f"prior mean of @x = {prior_mean:.3f}, posterior mean of @x = {posterior_mean:.3f}")

    # Prior mean of Gamma(2, 1) is 2.0; the posterior shifts upwards.
    assert prior_mean == pytest.approx(2.0, abs=0.15)
    assert posterior_mean > prior_mean + 0.2

    # The posterior probability of the else-branch (@x >= 2) increases
    # relative to the prior probability (which is ~0.406 for Gamma(2,1)).
    prior_p_else = float(np.mean([x >= 2.0 for x in prior_x]))
    posterior_p_else = result.posterior_expectation(
        lambda s: 1.0 if len(s.latent_values) == 2 else 0.0
    )
    print(f"P(@x >= 2): prior {prior_p_else:.3f}, posterior {posterior_p_else:.3f}")
    assert posterior_p_else > prior_p_else

    # Densities are normalised over the grid (up to truncation of the tail).
    width = grid[1] - grid[0]
    assert float(np.sum(posterior_density) * width) == pytest.approx(1.0, abs=0.1)


def test_fig2_posterior_is_reproducible_across_seeds(benchmark):
    """The posterior-mean estimate is stable across independent IS runs."""

    def estimate():
        return _run_inference(rng_seed=7).posterior_expectation_of_site(0)

    mean_a = benchmark.pedantic(estimate, iterations=1, rounds=1)
    mean_b = _run_inference(rng_seed=8).posterior_expectation_of_site(0)
    assert mean_a == pytest.approx(mean_b, abs=0.3)
