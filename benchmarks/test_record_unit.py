"""Unit tests for the per-run benchmark artifact (`_record`).

The schema-1 regression these pin: two harness sessions writing the same
artifact path in one CI run used to clobber each other (`reset_results`
deleted the whole file), and entries sharing a suite/model key could only be
told apart by ordering.  Schema 2 keeps one entry list per run.
"""

import json

import pytest

import _record


@pytest.fixture()
def artifact(tmp_path, monkeypatch):
    """Point the recorder at a scratch artifact with a controllable run id."""
    path = tmp_path / "BENCH_results.json"
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(path))

    def set_run(run_id):
        monkeypatch.setattr(_record, "_RUN_ID", run_id)

    return path, set_run


def test_entries_accumulate_within_a_run(artifact):
    path, set_run = artifact
    set_run("run-a")
    _record.reset_results()
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.1)
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.2)

    entries = _record.current_run_entries()
    assert [e["wall_time_s"] for e in entries] == [0.1, 0.2]


def test_two_sessions_sharing_a_key_both_survive(artifact):
    """The regression: a second session no longer overwrites the first."""
    path, set_run = artifact
    set_run("run-a")
    _record.reset_results()
    _record.record(suite="shared", model="m", engine="is", wall_time_s=0.1)

    set_run("run-b")  # a second pytest session in the same CI workflow
    _record.reset_results()
    _record.record(suite="shared", model="m", engine="is", wall_time_s=0.9)

    data = json.loads(path.read_text())
    assert data["schema"] == _record.SCHEMA_VERSION
    assert [run["run"] for run in data["runs"]] == ["run-a", "run-b"]
    assert [e["wall_time_s"] for e in _record.all_entries()] == [0.1, 0.9]


def test_reset_restarts_only_the_current_run(artifact):
    path, set_run = artifact
    set_run("run-a")
    _record.reset_results()
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.1)

    set_run("run-b")
    _record.reset_results()
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.2)

    set_run("run-a")  # e.g. a pytest re-run within the same process
    _record.reset_results()
    assert _record.current_run_entries() == []
    assert [e["wall_time_s"] for e in _record.all_entries()] == [0.2]


def test_schema_1_artifacts_migrate_without_losing_entries(artifact):
    path, set_run = artifact
    path.write_text(json.dumps({
        "schema": 1,
        "created_at": "2026-01-01T00:00:00",
        "entries": [{"suite": "old", "model": "m", "engine": "is",
                     "backend": "interp", "particles": 10, "wall_time_s": 1.0}],
    }))
    set_run("run-new")
    _record.record(suite="new", model="m", engine="is", wall_time_s=0.5)

    data = json.loads(path.read_text())
    assert data["schema"] == _record.SCHEMA_VERSION
    assert [run["run"] for run in data["runs"]] == ["legacy-schema-1", "run-new"]
    assert [e["suite"] for e in _record.all_entries()] == ["old", "new"]


def test_old_runs_are_pruned_beyond_the_cap(artifact):
    path, set_run = artifact
    for i in range(_record.MAX_RUNS + 3):
        set_run(f"run-{i}")
        _record.reset_results()
        _record.record(suite="s", model="m", engine="is", wall_time_s=float(i))
    data = json.loads(path.read_text())
    assert len(data["runs"]) == _record.MAX_RUNS
    assert data["runs"][-1]["run"] == f"run-{_record.MAX_RUNS + 2}"


def test_corrupt_artifact_is_replaced_not_fatal(artifact):
    path, set_run = artifact
    path.write_text("{ not json")
    set_run("run-a")
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.1)
    assert len(_record.all_entries()) == 1
