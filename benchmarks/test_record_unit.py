"""Unit tests for the per-run benchmark artifact (`_record`).

The schema-1 regression these pin: two harness sessions writing the same
artifact path in one CI run used to clobber each other (`reset_results`
deleted the whole file), and entries sharing a suite/model key could only be
told apart by ordering.  Schema 2 keeps one entry list per run.
"""

import json

import pytest

import _record


@pytest.fixture()
def artifact(tmp_path, monkeypatch):
    """Point the recorder at a scratch artifact with a controllable run id."""
    path = tmp_path / "BENCH_results.json"
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(path))

    def set_run(run_id):
        monkeypatch.setattr(_record, "_RUN_ID", run_id)

    return path, set_run


def test_entries_accumulate_within_a_run(artifact):
    path, set_run = artifact
    set_run("run-a")
    _record.reset_results()
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.1)
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.2)

    entries = _record.current_run_entries()
    assert [e["wall_time_s"] for e in entries] == [0.1, 0.2]


def test_two_sessions_sharing_a_key_both_survive(artifact):
    """The regression: a second session no longer overwrites the first."""
    path, set_run = artifact
    set_run("run-a")
    _record.reset_results()
    _record.record(suite="shared", model="m", engine="is", wall_time_s=0.1)

    set_run("run-b")  # a second pytest session in the same CI workflow
    _record.reset_results()
    _record.record(suite="shared", model="m", engine="is", wall_time_s=0.9)

    data = json.loads(path.read_text())
    assert data["schema"] == _record.SCHEMA_VERSION
    assert [run["run"] for run in data["runs"]] == ["run-a", "run-b"]
    assert [e["wall_time_s"] for e in _record.all_entries()] == [0.1, 0.9]


def test_reset_restarts_only_the_current_run(artifact):
    path, set_run = artifact
    set_run("run-a")
    _record.reset_results()
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.1)

    set_run("run-b")
    _record.reset_results()
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.2)

    set_run("run-a")  # e.g. a pytest re-run within the same process
    _record.reset_results()
    assert _record.current_run_entries() == []
    assert [e["wall_time_s"] for e in _record.all_entries()] == [0.2]


def test_schema_1_artifacts_migrate_without_losing_entries(artifact):
    path, set_run = artifact
    path.write_text(json.dumps({
        "schema": 1,
        "created_at": "2026-01-01T00:00:00",
        "entries": [{"suite": "old", "model": "m", "engine": "is",
                     "backend": "interp", "particles": 10, "wall_time_s": 1.0}],
    }))
    set_run("run-new")
    _record.record(suite="new", model="m", engine="is", wall_time_s=0.5)

    data = json.loads(path.read_text())
    assert data["schema"] == _record.SCHEMA_VERSION
    assert [run["run"] for run in data["runs"]] == ["legacy-schema-1", "run-new"]
    assert [e["suite"] for e in _record.all_entries()] == ["old", "new"]


def test_old_runs_are_pruned_beyond_the_cap(artifact):
    path, set_run = artifact
    for i in range(_record.MAX_RUNS + 3):
        set_run(f"run-{i}")
        _record.reset_results()
        _record.record(suite="s", model="m", engine="is", wall_time_s=float(i))
    data = json.loads(path.read_text())
    assert len(data["runs"]) == _record.MAX_RUNS
    assert data["runs"][-1]["run"] == f"run-{_record.MAX_RUNS + 2}"


def test_corrupt_artifact_is_replaced_not_fatal(artifact):
    path, set_run = artifact
    path.write_text("{ not json")
    set_run("run-a")
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.1)
    assert len(_record.all_entries()) == 1


# ---------------------------------------------------------------------------
# Schema-2 -> 3 migration property: arbitrary entry lists round-trip.
# ---------------------------------------------------------------------------

def _random_entry(rng):
    """One schema-2 entry with randomized shape (optional fields, extras)."""
    entry = {
        "suite": rng.choice(["load", "compiled_backend", "fig2", "söndra-suite"]),
        "model": f"model-{rng.randrange(100)}",
        "engine": rng.choice(["is", "smc", "svi", "mh"]),
        "backend": rng.choice(["interp", "compiled"]),
        "particles": rng.choice([None, rng.randrange(1, 100000)]),
        "wall_time_s": rng.random() * 10,
    }
    if rng.random() < 0.5:
        entry["speedup"] = rng.random() * 5
        entry["baseline"] = "interp"
    if rng.random() < 0.5:
        entry["extra"] = {
            "groups": rng.randrange(10),
            "nested": {"p50_ms": rng.random(), "flags": [True, False, None]},
        }
    return entry


def _random_schema2_document(rng):
    return {
        "schema": 2,
        "created_at": "2026-0{}-01T00:00:00".format(rng.randrange(1, 10)),
        "runs": [
            {
                "run": f"session-{i}-{rng.randrange(10**6)}",
                "started_at": None if rng.random() < 0.2 else "2026-01-01T00:00:00",
                "entries": [_random_entry(rng) for _ in range(rng.randrange(0, 6))],
            }
            for i in range(rng.randrange(0, _record.MAX_RUNS))
        ],
    }


def test_schema_2_migration_round_trips_arbitrary_runs(artifact):
    """Property: for any schema-2 document, migrating to schema 3 preserves
    every prior session's run record byte-identically and only adds the
    ``curves`` map; appending a new entry afterwards clobbers nothing."""
    import copy
    import random

    path, set_run = artifact
    for seed in range(25):
        rng = random.Random(seed)
        document = _random_schema2_document(rng)
        original_runs = copy.deepcopy(document["runs"])
        path.write_text(json.dumps(document))

        set_run(f"migration-run-{seed}")
        _record.record(suite="post", model="m", engine="is", wall_time_s=0.1)

        data = json.loads(path.read_text())
        assert data["schema"] == _record.SCHEMA_VERSION
        assert data["curves"] == {}
        assert data["created_at"] == document["created_at"]
        # Every prior session survives untouched; the new run is appended.
        assert data["runs"][:-1] == original_runs
        assert data["runs"][-1]["run"] == f"migration-run-{seed}"
        assert [e["suite"] for e in data["runs"][-1]["entries"]] == ["post"]


def test_schema_3_load_is_idempotent_and_preserves_curves(artifact):
    """Recorded curve sets survive harness writes (reset and record)."""
    path, set_run = artifact
    curves = {"bench:v1:seed=0": {"passed": True, "curves": [{"key": "weight/is"}]}}
    path.write_text(json.dumps({
        "schema": 3,
        "created_at": "2026-01-01T00:00:00",
        "runs": [{"run": "older", "started_at": None, "entries": []}],
        "curves": curves,
    }))
    set_run("run-a")
    _record.reset_results()
    _record.record(suite="s", model="m", engine="is", wall_time_s=0.1)

    data = json.loads(path.read_text())
    assert data["schema"] == _record.SCHEMA_VERSION
    assert data["curves"] == curves
    assert [run["run"] for run in data["runs"]] == ["older", "run-a"]


def test_package_writer_agrees_with_harness_migration(artifact):
    """`repro.bench.results` (the in-package writer used by the CLI) and this
    module must produce the same schema-3 view of a schema-2 artifact."""
    import random

    from repro.bench import results as bench_results

    path, _set_run = artifact
    rng = random.Random(1234)
    document = _random_schema2_document(rng)
    path.write_text(json.dumps(document))

    assert bench_results.SCHEMA_VERSION == _record.SCHEMA_VERSION
    migrated = bench_results.load_results(str(path))
    assert migrated["schema"] == _record.SCHEMA_VERSION
    assert migrated["runs"] == document["runs"]
    assert migrated["curves"] == {}

    bench_results.record_curves("bench:v1:seed=7", {"passed": True}, str(path))
    data = json.loads(path.read_text())
    assert data["runs"] == document["runs"]
    assert list(data["curves"]) == ["bench:v1:seed=7"]
