"""Machine-readable benchmark results: the ``BENCH_results.json`` artifact.

Every benchmark harness funnels its measurements through :func:`record`, so
one run of ``pytest benchmarks`` leaves behind a single JSON artifact that CI
uploads (see the ``fast-benchmarks`` job in ``.github/workflows/ci.yml``).
The file accumulates entries across test files within a run — each entry is
one measurement:

.. code-block:: json

    {"schema": 1,
     "entries": [{"suite": "compiled_backend", "model": "switching",
                  "engine": "is", "backend": "compiled", "particles": 10000,
                  "wall_time_s": 0.0118, "speedup": 4.4,
                  "baseline": "interp", "extra": {...}}]}

``wall_time_s`` is the best-of-N wall time of the measured configuration;
``speedup`` (optional) is relative to the named ``baseline``.  The output
path defaults to ``BENCH_results.json`` in the current directory and can be
redirected with ``REPRO_BENCH_RESULTS``.  Writes are load-modify-write per
record, which is plenty for the handful of entries a benchmark run emits;
stale files from a previous run are reset by the session-scoped
:func:`reset_results` autouse fixture in ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

SCHEMA_VERSION = 1


def results_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_RESULTS", "BENCH_results.json"))


def _load() -> dict:
    path = results_path()
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(data, dict) and data.get("schema") == SCHEMA_VERSION:
                return data
        except (OSError, json.JSONDecodeError):
            pass
    return {"schema": SCHEMA_VERSION, "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"), "entries": []}


def reset_results() -> None:
    """Start a fresh artifact (called once per benchmark session)."""
    path = results_path()
    if path.exists():
        path.unlink()


def record(
    suite: str,
    model: str,
    engine: str,
    wall_time_s: float,
    backend: str = "interp",
    particles: Optional[int] = None,
    speedup: Optional[float] = None,
    baseline: Optional[str] = None,
    **extra,
) -> None:
    """Append one measurement to the ``BENCH_results.json`` artifact.

    ``suite`` names the harness (usually the benchmark file's topic),
    ``model``/``engine``/``backend``/``particles`` identify the measured
    configuration, and ``speedup`` relates it to ``baseline`` when the
    harness measured a comparison.  Extra keyword fields land under
    ``extra`` untouched — use them for harness-specific detail (group
    counts, tolerance margins, paper-reported numbers).
    """
    data = _load()
    entry = {
        "suite": suite,
        "model": model,
        "engine": engine,
        "backend": backend,
        "particles": particles,
        "wall_time_s": float(wall_time_s),
    }
    if speedup is not None:
        entry["speedup"] = float(speedup)
    if baseline is not None:
        entry["baseline"] = baseline
    if extra:
        entry["extra"] = extra
    data["entries"].append(entry)
    results_path().write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def best_of(repeats: int, thunk):
    """Best-of-N wall time helper shared by the harnesses.

    Returns ``(best_seconds, last_result)``.
    """
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - start)
    return best, result
