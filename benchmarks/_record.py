"""Machine-readable benchmark results: the ``BENCH_results.json`` artifact.

Every benchmark harness funnels its measurements through :func:`record`, so
one run of ``pytest benchmarks`` leaves behind a single JSON artifact that CI
uploads (see the ``fast-benchmarks`` job in ``.github/workflows/ci.yml``).

Entries are grouped into **per-run lists**: each pytest session (or any other
harness process) appends its measurements to its own run record instead of a
single flat list.  This fixes the schema-1 behaviour where a second harness
session in the same CI run deleted the first session's artifact wholesale —
e.g. the conformance job's pool-path run clobbering the benchmark job's
numbers when both wrote the same path:

.. code-block:: json

    {"schema": 3,
     "runs": [{"run": "12345-1700000000", "started_at": "...",
               "entries": [{"suite": "compiled_backend", "model": "switching",
                            "engine": "is", "backend": "compiled",
                            "particles": 10000, "wall_time_s": 0.0118,
                            "speedup": 4.4, "baseline": "interp",
                            "extra": {}}]}],
     "curves": {}}

Schema 3 adds the top-level ``curves`` map, written by ``repro bench
evaluate`` (see :mod:`repro.bench.results`, the in-package counterpart of
this module): one slot per evaluate tag holding that run's
accuracy-vs-wall-time scaling curves.  The pytest harnesses here never
write ``curves`` but must round-trip it — resetting a run record or
appending an entry leaves recorded curve sets untouched.

``wall_time_s`` is the best-of-N wall time of the measured configuration;
``speedup`` (optional) is relative to the named ``baseline``.  The output
path defaults to ``BENCH_results.json`` in the current directory and can be
redirected with ``REPRO_BENCH_RESULTS``.  Writes are load-modify-write per
record, which is plenty for the handful of entries a benchmark run emits.
:func:`reset_results` (called once per session by the autouse fixture in
``benchmarks/conftest.py``) starts a fresh run record and prunes old runs
beyond :data:`MAX_RUNS`, so local re-runs do not grow the file forever while
runs within one CI workflow all survive.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List, Optional

SCHEMA_VERSION = 3

#: How many historical runs one artifact retains (oldest pruned first).
MAX_RUNS = 8

#: The current process's run identifier; lazily assigned so importing this
#: module never touches the filesystem.
_RUN_ID: Optional[str] = None


def results_path() -> Path:
    """Where the artifact lives (``REPRO_BENCH_RESULTS`` overrides)."""
    return Path(os.environ.get("REPRO_BENCH_RESULTS", "BENCH_results.json"))


def run_id() -> str:
    """This process's run identifier (stable for the process lifetime)."""
    global _RUN_ID
    if _RUN_ID is None:
        _RUN_ID = f"{os.getpid()}-{int(time.time())}"
    return _RUN_ID


def _fresh_document() -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "runs": [],
        "curves": {},
    }


def _load() -> dict:
    path = results_path()
    if not path.exists():
        return _fresh_document()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return _fresh_document()
    if not isinstance(data, dict):
        return _fresh_document()
    if data.get("schema") == SCHEMA_VERSION:
        data.setdefault("runs", [])
        data.setdefault("curves", {})
        return data
    if data.get("schema") == 2 and isinstance(data.get("runs"), list):
        # Schema 3 only adds the ``curves`` map; schema-2 run records carry
        # over untouched.
        document = _fresh_document()
        document["created_at"] = data.get("created_at", document["created_at"])
        document["runs"] = data["runs"]
        return document
    if data.get("schema") == 1 and isinstance(data.get("entries"), list):
        # Migrate a schema-1 artifact in place: its flat entry list becomes
        # one legacy run, so no measurement is lost across the upgrade.
        document = _fresh_document()
        document["runs"].append(
            {
                "run": "legacy-schema-1",
                "started_at": data.get("created_at"),
                "entries": data["entries"],
            }
        )
        return document
    return _fresh_document()


def _current_run(data: dict) -> dict:
    for run in data["runs"]:
        if run.get("run") == run_id():
            return run
    run = {
        "run": run_id(),
        "started_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "entries": [],
    }
    data["runs"].append(run)
    return run


def _write(data: dict) -> None:
    results_path().write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def reset_results() -> None:
    """Start this process's run record afresh (called once per session).

    Other runs' records are preserved (that is the point of schema 2); only
    runs beyond :data:`MAX_RUNS` are pruned, oldest first.
    """
    data = _load()
    data["runs"] = [run for run in data["runs"] if run.get("run") != run_id()]
    data["runs"] = data["runs"][-(MAX_RUNS - 1):] if MAX_RUNS > 1 else []
    _current_run(data)
    _write(data)


def current_run_entries() -> List[dict]:
    """The entries recorded by this process so far (for tests/reporting)."""
    data = _load()
    for run in data["runs"]:
        if run.get("run") == run_id():
            return list(run["entries"])
    return []


def all_entries() -> List[dict]:
    """Every entry across all retained runs, in file order."""
    data = _load()
    return [entry for run in data["runs"] for entry in run["entries"]]


def record(
    suite: str,
    model: str,
    engine: str,
    wall_time_s: float,
    backend: str = "interp",
    particles: Optional[int] = None,
    speedup: Optional[float] = None,
    baseline: Optional[str] = None,
    **extra,
) -> None:
    """Append one measurement to this process's run in the artifact.

    ``suite`` names the harness (usually the benchmark file's topic),
    ``model``/``engine``/``backend``/``particles`` identify the measured
    configuration, and ``speedup`` relates it to ``baseline`` when the
    harness measured a comparison.  Extra keyword fields land under
    ``extra`` untouched — use them for harness-specific detail (group
    counts, tolerance margins, server counters, paper-reported numbers).
    Entries sharing a key never overwrite each other: measurements
    accumulate within the run's list.
    """
    data = _load()
    entry = {
        "suite": suite,
        "model": model,
        "engine": engine,
        "backend": backend,
        "particles": particles,
        "wall_time_s": float(wall_time_s),
    }
    if speedup is not None:
        entry["speedup"] = float(speedup)
    if baseline is not None:
        entry["baseline"] = baseline
    if extra:
        entry["extra"] = extra
    _current_run(data)["entries"].append(entry)
    _write(data)


def best_of(repeats: int, thunk):
    """Best-of-N wall time helper shared by the harnesses.

    Returns ``(best_seconds, last_result)``.
    """
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - start)
    return best, result
