"""Compiled batched backend — fused kernels vs the interpretive vectorizer.

The compiled backend exists to remove per-site interpreter dispatch and,
above all, the interpretive runtime's *group re-execution*: when a lockstep
particle population diverges at a branch, ``ParticleVectorizer`` re-runs
each subgroup from scratch (replaying recorded values), paying the whole
prefix's kernel cost once per split level.  The fused kernel partitions
index sets and dispatches compiled sub-kernels instead, so its total lane
work stays linear in the program size.

This harness pins the claim on the divergent-control-flow library models:

* ``switching`` (5 announced branches, up to 32 control-flow groups) and
  ``jump`` (asymmetric branch arms with branch-dependent latents) must run
  at least 3x faster compiled than interpreted at 10k particles;
* both backends must produce bitwise-identical log-weights — the compiled
  path is an execution-strategy change, not a new estimator (the full
  model-by-model guarantee lives in ``tests/conformance/test_backend_parity.py``);
* every compilable library model's compiled-vs-interp timing is recorded in
  the ``BENCH_results.json`` artifact so the perf trajectory is tracked
  PR-over-PR even for the models where kernel cost, not dispatch,
  dominates.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import _record
from repro.core.semantics import traces as tr
from repro.engine import make_particle_runner
from repro.models import all_benchmarks, get_benchmark

#: The CI fast-benchmark smoke job sets REPRO_FAST_BENCH=1 to run with
#: reduced particle counts; re-execution overhead *grows* relative to kernel
#: time as n shrinks, so the 3x floor is insensitive to the reduction.
NUM_PARTICLES = 3_000 if os.environ.get("REPRO_FAST_BENCH") else 10_000
MIN_SPEEDUP = 3.0

#: Divergent-control-flow models where compiled sub-kernel dispatch must
#: beat interpretive group re-execution by the headline margin.
HEADLINE_MODELS = ("switching", "jump")


def _runners(name: str):
    bench = get_benchmark(name)
    model, guide = bench.model_program(), bench.guide_program()
    obs = tuple(tr.ValP(v) for v in bench.obs_values)
    guide_args = tuple(bench.guide_param_inits.values()) if bench.guide_param_inits else ()
    common = dict(
        model_program=model, guide_program=guide,
        model_entry=bench.model_entry, guide_entry=bench.guide_entry,
        obs_trace=obs, guide_args=guide_args,
    )
    interp = make_particle_runner(backend="interp", **common)
    compiled = make_particle_runner(backend="compiled", **common)
    return interp, compiled


@pytest.mark.parametrize("name", HEADLINE_MODELS)
def test_compiled_backend_at_least_3x_on_divergent_models(name: str):
    """Acceptance: >= 3x over the interpretive vectorizer at 10k particles."""
    interp, compiled = _runners(name)
    assert type(compiled).__name__ == "CompiledParticleRunner", (
        f"{name} unexpectedly fell back: {getattr(compiled, 'fallback_reason', None)}"
    )

    interp_s, interp_run = _record.best_of(
        3, lambda: interp.run(NUM_PARTICLES, np.random.default_rng(0))
    )
    compiled_s, compiled_run = _record.best_of(
        3, lambda: compiled.run(NUM_PARTICLES, np.random.default_rng(0))
    )

    speedup = interp_s / compiled_s
    print(
        f"\n{name} @ {NUM_PARTICLES} particles: interp {interp_s * 1e3:.1f}ms "
        f"({interp_run.num_groups} groups), compiled {compiled_s * 1e3:.1f}ms "
        f"-> {speedup:.1f}x"
    )
    _record.record(
        suite="compiled_backend", model=name, engine="is", backend="compiled",
        particles=NUM_PARTICLES, wall_time_s=compiled_s,
        speedup=speedup, baseline="interp",
        interp_wall_time_s=interp_s, num_groups=interp_run.num_groups,
    )

    # Same seed, same bits: the backends are one estimator, two runtimes.
    assert np.array_equal(interp_run.model_log_weights, compiled_run.model_log_weights)
    assert np.array_equal(interp_run.guide_log_weights, compiled_run.guide_log_weights)
    assert speedup >= MIN_SPEEDUP


#: Floor for the megakernel-vs-fused gate.  Both tiers execute *identical*
#: kernel calls (same densities, same RNG draws, same widths); the megakernel
#: only eliminates the Python dispatch between sub-kernels, so its margin —
#: measured around 2x on the headline models, up to ~2.4x on a quiet machine
#: — sits on top of a shared irreducible NumPy cost and wobbles with load.
#: The gate floors well under the measured value (same spirit as the 3x
#: floor on a measured ~4x above); the artifact records the actual ratio so
#: the trajectory stays visible.
MIN_MEGA_SPEEDUP = 1.7


@pytest.mark.parametrize("name", HEADLINE_MODELS)
def test_megakernel_beats_subkernel_dispatch(name: str):
    """The ``jit="mega"`` tier: one emitted function scheduling the whole
    path tree must beat per-sub-kernel dispatch at 10k particles in the
    IS/SMC mode (score ledgers elided), while staying bitwise-identical to
    it (and hence to the interpreter)."""
    bench = get_benchmark(name)
    obs = tuple(tr.ValP(v) for v in bench.obs_values)
    guide_args = tuple(bench.guide_param_inits.values()) if bench.guide_param_inits else ()
    common = dict(
        model_program=bench.model_program(), guide_program=bench.guide_program(),
        model_entry=bench.model_entry, guide_entry=bench.guide_entry,
        obs_trace=obs, guide_args=guide_args, trim_site_scores=True,
    )
    fused = make_particle_runner(backend="compiled", **common)
    mega = make_particle_runner(backend="compiled", jit="mega", **common)
    assert type(mega).__name__ == "MegaParticleRunner", (
        f"{name} unexpectedly fell back: {getattr(mega, 'fallback_reason', None)}"
    )

    # Interleave the two runners inside one measurement loop: a background
    # load burst then slows *both* sides of the ratio instead of whichever
    # phase it happened to land on.  Up to three rounds on top, so a burst
    # longer than one round still reads as a dip, not a regression.
    import time

    def _interleaved_best(repeats):
        fused_best = mega_best = float("inf")
        fused_r = mega_r = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            fused_r = fused.run(NUM_PARTICLES, np.random.default_rng(0))
            t1 = time.perf_counter()
            mega_r = mega.run(NUM_PARTICLES, np.random.default_rng(0))
            t2 = time.perf_counter()
            fused_best = min(fused_best, t1 - t0)
            mega_best = min(mega_best, t2 - t1)
        return fused_best, fused_r, mega_best, mega_r

    for attempt in range(3):
        fused_s, fused_run, mega_s, mega_run = _interleaved_best(5)
        speedup = fused_s / mega_s
        if speedup >= MIN_MEGA_SPEEDUP:
            break
    print(
        f"\n{name} @ {NUM_PARTICLES} particles: fused {fused_s * 1e3:.1f}ms, "
        f"mega {mega_s * 1e3:.1f}ms -> {speedup:.2f}x"
    )
    _record.record(
        suite="compiled_backend", model=name, engine="is", backend="compiled",
        jit="mega", particles=NUM_PARTICLES, wall_time_s=mega_s,
        speedup=speedup, baseline="compiled",
        compiled_wall_time_s=fused_s,
    )

    assert np.array_equal(fused_run.model_log_weights, mega_run.model_log_weights)
    assert np.array_equal(fused_run.guide_log_weights, mega_run.guide_log_weights)
    assert speedup >= MIN_MEGA_SPEEDUP


def test_compiled_backend_recorded_across_library():
    """Record compiled-vs-interp timings for every compilable library model.

    No speedup floor here — on shared-control-flow models the NumPy kernels
    (RNG draws, densities) dominate both backends and the margin is modest;
    the artifact keeps the trajectory visible.  Bitwise agreement *is*
    asserted for every model the fused compiler accepts.
    """
    measured = 0
    for bench in all_benchmarks():
        if not bench.expressible or bench.name == "outliers":
            continue  # outliers' MCMC guide takes per-draw arguments
        interp, compiled = _runners(bench.name)
        if type(compiled).__name__ != "CompiledParticleRunner":
            continue  # recursive models fall back; nothing to compare
        n = max(NUM_PARTICLES // 5, 1000)
        interp_s, r1 = _record.best_of(2, lambda: interp.run(n, np.random.default_rng(1)))
        compiled_s, r2 = _record.best_of(2, lambda: compiled.run(n, np.random.default_rng(1)))
        assert np.array_equal(r1.model_log_weights, r2.model_log_weights), bench.name
        assert np.array_equal(r1.guide_log_weights, r2.guide_log_weights), bench.name
        _record.record(
            suite="compiled_backend_survey", model=bench.name, engine="is",
            backend="compiled", particles=n, wall_time_s=compiled_s,
            speedup=interp_s / compiled_s, baseline="interp",
            interp_wall_time_s=interp_s,
        )
        measured += 1
    assert measured >= 10  # the survey covers the non-recursive library


def test_compiled_backend_serves_smc_and_svi():
    """The backend flag reaches the other engines (smoke, with parity)."""
    from repro.engine import ProgramSession

    bench = get_benchmark("switching")
    session = ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    smc_i = session.infer("smc", num_particles=600, obs_values=bench.obs_values,
                          seed=5, backend="interp")
    smc_c = session.infer("smc", num_particles=600, obs_values=bench.obs_values,
                          seed=5, backend="compiled")
    assert smc_c.posterior_mean(0) == smc_i.posterior_mean(0)
    assert smc_c.log_evidence() == smc_i.log_evidence()
    assert smc_c.diagnostics()["backend"] == "compiled"
    assert session.compiled_backend_supported is True
