"""SVI throughput — batched score-function vs sequential finite differences.

The vectorized SVI engine exists to kill the ``(2·dim + 1) × num_particles``
sequential coroutine runs the finite-difference optimiser pays per step: one
lockstep sampling pass plus two vectorized rescoring passes per parameter
coordinate replace them all.  This harness pins the claim on the library's
VI benchmarks (Table 2's ``vae``, 4 parameters, and ``weight``, 2
parameters): fitting with the ``svi`` engine must be at least 5x faster than
the ``svi-fd`` reference path at identical step/particle settings, while
still moving the ELBO and (for the conjugate ``weight`` model) landing on
the true posterior mean.

Set ``REPRO_FAST_BENCH=1`` (the CI smoke job does) to run with reduced
particle counts; the speedup assertion holds in both configurations.
"""

from __future__ import annotations

import os

import pytest

import _record
from repro.engine import ProgramSession
from repro.models import get_benchmark

FAST = bool(os.environ.get("REPRO_FAST_BENCH"))
NUM_STEPS = 2 if FAST else 3
NUM_PARTICLES = 150 if FAST else 250
MIN_SPEEDUP = 5.0
WEIGHT_POSTERIOR_MEAN = 9.14  # conjugate normal-normal, see tests/conformance


def _session(name: str) -> ProgramSession:
    bench = get_benchmark(name)
    return ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )


def _fit(session: ProgramSession, engine: str, guide_params, obs_values, **overrides):
    kwargs = dict(
        num_particles=NUM_PARTICLES,
        obs_values=obs_values,
        seed=0,
        guide_params=guide_params,
        num_steps=NUM_STEPS,
        learning_rate=0.1,
        final_particles=NUM_PARTICLES,
    )
    kwargs.update(overrides)
    return session.infer(engine, **kwargs)


_best_of = _record.best_of


@pytest.mark.parametrize(
    "name, guide_params",
    [
        ("vae", {"m1": 0.0, "s1": 0.0, "m2": 0.0, "s2": 0.0}),
        ("weight", {"loc": 8.5, "log_scale": 0.0}),
    ],
)
def test_vectorized_svi_at_least_5x_faster_than_finite_differences(name, guide_params):
    """Acceptance: >= 5x over `svi-fd` at identical settings on VI benchmarks."""
    bench = get_benchmark(name)
    session = _session(name)

    fd_seconds, fd_result = _best_of(
        1, lambda: _fit(session, "svi-fd", guide_params, bench.obs_values)
    )
    vec_seconds, vec_result = _best_of(
        2, lambda: _fit(session, "svi", guide_params, bench.obs_values)
    )

    speedup = fd_seconds / vec_seconds
    print(
        f"\n{name} SVI ({NUM_STEPS} steps x {NUM_PARTICLES} particles, "
        f"{len(guide_params)} params): finite-difference {fd_seconds*1e3:.1f}ms, "
        f"vectorized {vec_seconds*1e3:.1f}ms -> {speedup:.1f}x"
    )
    _record.record(
        suite="svi_throughput", model=name, engine="svi", backend="interp",
        particles=NUM_PARTICLES, wall_time_s=vec_seconds,
        speedup=speedup, baseline="svi-fd",
        fd_wall_time_s=fd_seconds, num_steps=NUM_STEPS,
    )
    assert speedup >= MIN_SPEEDUP

    # Both paths optimise the same objective from the same start.
    assert vec_result.diagnostics()["num_steps"] == NUM_STEPS
    assert fd_result.diagnostics()["num_steps"] == NUM_STEPS


def test_vectorized_svi_converges_where_it_counts():
    """Speed must not come at the cost of the optimum: weight reaches the

    conjugate posterior with a realistic step budget (still far cheaper than
    a single `svi-fd` step at the same particle count).
    """
    session = _session("weight")
    result = _fit(
        session, "svi", {"loc": 8.5, "log_scale": 0.0}, (9.5,),
        num_steps=15 if FAST else 40,
        num_particles=128,
        final_particles=2000,
    )
    history = result.diagnostics()["elbo_history"]
    assert history[-1] > history[0]
    if not FAST:
        assert result.posterior_mean(0) == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.15)
