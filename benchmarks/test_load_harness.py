"""Overload behaviour under the open-loop load harness (the PR 7 contract).

Drives the real server at ~2x its measured sustained capacity and asserts
the hardening guarantees: the server stays up, every request gets exactly
one structured response (zero hangs, zero unstructured errors), overflow is
rejected with ``overloaded``/``deadline_exceeded``, and the kernel/session
caches never exceed their configured capacity.  The latency percentiles
(p50/p90/p99, histogram-derived) and the shed rate land in
``BENCH_results.json`` so p99-under-load is a tracked number PR-over-PR.
"""

from __future__ import annotations

import os

import _record
from load_harness import run_overload_harness, run_streaming_harness
from repro.engine.shard import shutdown_pool

FAST = bool(os.environ.get("REPRO_FAST_BENCH"))


def test_overload_sheds_structurally_and_stays_up():
    outcome = run_overload_harness(
        duration_s=1.5 if FAST else 3.0,
        rate_multiplier=2.0,
        particles=2_000 if FAST else 4_000,
    )
    report = outcome.report

    # The server kept answering: the post-run stats fetch got a snapshot.
    assert report.server_stats is not None, "server stopped answering op: stats"
    # Zero client hangs and zero unstructured failures, even at 2x capacity.
    assert report.unanswered == 0, f"{report.unanswered} requests never answered"
    assert report.unstructured_errors == 0, "ok:false responses without a code"
    assert report.ok + report.shed == report.answered
    # At twice sustained capacity the server must actually shed...
    assert report.shed > 0, (
        f"no sheds at {outcome.offered_rps:.0f} req/s offered "
        f"(capacity {outcome.capacity_rps:.0f} req/s)"
    )
    # ...with the documented codes only.
    assert set(report.by_code) <= {"overloaded", "deadline_exceeded", "quota_exceeded"}
    # ...and still make real progress.
    assert report.ok > 0
    # Dispatch waves stayed bounded while the queue was slammed.
    assert outcome.counters["wave_size_max"] <= 8
    # Cache capacity held for the whole run.
    assert outcome.kernel_cache_len <= outcome.kernel_cache_cap
    assert outcome.session_cache_len <= outcome.session_cache_cap

    pct = report.percentiles()
    print(
        f"\nload: offered {outcome.offered_rps:.0f} req/s "
        f"(capacity {outcome.capacity_rps:.0f}), {report.offered} requests, "
        f"ok {report.ok}, shed {report.shed} ({100 * report.shed_rate:.0f}%), "
        f"p50/p99 {pct['latency_s_p50'] * 1e3:.1f}/{pct['latency_s_p99'] * 1e3:.1f}ms"
    )
    _record.record(
        suite="load",
        model="weight",
        engine="is",
        backend="interp",
        particles=report.config.particles,
        wall_time_s=report.wall_time_s,
        **{k: v for k, v in report.bench_extra().items()},
    )
    shutdown_pool()


def test_streaming_load_and_restart_recovery(tmp_path):
    outcome = run_streaming_harness(
        checkpoint_dir=str(tmp_path / "ckpt"),
        duration_s=1.5 if FAST else 3.0,
        rate=20.0,
        particles=200 if FAST else 500,
    )
    report = outcome.report

    # The usual hardening contract holds for session traffic too.
    assert report.unanswered == 0, f"{report.unanswered} requests never answered"
    assert report.unstructured_errors == 0, "ok:false responses without a code"
    assert report.ok > 0
    assert len(report.sessions) > 0, "streaming mode opened no sessions"
    # Every session the run opened answers a query on a fresh service
    # restored purely from the checkpoint directory.
    assert outcome.verify["checked"] == len(report.sessions)
    assert outcome.verify["recovered"] == outcome.verify["checked"], (
        f"sessions lost across restart: {outcome.verify['failed']}"
    )

    print(
        f"\nstreaming: {report.offered} ops over {len(report.sessions)} sessions, "
        f"ok {report.ok}, recovered {outcome.verify['recovered']}"
        f"/{outcome.verify['checked']} after restart"
    )
    _record.record(
        suite="load",
        model="stream_rw",
        engine="smc",
        backend="interp",
        particles=report.config.particles,
        wall_time_s=report.wall_time_s,
        sessions_recovered=outcome.verify["recovered"],
        sessions_checked=outcome.verify["checked"],
        **{k: v for k, v in report.bench_extra().items()},
    )
    shutdown_pool()
