"""Table 1 — expressiveness comparison (paper Sec. 6, Tab. 1).

For every selected benchmark this harness reports:

* ``T?``  — does the model type-check in our guide-type system?
* ``LOC`` — lines of model code in our surface syntax (measured) alongside
  the paper's reported LOC (the paper's language has tensor extensions, so
  absolute counts differ; the ordering should be similar);
* ``TP?`` — does the trace-types baseline (prior work) accept the model?

The shape claim reproduced from the paper: every expressible benchmark
type-checks in our system (15 of 15 minus ``dp``), while the baseline rejects
exactly the recursive / branch-dependent ones.

Run with ``pytest benchmarks/test_table1_expressiveness.py --benchmark-only``.
"""

from __future__ import annotations

import time

import pytest

import _record

from repro.baselines import trace_type_check
from repro.core.typecheck import check_model_guide_pair, infer_guide_types
from repro.errors import ReproError
from repro.models import selected_benchmarks

SELECTED = selected_benchmarks()


def _ours_accepts(bench) -> bool:
    if not bench.expressible:
        return False
    try:
        infer_guide_types(bench.model_program())
        if bench.guide_source is not None:
            pair = check_model_guide_pair(
                bench.model_program(), bench.guide_program(),
                bench.model_entry, bench.guide_entry,
            )
            return pair.compatible
        return True
    except ReproError:
        return False


def _baseline_accepts(bench) -> bool:
    if not bench.expressible:
        return False
    return trace_type_check(bench.model_program(), bench.model_entry).supported


@pytest.mark.parametrize("bench", SELECTED, ids=lambda b: b.name)
def test_table1_row(benchmark, bench):
    """One Table 1 row: measure type checking and compare verdicts to the paper."""
    if not bench.expressible:
        benchmark(lambda: False)
        assert bench.paper_table1.typechecks_ours is False
        return

    ours = benchmark(lambda: _ours_accepts(bench))
    baseline = _baseline_accepts(bench)

    assert ours == bench.paper_table1.typechecks_ours, (
        f"{bench.name}: our verdict {ours} differs from the paper's "
        f"{bench.paper_table1.typechecks_ours}"
    )
    assert baseline == bench.paper_table1.typechecks_prior, (
        f"{bench.name}: baseline verdict {baseline} differs from the paper's "
        f"{bench.paper_table1.typechecks_prior}"
    )


def test_table1_report(benchmark):
    """Print the full regenerated Table 1 (paper vs measured)."""

    def build_rows():
        rows = []
        for bench in SELECTED:
            rows.append(
                (
                    bench.name,
                    "yes" if _ours_accepts(bench) else "no",
                    bench.model_loc if bench.expressible else None,
                    "yes" if _baseline_accepts(bench) else "no",
                    bench.paper_table1.loc,
                )
            )
        return rows

    start = time.perf_counter()
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    _record.record(
        suite="table1_expressiveness", model="all-selected", engine="typecheck",
        wall_time_s=time.perf_counter() - start, num_rows=len(rows),
    )

    header = f"{'program':<12} {'T? (ours)':<10} {'LOC (ours)':<11} {'TP? (prior)':<12} {'LOC (paper)':<11}"
    lines = ["", "Table 1 — expressiveness (measured vs paper)", header, "-" * len(header)]
    for name, ours, loc, baseline, paper_loc in rows:
        loc_text = str(loc) if loc is not None else "N/A"
        paper_loc_text = str(paper_loc) if paper_loc is not None else "N/A"
        lines.append(f"{name:<12} {ours:<10} {loc_text:<11} {baseline:<12} {paper_loc_text:<11}")
    ours_count = sum(1 for _, ours, _, _, _ in rows if ours == "yes")
    prior_count = sum(1 for _, _, _, baseline, _ in rows if baseline == "yes")
    lines.append("-" * len(header))
    lines.append(
        f"our system accepts {ours_count}/{len(rows)} selected benchmarks; "
        f"the trace-types baseline accepts {prior_count}/{len(rows)}"
    )
    print("\n".join(lines))

    assert ours_count > prior_count
