"""Sharded throughput — the process pool must actually buy wall time.

The sharded execution layer's determinism contract says worker count never
changes *results*; this harness pins that it does change *throughput*: on the
compiled backend, running a fixed 4-shard plan over 4 workers must be at
least 2x faster than running the same plan on 1 worker (inline), measured on
the ``switching`` model whose divergent-branch sub-kernels give each shard
real compute relative to the result transport.

The comparison is deliberately shard-plan-fixed (``shards=4`` both sides), so
the two measurements execute bit-identical computations — the harness also
asserts the results are equal, which makes the speedup an apples-to-apples
distribution win, not an estimator change.

Skipped when fewer than 4 CPUs are available or no process pool can be
created (the speedup floor is meaningless without real parallel hardware).
"""

from __future__ import annotations

import os

import pytest

import _record
from repro.engine import ProgramSession
from repro.engine.shard import pool_available, shutdown_pool
from repro.models import get_benchmark

NUM_PARTICLES = 200_000 if os.environ.get("REPRO_FAST_BENCH") else 400_000
SHARDS = 4
WORKERS = 4
MIN_SPEEDUP = 2.0
MODEL = "switching"


def _cpu_count() -> int:
    return os.cpu_count() or 1


def _session() -> ProgramSession:
    bench = get_benchmark(MODEL)
    return ProgramSession(
        bench.model_program(), bench.guide_program(), bench.model_entry, bench.guide_entry
    )


def _run(session: ProgramSession, workers: int):
    bench = get_benchmark(MODEL)
    return session.infer(
        "is",
        num_particles=NUM_PARTICLES,
        obs_values=bench.obs_values,
        seed=0,
        backend="compiled",
        workers=workers,
        shards=SHARDS,
    )


@pytest.mark.skipif(_cpu_count() < 4, reason="needs >= 4 CPUs for a meaningful speedup floor")
def test_four_workers_at_least_2x_over_one_worker():
    """Acceptance: >= 2x at 4 workers over 1 worker on the compiled backend."""
    if not pool_available(WORKERS):
        pytest.skip("no multiprocessing pool in this environment")
    session = _session()
    session.fused_kernel()  # compile once outside the timed region
    _run(session, WORKERS)  # warm the pool (fork, per-worker kernel caches)

    one_seconds, one_result = _record.best_of(3, lambda: _run(session, 1))
    four_seconds, four_result = _record.best_of(3, lambda: _run(session, WORKERS))

    speedup = one_seconds / four_seconds
    print(
        f"\n{MODEL} @ {NUM_PARTICLES} particles, {SHARDS} shards: "
        f"1 worker {one_seconds * 1e3:.1f}ms, {WORKERS} workers "
        f"{four_seconds * 1e3:.1f}ms -> {speedup:.2f}x"
    )
    _record.record(
        suite="sharded_throughput", model=MODEL, engine="is", backend="compiled",
        particles=NUM_PARTICLES, wall_time_s=four_seconds,
        speedup=speedup, baseline="workers=1",
        one_worker_wall_time_s=one_seconds, shards=SHARDS, workers=WORKERS,
    )

    # Same shard plan -> bit-identical results; the speedup is pure scheduling.
    assert four_result.posterior_mean(0) == one_result.posterior_mean(0)
    assert four_result.log_evidence() == one_result.log_evidence()
    assert speedup >= MIN_SPEEDUP

    shutdown_pool()


def test_sharded_run_is_deterministic_and_sane():
    """Cheap no-pool check that runs everywhere: the benchmark configuration
    is reproducible (same seed + plan -> identical numbers) and produces a
    usable population.  Statistical agreement across engines/backends is
    pinned by the conformance and determinism suites."""
    import math

    bench = get_benchmark(MODEL)
    session = _session()

    def once():
        return session.infer(
            "is", num_particles=20_000, obs_values=bench.obs_values, seed=0,
            backend="compiled", workers=1, shards=SHARDS,
        )

    first, second = once(), once()
    assert first.posterior_mean(0) == second.posterior_mean(0)
    assert first.log_evidence() == second.log_evidence()
    assert math.isfinite(first.log_evidence())
    assert first.effective_sample_size() >= 1.0
