"""E6 — soundness ablation: the Sec. 2 sound vs unsound guides.

The paper motivates guide types with two failure modes (Sec. 2.1):

* **IS with Guide1'** — the guide samples ``@x`` from a Poisson (wrong
  support) and skips ``@y`` on the wrong branch;
* **VI with Guide2'** — the guide samples ``@x`` from a Normal, whose
  support (ℝ) strictly contains the model's (ℝ+), breaking absolute
  continuity of the posterior w.r.t. the proposal and making the KL
  divergence ill-defined.

This harness checks that

1. the *static* certificate (guide types) accepts the sound guides and
   rejects the unsound ones, and
2. the *empirical* behaviour matches: importance sampling with the unsound
   IS guide either crashes the coroutine protocol or yields only
   zero-weight particles, while the sound guide produces healthy weights.

Run with ``pytest benchmarks/test_soundness_ablation.py --benchmark-only``.
"""

from __future__ import annotations

import time

import numpy as np
import _record

from repro.analysis import absolute_continuity_certificate, empirical_support_check
from repro.core.parser import parse_program
from repro.core.semantics import traces as tr
from repro.inference import importance_sampling
from repro.models import get_benchmark
from repro.models.library import (
    EX1_GUIDE_UNSOUND_IS_SOURCE,
    EX1_GUIDE_UNSOUND_VI_SOURCE,
    EX1_GUIDE_VI_SOURCE,
)

OBS = (tr.ValP(0.8),)


def _model():
    return get_benchmark("ex-1").model_program()


def _sound_is_guide():
    return get_benchmark("ex-1").guide_program(), "Guide1"


def _unsound_is_guide():
    return parse_program(EX1_GUIDE_UNSOUND_IS_SOURCE), "Guide1Bad"


def _sound_vi_guide():
    return parse_program(EX1_GUIDE_VI_SOURCE), "Guide2"


def _unsound_vi_guide():
    return parse_program(EX1_GUIDE_UNSOUND_VI_SOURCE), "Guide2Bad"


def test_static_certificate_separates_sound_from_unsound(benchmark):
    """Guide types accept Guide1/Guide2 and reject Guide1'/Guide2'."""
    model = _model()

    def check_all():
        verdicts = {}
        for label, (guide, entry) in {
            "Guide1 (sound, IS)": _sound_is_guide(),
            "Guide1' (unsound, IS)": _unsound_is_guide(),
            "Guide2 (sound, VI)": _sound_vi_guide(),
            "Guide2' (unsound, VI)": _unsound_vi_guide(),
        }.items():
            report = absolute_continuity_certificate(model, guide, "Model", entry)
            verdicts[label] = report.certified
        return verdicts

    verdicts = benchmark(check_all)
    print("\nStatic absolute-continuity certificates:")
    for label, certified in verdicts.items():
        print(f"  {label:<24} -> {'certified' if certified else 'REJECTED'}")

    assert verdicts["Guide1 (sound, IS)"]
    assert verdicts["Guide2 (sound, VI)"]
    assert not verdicts["Guide1' (unsound, IS)"]
    assert not verdicts["Guide2' (unsound, VI)"]


def test_sound_guide_produces_healthy_importance_weights(benchmark):
    model = _model()
    guide, entry = _sound_is_guide()

    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: importance_sampling(
            model, guide, "Model", entry, obs_trace=OBS, num_samples=400,
            rng=np.random.default_rng(0),
        ),
        iterations=1,
        rounds=1,
    )
    _record.record(
        suite="soundness_ablation", model="ex-1", engine="is-sequential",
        particles=400, wall_time_s=time.perf_counter() - start,
        guide="Guide1 (sound)",
    )
    ess = result.effective_sample_size()
    print(f"\nsound IS guide: effective sample size {ess:.1f} / 400")
    assert ess > 10.0


def test_unsound_is_guide_misses_posterior_mass(benchmark):
    """Guide1' samples @x from a Poisson: the posterior (over all of ℝ+) is
    not absolutely continuous with respect to the proposal (supported on ℕ),
    so the guide can never propose the non-integer @x values that carry
    almost all of the posterior mass.  Empirically: latent traces drawn from
    the model's prior have zero density under the guide."""
    model = _model()
    guide, entry = _unsound_is_guide()

    result = benchmark.pedantic(
        lambda: empirical_support_check(
            model, guide, "Model", entry, obs_trace=OBS, num_draws=60,
            rng=np.random.default_rng(3),
        ),
        iterations=1,
        rounds=1,
    )
    print(
        f"\nunsound IS guide: {result.num_prior_draws_rejected_by_guide}"
        f"/{result.num_prior_draws} prior latent traces have zero proposal density"
    )
    assert not result.model_covered_by_guide
    assert result.num_prior_draws_rejected_by_guide == result.num_prior_draws


def test_unsound_vi_guide_proposes_outside_model_support(benchmark):
    """Guide2' samples @x from a Normal, so some proposals have zero model density."""
    model = _model()
    guide, entry = _unsound_vi_guide()

    result = benchmark.pedantic(
        lambda: empirical_support_check(
            model, guide, "Model", entry, obs_trace=OBS, num_draws=60,
            rng=np.random.default_rng(1), guide_args=(0.0, 0.5),
        ),
        iterations=1,
        rounds=1,
    )
    print(
        f"\nunsound VI guide: {result.num_guide_draws_rejected_by_model}"
        f"/{result.num_guide_draws} proposals fall outside the model's support"
    )
    assert not result.looks_absolutely_continuous


def test_sound_vi_guide_passes_empirical_check(benchmark):
    model = _model()
    guide, entry = _sound_vi_guide()
    result = benchmark.pedantic(
        lambda: empirical_support_check(
            model, guide, "Model", entry, obs_trace=OBS, num_draws=60,
            rng=np.random.default_rng(2), guide_args=(0.0, 0.0, 0.0, 0.0),
        ),
        iterations=1,
        rounds=1,
    )
    assert result.looks_absolutely_continuous
