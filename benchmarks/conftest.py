"""Benchmark-session fixtures: one fresh ``BENCH_results.json`` per run."""

import pytest

import _record


@pytest.fixture(scope="session", autouse=True)
def fresh_bench_results():
    """Reset the results artifact once at the start of a benchmark session."""
    _record.reset_results()
    yield
