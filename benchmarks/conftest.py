"""Benchmark-session fixtures: one fresh run record per benchmark session."""

import pytest

import _record


@pytest.fixture(scope="session", autouse=True)
def fresh_bench_results():
    """Open this session's run record in the results artifact.

    Other sessions' runs in the same artifact are preserved (schema 2 keeps
    per-run entry lists), so two harness invocations in one CI workflow no
    longer clobber each other's measurements.
    """
    _record.reset_results()
    yield
