"""Streaming session verbs over the real JSONL TCP front-end.

``session.open/push/query/close`` ride the same admission pipeline as
``infer`` — same tenant quotas, deadlines, and wave accounting — so these
tests pin the wire contract: ok bodies carry the session summary plus
server timing, failures carry the structured session codes, back-to-back
same-connection ops on one session execute in arrival order (what lets an
open-loop client choose its own session ids), ``op: stats`` exposes the
session table and shard-pool pids, and ``stop()`` resolves still-queued
session ops with ``shutting_down`` while checkpointing every live session
for the next process.
"""

import asyncio
import json

from repro.engine.server import (
    CODE_SHUTTING_DOWN,
    SESSION_OPS,
    InferenceService,
    serve_tcp,
)

OBS = [0.4, 1.1, 0.8, 1.6]


def _open_payload(request_id="open", session_id="s1", particles=200, **overrides):
    payload = {
        "id": request_id,
        "op": "session.open",
        "session_id": session_id,
        "benchmark": "stream_rw",
        "grow": True,
        "params": {"num_particles": particles, "seed": 5},
    }
    payload.update(overrides)
    return payload


async def _start_service(**kwargs):
    service = InferenceService(**kwargs)
    await service.start()
    return service


async def _connect(service):
    server = await serve_tcp(service, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    return server, reader, writer


async def _send(writer, payload):
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()


async def _recv(reader, timeout=60.0):
    line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


async def _close(server, writer):
    writer.close()
    server.close()
    await server.wait_closed()


class TestWireVerbs:
    def test_full_lifecycle_on_one_connection(self):
        async def go():
            service = await _start_service()
            server, reader, writer = await _connect(service)
            try:
                responses = []
                await _send(writer, _open_payload())
                responses.append(await _recv(reader))
                for i, value in enumerate(OBS):
                    await _send(
                        writer,
                        {
                            "id": f"push-{i}",
                            "op": "session.push",
                            "session_id": "s1",
                            "values": [value],
                        },
                    )
                    responses.append(await _recv(reader))
                await _send(
                    writer,
                    {
                        "id": "query",
                        "op": "session.query",
                        "session_id": "s1",
                        "sites": [0, 3],
                    },
                )
                responses.append(await _recv(reader))
                await _send(
                    writer,
                    {"id": "close", "op": "session.close", "session_id": "s1"},
                )
                responses.append(await _recv(reader))
                await _send(
                    writer,
                    {"id": "gone", "op": "session.query", "session_id": "s1"},
                )
                responses.append(await _recv(reader))
                return responses
            finally:
                await _close(server, writer)
                await service.stop()

        responses = asyncio.run(go())
        opened, pushes, queried, closed, gone = (
            responses[0],
            responses[1:5],
            responses[5],
            responses[6],
            responses[7],
        )
        assert opened["ok"] and opened["op"] == "session.open"
        assert opened["session_id"] == "s1" and opened["status"] == "buffering"
        for i, push in enumerate(pushes):
            assert push["ok"], push
            assert push["status"] == "active"
            assert push["steps"] == i + 1
            assert "log_evidence" in push and "resample_steps" in push
            assert push["server"]["latency_s"] >= push["server"]["run_s"]
        assert queried["ok"]
        assert set(queried["posterior_means"]) == {"0", "3"}
        assert queried["diagnostics"]["ess_history"]
        assert closed["ok"] and closed["closed"] is True
        assert gone["ok"] is False and gone["code"] == "session_not_found"

    def test_same_connection_ops_admit_in_arrival_order(self):
        """Open + pushes + query written back-to-back, no waiting between."""

        async def go():
            service = await _start_service()
            server, reader, writer = await _connect(service)
            try:
                await _send(writer, _open_payload(request_id="o"))
                for i, value in enumerate(OBS):
                    await _send(
                        writer,
                        {
                            "id": f"p{i}",
                            "op": "session.push",
                            "session_id": "s1",
                            "values": [value],
                        },
                    )
                await _send(
                    writer,
                    {"id": "q", "op": "session.query", "session_id": "s1", "sites": [0]},
                )
                return [await _recv(reader) for _ in range(6)]
            finally:
                await _close(server, writer)
                await service.stop()

        responses = asyncio.run(go())
        assert [r["id"] for r in responses] == ["o", "p0", "p1", "p2", "p3", "q"]
        assert all(r["ok"] for r in responses), responses
        assert responses[-1]["steps"] == len(OBS)

    def test_session_errors_are_structured(self):
        async def go():
            service = await _start_service(sessions_per_tenant=1)
            try:
                missing = await service.submit(
                    {"id": "m", "op": "session.push", "session_id": "nope", "values": [1]}
                )
                bad_keys = await service.submit(
                    {"id": "b", "op": "session.query", "session_id": "x", "values": [1]}
                )
                no_sid = await service.submit({"id": "n", "op": "session.query"})
                await service.submit(_open_payload(request_id="o1", session_id="a"))
                capped = await service.submit(
                    _open_payload(request_id="o2", session_id="b")
                )
                return missing, bad_keys, no_sid, capped
            finally:
                await service.stop()

        missing, bad_keys, no_sid, capped = asyncio.run(go())
        assert missing["code"] == "session_not_found"
        assert bad_keys["code"] == "invalid_request" and "values" in bad_keys["error"]
        assert no_sid["code"] == "invalid_request"
        assert capped["code"] == "session_limit"

    def test_stats_expose_sessions_and_pool(self):
        async def go():
            service = await _start_service()
            server, reader, writer = await _connect(service)
            try:
                await _send(writer, _open_payload())
                assert (await _recv(reader))["ok"]
                await _send(writer, {"id": "st", "op": "stats"})
                return await _recv(reader)
            finally:
                await _close(server, writer)
                await service.stop()

        stats = asyncio.run(go())
        assert stats["sessions"]["live"] == 1
        assert isinstance(stats["pool"]["worker_pids"], list)

    def test_unknown_op_lists_session_verbs(self):
        async def go():
            service = await _start_service()
            server, reader, writer = await _connect(service)
            try:
                await _send(writer, {"id": "x", "op": "session.nope"})
                return await _recv(reader)
            finally:
                await _close(server, writer)
                await service.stop()

        response = asyncio.run(go())
        assert response["ok"] is False
        for op in SESSION_OPS:
            assert op in response["error"]


class TestShutdown:
    def test_stop_resolves_queued_session_ops_with_shutting_down(self):
        async def go():
            service = await _start_service(batch_window_s=0.05)
            await service.submit(_open_payload(request_id="o"))
            submits = [
                asyncio.ensure_future(
                    service.submit(
                        {
                            "id": f"p{i}",
                            "op": "session.push",
                            "session_id": "s1",
                            "values": [0.1 * i],
                        }
                    )
                )
                for i in range(8)
            ]
            await asyncio.sleep(0.02)
            await service.stop()
            return await asyncio.gather(*submits)

        responses = asyncio.run(go())
        assert len(responses) == 8
        for response in responses:
            assert isinstance(response, dict)
            if not response["ok"]:
                assert response["code"] == CODE_SHUTTING_DOWN

    def test_stop_checkpoints_sessions_for_the_next_service(self, tmp_path):
        async def go():
            service = await _start_service(checkpoint_dir=str(tmp_path))
            opened = await service.submit(_open_payload())
            pushed = await service.submit(
                {"id": "p", "op": "session.push", "session_id": "s1", "values": OBS}
            )
            await service.stop()

            service2 = await _start_service(checkpoint_dir=str(tmp_path))
            try:
                queried = await service2.submit(
                    {"id": "q", "op": "session.query", "session_id": "s1", "sites": [0]}
                )
            finally:
                await service2.stop()
            return opened, pushed, queried

        opened, pushed, queried = asyncio.run(go())
        assert opened["ok"] and pushed["ok"]
        assert queried["ok"], queried
        assert queried["steps"] == len(OBS)
        assert queried["log_evidence"] == pushed["log_evidence"]
