"""Tests for the primitive-distribution substrate."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core import ast
from repro.core import types as ty
from repro.dists import (
    Bernoulli,
    Beta,
    Categorical,
    Gamma,
    Geometric,
    Normal,
    Poisson,
    Uniform01,
    make_distribution,
)
from repro.dists.continuous import TruncatedNormal
from repro.dists.discrete import Delta
from repro.errors import EvaluationError

RNG = np.random.default_rng(7)

ALL_DISTS = [
    Normal(0.3, 1.2),
    Gamma(2.0, 1.5),
    Beta(2.0, 3.0),
    Uniform01(),
    Bernoulli(0.3),
    Categorical([1.0, 2.0, 3.0]),
    Geometric(0.4),
    Poisson(2.5),
]


class TestLogProbAgainstScipy:
    def test_normal(self):
        d = Normal(1.0, 2.0)
        for x in [-3.0, 0.0, 1.0, 4.5]:
            assert d.log_prob(x) == pytest.approx(stats.norm.logpdf(x, 1.0, 2.0))

    def test_gamma(self):
        d = Gamma(2.5, 1.5)
        for x in [0.1, 1.0, 3.7]:
            assert d.log_prob(x) == pytest.approx(
                stats.gamma.logpdf(x, 2.5, scale=1.0 / 1.5)
            )

    def test_beta(self):
        d = Beta(2.0, 5.0)
        for x in [0.1, 0.5, 0.9]:
            assert d.log_prob(x) == pytest.approx(stats.beta.logpdf(x, 2.0, 5.0))

    def test_uniform(self):
        d = Uniform01()
        assert d.log_prob(0.3) == 0.0
        assert d.log_prob(1.3) == -math.inf

    def test_bernoulli(self):
        d = Bernoulli(0.3)
        assert d.log_prob(True) == pytest.approx(math.log(0.3))
        assert d.log_prob(False) == pytest.approx(math.log(0.7))

    def test_categorical(self):
        d = Categorical([1.0, 1.0, 2.0])
        assert d.log_prob(2) == pytest.approx(math.log(0.5))
        assert d.log_prob(0) == pytest.approx(math.log(0.25))

    def test_geometric(self):
        d = Geometric(0.4)
        for k in [0, 1, 5]:
            assert d.log_prob(k) == pytest.approx(stats.geom.logpmf(k + 1, 0.4))

    def test_poisson(self):
        d = Poisson(2.5)
        for k in [0, 2, 7]:
            assert d.log_prob(k) == pytest.approx(stats.poisson.logpmf(k, 2.5))

    def test_truncated_normal(self):
        d = TruncatedNormal(0.0, 1.0, 0.0, 2.0)
        assert d.log_prob(1.0) == pytest.approx(
            stats.truncnorm.logpdf(1.0, 0.0, 2.0, loc=0.0, scale=1.0)
        )
        assert d.log_prob(3.0) == -math.inf


class TestSupport:
    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: d.name)
    def test_samples_lie_in_support(self, dist):
        rng = np.random.default_rng(42)
        for _ in range(200):
            value = dist.sample(rng)
            assert dist.in_support(value)
            assert dist.log_prob(value) > -math.inf

    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: d.name)
    def test_support_matches_declared_support_type(self, dist):
        rng = np.random.default_rng(43)
        for _ in range(100):
            value = dist.sample(rng)
            assert ty.value_has_type(value, dist.support_type)

    @pytest.mark.parametrize(
        "dist,bad_value",
        [
            (Gamma(2.0, 1.0), -0.5),
            (Gamma(2.0, 1.0), 0.0),
            (Beta(2.0, 2.0), 1.0),
            (Uniform01(), 0.0),
            (Bernoulli(0.5), 1),
            (Categorical([1.0, 1.0]), 2),
            (Geometric(0.5), -1),
            (Poisson(1.0), 2.5),
            (Normal(0.0, 1.0), float("nan")),
        ],
    )
    def test_out_of_support_values(self, dist, bad_value):
        assert not dist.in_support(bad_value)
        assert dist.log_prob(bad_value) == -math.inf
        assert dist.prob(bad_value) == 0.0

    def test_booleans_are_not_numbers(self):
        assert not Normal(0.0, 1.0).in_support(True)
        assert not Poisson(1.0).in_support(False)

    def test_integral_floats_accepted_by_discrete_dists(self):
        assert Poisson(1.0).in_support(3.0)
        assert Geometric(0.5).in_support(2.0)


class TestMoments:
    def test_sample_means(self):
        rng = np.random.default_rng(3)
        for dist in [Normal(2.0, 1.0), Gamma(3.0, 2.0), Beta(2.0, 2.0), Poisson(4.0)]:
            samples = [dist.sample(rng) for _ in range(4000)]
            assert float(np.mean(samples)) == pytest.approx(dist.expected_value(), abs=0.15)

    def test_bernoulli_mean(self):
        rng = np.random.default_rng(4)
        samples = [Bernoulli(0.3).sample(rng) for _ in range(4000)]
        assert float(np.mean(samples)) == pytest.approx(0.3, abs=0.03)


class TestParameterValidation:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: Normal(0.0, 0.0),
            lambda: Normal(float("nan"), 1.0),
            lambda: Gamma(-1.0, 1.0),
            lambda: Beta(0.0, 1.0),
            lambda: Bernoulli(1.5),
            lambda: Geometric(0.0),
            lambda: Poisson(-2.0),
            lambda: Categorical([]),
            lambda: Categorical([1.0, -1.0]),
            lambda: TruncatedNormal(0.0, 1.0, 2.0, 1.0),
        ],
    )
    def test_invalid_parameters_rejected(self, builder):
        with pytest.raises(ValueError):
            builder()

    def test_equality_and_hash(self):
        assert Normal(0.0, 1.0) == Normal(0.0, 1.0)
        assert Normal(0.0, 1.0) != Normal(0.0, 2.0)
        assert hash(Beta(1.0, 2.0)) == hash(Beta(1.0, 2.0))
        assert Normal(0.0, 1.0) != Gamma(1.0, 1.0)

    def test_repr_contains_parameters(self):
        assert "2.0" in repr(Gamma(2.0, 1.0))


class TestDelta:
    def test_point_mass(self):
        d = Delta(3.0)
        assert d.log_prob(3.0) == 0.0
        assert d.log_prob(2.0) == -math.inf
        assert d.sample(RNG) == 3.0


class TestFactory:
    @pytest.mark.parametrize(
        "kind,args,expected",
        [
            (ast.DistKind.NORMAL, (0.0, 1.0), Normal(0.0, 1.0)),
            (ast.DistKind.GAMMA, (2.0, 1.0), Gamma(2.0, 1.0)),
            (ast.DistKind.BETA, (1.0, 1.0), Beta(1.0, 1.0)),
            (ast.DistKind.UNIF, (), Uniform01()),
            (ast.DistKind.BER, (0.5,), Bernoulli(0.5)),
            (ast.DistKind.CAT, (1.0, 2.0), Categorical([1.0, 2.0])),
            (ast.DistKind.GEO, (0.5,), Geometric(0.5)),
            (ast.DistKind.POIS, (3.0,), Poisson(3.0)),
        ],
    )
    def test_make_distribution(self, kind, args, expected):
        assert make_distribution(kind, args) == expected

    def test_factory_rejects_bad_arity(self):
        with pytest.raises(EvaluationError):
            make_distribution(ast.DistKind.NORMAL, (1.0,))

    def test_factory_rejects_bad_values(self):
        with pytest.raises(EvaluationError):
            make_distribution(ast.DistKind.GAMMA, (-1.0, 1.0))
