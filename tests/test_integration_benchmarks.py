"""Integration tests across the whole benchmark suite.

For every benchmark with an inference configuration these tests run the full
pipeline — parse, infer guide types, certify the pair, jointly execute the
coroutines, validate the recorded trace against the inferred protocol, and
run a short burst of inference — and check the invariants that tie the
pieces together.
"""

import math

import numpy as np
import pytest

from repro.core.coroutines import run_model_guide
from repro.core.semantics import traces as tr
from repro.core.semantics.evaluate import log_density
from repro.core.semantics.traces import trace_conforms
from repro.core.typecheck import check_model_guide_pair, infer_guide_types
from repro.core.typecheck.equality import types_equal_up_to_unfolding
from repro.errors import ChannelProtocolError
from repro.inference import importance_sampling
from repro.models import all_benchmarks

RUNNABLE = [
    b for b in all_benchmarks()
    if b.expressible and b.guide_source is not None and b.inference in ("IS", "VI")
]


def _guide_args(bench):
    if bench.guide_param_inits:
        return tuple(bench.guide_param_inits.values())
    return ()


def _obs_trace(bench):
    return tuple(tr.ValP(v) for v in bench.obs_values)


@pytest.mark.parametrize("bench", RUNNABLE, ids=lambda b: b.name)
def test_joint_execution_traces_conform_to_inferred_protocol(bench):
    model = bench.model_program()
    guide = bench.guide_program()
    inferred = infer_guide_types(model)
    latent_type = inferred.entry_channel_type(bench.model_entry, "latent")

    completed = 0
    for seed in range(8):
        try:
            joint = run_model_guide(
                model, guide, bench.model_entry, bench.guide_entry,
                obs_trace=_obs_trace(bench), rng=np.random.default_rng(seed),
                guide_args=_guide_args(bench),
            )
        except ChannelProtocolError:
            continue  # runaway recursion budget; not a protocol violation here
        assert trace_conforms(joint.traces["latent"], latent_type, inferred.table), bench.name
        completed += 1
    assert completed >= 4, f"{bench.name}: too few joint executions completed"


@pytest.mark.parametrize("bench", RUNNABLE, ids=lambda b: b.name)
def test_scheduler_weights_agree_with_evaluator(bench):
    model = bench.model_program()
    guide = bench.guide_program()
    obs = _obs_trace(bench)

    completed = 0
    for seed in range(6):
        try:
            joint = run_model_guide(
                model, guide, bench.model_entry, bench.guide_entry,
                obs_trace=obs, rng=np.random.default_rng(seed),
                guide_args=_guide_args(bench),
            )
        except ChannelProtocolError:
            continue
        model_traces = {"latent": joint.traces["latent"]}
        if "obs" in joint.traces:
            model_traces["obs"] = obs
        model_eval = log_density(model, bench.model_entry, model_traces)
        guide_eval = log_density(
            guide, bench.guide_entry, {"latent": joint.traces["latent"]},
            args=_guide_args(bench),
        )
        assert joint.log_weights["model"] == pytest.approx(model_eval), bench.name
        assert joint.log_weights["guide"] == pytest.approx(guide_eval), bench.name
        completed += 1
    assert completed >= 3


@pytest.mark.parametrize("bench", RUNNABLE, ids=lambda b: b.name)
def test_short_importance_sampling_run_is_healthy(bench):
    result = importance_sampling(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
        obs_trace=_obs_trace(bench), num_samples=60,
        rng=np.random.default_rng(0), guide_args=_guide_args(bench),
    )
    assert result.num_samples == 60
    assert math.isfinite(result.log_evidence())
    assert result.effective_sample_size() >= 1.0


@pytest.mark.parametrize("bench", RUNNABLE, ids=lambda b: b.name)
def test_model_and_guide_latent_protocols_are_equal(bench):
    model_result = infer_guide_types(bench.model_program())
    guide_result = infer_guide_types(bench.guide_program())
    assert types_equal_up_to_unfolding(
        model_result.entry_channel_type(bench.model_entry, "latent"),
        guide_result.entry_channel_type(bench.guide_entry, "latent"),
        model_result.table,
        guide_result.table,
    ), bench.name


@pytest.mark.parametrize("bench", RUNNABLE, ids=lambda b: b.name)
def test_certificate_agrees_with_protocol_equality(bench):
    pair = check_model_guide_pair(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    assert pair.compatible, f"{bench.name}: {pair.reason}"
