"""Correctness of the lockstep vectorized particle runtime.

The strongest check available: for any particle, the per-particle log
weights accumulated by the vectorized scheduler must *exactly* match the
big-step evaluator's ``log_density`` of that particle's materialised trace —
the same cross-validation the sequential coroutine scheduler is tested
against.  On top of that, estimator-level agreement with the sequential
importance sampler, group-splitting behaviour at divergent branches, and
the unbiased whole-batch sequential fallback.
"""

import math

import numpy as np
import pytest

from repro.core import ast
from repro.core.parser import parse_program
from repro.core.semantics import traces as tr
from repro.core.semantics.evaluate import log_density
from repro.engine import BatchedDist, vectorized_importance
from repro.engine.vectorize import (
    ParticleVectorizer,
    VectorizationUnsupported,
    eval_expr_vec,
)
from repro.errors import InferenceError
from repro.inference import importance_sampling
from repro.models import get_benchmark

#: A recursive pair whose recursion terminates with probability one (the
#: Fig. 6 PCFG is supercritical for half its ``k`` draws, so it is not
#: usable for deterministic tests — both the sequential and the vectorized
#: engines hit the operation budget on any sizeable batch).
SUBCRITICAL_CHAIN_MODEL = """
proc Chain() consume latent provide obs {
  total <- call Step(0.0);
  _ <- sample.send{obs}(Normal(total, 1.0));
  return(total)
}
proc Step(acc: real) consume latent {
  u <- sample.recv{latent}(Unif);
  if.send{latent} u < 0.75 {
    x <- sample.recv{latent}(Normal(0.0, 1.0));
    return(acc + x)
  } else {
    rest <- call Step(acc);
    return(rest)
  }
}
"""

SUBCRITICAL_CHAIN_GUIDE = """
proc ChainGuide() provide latent {
  total <- call StepGuide(0.0);
  return(total)
}
proc StepGuide(acc: real) provide latent {
  u <- sample.send{latent}(Unif);
  if.recv{latent} {
    x <- sample.send{latent}(Normal(0.5, 1.5));
    return(acc + x)
  } else {
    rest <- call StepGuide(acc);
    return(rest)
  }
}
"""


def _cross_check_densities(run, bench, obs_trace, guide_args=(), stride=37):
    """Every materialised trace scores identically under the evaluator."""
    model = bench.model_program()
    guide = bench.guide_program()
    for i in range(0, run.num_particles, stride):
        trace = run.trace_for(i)
        traces = {"latent": trace}
        if obs_trace and model.procedure(bench.model_entry).provides == "obs":
            traces["obs"] = obs_trace
        model_lw = log_density(model, bench.model_entry, traces)
        guide_lw = log_density(guide, bench.guide_entry, {"latent": trace}, args=guide_args)
        assert run.model_log_weights[i] == pytest.approx(model_lw, abs=1e-8)
        assert run.guide_log_weights[i] == pytest.approx(guide_lw, abs=1e-8)


class TestExactness:
    @pytest.mark.parametrize(
        "name,site",
        [("ex-1", 0), ("lr", 0), ("gmm", 0), ("kalman", 3), ("sprinkler", 0),
         ("hmm", 0), ("branching", 0), ("coin", 0)],
    )
    def test_per_particle_weights_match_the_evaluator(self, name, site):
        bench = get_benchmark(name)
        obs_trace = tuple(tr.ValP(v) for v in bench.obs_values) or None
        result = vectorized_importance(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_particles=400,
            rng=np.random.default_rng(5),
        )
        _cross_check_densities(result.run, bench, obs_trace)
        # Sanity: the estimator is usable.
        assert math.isfinite(result.log_evidence())
        assert math.isfinite(result.posterior_expectation_of_site(site))

    def test_guide_arguments_thread_through(self):
        bench = get_benchmark("weight")
        obs_trace = (tr.ValP(9.5),)
        result = vectorized_importance(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_particles=3000,
            rng=np.random.default_rng(0), guide_args=(8.5, 0.0),
        )
        _cross_check_densities(result.run, bench, obs_trace, guide_args=(8.5, 0.0))
        # Conjugate normal-normal posterior mean: 9.1379...
        assert result.posterior_expectation_of_site(0) == pytest.approx(9.138, abs=0.15)

    def test_recursive_model_splits_and_stays_exact(self):
        model = parse_program(SUBCRITICAL_CHAIN_MODEL)
        guide = parse_program(SUBCRITICAL_CHAIN_GUIDE)
        obs_trace = (tr.ValP(1.2),)
        result = vectorized_importance(
            model, guide, "Chain", "ChainGuide",
            obs_trace=obs_trace, num_particles=600, rng=np.random.default_rng(3),
        )
        run = result.run
        # Recursion depth differs across particles: there must be one group
        # per realised unfolding depth, all exact.
        assert run.num_groups > 1
        for i in range(0, 600, 29):
            trace = run.trace_for(i)
            model_lw = log_density(model, "Chain", {"latent": trace, "obs": obs_trace})
            guide_lw = log_density(guide, "ChainGuide", {"latent": trace})
            assert run.model_log_weights[i] == pytest.approx(model_lw, abs=1e-8)
            assert run.guide_log_weights[i] == pytest.approx(guide_lw, abs=1e-8)


class TestEstimatorAgreement:
    def test_posterior_mean_matches_sequential_path(self):
        bench = get_benchmark("ex-1")
        obs_trace = (tr.ValP(0.8),)
        vec = vectorized_importance(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_particles=4000, rng=np.random.default_rng(1),
        )
        seq = importance_sampling(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_samples=4000, rng=np.random.default_rng(2),
        )
        assert vec.posterior_expectation_of_site(0) == pytest.approx(
            seq.posterior_expectation_of_site(0), abs=0.3
        )
        assert vec.log_evidence() == pytest.approx(seq.log_evidence(), abs=0.2)

    def test_to_importance_result_materialises_equivalent_samples(self):
        bench = get_benchmark("ex-1")
        obs_trace = (tr.ValP(0.8),)
        vec = vectorized_importance(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_particles=300, rng=np.random.default_rng(1),
        )
        materialised = vec.to_importance_result()
        assert materialised.num_samples == 300
        assert materialised.posterior_expectation_of_site(0) == pytest.approx(
            vec.posterior_expectation_of_site(0), abs=1e-9
        )
        # Materialised traces carry plain Python payloads, like the scalar path.
        for sample in materialised.samples[:20]:
            for value in sample.latent_values:
                assert isinstance(value, (bool, int, float))


class TestRunStructure:
    def test_branch_split_produces_two_groups(self):
        bench = get_benchmark("ex-1")
        result = vectorized_importance(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=(tr.ValP(0.8),), num_particles=500, rng=np.random.default_rng(0),
        )
        run = result.run
        assert run.num_groups == 2
        # Group membership agrees with the branch predicate v < 2.0.
        first_site = run.site_values(0)
        second_site = run.site_values(1)  # @m exists only on the else branch
        assert np.all(np.isnan(second_site[first_site < 2.0]))
        assert np.all(~np.isnan(second_site[first_site >= 2.0]))

    def test_obs_score_matrix_decomposes_model_weight(self):
        bench = get_benchmark("kalman")
        obs_trace = tuple(tr.ValP(v) for v in bench.obs_values)
        result = vectorized_importance(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_particles=200, rng=np.random.default_rng(0),
        )
        run = result.run
        scores = run.obs_score_matrix()
        assert scores.shape == (200, len(bench.obs_values))
        # Each column is exactly the kalman likelihood term Normal(x_t, 0.5)
        # of that observation given the particle's latent state.
        from repro.dists.continuous import Normal

        for i in range(0, 200, 17):
            states = [float(v) for v in tr.sample_values(run.trace_for(i))]
            for t, observed in enumerate(bench.obs_values):
                expected = Normal(states[t], 0.5).log_prob(observed)
                assert scores[i, t] == pytest.approx(expected, abs=1e-8)
        assert np.all(np.isfinite(run.guide_log_weights))

    def test_all_zero_weights_raise(self):
        model = parse_program(
            """
            proc M() consume latent provide obs {
              b <- sample.recv{latent}(Ber(0.5));
              _ <- sample.send{obs}(Normal(0.0, 1.0));
              return(b)
            }
            """
        )
        guide = parse_program(
            """
            proc G() provide latent {
              p <- sample.send{latent}(Unif);
              return(p)
            }
            """
        )
        with pytest.raises(InferenceError):
            vectorized_importance(
                model, guide, "M", "G",
                obs_trace=(tr.ValP(0.3),), num_particles=50,
                rng=np.random.default_rng(6),
            )


class TestSequentialFallback:
    def test_unsupported_feature_falls_back_to_sequential_batch(self, monkeypatch):
        bench = get_benchmark("ex-1")
        vectorizer = ParticleVectorizer(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=(tr.ValP(0.8),),
        )

        def refuse(*_args, **_kwargs):
            raise VectorizationUnsupported("forced by test")

        monkeypatch.setattr(vectorizer, "_run_vectorized", refuse)
        run = vectorizer.run(80, rng=np.random.default_rng(4))
        assert not run.vectorized
        assert run.num_particles == 80
        assert run.obs_score_matrix() is None  # sequential path does not decompose
        # Still exact: the fallback reuses the reference scheduler.
        model = bench.model_program()
        for i in range(0, 80, 13):
            trace = run.trace_for(i)
            model_lw = log_density(
                model, bench.model_entry, {"latent": trace, "obs": (tr.ValP(0.8),)}
            )
            assert run.model_log_weights[i] == pytest.approx(model_lw, abs=1e-9)


class TestVectorizedExpressions:
    def test_if_expression_merges_lanes(self):
        expr = parse_program(
            """
            proc P(x: real) consume latent {
              v <- sample.recv{latent}(Normal(if x < 0.0 then 0.0 - x else x, 1.0));
              return(v)
            }
            """
        ).procedure("P").body
        dist_expr = expr.first.dist
        values = eval_expr_vec({"x": np.asarray([-2.0, 3.0])}, dist_expr, 2)
        assert isinstance(values, BatchedDist)

    def test_array_condition_with_nonscalar_arm_is_unsupported(self):
        cond = ast.PrimOp(ast.BinOp.LT, ast.Var("x"), ast.RealLit(0.0))
        bad = ast.IfExpr(cond, ast.Lam("y", ast.Var("y")), ast.RealLit(1.0))
        with pytest.raises(VectorizationUnsupported):
            eval_expr_vec({"x": np.asarray([-1.0, 1.0])}, bad, 2)

    def test_batched_dist_array_params_match_scalar_loop(self):
        rng = np.random.default_rng(0)
        means = np.asarray([-1.0, 0.0, 2.0])
        dist = BatchedDist(ast.DistKind.NORMAL, [means, 0.5], 3)
        values = dist.sample(rng)
        scores = dist.log_prob(values)
        from repro.dists.continuous import Normal

        for i in range(3):
            expected = Normal(float(means[i]), 0.5).log_prob(float(values[i]))
            assert scores[i] == pytest.approx(expected, abs=1e-10)

    def test_batched_dist_invalid_array_params_raise(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            BatchedDist(ast.DistKind.NORMAL, [np.asarray([0.0, 0.0]), np.asarray([1.0, -1.0])], 2)
