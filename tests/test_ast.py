"""Unit tests for AST helpers (traversal, free variables, channel usage)."""

import pytest

from repro.core import ast
from repro.core.parser import parse_command, parse_expression


class TestExprHelpers:
    def test_free_vars_of_variable(self):
        assert ast.free_vars(parse_expression("x")) == {"x"}

    def test_free_vars_of_arithmetic(self):
        assert ast.free_vars(parse_expression("x + y * z")) == {"x", "y", "z"}

    def test_lambda_binds_its_parameter(self):
        assert ast.free_vars(parse_expression("fun(x) x + y")) == {"y"}

    def test_let_binds_its_variable(self):
        assert ast.free_vars(parse_expression("let x = y in x + x")) == {"y"}

    def test_literals_have_no_free_vars(self):
        assert ast.free_vars(parse_expression("1.0 + 2.0")) == frozenset()

    def test_expr_children_of_dist(self):
        expr = parse_expression("Normal(mu, sigma)")
        assert len(ast.expr_children(expr)) == 2


class TestCommandHelpers:
    def test_command_free_vars(self):
        cmd = parse_command("{ x <- sample.recv{latent}(Normal(mu, 1.0)); return(x + y) }")
        assert ast.command_free_vars(cmd) == {"mu", "y"}

    def test_bound_variable_not_free(self):
        cmd = parse_command("{ x <- sample.recv{latent}(Unif); return(x) }")
        assert ast.command_free_vars(cmd) == frozenset()

    def test_channels_used(self, fig5_model):
        body = fig5_model.procedure("Model").body
        assert ast.channels_used(body) == {"latent", "obs"}

    def test_channels_used_guide(self, fig5_guide):
        body = fig5_guide.procedure("Guide1").body
        assert ast.channels_used(body) == {"latent"}

    def test_command_size_counts_nodes(self):
        cmd = parse_command("{ x <- sample.recv{latent}(Unif); return(x) }")
        assert ast.command_size(cmd) == 3  # bnd, sample, ret

    def test_count_sample_sites(self, fig5_model):
        body = fig5_model.procedure("Model").body
        assert ast.count_sample_sites(body) == 4

    def test_calls_in(self, fig6_pcfg):
        body = fig6_pcfg.procedure("PcfgGen").body
        assert ast.calls_in(body) == {"PcfgGen"}

    def test_calls_in_nonrecursive(self, fig5_model):
        assert ast.calls_in(fig5_model.procedure("Model").body) == frozenset()


class TestProgram:
    def test_procedure_lookup(self, fig6_pcfg):
        assert fig6_pcfg.procedure("Pcfg").name == "Pcfg"

    def test_unknown_procedure_raises(self, fig6_pcfg):
        with pytest.raises(KeyError):
            fig6_pcfg.procedure("Nope")

    def test_merged_with(self, fig5_model, fig5_guide):
        merged = fig5_model.merged_with(fig5_guide)
        assert set(merged.names()) == {"Model", "Guide1"}

    def test_merged_duplicate_names_rejected(self, fig5_model):
        with pytest.raises(ValueError):
            fig5_model.merged_with(fig5_model)

    def test_loc_is_excluded_from_equality(self):
        a = ast.Var("x", loc=(1, 1))
        b = ast.Var("x", loc=(9, 9))
        assert a == b
