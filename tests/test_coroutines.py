"""Tests for the coroutine scheduler: joint model/guide execution."""

import math

import numpy as np
import pytest

from repro.core.coroutines import (
    ChannelSpec,
    CoroutineSpec,
    run_joint,
    run_model_guide,
    run_prior,
)
from repro.core.parser import parse_program
from repro.core.semantics import traces as tr
from repro.core.semantics.evaluate import log_density
from repro.core.semantics.traces import check_trace
from repro.core.typecheck import infer_guide_types
from repro.errors import ChannelProtocolError


class TestJointExecution:
    def test_fig5_joint_run_produces_conforming_trace(self, fig5_model, fig5_guide, rng):
        joint = run_model_guide(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), rng=rng,
        )
        latent_type = infer_guide_types(fig5_model).entry_channel_type("Model", "latent")
        check_trace(joint.traces["latent"], latent_type)

    def test_fig5_weights_match_the_evaluator(self, fig5_model, fig5_guide):
        for seed in range(5):
            joint = run_model_guide(
                fig5_model, fig5_guide, "Model", "Guide1",
                obs_trace=(tr.ValP(0.8),), rng=np.random.default_rng(seed),
            )
            model_eval = log_density(
                fig5_model, "Model",
                {"latent": joint.traces["latent"], "obs": (tr.ValP(0.8),)},
            )
            guide_eval = log_density(
                fig5_guide, "Guide1", {"latent": joint.traces["latent"]}
            )
            assert joint.log_weights["model"] == pytest.approx(model_eval)
            assert joint.log_weights["guide"] == pytest.approx(guide_eval)

    def test_recursive_pair_weights_match_the_evaluator(self, fig6_pcfg, fig6_pcfg_guide):
        # Near-critical PCFG recursions occasionally exceed the op budget;
        # skip those seeds and require several successful runs.
        successes = 0
        for seed in range(20):
            try:
                joint = run_model_guide(
                    fig6_pcfg, fig6_pcfg_guide, "Pcfg", "PcfgGuide",
                    rng=np.random.default_rng(seed),
                )
            except ChannelProtocolError:
                continue
            model_eval = log_density(fig6_pcfg, "Pcfg", {"latent": joint.traces["latent"]})
            assert joint.log_weights["model"] == pytest.approx(model_eval)
            successes += 1
            if successes >= 5:
                break
        assert successes >= 5

    def test_recursive_trace_conforms_to_inferred_type(self, fig6_pcfg, fig6_pcfg_guide, rng):
        result = infer_guide_types(fig6_pcfg)
        latent_type = result.entry_channel_type("Pcfg", "latent")
        joint = run_model_guide(
            fig6_pcfg, fig6_pcfg_guide, "Pcfg", "PcfgGuide", rng=rng
        )
        check_trace(joint.traces["latent"], latent_type, result.table)

    def test_observation_is_conditioned_not_sampled(self, fig5_model, fig5_guide, rng):
        joint = run_model_guide(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), rng=rng,
        )
        assert joint.traces["obs"] == (tr.ValP(0.8),)

    def test_prior_predictive_when_no_observation_given(self, fig5_model, fig5_guide, rng):
        joint = run_model_guide(
            fig5_model, fig5_guide, "Model", "Guide1", obs_trace=None, rng=rng
        )
        assert len(joint.traces["obs"]) == 1
        assert isinstance(joint.traces["obs"][0], tr.ValP)

    def test_total_log_weight(self, fig5_model, fig5_guide, rng):
        joint = run_model_guide(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), rng=rng,
        )
        assert joint.total_log_weight() == pytest.approx(
            joint.log_weights["model"] + joint.log_weights["guide"]
        )

    def test_guide_arguments_are_passed(self, fig5_model):
        guide = parse_program(
            """
            proc G(shape: preal) provide latent {
              v <- sample.send{latent}(Gamma(shape, 1.0));
              if.recv{latent} {
                return(v)
              } else {
                m <- sample.send{latent}(Unif);
                return(v)
              }
            }
            """
        )
        joint = run_model_guide(
            fig5_model, guide, "Model", "G",
            obs_trace=(tr.ValP(0.8),), guide_args=(3.0,),
            rng=np.random.default_rng(1),
        )
        assert joint.log_weights["guide"] > -math.inf


class TestPriorSimulation:
    def test_prior_run_samples_latents_from_the_model(self, fig5_model, rng):
        joint = run_prior(fig5_model, "Model", rng=rng)
        latent_type = infer_guide_types(fig5_model).entry_channel_type("Model", "latent")
        check_trace(joint.traces["latent"], latent_type)
        assert joint.log_weights["model"] > -math.inf

    def test_prior_run_respects_branching(self, fig5_model):
        # Over many seeds we should see both branches of the model.
        lengths = set()
        for seed in range(30):
            joint = run_prior(fig5_model, "Model", rng=np.random.default_rng(seed))
            lengths.add(len(joint.traces["latent"]))
        assert lengths == {2, 3}

    def test_prior_run_of_recursive_model(self, fig6_pcfg):
        joint = None
        for seed in range(20):
            try:
                joint = run_prior(fig6_pcfg, "Pcfg", rng=np.random.default_rng(seed))
                break
            except ChannelProtocolError:
                continue
        assert joint is not None
        assert len(joint.traces["latent"]) >= 4  # k, fold, u, selection, ...


class TestProtocolErrors:
    def test_incompatible_pair_deadlocks_or_misroutes(self, fig5_model):
        # A guide that never offers the second sample: the model will wait for
        # the Beta sample that never arrives whenever it takes the else branch.
        bad_guide = parse_program(
            """
            proc Bad() provide latent {
              v <- sample.send{latent}(Gamma(1.0, 1.0));
              if.recv{latent} {
                return(v)
              } else {
                return(v)
              }
            }
            """
        )
        saw_error = False
        for seed in range(40):
            try:
                run_model_guide(
                    fig5_model, bad_guide, "Model", "Bad",
                    obs_trace=(tr.ValP(0.8),), rng=np.random.default_rng(seed),
                )
            except ChannelProtocolError:
                saw_error = True
                break
        assert saw_error

    def test_undeclared_channel_raises(self, fig5_model, fig5_guide, rng):
        coroutines = [
            CoroutineSpec("model", fig5_model, "Model", ()),
            CoroutineSpec("guide", fig5_guide, "Guide1", ()),
        ]
        channels = [ChannelSpec("latent", provider="guide", consumer="model")]
        with pytest.raises(ChannelProtocolError):
            run_joint(coroutines, channels, rng)

    def test_branch_receive_without_partner_raises(self, fig5_guide, rng):
        coroutines = [CoroutineSpec("guide", fig5_guide, "Guide1", ())]
        channels = [ChannelSpec("latent", provider="guide", consumer=None)]
        with pytest.raises(ChannelProtocolError):
            run_joint(coroutines, channels, rng)


class TestReplayMode:
    def test_replaying_a_latent_trace_into_the_model(self, fig5_model, rng):
        latent = (tr.ValP(1.0), tr.DirC(True))
        coroutines = [CoroutineSpec("model", fig5_model, "Model", ())]
        channels = [
            ChannelSpec("latent", provider=None, consumer="model", replay=latent),
            ChannelSpec("obs", provider="model", consumer=None, replay=(tr.ValP(0.8),)),
        ]
        joint = run_joint(coroutines, channels, rng)
        expected = log_density(
            fig5_model, "Model", {"latent": latent, "obs": (tr.ValP(0.8),)}
        )
        assert joint.log_weights["model"] == pytest.approx(expected)

    def test_contradictory_replayed_selection_zeroes_the_weight(self, fig5_model, rng):
        latent = (tr.ValP(1.0), tr.DirC(False), tr.ValP(0.5))
        coroutines = [CoroutineSpec("model", fig5_model, "Model", ())]
        channels = [
            ChannelSpec("latent", provider=None, consumer="model", replay=latent),
            ChannelSpec("obs", provider="model", consumer=None, replay=(tr.ValP(0.8),)),
        ]
        joint = run_joint(coroutines, channels, rng)
        assert joint.log_weights["model"] == -math.inf
