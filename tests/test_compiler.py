"""Tests for the compiler: expression translation, codegen, and compiled inference."""

import math

import numpy as np
import pytest

from repro.compiler import compile_pair, compile_program, load_compiled
from repro.compiler.codegen import compile_expr
from repro.compiler.runtime import run_compiled_pair
from repro.core.parser import parse_expression
from repro.core.semantics import traces as tr
from repro.errors import CompilationError
from repro.inference import importance_sampling
from repro.models import get_benchmark


class TestExpressionCompilation:
    @pytest.mark.parametrize(
        "source,env,expected",
        [
            ("1.0 + 2.0 * 3.0", {}, 7.0),
            ("if true then 1.0 else 2.0", {}, 1.0),
            ("let x = 2.0 in x * x", {}, 4.0),
            ("(1.0, 2.0).1", {}, 2.0),
            ("exp(0.0)", {}, 1.0),
            ("sqrt(9.0)", {}, 3.0),
            ("-x", {"x": 4.0}, -4.0),
            ("!true", {}, False),
            ("x < 2.0 && x > 0.0", {"x": 1.0}, True),
            ("(fun(y) y + 1.0)(2.0)", {}, 3.0),
        ],
    )
    def test_compiled_expression_evaluates_like_source(self, source, env, expected):
        import math as math_module

        code = compile_expr(parse_expression(source))
        assert eval(code, {"math": math_module}, dict(env)) == expected

    def test_distribution_expression_compilation(self):
        code = compile_expr(parse_expression("Normal(0.0, 1.0)"))
        assert code == "Normal(0.0, 1.0)"
        cat = compile_expr(parse_expression("Cat(1.0, 2.0)"))
        assert cat == "Categorical([1.0, 2.0])"


class TestProgramCompilation:
    def test_generated_code_is_valid_python(self, fig5_model):
        source = compile_program(fig5_model)
        compile(source, "<generated>", "exec")

    def test_generated_generator_structure(self, fig5_model):
        source = compile_program(fig5_model)
        assert "def Model():" in source
        assert 'yield ("recv_sample", "latent"' in source
        assert 'yield ("send_branch", "latent"' in source

    def test_recursive_program_compiles_with_folds(self, fig6_pcfg):
        source = compile_program(fig6_pcfg)
        assert 'yield ("fold", "latent")' in source
        assert "yield from PcfgGen(" in source

    def test_unknown_callee_rejected(self):
        from repro.core.parser import parse_program

        program = parse_program("proc F() consume latent { call Ghost(1.0) }")
        with pytest.raises(CompilationError):
            compile_program(program)

    def test_compile_pair_produces_entry_points(self, fig5_model, fig5_guide):
        source = compile_pair(fig5_model, fig5_guide, "Model", "Guide1")
        module = load_compiled(source)
        assert hasattr(module.module, "MODEL_ENTRY")
        assert hasattr(module.module, "GUIDE_ENTRY")
        assert hasattr(module.module, "importance_sampling")
        assert module.lines_of_code > 20

    def test_compile_pair_param_mismatch_rejected(self, fig5_model, fig5_guide):
        with pytest.raises(CompilationError):
            compile_pair(
                fig5_model, fig5_guide, "Model", "Guide1",
                guide_param_inits={"nonexistent": 1.0},
            )


class TestCompiledExecution:
    def test_compiled_pair_run_weights_match_interpreter(self, fig5_model, fig5_guide):
        source = compile_pair(fig5_model, fig5_guide, "Model", "Guide1")
        module = load_compiled(source).module

        run = run_compiled_pair(
            module.MODEL_ENTRY, module.GUIDE_ENTRY,
            obs_values=[0.8], rng=np.random.default_rng(0),
        )
        # Check the guide weight by re-evaluating the latent values with the
        # AST interpreter: build the equivalent guidance trace.
        from repro.core.semantics.evaluate import log_density

        values = run.latent_values
        if len(values) == 1:
            latent = (tr.ValP(values[0]), tr.DirC(True))
        else:
            latent = (tr.ValP(values[0]), tr.DirC(False), tr.ValP(values[1]))
        assert log_density(fig5_guide, "Guide1", {"latent": latent}) == pytest.approx(
            run.guide_log_weight
        )
        assert log_density(
            fig5_model, "Model", {"latent": latent, "obs": (tr.ValP(0.8),)}
        ) == pytest.approx(run.model_log_weight)

    def test_compiled_is_estimates_agree_with_interpreted_is(self, fig5_model, fig5_guide):
        source = compile_pair(fig5_model, fig5_guide, "Model", "Guide1")
        module = load_compiled(source).module
        compiled = module.importance_sampling(obs_values=[0.8], num_samples=3000, seed=0)

        interpreted = importance_sampling(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), num_samples=3000,
            rng=np.random.default_rng(1),
        )
        assert compiled.log_evidence() == pytest.approx(
            interpreted.log_evidence(), abs=0.15
        )
        assert compiled.posterior_mean_of_latent(0) == pytest.approx(
            interpreted.posterior_expectation_of_site(0), abs=0.15
        )

    def test_compiled_recursive_pair_runs(self, fig6_pcfg, fig6_pcfg_guide):
        source = compile_pair(fig6_pcfg, fig6_pcfg_guide, "Pcfg", "PcfgGuide")
        module = load_compiled(source).module
        completed = 0
        for seed in range(10):
            try:
                run = run_compiled_pair(
                    module.MODEL_ENTRY, module.GUIDE_ENTRY,
                    rng=np.random.default_rng(seed),
                )
            except RecursionError:
                continue
            assert math.isfinite(run.model_log_weight)
            completed += 1
        assert completed >= 5

    def test_compiled_svi_improves_parameters(self):
        benchmark = get_benchmark("weight")
        source = compile_pair(
            benchmark.model_program(), benchmark.guide_program(),
            benchmark.model_entry, benchmark.guide_entry,
            guide_param_inits=benchmark.guide_param_inits,
        )
        module = load_compiled(source).module
        results = module.svi(obs_values=[9.5], num_steps=40, learning_rate=0.1, seed=0)
        # Posterior mean of the weight is (8.5/1 + 9.5/0.5625) / (1 + 1/0.5625) ≈ 9.14.
        assert results.params["loc"] == pytest.approx(9.14, abs=0.35)

    def test_vae_benchmark_compiles_and_runs(self):
        benchmark = get_benchmark("vae")
        source = compile_pair(
            benchmark.model_program(), benchmark.guide_program(),
            benchmark.model_entry, benchmark.guide_entry,
            guide_param_inits=benchmark.guide_param_inits,
        )
        module = load_compiled(source).module
        results = module.svi(
            obs_values=list(benchmark.obs_values), num_steps=5, seed=0
        )
        assert len(results.elbo_history) == 5
