"""Unit tests for the surface-syntax parser."""

import pytest

from repro.core import ast
from repro.core import types as ty
from repro.core.parser import parse_command, parse_expression, parse_program
from repro.core.parser.parser import param_types_of
from repro.errors import ParseError


class TestExpressions:
    def test_real_literal(self):
        assert parse_expression("3.5") == ast.RealLit(3.5)

    def test_nat_literal(self):
        assert parse_expression("7") == ast.NatLit(7)

    def test_boolean_literals(self):
        assert parse_expression("true") == ast.BoolLit(True)
        assert parse_expression("false") == ast.BoolLit(False)

    def test_unit_literal(self):
        assert parse_expression("()") == ast.Triv()

    def test_variable(self):
        assert parse_expression("foo") == ast.Var("foo")

    def test_addition_is_left_associative(self):
        expr = parse_expression("a + b + c")
        assert isinstance(expr, ast.PrimOp)
        assert expr.op is ast.BinOp.ADD
        assert isinstance(expr.left, ast.PrimOp)
        assert expr.right == ast.Var("c")

    def test_multiplication_binds_tighter_than_addition(self):
        expr = parse_expression("a + b * c")
        assert expr.op is ast.BinOp.ADD
        assert isinstance(expr.right, ast.PrimOp)
        assert expr.right.op is ast.BinOp.MUL

    def test_comparison(self):
        expr = parse_expression("x < 2.0")
        assert expr.op is ast.BinOp.LT

    def test_boolean_connectives(self):
        expr = parse_expression("a && b || c")
        assert expr.op is ast.BinOp.OR
        assert expr.left.op is ast.BinOp.AND

    def test_unary_negation(self):
        expr = parse_expression("-x")
        assert isinstance(expr, ast.PrimUnOp)
        assert expr.op is ast.UnOp.NEG

    def test_not_operator(self):
        expr = parse_expression("!flag")
        assert expr.op is ast.UnOp.NOT

    def test_math_builtins(self):
        assert parse_expression("exp(x)").op is ast.UnOp.EXP
        assert parse_expression("log(x)").op is ast.UnOp.LOG
        assert parse_expression("sqrt(x)").op is ast.UnOp.SQRT

    def test_if_expression(self):
        expr = parse_expression("if c then 1.0 else 2.0")
        assert isinstance(expr, ast.IfExpr)

    def test_let_expression(self):
        expr = parse_expression("let x = 1.0 in x + x")
        assert isinstance(expr, ast.Let)
        assert expr.var == "x"

    def test_lambda_and_application(self):
        expr = parse_expression("fun(x) x + 1.0")
        assert isinstance(expr, ast.Lam)
        app = parse_expression("f(3.0)")
        assert isinstance(app, ast.App)

    def test_tuple_and_projection(self):
        expr = parse_expression("(1.0, 2.0, 3.0)")
        assert isinstance(expr, ast.Tuple_)
        assert len(expr.items) == 3
        proj = parse_expression("p.1")
        assert isinstance(proj, ast.Proj)
        assert proj.index == 1

    def test_parenthesised_expression(self):
        assert parse_expression("(x)") == ast.Var("x")

    @pytest.mark.parametrize(
        "source,kind,n_args",
        [
            ("Normal(0.0, 1.0)", ast.DistKind.NORMAL, 2),
            ("Gamma(2.0, 1.0)", ast.DistKind.GAMMA, 2),
            ("Beta(3.0, 1.0)", ast.DistKind.BETA, 2),
            ("Unif", ast.DistKind.UNIF, 0),
            ("Ber(0.5)", ast.DistKind.BER, 1),
            ("Geo(0.3)", ast.DistKind.GEO, 1),
            ("Pois(4.0)", ast.DistKind.POIS, 1),
            ("Cat(1.0, 2.0, 3.0)", ast.DistKind.CAT, 3),
        ],
    )
    def test_distribution_expressions(self, source, kind, n_args):
        expr = parse_expression(source)
        assert isinstance(expr, ast.DistExpr)
        assert expr.kind is kind
        assert len(expr.args) == n_args

    def test_distribution_wrong_arity_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("Normal(1.0)")

    def test_cat_requires_at_least_one_weight(self):
        with pytest.raises(ParseError):
            parse_expression("Cat()")


class TestCommands:
    def test_return_command(self):
        cmd = parse_command("{ return(3.0) }")
        assert isinstance(cmd, ast.Ret)

    def test_return_unit(self):
        cmd = parse_command("{ return() }")
        assert isinstance(cmd, ast.Ret)
        assert cmd.expr == ast.Triv()

    def test_sample_recv(self):
        cmd = parse_command("{ sample.recv{latent}(Unif) }")
        assert isinstance(cmd, ast.SampleRecv)
        assert cmd.channel == "latent"

    def test_sample_send(self):
        cmd = parse_command("{ sample.send{obs}(Normal(0.0, 1.0)) }")
        assert isinstance(cmd, ast.SampleSend)
        assert cmd.channel == "obs"

    def test_bind_sequencing(self):
        cmd = parse_command("{ x <- sample.recv{latent}(Unif); return(x) }")
        assert isinstance(cmd, ast.Bnd)
        assert cmd.var == "x"
        assert isinstance(cmd.first, ast.SampleRecv)
        assert isinstance(cmd.second, ast.Ret)

    def test_anonymous_sequencing_uses_fresh_binder(self):
        cmd = parse_command("{ sample.send{obs}(Unif); return(1.0) }")
        assert isinstance(cmd, ast.Bnd)
        assert cmd.var.startswith("_ignore")

    def test_trailing_bind_desugars_to_ret(self):
        cmd = parse_command("{ x <- sample.recv{latent}(Unif) }")
        assert isinstance(cmd, ast.Bnd)
        assert isinstance(cmd.second, ast.Ret)
        assert cmd.second.expr == ast.Var("x")

    def test_if_send(self):
        cmd = parse_command(
            "{ if.send{latent} x < 1.0 { return(x) } else { return(x) } }"
        )
        assert isinstance(cmd, ast.CondSend)
        assert cmd.channel == "latent"

    def test_if_recv_has_no_predicate(self):
        cmd = parse_command("{ if.recv{latent} { return(1.0) } else { return(2.0) } }")
        assert isinstance(cmd, ast.CondRecv)

    def test_pure_if(self):
        cmd = parse_command("{ if x { return(1.0) } else { return(2.0) } }")
        assert isinstance(cmd, ast.CondPure)

    def test_call_with_one_argument(self):
        cmd = parse_command("{ call Helper(x) }")
        assert isinstance(cmd, ast.Call)
        assert cmd.proc == "Helper"
        assert cmd.arg == ast.Var("x")

    def test_call_with_many_arguments_packs_tuple(self):
        cmd = parse_command("{ call Helper(x, y, 1.0) }")
        assert isinstance(cmd.arg, ast.Tuple_)
        assert len(cmd.arg.items) == 3

    def test_call_without_arguments(self):
        cmd = parse_command("{ call Helper() }")
        assert cmd.arg == ast.Triv()

    def test_observe_command(self):
        cmd = parse_command("{ observe(Normal(0.0, 1.0), 0.5) }")
        assert isinstance(cmd, ast.Observe)

    def test_empty_block_rejected(self):
        with pytest.raises(ParseError):
            parse_command("{ }")


class TestProcedures:
    def test_basic_procedure(self, fig5_model):
        proc = fig5_model.procedure("Model")
        assert proc.consumes == "latent"
        assert proc.provides == "obs"
        assert proc.params == ()

    def test_parameter_annotations(self):
        program = parse_program(
            "proc F(a: preal, b: nat, c: bool) consume latent { return(a) }"
        )
        proc = program.procedure("F")
        assert param_types_of(proc) == (ty.PREAL, ty.NAT, ty.BOOL)

    def test_unannotated_parameter_defaults_to_real(self):
        program = parse_program("proc F(a) consume latent { return(a) }")
        assert param_types_of(program.procedure("F")) == (ty.REAL,)

    def test_type_annotations_full_grammar(self):
        program = parse_program(
            "proc F(a: nat[5], b: dist(real), c: (real * bool), d: real -> real) { return(1.0) }"
        )
        kinds = param_types_of(program.procedure("F"))
        assert kinds[0] == ty.FinNatTy(5)
        assert kinds[1] == ty.DistTy(ty.REAL)
        assert kinds[2] == ty.TupleTy((ty.REAL, ty.BOOL))
        assert kinds[3] == ty.FunTy(ty.REAL, ty.REAL)

    def test_multiple_procedures(self, fig6_pcfg):
        assert fig6_pcfg.names() == ("Pcfg", "PcfgGen")

    def test_same_consume_provide_channel_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc F() consume c provide c { return(1.0) }")

    def test_duplicate_channel_declaration_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc F() consume a consume b { return(1.0) }")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("   ")

    def test_garbage_after_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc F() { return(1.0) } garbage")

    def test_missing_else_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc F() consume a { if.recv{a} { return(1.0) } }")

    def test_parse_error_reports_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("proc F() {\n  return(;\n}")
        assert "line 2" in str(excinfo.value)

    def test_duplicate_procedure_names_rejected(self):
        with pytest.raises(ValueError):
            parse_program("proc F() { return(1.0) } proc F() { return(2.0) }")
