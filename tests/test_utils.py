"""Tests for shared utilities: numerics, RNG handling, pretty printing."""

import math

import numpy as np
import pytest

from repro.core.parser import parse_program
from repro.core.typecheck import infer_guide_types
from repro.inference.diagnostics import (
    autocorrelation,
    posterior_histogram,
    posterior_mean,
    running_mean,
    weight_diagnostics,
)
from repro.errors import InferenceError
from repro.utils.numerics import (
    effective_sample_size,
    log_mean_exp,
    log_sum_exp,
    normalize_log_weights,
    weighted_mean,
    weighted_variance,
)
from repro.utils.pretty import (
    pretty_guide_type,
    pretty_program,
    pretty_trace,
    pretty_type_table,
)
from repro.utils.rng import ensure_rng, fork_rng
from repro.core.semantics import traces as tr


class TestNumerics:
    def test_log_sum_exp_matches_direct_computation(self):
        values = [-1.0, -2.0, -3.0]
        assert log_sum_exp(values) == pytest.approx(
            math.log(sum(math.exp(v) for v in values))
        )

    def test_log_sum_exp_handles_neg_inf(self):
        assert log_sum_exp([-math.inf, 0.0]) == pytest.approx(0.0)
        assert log_sum_exp([-math.inf, -math.inf]) == -math.inf
        assert log_sum_exp([]) == -math.inf

    def test_log_sum_exp_is_stable_for_large_values(self):
        assert log_sum_exp([1000.0, 1000.0]) == pytest.approx(1000.0 + math.log(2))

    def test_log_mean_exp(self):
        assert log_mean_exp([0.0, 0.0]) == pytest.approx(0.0)

    def test_normalize_log_weights_sums_to_one(self):
        weights = normalize_log_weights([-1.0, -2.0, -math.inf])
        assert weights.sum() == pytest.approx(1.0)
        assert weights[2] == 0.0

    def test_normalize_all_zero_weights_is_uniform(self):
        weights = normalize_log_weights([-math.inf, -math.inf])
        assert np.allclose(weights, [0.5, 0.5])

    def test_effective_sample_size_bounds(self):
        assert effective_sample_size([0.0] * 10) == pytest.approx(10.0)
        assert effective_sample_size([0.0, -math.inf]) == pytest.approx(1.0)

    def test_weighted_mean_and_variance(self):
        values = [1.0, 3.0]
        log_weights = [0.0, 0.0]
        assert weighted_mean(values, log_weights) == pytest.approx(2.0)
        assert weighted_variance(values, log_weights) == pytest.approx(1.0)


class TestDiagnostics:
    def test_weight_diagnostics(self):
        diag = weight_diagnostics([0.0, 0.0, -math.inf])
        assert diag.num_samples == 3
        assert diag.num_zero_weight == 1
        assert not diag.degenerate

    def test_degenerate_weights_detected(self):
        diag = weight_diagnostics([0.0] + [-math.inf] * 99)
        assert diag.degenerate

    def test_posterior_mean_validates_lengths(self):
        with pytest.raises(InferenceError):
            posterior_mean([1.0], [0.0, 0.0])

    def test_posterior_histogram_is_a_density(self):
        values = np.random.default_rng(0).normal(size=500)
        centers, density = posterior_histogram(values, bins=20)
        widths = centers[1] - centers[0]
        assert float(np.sum(density) * widths) == pytest.approx(1.0, abs=0.05)

    def test_posterior_histogram_rejects_empty_input(self):
        with pytest.raises(InferenceError):
            posterior_histogram([])

    def test_running_mean(self):
        assert running_mean([1.0, 3.0, 5.0]) == [1.0, 2.0, 3.0]

    def test_autocorrelation_starts_at_one(self):
        acf = autocorrelation([1.0, 2.0, 3.0, 4.0, 2.0, 1.0], max_lag=3)
        assert acf[0] == pytest.approx(1.0)
        assert len(acf) == 4


class TestRng:
    def test_ensure_rng_accepts_seed_generator_and_none(self):
        assert isinstance(ensure_rng(0), np.random.Generator)
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_fork_rng_produces_independent_streams(self):
        children = fork_rng(np.random.default_rng(0), 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3


class TestPrettyPrinting:
    def test_program_round_trips_through_the_parser(self, fig5_model):
        printed = pretty_program(fig5_model)
        reparsed = parse_program(printed)
        assert reparsed.names() == fig5_model.names()
        # Guide types of the reparsed program agree with the original.
        original = infer_guide_types(fig5_model).entry_channel_type("Model", "latent")
        roundtrip = infer_guide_types(reparsed).entry_channel_type("Model", "latent")
        assert original == roundtrip

    def test_pretty_guide_type_uses_paper_connectives(self, fig5_model):
        latent = infer_guide_types(fig5_model).entry_channel_type("Model", "latent")
        printed = pretty_guide_type(latent)
        assert "/\\" in printed and "&" in printed

    def test_pretty_type_table_lists_typedefs(self, fig6_pcfg):
        table = infer_guide_types(fig6_pcfg).table
        printed = pretty_type_table(table)
        assert "typedef PcfgGen.latent" in printed
        assert "proc Pcfg" in printed

    def test_pretty_trace(self):
        printed = pretty_trace((tr.ValP(0.5), tr.DirC(True), tr.Fold()))
        assert "valP" in printed and "dirC" in printed and "fold" in printed
