"""Unit tests for the basic (simply-typed) checker."""

import pytest

from repro.core import types as ty
from repro.core.parser import parse_command, parse_expression, parse_program
from repro.core.typecheck import basic
from repro.errors import BasicTypeError


def expr_type(source, ctx=None):
    return basic.infer_expr_type(ctx or {}, parse_expression(source), {})


class TestLiteralTyping:
    def test_unit_interval_literal(self):
        assert expr_type("0.5") == ty.UREAL

    def test_positive_literal(self):
        assert expr_type("2.5") == ty.PREAL

    def test_general_real_literal(self):
        assert expr_type("0.0") == ty.REAL

    def test_nat_literal(self):
        assert expr_type("3") == ty.NAT

    def test_boolean_literal(self):
        assert expr_type("true") == ty.BOOL

    def test_unit_value(self):
        assert expr_type("()") == ty.UNIT


class TestOperatorTyping:
    def test_sum_of_positives_is_positive(self):
        assert expr_type("0.5 + 2.0") == ty.PREAL

    def test_product_of_unit_interval_stays_in_unit_interval(self):
        assert expr_type("0.5 * 0.25") == ty.UREAL

    def test_subtraction_widens_to_real(self):
        assert expr_type("0.5 - 0.25") == ty.REAL

    def test_nat_arithmetic(self):
        assert expr_type("2 + 3") == ty.NAT
        assert expr_type("2 * 3") == ty.NAT

    def test_comparison_gives_bool(self):
        assert expr_type("1.0 < 2.0") == ty.BOOL
        assert expr_type("2 <= 3") == ty.BOOL

    def test_equality_gives_bool(self):
        assert expr_type("true == false") == ty.BOOL

    def test_boolean_connectives(self):
        assert expr_type("true && false") == ty.BOOL

    def test_boolean_connective_on_numbers_rejected(self):
        with pytest.raises(BasicTypeError):
            expr_type("1.0 && true")

    def test_comparison_of_booleans_rejected(self):
        with pytest.raises(BasicTypeError):
            expr_type("true < false")

    def test_exp_is_positive(self):
        assert expr_type("exp(-3.0)") == ty.PREAL

    def test_log_of_numeric_is_real(self):
        assert expr_type("log(2.5)") == ty.REAL

    def test_sqrt_is_positive(self):
        assert expr_type("sqrt(2.0)") == ty.PREAL

    def test_negation_of_bool_rejected(self):
        with pytest.raises(BasicTypeError):
            expr_type("-true")

    def test_unbound_variable_rejected(self):
        with pytest.raises(BasicTypeError):
            expr_type("mystery")

    def test_if_expression_joins_branches(self):
        assert expr_type("if true then 0.5 else 2.0") == ty.PREAL

    def test_if_expression_needs_boolean_condition(self):
        with pytest.raises(BasicTypeError):
            expr_type("if 1.0 then 0.5 else 2.0")

    def test_if_expression_incompatible_branches_rejected(self):
        with pytest.raises(BasicTypeError):
            expr_type("if true then 1.0 else false")

    def test_let_expression(self):
        assert expr_type("let x = 2.0 in x + x") == ty.PREAL

    def test_tuple_and_projection(self):
        assert expr_type("(1.0, true).1") == ty.BOOL

    def test_projection_out_of_range_rejected(self):
        with pytest.raises(BasicTypeError):
            expr_type("(1.0, true).5")


class TestDistributionTyping:
    @pytest.mark.parametrize(
        "source,support",
        [
            ("Ber(0.5)", ty.BOOL),
            ("Unif", ty.UREAL),
            ("Beta(2.0, 3.0)", ty.UREAL),
            ("Gamma(2.0, 1.0)", ty.PREAL),
            ("Normal(0.0, 1.0)", ty.REAL),
            ("Cat(1.0, 2.0, 3.0)", ty.FinNatTy(3)),
            ("Geo(0.5)", ty.NAT),
            ("Pois(4.0)", ty.NAT),
        ],
    )
    def test_support_types(self, source, support):
        assert expr_type(source) == ty.DistTy(support)

    def test_normal_requires_positive_stddev_type(self):
        with pytest.raises(BasicTypeError):
            expr_type("Normal(0.0, -1.0)")

    def test_ber_requires_unit_interval_parameter(self):
        with pytest.raises(BasicTypeError):
            expr_type("Ber(2.0)")

    def test_gamma_requires_positive_parameters(self):
        with pytest.raises(BasicTypeError):
            expr_type("Gamma(0.0, 1.0)")

    def test_dist_parameter_can_use_context(self):
        assert basic.infer_expr_type(
            {"p": ty.UREAL}, parse_expression("Ber(p)"), {}
        ) == ty.DistTy(ty.BOOL)


class TestCommandResultTypes:
    def test_sample_has_support_type(self):
        cmd = parse_command("{ sample.recv{latent}(Gamma(2.0, 1.0)) }")
        assert basic.command_result_type({}, cmd, {}) == ty.PREAL

    def test_bind_threads_context(self):
        cmd = parse_command("{ x <- sample.recv{latent}(Unif); return(x + 1.0) }")
        assert basic.command_result_type({}, cmd, {}) == ty.PREAL

    def test_conditional_branches_must_agree(self):
        cmd = parse_command(
            "{ if.recv{latent} { return(1.0) } else { return(true) } }"
        )
        with pytest.raises(BasicTypeError):
            basic.command_result_type({}, cmd, {})

    def test_observe_requires_distribution(self):
        cmd = parse_command("{ observe(Normal(0.0, 1.0), 0.3) }")
        assert basic.command_result_type({}, cmd, {}) == ty.UNIT

    def test_call_to_unknown_procedure_rejected(self):
        cmd = parse_command("{ call Ghost(1.0) }")
        with pytest.raises(BasicTypeError):
            basic.command_result_type({}, cmd, {})


class TestWholeProgramChecking:
    def test_fig5_model_signature(self, fig5_model):
        sigs = basic.check_program_basic(fig5_model)
        assert sigs["Model"].result_type == ty.PREAL

    def test_recursive_result_type_fixpoint(self, fig6_pcfg):
        sigs = basic.check_program_basic(fig6_pcfg)
        assert sigs["PcfgGen"].result_type == ty.REAL
        assert sigs["Pcfg"].result_type == ty.REAL

    def test_parameter_types_come_from_annotations(self, fig6_pcfg):
        sigs = basic.check_program_basic(fig6_pcfg)
        assert sigs["PcfgGen"].param_types == (ty.UREAL,)

    def test_explicit_param_types_override(self, fig6_pcfg):
        sigs = basic.check_program_basic(
            fig6_pcfg, param_types={"PcfgGen": (ty.UREAL,), "Pcfg": ()}
        )
        assert sigs["PcfgGen"].param_types == (ty.UREAL,)

    def test_wrong_number_of_param_types_rejected(self, fig6_pcfg):
        with pytest.raises(BasicTypeError):
            basic.check_program_basic(fig6_pcfg, param_types={"PcfgGen": (), "Pcfg": ()})

    def test_call_argument_type_mismatch_rejected(self):
        program = parse_program(
            """
            proc Main() consume latent {
              call Helper(true)
            }
            proc Helper(x: preal) consume latent {
              sample.recv{latent}(Gamma(x, 1.0))
            }
            """
        )
        with pytest.raises(BasicTypeError):
            basic.check_program_basic(program)

    def test_tail_recursive_only_procedure_defaults_to_unit(self):
        program = parse_program(
            """
            proc Loop() consume latent {
              u <- sample.recv{latent}(Unif);
              call Loop()
            }
            """
        )
        sigs = basic.check_program_basic(program)
        assert sigs["Loop"].result_type == ty.UNIT
