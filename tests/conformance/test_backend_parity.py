"""Compiled-vs-interpretive backend parity: same bits, different runtime.

The compiled batched backend is an execution strategy, not an estimator: for
every conformance model, running the fused kernel — at either JIT tier —
and the interpretive vectorizer with common random numbers must produce
**bitwise-equal** log-weights and samples.  This is what makes
``backend="compiled"`` (and ``jit="mega"``) safe to select anywhere — every
downstream quantity (posterior means, evidence, resampling decisions, SVI
gradients) is a deterministic function of the per-particle weights, values,
and the shared RNG stream.

The suite covers four layers:

* raw runs — model/guide log-weights, per-site sample values, recorded
  message columns, and the per-observation score matrix, across
  interp × compiled × compiled+mega;
* engines — ``is``/``smc``/``svi`` results through
  :class:`~repro.engine.session.ProgramSession` under every backend tier;
* rescoring — the megakernel's *compiled* group-rescoring pass against the
  interpretive replay on the SVI ledger path (per-site score ledgers
  included), with the fallback metric reading zero on supported models;
* the fallback — recursive models compile to the interpreter with a recorded
  reason, and still produce identical results (trivially, same runtime).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import fused_unsupported_reason
from repro.core.semantics import traces as tr
from repro.engine import ProgramSession, make_particle_runner
from repro.engine.backend import CompiledParticleRunner, MegaParticleRunner
from repro.models import all_benchmarks, get_benchmark
from repro.obs import REGISTRY

#: Guide arguments for benchmarks whose guides take per-run parameters.
GUIDE_ARGS = {"outliers": (True,)}

EXPRESSIBLE = [b for b in all_benchmarks() if b.expressible]
COMPILABLE = [
    b for b in EXPRESSIBLE
    if fused_unsupported_reason(
        b.model_program(), b.guide_program(), b.model_entry, b.guide_entry
    ) is None
]
RECURSIVE = [b for b in EXPRESSIBLE if b not in COMPILABLE]

NUM_PARTICLES = 800


def _runner_common(bench, obs):
    guide_args = GUIDE_ARGS.get(bench.name, tuple(bench.guide_param_inits.values()))
    return dict(
        model_program=bench.model_program(),
        guide_program=bench.guide_program(),
        model_entry=bench.model_entry,
        guide_entry=bench.guide_entry,
        obs_trace=obs,
        guide_args=guide_args,
    )


def _trio_of_runs(bench, obs, seed):
    """(interp, compiled, compiled+mega) runs under common random numbers."""
    common = _runner_common(bench, obs)
    interp = make_particle_runner(backend="interp", **common)
    compiled = make_particle_runner(backend="compiled", **common)
    mega = make_particle_runner(backend="compiled", jit="mega", **common)
    assert isinstance(compiled, CompiledParticleRunner)
    assert isinstance(mega, MegaParticleRunner)
    return (
        interp.run(NUM_PARTICLES, np.random.default_rng(seed)),
        compiled.run(NUM_PARTICLES, np.random.default_rng(seed)),
        mega.run(NUM_PARTICLES, np.random.default_rng(seed)),
    )


def _assert_bitwise_equal_runs(r1, r2, context: str):
    assert np.array_equal(r1.model_log_weights, r2.model_log_weights), context
    assert np.array_equal(r1.guide_log_weights, r2.guide_log_weights), context
    assert np.array_equal(r1.log_weights(), r2.log_weights()), context
    assert r1.num_groups == r2.num_groups, context
    # Samples: every latent site column, lane for lane (nan where the
    # particle's control path lacks the site).
    for site in range(12):
        a, b = r1.site_values(site), r2.site_values(site)
        assert np.array_equal(a, b, equal_nan=True), f"{context}: site {site}"
        if np.all(np.isnan(a)):
            break
    # Recorded message columns agree, so replay-based machinery (rescoring,
    # trace materialisation) behaves identically on either run's leaves.
    for l1, l2 in zip(r1.leaves, r2.leaves):
        assert np.array_equal(l1.indices, l2.indices), context
        assert set(l1.recorded) == set(l2.recorded), context
        for channel in l1.recorded:
            m1, m2 = l1.recorded[channel], l2.recorded[channel]
            assert len(m1) == len(m2), f"{context}: {channel}"
            for x, y in zip(m1, m2):
                assert x.kind == y.kind and x.provider == y.provider, context
                if isinstance(x.payload, np.ndarray):
                    assert np.array_equal(x.payload, y.payload), context
                else:
                    assert x.payload == y.payload, context
    s1, s2 = r1.obs_score_matrix(), r2.obs_score_matrix()
    if s1 is None or s2 is None:
        assert s1 is None and s2 is None, context
    else:
        assert np.array_equal(s1, s2), context


@pytest.mark.parametrize("bench", COMPILABLE, ids=lambda b: b.name)
@pytest.mark.parametrize("seed", [0, 7])
def test_backends_bitwise_equal_with_observations(bench, seed):
    obs = tuple(tr.ValP(v) for v in bench.obs_values)
    r1, r2, r3 = _trio_of_runs(bench, obs, seed)
    assert r1.backend == "interp" and r2.backend == "compiled" and r3.backend == "compiled"
    assert r2.jit == "none" and r3.jit == "mega"
    _assert_bitwise_equal_runs(r1, r2, bench.name)
    _assert_bitwise_equal_runs(r1, r3, f"{bench.name} (mega)")


@pytest.mark.parametrize("bench", COMPILABLE, ids=lambda b: b.name)
def test_backends_bitwise_equal_prior_predictive(bench):
    """Without an observation trace the model *draws* its observations; the
    compiled kernels must consume the RNG for them in the interpreter's order."""
    r1, r2, r3 = _trio_of_runs(bench, None, seed=3)
    _assert_bitwise_equal_runs(r1, r2, f"{bench.name} (prior predictive)")
    _assert_bitwise_equal_runs(r1, r3, f"{bench.name} (prior predictive, mega)")


ENGINE_MATRIX = [
    ("kalman", "is", {}),
    ("switching", "is", {}),
    ("jump", "smc", {}),
    ("hmm", "smc", {}),
    ("weight", "svi", dict(guide_params={"loc": 8.5, "log_scale": 0.0}, num_steps=6)),
    ("coin", "svi", dict(num_steps=0)),
]


@pytest.mark.parametrize("name, engine, kwargs", ENGINE_MATRIX)
def test_engines_identical_across_backends(name, engine, kwargs):
    bench = get_benchmark(name)
    session = ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    results = {
        tier: session.infer(
            engine,
            num_particles=500,
            obs_values=bench.obs_values,
            seed=19,
            backend=backend,
            jit=jit,
            **kwargs,
        )
        for tier, (backend, jit) in {
            "interp": ("interp", "none"),
            "compiled": ("compiled", "none"),
            "mega": ("compiled", "mega"),
        }.items()
    }
    for tier in ("compiled", "mega"):
        assert results["interp"].posterior_mean(0) == results[tier].posterior_mean(0), tier
        assert results["interp"].log_evidence() == results[tier].log_evidence(), tier
        assert (
            results["interp"].effective_sample_size()
            == results[tier].effective_sample_size()
        ), tier
    assert results["mega"].diagnostics().get("jit") == "mega"
    assert session.compiled_backend_supported is True
    assert session.compiled_fallback_reason is None


@pytest.mark.parametrize(
    "name, engine, kwargs",
    [(n, e, k) for n, e, k in ENGINE_MATRIX if e == "svi"],
)
def test_svi_rescoring_never_falls_back_on_supported_models(name, engine, kwargs):
    """On fused-supported models the mega tier serves SVI rescoring from the
    compiled pass: the fallback metric family must not move at all."""
    bench = get_benchmark(name)
    session = ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    mark = REGISTRY.mark()
    session.infer(
        engine,
        num_particles=300,
        obs_values=bench.obs_values,
        seed=5,
        backend="compiled",
        jit="mega",
        rao_blackwellize=True,
        **kwargs,
    )
    moved = {
        key: change
        for key, change in REGISTRY.delta(mark).items()
        if key.startswith("repro_compiled_fallback_total")
    }
    assert moved == {}, moved


@pytest.mark.parametrize("bench", COMPILABLE, ids=lambda b: b.name)
def test_mega_rescore_bitwise_matches_interp_replay(bench):
    """The compiled rescore pass replays recorded groups bit-for-bit —
    including the per-site score ledgers SVI's Rao-Blackwellized gradients
    consume — against the interpretive ``rescore_group``."""
    obs = tuple(tr.ValP(v) for v in bench.obs_values)
    common = _runner_common(bench, obs)
    interp = make_particle_runner(backend="interp", **common)
    mega = make_particle_runner(backend="compiled", jit="mega", **common)
    run = mega.run(200, np.random.default_rng(11))
    assert run.backend == "compiled"
    for leaf in run.leaves:
        assert getattr(leaf, "mega_path", None) is not None
        gi = interp.rescore_group(leaf)
        gm = mega.rescore_group(leaf)
        assert np.array_equal(gi.log_weights["model"], gm.log_weights["model"]), bench.name
        assert np.array_equal(gi.log_weights["guide"], gm.log_weights["guide"]), bench.name
        for side in ("model", "guide"):
            assert len(gi.site_scores[side]) == len(gm.site_scores[side]), bench.name
            for (c1, s1), (c2, s2) in zip(gi.site_scores[side], gm.site_scores[side]):
                assert c1 == c2, bench.name
                assert np.array_equal(s1, s2), bench.name


def test_mega_rescore_delegates_unstamped_leaves():
    """A leaf without a path stamp (another backend's, or one that crossed a
    process boundary) must divert to the interpretive replay — counted, not
    crashed."""
    bench = get_benchmark("switching")
    obs = tuple(tr.ValP(v) for v in bench.obs_values)
    common = _runner_common(bench, obs)
    interp = make_particle_runner(backend="interp", **common)
    mega = make_particle_runner(backend="compiled", jit="mega", **common)
    run = interp.run(100, np.random.default_rng(2))  # interp leaves: no stamps
    mark = REGISTRY.mark()
    for leaf in run.leaves:
        gi = interp.rescore_group(leaf)
        gm = mega.rescore_group(leaf)
        assert np.array_equal(gi.log_weights["guide"], gm.log_weights["guide"])
    moved = REGISTRY.delta(mark)
    key = 'repro_compiled_fallback_total{reason="rescore-unstamped"}'
    assert moved.get(key) == float(len(run.leaves)), moved


@pytest.mark.parametrize("bench", RECURSIVE, ids=lambda b: b.name)
def test_recursive_models_fall_back_with_reason(bench):
    reason = fused_unsupported_reason(
        bench.model_program(), bench.guide_program(), bench.model_entry, bench.guide_entry
    )
    assert reason is not None and "recursive" in reason
    runner = make_particle_runner(
        model_program=bench.model_program(),
        guide_program=bench.guide_program(),
        model_entry=bench.model_entry,
        guide_entry=bench.guide_entry,
        obs_trace=tuple(tr.ValP(v) for v in bench.obs_values),
        backend="compiled",
    )
    assert not isinstance(runner, CompiledParticleRunner)
    assert "recursive" in runner.fallback_reason
    # The fallback still runs (through the interpreter) and the session
    # records the decision for diagnostics.
    session = ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry, typecheck=False,
    )
    if bench.obs_values:
        result = session.infer(
            "is", num_particles=50, obs_values=bench.obs_values, seed=1,
            backend="compiled",
        )
        assert result.diagnostics()["backend"] == "interp"
        assert "recursive" in result.diagnostics().get("fallback_reason", "")
    else:
        session.fused_kernel()
    assert session.compiled_backend_supported is False
    assert "recursive" in session.compiled_fallback_reason
