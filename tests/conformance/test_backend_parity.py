"""Compiled-vs-interpretive backend parity: same bits, different runtime.

The compiled batched backend is an execution strategy, not an estimator: for
every conformance model, running the fused kernel and the interpretive
vectorizer with common random numbers must produce **bitwise-equal**
log-weights and samples.  This is what makes ``backend="compiled"`` safe to
select anywhere — every downstream quantity (posterior means, evidence,
resampling decisions, SVI gradients) is a deterministic function of the
per-particle weights, values, and the shared RNG stream.

The suite covers three layers:

* raw runs — model/guide log-weights, per-site sample values, recorded
  message columns, and the per-observation score matrix;
* engines — ``is``/``smc``/``svi`` results through
  :class:`~repro.engine.session.ProgramSession` under both backends;
* the fallback — recursive models compile to the interpreter with a recorded
  reason, and still produce identical results (trivially, same runtime).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import fused_unsupported_reason
from repro.core.semantics import traces as tr
from repro.engine import ProgramSession, make_particle_runner
from repro.engine.backend import CompiledParticleRunner
from repro.models import all_benchmarks, get_benchmark

#: Guide arguments for benchmarks whose guides take per-run parameters.
GUIDE_ARGS = {"outliers": (True,)}

EXPRESSIBLE = [b for b in all_benchmarks() if b.expressible]
COMPILABLE = [
    b for b in EXPRESSIBLE
    if fused_unsupported_reason(
        b.model_program(), b.guide_program(), b.model_entry, b.guide_entry
    ) is None
]
RECURSIVE = [b for b in EXPRESSIBLE if b not in COMPILABLE]

NUM_PARTICLES = 800


def _pair_of_runs(bench, obs, seed):
    guide_args = GUIDE_ARGS.get(bench.name, tuple(bench.guide_param_inits.values()))
    common = dict(
        model_program=bench.model_program(),
        guide_program=bench.guide_program(),
        model_entry=bench.model_entry,
        guide_entry=bench.guide_entry,
        obs_trace=obs,
        guide_args=guide_args,
    )
    interp = make_particle_runner(backend="interp", **common)
    compiled = make_particle_runner(backend="compiled", **common)
    assert isinstance(compiled, CompiledParticleRunner)
    return (
        interp.run(NUM_PARTICLES, np.random.default_rng(seed)),
        compiled.run(NUM_PARTICLES, np.random.default_rng(seed)),
    )


def _assert_bitwise_equal_runs(r1, r2, context: str):
    assert np.array_equal(r1.model_log_weights, r2.model_log_weights), context
    assert np.array_equal(r1.guide_log_weights, r2.guide_log_weights), context
    assert np.array_equal(r1.log_weights(), r2.log_weights()), context
    assert r1.num_groups == r2.num_groups, context
    # Samples: every latent site column, lane for lane (nan where the
    # particle's control path lacks the site).
    for site in range(12):
        a, b = r1.site_values(site), r2.site_values(site)
        assert np.array_equal(a, b, equal_nan=True), f"{context}: site {site}"
        if np.all(np.isnan(a)):
            break
    # Recorded message columns agree, so replay-based machinery (rescoring,
    # trace materialisation) behaves identically on either run's leaves.
    for l1, l2 in zip(r1.leaves, r2.leaves):
        assert np.array_equal(l1.indices, l2.indices), context
        assert set(l1.recorded) == set(l2.recorded), context
        for channel in l1.recorded:
            m1, m2 = l1.recorded[channel], l2.recorded[channel]
            assert len(m1) == len(m2), f"{context}: {channel}"
            for x, y in zip(m1, m2):
                assert x.kind == y.kind and x.provider == y.provider, context
                if isinstance(x.payload, np.ndarray):
                    assert np.array_equal(x.payload, y.payload), context
                else:
                    assert x.payload == y.payload, context
    s1, s2 = r1.obs_score_matrix(), r2.obs_score_matrix()
    if s1 is None or s2 is None:
        assert s1 is None and s2 is None, context
    else:
        assert np.array_equal(s1, s2), context


@pytest.mark.parametrize("bench", COMPILABLE, ids=lambda b: b.name)
@pytest.mark.parametrize("seed", [0, 7])
def test_backends_bitwise_equal_with_observations(bench, seed):
    obs = tuple(tr.ValP(v) for v in bench.obs_values)
    r1, r2 = _pair_of_runs(bench, obs, seed)
    assert r2.backend == "compiled" and r1.backend == "interp"
    _assert_bitwise_equal_runs(r1, r2, bench.name)


@pytest.mark.parametrize("bench", COMPILABLE, ids=lambda b: b.name)
def test_backends_bitwise_equal_prior_predictive(bench):
    """Without an observation trace the model *draws* its observations; the
    compiled kernel must consume the RNG for them in the interpreter's order."""
    r1, r2 = _pair_of_runs(bench, None, seed=3)
    _assert_bitwise_equal_runs(r1, r2, f"{bench.name} (prior predictive)")


@pytest.mark.parametrize(
    "name, engine, kwargs",
    [
        ("kalman", "is", {}),
        ("switching", "is", {}),
        ("jump", "smc", {}),
        ("hmm", "smc", {}),
        ("weight", "svi", dict(guide_params={"loc": 8.5, "log_scale": 0.0}, num_steps=6)),
        ("coin", "svi", dict(num_steps=0)),
    ],
)
def test_engines_identical_across_backends(name, engine, kwargs):
    bench = get_benchmark(name)
    session = ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    results = {
        backend: session.infer(
            engine,
            num_particles=500,
            obs_values=bench.obs_values,
            seed=19,
            backend=backend,
            **kwargs,
        )
        for backend in ("interp", "compiled")
    }
    assert results["interp"].posterior_mean(0) == results["compiled"].posterior_mean(0)
    assert results["interp"].log_evidence() == results["compiled"].log_evidence()
    ess = {k: r.effective_sample_size() for k, r in results.items()}
    assert ess["interp"] == ess["compiled"]
    assert session.compiled_backend_supported is True
    assert session.compiled_fallback_reason is None


@pytest.mark.parametrize("bench", RECURSIVE, ids=lambda b: b.name)
def test_recursive_models_fall_back_with_reason(bench):
    reason = fused_unsupported_reason(
        bench.model_program(), bench.guide_program(), bench.model_entry, bench.guide_entry
    )
    assert reason is not None and "recursive" in reason
    runner = make_particle_runner(
        model_program=bench.model_program(),
        guide_program=bench.guide_program(),
        model_entry=bench.model_entry,
        guide_entry=bench.guide_entry,
        obs_trace=tuple(tr.ValP(v) for v in bench.obs_values),
        backend="compiled",
    )
    assert not isinstance(runner, CompiledParticleRunner)
    assert "recursive" in runner.fallback_reason
    # The fallback still runs (through the interpreter) and the session
    # records the decision for diagnostics.
    session = ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry, typecheck=False,
    )
    if bench.obs_values:
        result = session.infer(
            "is", num_particles=50, obs_values=bench.obs_values, seed=1,
            backend="compiled",
        )
        assert result.diagnostics()["backend"] == "interp"
    else:
        session.fused_kernel()
    assert session.compiled_backend_supported is False
    assert "recursive" in session.compiled_fallback_reason
