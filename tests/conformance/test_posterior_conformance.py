"""Cross-engine conformance: every engine targets the same posterior.

For library models whose posterior is available in closed form (conjugacy)
or by exact enumeration (finite discrete latents, linear-Gaussian algebra),
the ``is``, ``smc``, ``mh``, and ``svi`` engines must all recover the true
posterior means within a Monte-Carlo tolerance.  The golden values are
checked in below with their derivations; they were computed independently
of any engine (conjugate updates, 2^k enumeration, precision-matrix solve),
so a regression in any runtime layer — batched distributions, the lockstep
scheduler, resampling, chain pooling, the SVI reweighting pass — shows up
as a disagreement here.

Boolean latent sites are exposed as 0/1 by ``site_values``, so the golden
"mean" of a Bernoulli site is its posterior probability of ``True``.
"""

import os
from dataclasses import dataclass, field
from typing import Dict, Tuple

import pytest

from repro.engine import ProgramSession
from repro.models import get_benchmark

ENGINES = ("is", "smc", "mh", "svi")

#: CI sets REPRO_CONFORMANCE_WORKERS=2 on one job so the sharded process-pool
#: path is exercised against the golden posteriors on every PR; the engines
#: that ignore shard controls (mh here) simply run as usual.
WORKERS = int(os.environ.get("REPRO_CONFORMANCE_WORKERS", "1"))


@dataclass(frozen=True)
class ConformanceCase:
    """One model with exact posterior site means and engine settings."""

    name: str
    #: site index -> exact posterior mean
    golden: Dict[int, float]
    tolerance: float
    #: MH pools sequential chains, so it gets extra Monte-Carlo slack.
    mh_tolerance_factor: float = 1.5
    num_particles: int = 4000
    guide_args: Tuple[object, ...] = ()
    #: SVI optimisation settings (empty dict = fixed guide, no optimisation).
    svi: Dict[str, object] = field(default_factory=dict)


CASES = [
    # Conjugate normal-normal: prior N(8.5, 1), likelihood N(w, 0.75), y=9.5.
    # Posterior mean = (8.5/1 + 9.5/0.5625) / (1/1 + 1/0.5625) = 9.14.
    ConformanceCase(
        name="weight",
        golden={0: 9.14},
        tolerance=0.1,
        guide_args=(8.5, 0.0),
        svi=dict(
            guide_params={"loc": 8.5, "log_scale": 0.0},
            num_steps=40, learning_rate=0.1,
        ),
    ),
    # Conjugate beta-Bernoulli: prior Beta(2, 2), observations (T,T,F,T,T).
    # Posterior Beta(6, 3), mean 6/9 = 2/3.
    ConformanceCase(name="coin", golden={0: 2.0 / 3.0}, tolerance=0.04),
    # Exact enumeration over (rain, sprinkler) with grass-wet observed True:
    # P(rain | wet) = 0.339515 (CPTs in models/library.py).
    ConformanceCase(name="sprinkler", golden={0: 0.339515}, tolerance=0.04),
    # Exact enumeration over (burglary, earthquake) with alarm observed True:
    # P(burglary | alarm) = 0.378411.
    ConformanceCase(name="burglary", golden={0: 0.378411}, tolerance=0.04),
    # Exact enumeration over the 2^4 state paths with Gaussian emissions and
    # observations (0.8, 1.1, -0.9, -1.2):
    # P(s_t = 1 | y) = (0.892642, 0.884778, 0.146949, 0.057596).
    ConformanceCase(
        name="hmm",
        golden={0: 0.892642, 1: 0.884778, 2: 0.146949, 3: 0.057596},
        tolerance=0.05,
    ),
    # Linear-Gaussian smoother: x1 ~ N(0,1), x_{t+1} ~ N(x_t, 1),
    # y_t ~ N(x_t, 0.5), observations (0.4, 0.9, 1.3, 1.9).  Solving the
    # tridiagonal precision system gives the smoothed means
    # (0.414619, 0.887716, 1.311675, 1.782335).
    ConformanceCase(
        name="kalman",
        golden={0: 0.414619, 1: 0.887716, 2: 1.311675, 3: 1.782335},
        tolerance=0.12,
        mh_tolerance_factor=2.0,
    ),
]


def _session(case: ConformanceCase) -> ProgramSession:
    bench = get_benchmark(case.name)
    return ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )


def _run(case: ConformanceCase, engine: str, seed: int):
    bench = get_benchmark(case.name)
    kwargs: Dict[str, object] = dict(
        num_particles=case.num_particles,
        obs_values=bench.obs_values,
        seed=seed,
        guide_args=case.guide_args,
        workers=WORKERS,
    )
    if engine == "svi":
        kwargs.update(case.svi)
        if case.svi:
            # Optimisation batches are small; the posterior pass is not.
            kwargs["num_particles"] = 128
            kwargs["final_particles"] = case.num_particles
    return _session(case).infer(engine, **kwargs)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_engines_agree_with_exact_posterior(case: ConformanceCase, engine: str):
    result = _run(case, engine, seed=0)
    tolerance = case.tolerance
    if engine == "mh":
        tolerance *= case.mh_tolerance_factor
    for site, exact in case.golden.items():
        measured = result.posterior_mean(site)
        assert measured == pytest.approx(exact, abs=tolerance), (
            f"{case.name}/{engine}: site {site} posterior mean {measured:.4f} "
            f"vs exact {exact:.4f} (tol {tolerance})"
        )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_engines_agree_with_each_other(case: ConformanceCase):
    """Pairwise agreement on site 0, independent of the golden values."""
    means = {engine: _run(case, engine, seed=1).posterior_mean(0) for engine in ENGINES}
    spread = max(means.values()) - min(means.values())
    budget = 2.0 * case.tolerance * case.mh_tolerance_factor
    assert spread <= budget, f"{case.name}: engine spread {spread:.4f} > {budget:.4f} ({means})"


def test_all_sessions_are_certified():
    """The conformance pairs all carry the paper's absolute-continuity certificate."""
    for case in CASES:
        session = _session(case)
        assert session.certified, f"{case.name}: {session.certification_reason}"


def test_log_evidence_agrees_between_is_and_smc():
    """Both weight-based engines estimate the same normalising constant."""
    for case in CASES:
        if case.name == "kalman":
            evidence_tolerance = 0.2
        else:
            evidence_tolerance = 0.1
        is_result = _run(case, "is", seed=2)
        smc_result = _run(case, "smc", seed=3)
        assert is_result.log_evidence() == pytest.approx(
            smc_result.log_evidence(), abs=evidence_tolerance
        ), case.name
