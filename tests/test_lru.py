"""Unit tests for ``repro.utils.lru.LruCache``.

The two cross-request caches (fused kernels, program sessions) share this
class, so its contract is load-bearing: recency promotion, the eviction
callback firing exactly once per capacity-pressure eviction, and the
explicit owner actions (``pop``/``clear``) staying silent.
"""

from __future__ import annotations

import pytest

from repro.utils.lru import LruCache


def test_pop_removes_and_returns():
    cache = LruCache(capacity=4)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.pop("a") == 1
    assert "a" not in cache
    assert len(cache) == 1
    assert cache.get("a") is None


def test_pop_missing_returns_none():
    cache = LruCache(capacity=2)
    assert cache.pop("ghost") is None


def test_pop_never_fires_eviction_callback():
    evicted = []
    cache = LruCache(capacity=2, on_evict=lambda k, v: evicted.append((k, v)))
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.pop("a") == 1
    assert cache.pop("b") == 2
    assert evicted == []
    assert cache.evictions == 0


def test_pop_frees_capacity_without_counting_eviction():
    evicted = []
    cache = LruCache(capacity=2, on_evict=lambda k, v: evicted.append(k))
    cache.put("a", 1)
    cache.put("b", 2)
    cache.pop("a")
    cache.put("c", 3)  # fits in the slot pop freed — no pressure
    assert evicted == []
    assert sorted(cache.values()) == [2, 3]


def test_values_orders_oldest_recency_first():
    cache = LruCache(capacity=4)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    assert cache.values() == [1, 2, 3]
    # get() promotes: "a" becomes the most recent.
    assert cache.get("a") == 1
    assert cache.values() == [2, 3, 1]
    # put() of an existing key also promotes (and refreshes the value).
    cache.put("b", 20)
    assert cache.values() == [3, 1, 20]


def test_eviction_callback_fires_once_per_capacity_eviction():
    evicted = []
    cache = LruCache(capacity=2, on_evict=lambda k, v: evicted.append((k, v)))
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)  # evicts "a", the oldest
    assert evicted == [("a", 1)]
    assert cache.evictions == 1
    assert cache.get("a") is None
    assert cache.get("b") == 2


def test_eviction_respects_recency_promotion():
    evicted = []
    cache = LruCache(capacity=2, on_evict=lambda k, v: evicted.append(k))
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # promote "a"; "b" is now the eviction candidate
    cache.put("c", 3)
    assert evicted == ["b"]
    assert cache.get("a") == 1


def test_set_capacity_shrink_evicts_oldest_with_callback():
    evicted = []
    cache = LruCache(capacity=4, on_evict=lambda k, v: evicted.append(k))
    for key in ("a", "b", "c", "d"):
        cache.put(key, key.upper())
    cache.set_capacity(2)
    assert evicted == ["a", "b"]
    assert cache.evictions == 2
    assert cache.values() == ["C", "D"]
    assert cache.capacity == 2


def test_clear_never_fires_eviction_callback():
    evicted = []
    cache = LruCache(capacity=2, on_evict=lambda k, v: evicted.append(k))
    cache.put("a", 1)
    cache.put("b", 2)
    cache.clear()
    assert evicted == []
    assert cache.evictions == 0
    assert len(cache) == 0


@pytest.mark.parametrize("capacity", [0, -1])
def test_invalid_capacity_rejected(capacity):
    with pytest.raises(ValueError):
        LruCache(capacity=capacity)
    cache = LruCache(capacity=1)
    with pytest.raises(ValueError):
        cache.set_capacity(capacity)
