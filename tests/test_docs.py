"""The docs site: generated reference stays fresh, links stay unbroken.

``mkdocs build --strict`` runs in CI (where mkdocs is installed); these
tests give the same protection locally without the dependency — the
generated reference page is byte-compared against the live introspection,
internal links are resolved against the docs tree, and the nav is checked
against the files on disk.
"""

import importlib.util
import re
from pathlib import Path

import pytest
import yaml

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"


def _load_gen_reference():
    spec = importlib.util.spec_from_file_location("gen_reference", DOCS / "gen_reference.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGeneratedReference:
    def test_committed_reference_matches_introspection(self):
        """The drift gate CI runs via ``gen_reference.py --check``."""
        gen = _load_gen_reference()
        committed = (DOCS / "reference.md").read_text(encoding="utf-8")
        assert committed == gen.render(), (
            "docs/reference.md is stale; run: python docs/gen_reference.py"
        )

    def test_reference_covers_every_registered_engine(self):
        from repro.engine import available_engines

        text = (DOCS / "reference.md").read_text(encoding="utf-8")
        for name in available_engines():
            assert f"`{name}`" in text, f"engine {name!r} missing from reference"

    def test_reference_covers_every_request_field(self):
        import dataclasses

        from repro.engine import InferenceRequest

        text = (DOCS / "reference.md").read_text(encoding="utf-8")
        for field in dataclasses.fields(InferenceRequest):
            assert f"`{field.name}`" in text, f"field {field.name!r} missing from reference"

    def test_reference_covers_every_cli_command(self):
        from repro.cli import build_parser

        import argparse

        text = (DOCS / "reference.md").read_text(encoding="utf-8")
        subparsers = next(
            a for a in build_parser()._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        for command in subparsers.choices:
            assert f"### `{command}`" in text, f"CLI command {command!r} missing"


LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


def _internal_links(markdown: str):
    for target in LINK.findall(markdown):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


class TestLinks:
    @pytest.mark.parametrize("page", sorted(DOCS.glob("*.md")), ids=lambda p: p.name)
    def test_internal_links_resolve(self, page):
        for target in _internal_links(page.read_text(encoding="utf-8")):
            assert (DOCS / target).exists(), f"{page.name}: broken link to {target}"

    def test_readme_links_to_docs_resolve(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for target in _internal_links(readme):
            assert (REPO / target).exists(), f"README.md: broken link to {target}"


class TestNav:
    def test_nav_entries_exist_and_cover_all_pages(self):
        config = yaml.safe_load((REPO / "mkdocs.yml").read_text(encoding="utf-8"))
        nav_files = set()
        for entry in config["nav"]:
            (_, path), = entry.items()
            nav_files.add(path)
            assert (DOCS / path).exists(), f"nav entry {path} has no file"
        on_disk = {p.name for p in DOCS.glob("*.md")}
        assert nav_files == on_disk, "mkdocs nav and docs/*.md disagree"
