"""Unit tests for the fused batched backend: codegen, helpers, caching.

The conformance-level guarantee (bitwise-equal runs on whole models) lives
in ``tests/conformance/test_backend_parity.py``; here we pin the pieces:

* the per-family sample/score helpers in
  :mod:`repro.compiler.batched_runtime` agree bit-for-bit with
  :class:`~repro.engine.batched.BatchedDist` on their licensed inputs;
* the supported-fragment check rejects exactly the features the compiled
  kernel cannot mirror, with actionable reasons;
* the emitted source is straight-line (no generators, no op dispatch);
* kernels are compiled once per session and the session cache key includes
  the typechecker version, so a compiler change can never replay stale
  cached artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import (
    compile_fused_pair,
    fused_unsupported_reason,
    load_fused,
)
from repro.compiler import batched_runtime as rt
from repro.core import ast
from repro.core.parser import parse_program
from repro.engine import ProgramSession, clear_kernel_cache, clear_session_cache
from repro.engine.batched import BatchedDist
from repro.errors import CompilationError, InferenceError
from repro.models import get_benchmark


# ---------------------------------------------------------------------------
# Helper-vs-BatchedDist bitwise agreement
# ---------------------------------------------------------------------------


N = 257  # odd size: exercises any vector-width tail path


def _lane(rng, kind):
    """An in-support value batch drawn by the family's own sampler."""
    dist = BatchedDist(kind, _params(kind, scalar=True), N)
    return dist.sample(rng)


def _params(kind, scalar):
    base = {
        ast.DistKind.NORMAL: (0.3, 1.7),
        ast.DistKind.GAMMA: (2.0, 1.5),
        ast.DistKind.BETA: (2.5, 1.5),
        ast.DistKind.UNIF: (),
        ast.DistKind.BER: (0.37,),
        ast.DistKind.GEO: (0.42,),
        ast.DistKind.POIS: (3.2,),
    }[kind]
    if scalar:
        return list(base)
    return [np.full(N, p) for p in base]


FAST = {
    ast.DistKind.NORMAL: (rt.score_normal_in, rt.score_normal_at, rt.samp_normal),
    ast.DistKind.GAMMA: (rt.score_gamma_in, rt.score_gamma_at, rt.samp_gamma),
    ast.DistKind.BETA: (rt.score_beta_in, rt.score_beta_at, rt.samp_beta),
    ast.DistKind.UNIF: (rt.score_unif_in, rt.score_unif_at, None),
    ast.DistKind.BER: (rt.score_ber_in, rt.score_ber_at, rt.samp_ber),
    ast.DistKind.GEO: (rt.score_geo_in, rt.score_geo_at, rt.samp_geo),
    ast.DistKind.POIS: (rt.score_pois_in, rt.score_pois_at, rt.samp_pois),
}


@pytest.mark.parametrize("kind", list(FAST), ids=lambda k: k.value)
@pytest.mark.parametrize("scalar_params", [True, False], ids=["scalar", "array"])
def test_inbounds_score_helpers_match_batched_dist(kind, scalar_params):
    rng = np.random.default_rng(0)
    values = _lane(rng, kind)
    params = _params(kind, scalar_params)
    reference = BatchedDist(kind, params, N).log_prob(values)
    score_in, _, _ = FAST[kind]
    fast = score_in(*params, values) if params else score_in(values)
    assert fast.dtype == reference.dtype
    assert np.array_equal(fast, reference)


@pytest.mark.parametrize("kind", list(FAST), ids=lambda k: k.value)
def test_obs_score_helpers_match_batched_dist(kind):
    """Scalar observed values score identically to the full-broadcast path."""
    rng = np.random.default_rng(1)
    params = _params(kind, scalar=True)
    dist = BatchedDist(kind, params, N)
    _, score_at, _ = FAST[kind]
    draws = _lane(rng, kind)
    candidates = [draws[0], -1.0, 2.5, float("nan")]
    if kind is ast.DistKind.BER:
        candidates = [True, False, 1.0]
    for y in candidates:
        y = y.item() if isinstance(y, np.generic) else y
        reference = rt.score_dist(dist, y, N)
        fast = score_at(*params, y, N) if params else score_at(y, N)
        assert np.array_equal(fast, reference, equal_nan=True), (kind, y)


@pytest.mark.parametrize("kind", list(FAST), ids=lambda k: k.value)
def test_array_param_samplers_match_batched_dist(kind):
    _, _, samp = FAST[kind]
    if samp is None:
        assert np.array_equal(
            rt.samp_unif(np.random.default_rng(5), N),
            BatchedDist(kind, [], N).sample(np.random.default_rng(5)),
        )
        return
    params = _params(kind, scalar=False)
    reference = BatchedDist(kind, params, N).sample(np.random.default_rng(5))
    fast = samp(np.random.default_rng(5), N, *params)
    assert np.array_equal(fast, reference)


def test_score_full_matches_masked_kernels_out_of_support():
    """Values of unknown provenance go through the masked kernels exactly."""
    x = np.array([0.5, -1.0, np.nan, np.inf, 3.0])
    n = len(x)
    for kind, params in [
        (ast.DistKind.GAMMA, (np.full(n, 2.0), np.full(n, 1.5))),
        (ast.DistKind.NORMAL, (np.full(n, 0.0), np.full(n, 2.0))),
        (ast.DistKind.BETA, (np.full(n, 2.0), np.full(n, 2.0))),
    ]:
        reference = BatchedDist(kind, list(params), n).log_prob(x)
        assert np.array_equal(rt.score_full(kind, params, x, n), reference, equal_nan=True)


# ---------------------------------------------------------------------------
# Supported-fragment check
# ---------------------------------------------------------------------------


GUIDE_MIN = """
proc G() provide latent {
  x <- sample.send{latent}(Normal(0.0, 1.0));
  return(x)
}
"""


def _reason(model_src, guide_src=GUIDE_MIN, model_entry="M", guide_entry="G"):
    return fused_unsupported_reason(
        parse_program(model_src), parse_program(guide_src), model_entry, guide_entry
    )


def test_fragment_accepts_plain_pairs():
    bench = get_benchmark("lr")
    assert fused_unsupported_reason(
        bench.model_program(), bench.guide_program(), bench.model_entry, bench.guide_entry
    ) is None


def test_fragment_rejects_recursion():
    bench = get_benchmark("ptrace")
    reason = fused_unsupported_reason(
        bench.model_program(), bench.guide_program(), bench.model_entry, bench.guide_entry
    )
    assert "recursive" in reason


def test_fragment_rejects_lambdas():
    src = """
proc M() consume latent provide obs {
  x <- sample.recv{latent}(Normal(0.0, 1.0));
  f <- return(fun(y) y + 1.0);
  _ <- sample.send{obs}(Normal(f(x), 1.0));
  return(x)
}
"""
    assert "higher-order" in _reason(src)


def test_fragment_rejects_first_class_distributions():
    src = """
proc M() consume latent provide obs {
  d <- return(Normal(0.0, 1.0));
  x <- sample.recv{latent}(d);
  _ <- sample.send{obs}(Normal(x, 1.0));
  return(x)
}
"""
    assert "first-class distribution" in _reason(src)


def test_fragment_rejects_model_receiving_on_obs():
    src = """
proc M() consume latent provide obs {
  x <- sample.recv{latent}(Normal(0.0, 1.0));
  y <- sample.recv{obs}(Normal(x, 1.0));
  return(x)
}
"""
    assert "observation channel" in _reason(src)


def test_compile_fused_raises_for_unsupported():
    bench = get_benchmark("marsaglia")
    with pytest.raises(CompilationError, match="recursive"):
        compile_fused_pair(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
        )


# ---------------------------------------------------------------------------
# Emitted-source properties
# ---------------------------------------------------------------------------


def test_fused_source_is_straight_line():
    bench = get_benchmark("lr")
    source = compile_fused_pair(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    assert "yield" not in source
    assert "def fused_kernel(rng, n, obs, model_args, guide_args):" in source
    # Guide-to-model routing is resolved at compile time: the guide's drawn
    # variable is scored directly by the model's density, no queues involved.
    assert "sample_n(rng, n)" in source
    compile(source, "<fused>", "exec")  # parses and compiles clean


def test_fused_kernel_handles_divergent_branches():
    bench = get_benchmark("ex-1")
    kernel = load_fused(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    # uniform_or_none partitioning: false subgroup first (interp LIFO order)
    assert "uniform_or_none" in kernel.source
    assert "(False, ~" in kernel.source
    leaves = kernel.run(np.random.default_rng(0), 64, None, (), ())
    assert len(leaves) == 2
    covered = np.sort(np.concatenate([leaf.indices for leaf in leaves]))
    assert np.array_equal(covered, np.arange(64))


def test_fused_kernel_entry_arity_errors_match_interp():
    bench = get_benchmark("weight")
    kernel = load_fused(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    from repro.errors import EvaluationError

    with pytest.raises(EvaluationError, match="WeighGuide expects 2 arguments"):
        kernel.run(np.random.default_rng(0), 8, None, (), ())


# ---------------------------------------------------------------------------
# Kernel caching and the versioned session cache key
# ---------------------------------------------------------------------------


def test_session_compiles_kernel_once():
    bench = get_benchmark("coin")
    session = ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    kernel1, reason1 = session.fused_kernel()
    kernel2, _ = session.fused_kernel()
    assert reason1 is None
    assert kernel1 is kernel2
    assert session.compiled_backend_supported is True


def test_backend_name_is_validated():
    bench = get_benchmark("coin")
    session = ProgramSession(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
    )
    with pytest.raises(InferenceError, match="unknown particle backend"):
        session.infer("is", num_particles=10, obs_values=bench.obs_values,
                      backend="jit")


def test_session_cache_key_includes_typechecker_version(monkeypatch):
    """Regression: a typechecker/compiler version bump must invalidate
    memoised sessions, so stale cached kernels can never be replayed."""
    import repro.engine.session as session_mod

    bench = get_benchmark("weight")
    clear_session_cache()
    clear_kernel_cache()
    s1 = ProgramSession.from_sources(bench.model_source, bench.guide_source)
    assert ProgramSession.from_sources(bench.model_source, bench.guide_source) is s1

    monkeypatch.setattr(session_mod, "TYPECHECKER_VERSION", "9999.test-bump")
    s2 = ProgramSession.from_sources(bench.model_source, bench.guide_source)
    assert s2 is not s1  # the version participates in the key

    monkeypatch.undo()
    assert ProgramSession.from_sources(bench.model_source, bench.guide_source) is s1
    clear_session_cache()


def test_runtime_tuple_arm_falls_back_like_interp():
    """Regression: a tuple-typed conditional arm that only *runtime* analysis
    can see (the arms are variables, not tuple literals) must not crash the
    compiled backend — both backends take the whole-batch sequential fallback
    and produce identical results."""
    from repro.core.semantics import traces as tr
    from repro.engine import make_particle_runner
    from repro.engine.backend import CompiledParticleRunner

    model_src = """
proc M() consume latent provide obs {
  x <- sample.recv{latent}(Normal(0.0, 1.0));
  y <- return((let t = (x, 1.0) in if x > 0.0 then t else t).0);
  _ <- sample.send{obs}(Normal(y, 1.0));
  return(y)
}
"""
    guide_src = """
proc G() provide latent {
  x <- sample.send{latent}(Normal(0.0, 2.0));
  return(x)
}
"""
    model, guide = parse_program(model_src), parse_program(guide_src)
    assert fused_unsupported_reason(model, guide, "M", "G") is None
    obs = (tr.ValP(0.4),)
    runs = {}
    for backend in ("interp", "compiled"):
        runner = make_particle_runner(
            model_program=model, guide_program=guide, model_entry="M",
            guide_entry="G", obs_trace=obs, backend=backend,
        )
        if backend == "compiled":
            assert isinstance(runner, CompiledParticleRunner)
        runs[backend] = runner.run(40, np.random.default_rng(9))
    for run in runs.values():
        assert run.vectorized is False  # both hit the sequential fallback
        assert run.backend == "interp"
    assert np.array_equal(
        runs["interp"].model_log_weights, runs["compiled"].model_log_weights
    )
    assert np.array_equal(
        runs["interp"].guide_log_weights, runs["compiled"].guide_log_weights
    )


# ---------------------------------------------------------------------------
# Fuzzer-found regression: const provenance must not survive materialisation
# ---------------------------------------------------------------------------


def test_branch_constant_result_feeding_dist_params_compiles():
    """A branch whose arms return literals, feeding a later dist parameter.

    Found by ``repro fuzz`` (seed 12 of the original campaign): the branch
    result is materialised into a per-path local (``_bN = ...``) but used to
    carry its ``const`` provenance flag, so a downstream ``Normal(m, 2.0)``
    looked all-const and was hoisted into the module preamble — where the
    local name does not exist, a ``NameError`` at kernel load.
    """
    from repro.core.semantics import traces as tr

    model_src = """
proc M() consume latent provide obs {
  x <- sample.recv{latent}(Normal(0.0, 1.0));
  m <- if.send{latent} x > 0.0 {
    _ <- sample.send{obs}(Normal(1.0, 1.0));
    return(2.5)
  } else {
    _ <- sample.send{obs}(Normal(-1.0, 1.0));
    return(-0.5)
  };
  y <- sample.recv{latent}(Normal(m, 2.0));
  return(y)
}
"""
    guide_src = """
proc G() provide latent {
  x <- sample.send{latent}(Normal(0.0, 1.5));
  m <- if.recv{latent} { return(x) } else { return(x) };
  y <- sample.send{latent}(Normal(0.0, 2.0));
  return(y)
}
"""
    model, guide = parse_program(model_src), parse_program(guide_src)
    assert fused_unsupported_reason(model, guide, "M", "G") is None
    kernel = load_fused(model, guide, "M", "G")  # must not raise NameError

    from repro.engine import make_particle_runner

    obs = (tr.ValP(0.4),)
    runs = {}
    for backend in ("interp", "compiled"):
        runner = make_particle_runner(
            model_program=model, guide_program=guide, model_entry="M",
            guide_entry="G", obs_trace=obs, backend=backend,
        )
        runs[backend] = runner.run(64, np.random.default_rng(3))
    assert runs["compiled"].backend == "compiled"
    assert np.array_equal(
        runs["interp"].log_weights(), runs["compiled"].log_weights()
    )
    assert kernel.lines_of_code > 0
