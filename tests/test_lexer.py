"""Unit tests for the surface-syntax lexer."""

import pytest

from repro.core.parser.lexer import Token, TokenKind, tokenize
from repro.errors import LexError


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only_source(self):
        tokens = tokenize("   \n\t  \r\n ")
        assert [t.kind for t in tokens] == [TokenKind.EOF]

    def test_identifier(self):
        (tok, _eof) = tokenize("my_var3")
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "my_var3"

    def test_underscore_identifier(self):
        (tok, _eof) = tokenize("_")
        assert tok.kind is TokenKind.IDENT

    def test_keyword_proc(self):
        (tok, _eof) = tokenize("proc")
        assert tok.kind is TokenKind.KEYWORD

    @pytest.mark.parametrize(
        "word",
        ["proc", "consume", "provide", "sample", "recv", "send", "if", "else",
         "return", "call", "observe", "let", "in", "fun", "true", "false"],
    )
    def test_all_language_keywords(self, word):
        (tok, _eof) = tokenize(word)
        assert tok.kind is TokenKind.KEYWORD
        assert tok.text == word

    @pytest.mark.parametrize(
        "word", ["Ber", "Unif", "Beta", "Gamma", "Normal", "Cat", "Geo", "Pois"]
    )
    def test_distribution_keywords(self, word):
        (tok, _eof) = tokenize(word)
        assert tok.kind is TokenKind.KEYWORD

    @pytest.mark.parametrize("word", ["unit", "bool", "ureal", "preal", "real", "nat", "dist"])
    def test_type_keywords(self, word):
        (tok, _eof) = tokenize(word)
        assert tok.kind is TokenKind.KEYWORD

    def test_non_keyword_similar_identifier(self):
        (tok, _eof) = tokenize("procx")
        assert tok.kind is TokenKind.IDENT


class TestNumbers:
    def test_integer_literal(self):
        (tok, _eof) = tokenize("42")
        assert tok.kind is TokenKind.INT
        assert tok.text == "42"

    def test_float_literal(self):
        (tok, _eof) = tokenize("3.14")
        assert tok.kind is TokenKind.FLOAT

    def test_scientific_notation(self):
        (tok, _eof) = tokenize("1.5e-3")
        assert tok.kind is TokenKind.FLOAT
        assert float(tok.text) == pytest.approx(0.0015)

    def test_integer_then_projection_dot_not_consumed(self):
        toks = texts("x.0")
        assert toks == ["x", ".", "0"]

    def test_float_followed_by_projection(self):
        # 1.5.0 lexes as FLOAT(1.5) DOT INT(0)
        toks = tokenize("1.5.0")
        assert toks[0].kind is TokenKind.FLOAT
        assert toks[1].kind is TokenKind.DOT
        assert toks[2].kind is TokenKind.INT


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("<-", TokenKind.LARROW),
            ("->", TokenKind.ARROW),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("&&", TokenKind.ANDAND),
            ("||", TokenKind.OROR),
        ],
    )
    def test_two_char_operators(self, text, kind):
        (tok, _eof) = tokenize(text)
        assert tok.kind is kind

    @pytest.mark.parametrize(
        "text,kind",
        [
            ("(", TokenKind.LPAREN),
            (")", TokenKind.RPAREN),
            ("{", TokenKind.LBRACE),
            ("}", TokenKind.RBRACE),
            (";", TokenKind.SEMI),
            (",", TokenKind.COMMA),
            ("+", TokenKind.PLUS),
            ("*", TokenKind.STAR),
            ("<", TokenKind.LT),
            ("=", TokenKind.ASSIGN),
        ],
    )
    def test_single_char_operators(self, text, kind):
        (tok, _eof) = tokenize(text)
        assert tok.kind is kind

    def test_arrow_vs_less_minus(self):
        # `< -` with a space is LT then MINUS, not LARROW.
        toks = tokenize("< -")
        assert toks[0].kind is TokenKind.LT
        assert toks[1].kind is TokenKind.MINUS


class TestCommentsAndPositions:
    def test_hash_comment_is_skipped(self):
        assert texts("x # this is a comment\ny") == ["x", "y"]

    def test_double_slash_comment_is_skipped(self):
        assert texts("x // comment\ny") == ["x", "y"]

    def test_comment_at_end_of_file(self):
        assert texts("x # trailing") == ["x"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_column_advances_within_line(self):
        tokens = tokenize("a b")
        assert tokens[1].column == 3

    def test_sample_command_token_sequence(self):
        toks = texts("v <- sample.recv{latent}(Gamma(2.0, 1.0));")
        assert toks == [
            "v", "<-", "sample", ".", "recv", "{", "latent", "}", "(",
            "Gamma", "(", "2.0", ",", "1.0", ")", ")", ";",
        ]


class TestErrors:
    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("x @ y")

    def test_error_mentions_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("abc\n  $")
        assert "line 2" in str(excinfo.value)

    def test_token_helper_methods(self):
        token = Token(TokenKind.KEYWORD, "proc", 1, 1)
        assert token.is_keyword("proc")
        assert not token.is_keyword("call")
