"""Unit tests for the megakernel tier: cache identity, path stamps,
ledger elision, rescore delegation, and tier validation.

Bitwise parity against the interpreter lives in
``tests/conformance/test_backend_parity.py``; this file covers the tier's
*mechanics* — the things that could silently go wrong without changing a
single weight on the happy path.
"""

import numpy as np
import pytest

from repro.compiler.codegen import FusedKernel, MegaKernel
from repro.core.semantics import traces as tr
from repro.engine.backend import (
    MegaParticleRunner,
    clear_kernel_cache,
    fused_kernel_for,
    make_particle_runner,
    record_compiled_fallback,
    validate_jit,
)
from repro.errors import InferenceError
from repro.models import get_benchmark
from repro.obs import REGISTRY


def _bench_pair(name="switching"):
    bench = get_benchmark(name)
    return bench, dict(
        model_program=bench.model_program(),
        guide_program=bench.guide_program(),
        model_entry=bench.model_entry,
        guide_entry=bench.guide_entry,
    )


def _mega_runner(name="switching", **kwargs):
    bench, pair = _bench_pair(name)
    runner = make_particle_runner(
        obs_trace=tuple(tr.ValP(v) for v in bench.obs_values),
        guide_args=tuple(bench.guide_param_inits.values()),
        backend="compiled",
        jit="mega",
        **pair,
        **kwargs,
    )
    assert isinstance(runner, MegaParticleRunner)
    return runner


def test_validate_jit_rejects_unknown_tiers():
    assert validate_jit("none") == "none"
    assert validate_jit("mega") == "mega"
    with pytest.raises(InferenceError, match="unknown jit tier"):
        validate_jit("cuda")
    with pytest.raises(InferenceError, match="unknown jit tier"):
        make_particle_runner(backend="compiled", jit="warp", **_bench_pair()[1])


def test_kernel_cache_key_separates_jit_tiers():
    """Regression: the kernel LRU used to key on program identity alone, so
    whichever tier compiled first was served to *both* — a fused kernel
    handed to a ``jit="mega"`` request (or vice versa).  The key now carries
    the tier: same pair, different tiers, different kernels."""
    _, pair = _bench_pair()
    clear_kernel_cache()
    try:
        fused, reason_f = fused_kernel_for(jit="none", **pair)
        mega, reason_m = fused_kernel_for(jit="mega", **pair)
        assert reason_f is None and reason_m is None
        assert isinstance(fused, FusedKernel)
        assert isinstance(mega, MegaKernel)
        # Each tier's second lookup is a *hit* on its own entry.
        assert fused_kernel_for(jit="none", **pair)[0] is fused
        assert fused_kernel_for(jit="mega", **pair)[0] is mega
    finally:
        clear_kernel_cache()


def test_kernel_cache_key_carries_array_namespace(monkeypatch):
    """A kernel compiled against one array namespace must not be served
    after the namespace changes (generated code binds ``np`` from
    :mod:`repro.xp` at load time)."""
    from repro import xp

    _, pair = _bench_pair()
    clear_kernel_cache()
    try:
        before, _ = fused_kernel_for(jit="mega", **pair)
        monkeypatch.setattr(xp, "active_namespace", lambda: "numpy+numba")
        after, _ = fused_kernel_for(jit="mega", **pair)
        assert after is not before
    finally:
        clear_kernel_cache()


def test_mega_run_stamps_leaf_paths():
    runner = _mega_runner()
    run = runner.run(300, np.random.default_rng(4))
    assert run.backend == "compiled" and run.jit == "mega"
    pids = [leaf.mega_path for leaf in run.leaves]
    # One stamp per populated path; paths no particle took are dropped, so
    # pids are unique and in-range but not necessarily contiguous.
    assert len(set(pids)) == len(pids)
    for pid in pids:
        assert 0 <= pid < len(runner.kernel.path_dirs)


def test_ledger_elision_preserves_weights():
    """``trim_site_scores=True`` elides the per-site score ledgers inside
    the kernel (IS/SMC never read them) without touching the weights."""
    bench, _ = _bench_pair()
    full = _mega_runner()
    trimmed = _mega_runner(trim_site_scores=True)
    r_full = full.run(300, np.random.default_rng(9))
    r_trim = trimmed.run(300, np.random.default_rng(9))
    assert np.array_equal(r_full.log_weights(), r_trim.log_weights())
    assert any(leaf.model_site_scores is not None for leaf in r_full.leaves)
    for leaf in r_trim.leaves:
        assert leaf.model_site_scores is None
        assert leaf.guide_site_scores is None


def test_rescore_divert_falls_back_to_interp_replay():
    """A stamp pointing outside the kernel's path tree (e.g. a leaf from a
    different program revision) diverts to the interpretive replay and
    increments the fallback metric — never crashes, never rescores the
    wrong path."""
    runner = _mega_runner()
    run = runner.run(100, np.random.default_rng(1))
    leaf = run.leaves[0]
    leaf.mega_path = len(runner.kernel.path_dirs) + 5
    mark = REGISTRY.mark()
    diverted = runner.rescore_group(leaf)
    leaf.mega_path = None
    reference = runner.rescore_group(leaf)
    moved = REGISTRY.delta(mark)
    assert moved.get('repro_compiled_fallback_total{reason="rescore-divert"}') == 1.0
    assert moved.get('repro_compiled_fallback_total{reason="rescore-unstamped"}') == 1.0
    assert np.array_equal(
        diverted.log_weights["guide"], reference.log_weights["guide"]
    )


def test_record_compiled_fallback_labels_are_closed_set():
    """The metric family's label values are an API (dashboards group by
    them); recording goes through one helper with normalized reasons."""
    mark = REGISTRY.mark()
    for reason in (
        "unsupported-fragment",
        "runtime-unsupported",
        "rescore-divert",
        "rescore-unstamped",
    ):
        record_compiled_fallback(reason)
    moved = REGISTRY.delta(mark)
    assert len(moved) == 4
    assert all(key.startswith("repro_compiled_fallback_total{") for key in moved)
