"""Property-based tests (hypothesis) for the core invariants.

The key theorems exercised here:

* **Type preservation (Thm. 4.4)** — traces produced by a joint execution of
  a well-typed model/guide pair conform to the inferred guide types.
* **Agreement of evaluation and the scheduler** — the log weight the
  scheduler accumulates equals the big-step evaluator's log density on the
  recorded traces.
* **Evaluation/reduction agreement (Thm. B.8)** — a trace combination is
  reducible iff its weight is strictly positive.
* **Distribution consistency** — samples lie in the support, the support
  matches the declared support type, and densities are positive exactly on
  the support.
* **Numerics** — normalised weights form a probability vector.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coroutines import run_model_guide
from repro.core.semantics import traces as tr
from repro.core.semantics.evaluate import log_density
from repro.core.semantics.reduction import reduces
from repro.core.semantics.traces import trace_conforms
from repro.core.typecheck import infer_guide_types
from repro.core.parser import parse_program
from repro.dists import (
    Bernoulli,
    Beta,
    Categorical,
    Gamma,
    Geometric,
    Normal,
    Poisson,
    Uniform01,
)
from repro.utils.numerics import log_sum_exp, normalize_log_weights

from tests.conftest import FIG5_GUIDE_SOURCE, FIG5_MODEL_SOURCE

FIG5_MODEL = parse_program(FIG5_MODEL_SOURCE)
FIG5_GUIDE = parse_program(FIG5_GUIDE_SOURCE)
FIG5_LATENT_TYPE = infer_guide_types(FIG5_MODEL).entry_channel_type("Model", "latent")

COMMON_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# Joint execution vs the declarative semantics
# ---------------------------------------------------------------------------


@COMMON_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000), obs=st.floats(-5.0, 5.0))
def test_joint_traces_conform_to_inferred_type(seed, obs):
    joint = run_model_guide(
        FIG5_MODEL, FIG5_GUIDE, "Model", "Guide1",
        obs_trace=(tr.ValP(obs),), rng=np.random.default_rng(seed),
    )
    assert trace_conforms(joint.traces["latent"], FIG5_LATENT_TYPE)


@COMMON_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000), obs=st.floats(-5.0, 5.0))
def test_scheduler_weights_equal_evaluator_densities(seed, obs):
    joint = run_model_guide(
        FIG5_MODEL, FIG5_GUIDE, "Model", "Guide1",
        obs_trace=(tr.ValP(obs),), rng=np.random.default_rng(seed),
    )
    model_eval = log_density(
        FIG5_MODEL, "Model", {"latent": joint.traces["latent"], "obs": (tr.ValP(obs),)}
    )
    guide_eval = log_density(FIG5_GUIDE, "Guide1", {"latent": joint.traces["latent"]})
    assert joint.log_weights["model"] == pytest.approx(model_eval)
    assert joint.log_weights["guide"] == pytest.approx(guide_eval)


@COMMON_SETTINGS
@given(
    x=st.floats(min_value=-2.0, max_value=6.0),
    selection=st.booleans(),
    y=st.floats(min_value=-0.5, max_value=1.5),
    obs=st.floats(-3.0, 3.0),
)
def test_evaluation_reduction_agreement(x, selection, y, obs):
    """Thm. B.8: reduction succeeds iff the evaluation weight is positive."""
    if selection:
        latent = (tr.ValP(x), tr.DirC(True))
    else:
        latent = (tr.ValP(x), tr.DirC(False), tr.ValP(y))
    traces = {"latent": latent, "obs": (tr.ValP(obs),)}
    weight_positive = log_density(FIG5_MODEL, "Model", traces) > -math.inf
    reduction_succeeds = reduces(FIG5_MODEL, "Model", traces=traces)
    assert weight_positive == reduction_succeeds


@COMMON_SETTINGS
@given(x=st.floats(min_value=0.001, max_value=10.0), obs=st.floats(-3.0, 3.0))
def test_trace_typing_implies_positive_model_density(x, obs):
    """Thm. 4.6 instance: a well-typed, &-free trace always evaluates with w > 0."""
    selection = x < 2.0
    latent = (tr.ValP(x), tr.DirC(selection))
    if not selection:
        latent = latent + (tr.ValP(0.5),)
    if not trace_conforms(latent, FIG5_LATENT_TYPE):
        return
    assert log_density(
        FIG5_MODEL, "Model", {"latent": latent, "obs": (tr.ValP(obs),)}
    ) > -math.inf


# ---------------------------------------------------------------------------
# Distributions
# ---------------------------------------------------------------------------


_DIST_STRATEGY = st.one_of(
    st.builds(Normal, st.floats(-5, 5), st.floats(0.1, 3.0)),
    st.builds(Gamma, st.floats(0.2, 5.0), st.floats(0.2, 5.0)),
    st.builds(Beta, st.floats(0.2, 5.0), st.floats(0.2, 5.0)),
    st.just(Uniform01()),
    st.builds(Bernoulli, st.floats(0.01, 0.99)),
    st.builds(lambda w: Categorical(list(w)), st.lists(st.floats(0.1, 5.0), min_size=1, max_size=5)),
    st.builds(Geometric, st.floats(0.05, 0.95)),
    st.builds(Poisson, st.floats(0.1, 10.0)),
)


@COMMON_SETTINGS
@given(dist=_DIST_STRATEGY, seed=st.integers(0, 100_000))
def test_samples_lie_in_support_with_positive_density(dist, seed):
    value = dist.sample(np.random.default_rng(seed))
    assert dist.in_support(value)
    assert dist.log_prob(value) > -math.inf
    assert dist.prob(value) >= 0.0


@COMMON_SETTINGS
@given(dist=_DIST_STRATEGY, seed=st.integers(0, 100_000))
def test_support_type_describes_samples(dist, seed):
    from repro.core.types import value_has_type

    value = dist.sample(np.random.default_rng(seed))
    assert value_has_type(value, dist.support_type)


@COMMON_SETTINGS
@given(
    dist=_DIST_STRATEGY,
    value=st.one_of(st.floats(-100, 100), st.integers(-10, 100), st.booleans()),
)
def test_density_is_zero_exactly_outside_the_support(dist, value):
    in_support = dist.in_support(value)
    positive_density = dist.log_prob(value) > -math.inf
    assert in_support == positive_density


# ---------------------------------------------------------------------------
# Numerics
# ---------------------------------------------------------------------------


@COMMON_SETTINGS
@given(
    log_weights=st.lists(
        st.one_of(st.floats(-50.0, 10.0), st.just(-math.inf)), min_size=1, max_size=30
    )
)
def test_normalized_log_weights_form_a_probability_vector(log_weights):
    weights = normalize_log_weights(log_weights)
    assert weights.shape == (len(log_weights),)
    assert np.all(weights >= 0.0)
    assert float(weights.sum()) == pytest.approx(1.0)


@COMMON_SETTINGS
@given(values=st.lists(st.floats(-30.0, 30.0), min_size=1, max_size=20))
def test_log_sum_exp_upper_and_lower_bounds(values):
    result = log_sum_exp(values)
    assert result >= max(values) - 1e-9
    assert result <= max(values) + math.log(len(values)) + 1e-9


# ---------------------------------------------------------------------------
# Parser / pretty-printer round trip
# ---------------------------------------------------------------------------


@COMMON_SETTINGS
@given(
    shape=st.floats(0.5, 5.0),
    rate=st.floats(0.5, 5.0),
    threshold=st.floats(0.5, 3.0),
)
def test_guide_type_inference_is_stable_under_reparsing(shape, rate, threshold):
    """Pretty-printing and reparsing a generated model preserves its protocol."""
    from repro.utils.pretty import pretty_program

    source = f"""
    proc M() consume latent provide obs {{
      v <- sample.recv{{latent}}(Gamma({shape:.3f}, {rate:.3f}));
      if.send{{latent}} v < {threshold:.3f} {{
        _ <- sample.send{{obs}}(Normal(0.0, 1.0));
        return(v)
      }} else {{
        m <- sample.recv{{latent}}(Beta(2.0, 2.0));
        _ <- sample.send{{obs}}(Normal(m, 1.0));
        return(v)
      }}
    }}
    """
    program = parse_program(source)
    reparsed = parse_program(pretty_program(program))
    original_type = infer_guide_types(program).entry_channel_type("M", "latent")
    reparsed_type = infer_guide_types(reparsed).entry_channel_type("M", "latent")
    assert original_type == reparsed_type
