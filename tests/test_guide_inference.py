"""Tests for guide-type inference — the paper's central algorithm."""

import pytest

from repro.core import types as ty
from repro.core.parser import parse_program
from repro.core.typecheck import check_model_guide_pair, infer_guide_types
from repro.core.typecheck.equality import types_equal_up_to_unfolding
from repro.errors import GuideTypeError, TypeError_



class TestFig5Protocols:
    """The paper's Sec. 2 example: types (3) and (4)."""

    def test_model_latent_protocol_matches_equation_3(self, fig5_model):
        result = infer_guide_types(fig5_model)
        latent = result.entry_channel_type("Model", "latent")
        expected = ty.SendVal(
            ty.PREAL, ty.Choose(ty.End(), ty.SendVal(ty.UREAL, ty.End()))
        )
        assert latent == expected

    def test_model_obs_protocol_matches_equation_4(self, fig5_model):
        result = infer_guide_types(fig5_model)
        obs = result.entry_channel_type("Model", "obs")
        assert obs == ty.SendVal(ty.REAL, ty.End())

    def test_guide_latent_protocol_equals_models(self, fig5_model, fig5_guide):
        model_latent = infer_guide_types(fig5_model).entry_channel_type("Model", "latent")
        guide_latent = infer_guide_types(fig5_guide).entry_channel_type("Guide1", "latent")
        assert model_latent == guide_latent

    def test_signatures_are_registered(self, fig5_model):
        result = infer_guide_types(fig5_model)
        sig = result.table.signature("Model")
        assert sig.consume_channel == "latent"
        assert sig.provide_channel == "obs"

    def test_channel_types_for_unknown_channel_raise(self, fig5_model):
        result = infer_guide_types(fig5_model)
        with pytest.raises(GuideTypeError):
            result.entry_channel_type("Model", "nonexistent")


class TestRecursion:
    """The paper's Sec. 2 recursion example: R[X] = ℝ(0,1) ∧ ((ℝ ∧ X) N R[R[X]])."""

    def test_pcfggen_operator_definition(self, fig6_pcfg):
        result = infer_guide_types(fig6_pcfg)
        typedef = result.table.lookup("PcfgGen.latent")
        x = ty.TyVar(typedef.param)
        expected = ty.SendVal(
            ty.UREAL,
            ty.Choose(
                ty.SendVal(ty.REAL, x),
                ty.OpApp("PcfgGen.latent", ty.OpApp("PcfgGen.latent", x)),
            ),
        )
        assert typedef.body == expected

    def test_pcfg_entry_type(self, fig6_pcfg):
        result = infer_guide_types(fig6_pcfg)
        latent = result.entry_channel_type("Pcfg", "latent")
        assert latent == ty.SendVal(ty.UREAL, ty.OpApp("PcfgGen.latent", ty.End()))

    def test_recursive_guide_matches_recursive_model(self, fig6_pcfg, fig6_pcfg_guide):
        model_result = infer_guide_types(fig6_pcfg)
        guide_result = infer_guide_types(fig6_pcfg_guide)
        assert types_equal_up_to_unfolding(
            model_result.entry_channel_type("Pcfg", "latent"),
            guide_result.entry_channel_type("PcfgGuide", "latent"),
            model_result.table,
            guide_result.table,
        )

    def test_mutually_recursive_procedures(self):
        program = parse_program(
            """
            proc Even() consume latent {
              u <- sample.recv{latent}(Unif);
              if.send{latent} u < 0.5 {
                return(0)
              } else {
                call Odd()
              }
            }
            proc Odd() consume latent {
              u <- sample.recv{latent}(Unif);
              if.send{latent} u < 0.5 {
                return(1)
              } else {
                call Even()
              }
            }
            """
        )
        result = infer_guide_types(program)
        even = result.table.lookup("Even.latent")
        assert isinstance(even.body, ty.SendVal)
        # The else-branch of Even refers to Odd's operator, and vice versa.
        assert "Odd.latent" in str(even.body)


class TestExample43:
    """Paper Example 4.3: a non-tail call sequence gives T[ℝ ∧ T[1]]."""

    def test_backward_instantiation_of_type_operators(self):
        program = parse_program(
            """
            proc Main(k: ureal) consume latent {
              _ <- call F(k);
              _ <- sample.recv{latent}(Normal(0.0, 1.0));
              _ <- call F(k);
              return()
            }
            proc F(k: ureal) consume latent {
              u <- sample.recv{latent}(Unif);
              return()
            }
            """
        )
        result = infer_guide_types(program)
        main_def = result.table.lookup("Main.latent")
        x = ty.TyVar(main_def.param)
        expected = ty.OpApp("F.latent", ty.SendVal(ty.REAL, ty.OpApp("F.latent", x)))
        assert main_def.body == expected


class TestErrors:
    def test_communication_on_undeclared_channel_rejected(self):
        program = parse_program(
            "proc F() consume latent { sample.recv{other}(Unif) }"
        )
        with pytest.raises(GuideTypeError):
            infer_guide_types(program)

    def test_branch_disagreement_on_other_channel_rejected(self):
        # The two branches of a conditional on `latent` disagree about what
        # happens on `obs`, which rule (TM:Cond) forbids.
        program = parse_program(
            """
            proc F() consume latent provide obs {
              v <- sample.recv{latent}(Unif);
              if.send{latent} v < 0.5 {
                _ <- sample.send{obs}(Normal(0.0, 1.0));
                return(v)
              } else {
                return(v)
              }
            }
            """
        )
        with pytest.raises(GuideTypeError):
            infer_guide_types(program)

    def test_pure_conditional_with_different_latent_sets_rejected(self):
        program = parse_program(
            """
            proc F(flag: bool) consume latent {
              if flag {
                u <- sample.recv{latent}(Unif);
                return(u)
              } else {
                return(0.5)
              }
            }
            """
        )
        with pytest.raises(GuideTypeError):
            infer_guide_types(program)

    def test_non_boolean_predicate_rejected(self):
        program = parse_program(
            """
            proc F() consume latent {
              v <- sample.recv{latent}(Unif);
              if.send{latent} v + 1.0 { return(v) } else { return(v) }
            }
            """
        )
        # The basic checker catches this before guide-type inference proper;
        # both error classes share the TypeError_ parent.
        with pytest.raises(TypeError_):
            infer_guide_types(program)

    def test_call_with_mismatched_channel_role_rejected(self):
        program = parse_program(
            """
            proc Main() provide latent {
              call Helper()
            }
            proc Helper() consume latent {
              sample.recv{latent}(Unif)
            }
            """
        )
        with pytest.raises(GuideTypeError):
            infer_guide_types(program)

    def test_sample_of_non_distribution_rejected(self):
        program = parse_program("proc F() consume latent { sample.recv{latent}(1.0) }")
        with pytest.raises(TypeError_):
            infer_guide_types(program)


class TestModelGuidePairChecking:
    def test_fig5_pair_is_compatible(self, fig5_model, fig5_guide):
        result = check_model_guide_pair(fig5_model, fig5_guide, "Model", "Guide1")
        assert result.compatible
        assert result.reason is None

    def test_unsound_guide1_prime_is_rejected(self, fig5_model):
        # Fig. 3's Guide1': samples @x from a Poisson (support ℕ, not ℝ+).
        guide = parse_program(
            """
            proc Guide1Bad() provide latent {
              v <- sample.send{latent}(Pois(4.0));
              if.recv{latent} {
                return(v)
              } else {
                m <- sample.send{latent}(Unif);
                return(v)
              }
            }
            """
        )
        result = check_model_guide_pair(fig5_model, guide, "Model", "Guide1Bad")
        assert not result.compatible
        assert "disagree" in result.reason

    def test_unsound_guide2_prime_is_rejected(self, fig5_model):
        # Fig. 4's Guide2': samples @x from a Normal (support ℝ, not ℝ+).
        guide = parse_program(
            """
            proc Guide2Bad() provide latent {
              v <- sample.send{latent}(Normal(0.0, 1.0));
              if.recv{latent} {
                return(v)
              } else {
                m <- sample.send{latent}(Unif);
                return(v)
              }
            }
            """
        )
        result = check_model_guide_pair(fig5_model, guide, "Model", "Guide2Bad")
        assert not result.compatible

    def test_guide_missing_branch_sample_is_rejected(self, fig5_model):
        guide = parse_program(
            """
            proc GuideMissing() provide latent {
              v <- sample.send{latent}(Gamma(1.0, 1.0));
              if.recv{latent} {
                return(v)
              } else {
                return(v)
              }
            }
            """
        )
        result = check_model_guide_pair(fig5_model, guide, "Model", "GuideMissing")
        assert not result.compatible

    def test_control_flow_divergence_is_allowed(self):
        """Sec. 2.2: the guide may branch on data as long as the protocol matches."""
        model = parse_program(
            """
            proc Outliers() consume latent provide obs {
              prob_outlier <- sample.recv{latent}(Unif);
              is_outlier <- sample.recv{latent}(Ber(prob_outlier));
              _ <- sample.send{obs}(Normal(0.0, 1.0));
              return(is_outlier)
            }
            """
        )
        guide = parse_program(
            """
            proc OutliersGuide(old_is_outlier: bool) provide latent {
              prob_outlier <- sample.send{latent}(Beta(2.0, 5.0));
              if old_is_outlier {
                is_outlier <- sample.send{latent}(Ber(0.1));
                return(is_outlier)
              } else {
                is_outlier <- sample.send{latent}(Ber(0.9));
                return(is_outlier)
              }
            }
            """
        )
        result = check_model_guide_pair(model, guide, "Outliers", "OutliersGuide")
        assert result.compatible
        expected = ty.SendVal(ty.UREAL, ty.SendVal(ty.BOOL, ty.End()))
        assert result.latent_type_model == expected

    def test_model_must_consume_latent(self, fig5_guide):
        with pytest.raises(GuideTypeError):
            check_model_guide_pair(fig5_guide, fig5_guide, "Guide1", "Guide1")

    def test_guide_must_provide_latent(self, fig5_model):
        with pytest.raises(GuideTypeError):
            check_model_guide_pair(fig5_model, fig5_model, "Model", "Model")

    def test_swapped_sampling_order_is_rejected(self):
        """Our system requires the guide to sample in the model's order (Sec. 6)."""
        model = parse_program(
            """
            proc M() consume latent provide obs {
              a <- sample.recv{latent}(Unif);
              b <- sample.recv{latent}(Normal(0.0, 1.0));
              _ <- sample.send{obs}(Normal(a + b, 1.0));
              return(a)
            }
            """
        )
        guide = parse_program(
            """
            proc G() provide latent {
              b <- sample.send{latent}(Normal(0.0, 1.0));
              a <- sample.send{latent}(Unif);
              return(a)
            }
            """
        )
        result = check_model_guide_pair(model, guide, "M", "G")
        assert not result.compatible
