"""Streaming-SMC sessions: determinism, durability, and the session table.

The load-bearing guarantee is the determinism oracle: a session that
received its observations one push at a time must hold *bit-identical*
state to a one-shot SMC run over the same observations — for both backends
and across shard counts, because replay-from-seed recomputes the whole
prefix with the pinned seed on every push.  Durability is pinned the hard
way: a subprocess opens and feeds a session, dies via SIGKILL (no shutdown
hook runs), and a fresh :class:`SessionManager` on the same checkpoint
directory must restore it bit-identically.  The rest pins the table
semantics: TTL expiry answers ``session_expired``, per-tenant caps answer
``session_limit``, closed ids answer ``session_not_found``, tenants cannot
see each other's sessions, and fixed-demand models buffer until their
observation demand is met.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.engine.api import InferenceRequest, run_engine
from repro.engine.session import ProgramSession
from repro.engine.streaming import (
    CODE_SESSION_EXPIRED,
    CODE_SESSION_LIMIT,
    CODE_SESSION_NOT_FOUND,
    SessionManager,
    StreamingError,
    checkpoint_filename,
)
from repro.models import STREAMING_FAMILIES, get_benchmark, streaming_sources

OBS = [0.4, 1.1, 0.8, 1.6]


def _open_payload(particles=300, seed=11, backend="interp", shards=None, **extra):
    payload = {
        "benchmark": "stream_rw",
        "grow": True,
        "params": {"num_particles": particles, "seed": seed, "backend": backend},
    }
    if shards is not None:
        payload["params"]["shards"] = shards
    payload.update(extra)
    return payload


def _one_shot(obs, particles=300, seed=11, backend="interp", shards=None):
    """The oracle: one-shot SMC over ``obs`` with the same pinned seed."""
    model, guide = streaming_sources(len(obs))
    session = ProgramSession.from_sources(model, guide)
    request = InferenceRequest(
        num_particles=particles,
        shards=shards,
        backend=backend,
        obs_values=list(obs),
        seed=seed,
    )
    return run_engine("smc", session, request)


class TestDeterminismOracle:
    """Streamed == one-shot, bitwise, for both backends and shard counts."""

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    @pytest.mark.parametrize("shards", [None, 4])
    def test_streamed_equals_one_shot(self, backend, shards):
        manager = SessionManager()
        sid = manager.open("t0", _open_payload(backend=backend, shards=shards))[
            "session_id"
        ]
        for value in OBS:
            body = manager.push("t0", sid, [value])
            assert body["status"] == "active"
        session = manager.get("t0", sid)
        oracle = _one_shot(OBS, backend=backend, shards=shards)

        assert np.array_equal(
            session.result.raw.log_weights, oracle.raw.log_weights
        ), f"streamed population diverged from one-shot ({backend}, shards={shards})"
        assert session.result.log_evidence() == oracle.log_evidence()
        assert session.result.raw.resample_steps == oracle.raw.resample_steps
        for site in range(len(OBS)):
            assert session.result.posterior_mean(site) == oracle.posterior_mean(site)

    def test_push_granularity_is_irrelevant(self):
        """One push of four observations == four pushes of one."""
        manager = SessionManager()
        one = manager.open("t0", _open_payload())["session_id"]
        manager.push("t0", one, OBS)
        four = manager.open("t0", _open_payload())["session_id"]
        for value in OBS:
            manager.push("t0", four, [value])
        a = manager.get("t0", one).result
        b = manager.get("t0", four).result
        assert np.array_equal(a.raw.log_weights, b.raw.log_weights)
        assert a.log_evidence() == b.log_evidence()

    def test_mid_stream_checkpoint_restore_reproduces_final_population(self, tmp_path):
        """Checkpoint after 2 pushes, restore, push the rest: same result."""
        manager = SessionManager(checkpoint_dir=str(tmp_path))
        sid = manager.open("t0", _open_payload(), session_id="mid")["session_id"]
        manager.push("t0", sid, OBS[:2])
        assert manager.shutdown() == 1

        restored = SessionManager(checkpoint_dir=str(tmp_path))
        restored.push("t0", sid, OBS[2:])
        streamed = restored.get("t0", sid).result
        oracle = _one_shot(OBS)
        assert np.array_equal(streamed.raw.log_weights, oracle.raw.log_weights)
        assert streamed.log_evidence() == oracle.log_evidence()


class TestCheckpointDurability:
    def test_sigkilled_process_restores_bit_identically(self, tmp_path):
        """Open + push in a subprocess, SIGKILL it, restore here."""
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.engine.streaming import SessionManager
            manager = SessionManager(checkpoint_dir={str(tmp_path)!r})
            manager.open(
                "t0",
                {{"benchmark": "stream_rw", "grow": True,
                  "params": {{"num_particles": 300, "seed": 11}}}},
                session_id="doomed",
            )
            manager.push("t0", "doomed", {OBS[:3]!r})
            print("READY", flush=True)
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        assert "READY" in proc.stdout, proc.stderr
        assert proc.returncode == -signal.SIGKILL

        manager = SessionManager(checkpoint_dir=str(tmp_path))
        streamed = manager.get("t0", "doomed").result
        oracle = _one_shot(OBS[:3])
        assert np.array_equal(streamed.raw.log_weights, oracle.raw.log_weights)
        assert streamed.log_evidence() == oracle.log_evidence()
        # And the restored session keeps accepting pushes.
        body = manager.push("t0", "doomed", [OBS[3]])
        assert body["steps"] == 4

    def test_corrupt_checkpoint_is_structured_not_found(self, tmp_path):
        manager = SessionManager(checkpoint_dir=str(tmp_path))
        manager.open("t0", _open_payload(), session_id="hurt")
        manager.shutdown()
        path = tmp_path / checkpoint_filename("t0", "hurt")
        path.write_text(path.read_text().replace("stream_rw", "stream_xx"))
        fresh = SessionManager(checkpoint_dir=str(tmp_path))
        with pytest.raises(StreamingError) as err:
            fresh.get("t0", "hurt")
        assert err.value.code == CODE_SESSION_NOT_FOUND

    def test_open_alone_is_durable(self, tmp_path):
        """A session is durable from open, not from its first push."""
        manager = SessionManager(checkpoint_dir=str(tmp_path))
        manager.open("t0", _open_payload(), session_id="bare")
        fresh = SessionManager(checkpoint_dir=str(tmp_path))
        assert fresh.get("t0", "bare").status == "buffering"


class TestSessionTable:
    def test_ttl_expiry_answers_session_expired(self):
        clock = {"now": 0.0}
        manager = SessionManager(ttl_s=10.0, clock=lambda: clock["now"])
        sid = manager.open("t0", _open_payload())["session_id"]
        clock["now"] = 9.0
        assert manager.get("t0", sid) is not None  # touch resets idleness
        clock["now"] = 18.5
        manager.get("t0", sid)
        clock["now"] = 30.0
        with pytest.raises(StreamingError) as err:
            manager.push("t0", sid, [1.0])
        assert err.value.code == CODE_SESSION_EXPIRED
        # The id stays distinguishable from a never-seen one (tombstoned).
        with pytest.raises(StreamingError) as err:
            manager.get("t0", sid)
        assert err.value.code == CODE_SESSION_EXPIRED
        with pytest.raises(StreamingError) as err:
            manager.get("t0", "never-seen")
        assert err.value.code == CODE_SESSION_NOT_FOUND

    def test_sweep_expires_idle_sessions(self):
        clock = {"now": 0.0}
        manager = SessionManager(ttl_s=10.0, clock=lambda: clock["now"])
        manager.open("t0", _open_payload())
        manager.open("t0", _open_payload())
        clock["now"] = 60.0
        assert manager.sweep() == 2
        assert manager.stats()["live"] == 0

    def test_per_tenant_cap_answers_session_limit(self):
        manager = SessionManager(per_tenant=2)
        manager.open("t0", _open_payload())
        manager.open("t0", _open_payload())
        with pytest.raises(StreamingError) as err:
            manager.open("t0", _open_payload())
        assert err.value.code == CODE_SESSION_LIMIT
        # Another tenant is unaffected.
        manager.open("t1", _open_payload())

    def test_close_tombstones_the_id(self):
        manager = SessionManager()
        sid = manager.open("t0", _open_payload())["session_id"]
        body = manager.close("t0", sid)
        assert body["closed"] is True
        with pytest.raises(StreamingError) as err:
            manager.get("t0", sid)
        assert err.value.code == CODE_SESSION_NOT_FOUND

    def test_tenant_isolation(self):
        manager = SessionManager()
        sid = manager.open("t0", _open_payload())["session_id"]
        with pytest.raises(StreamingError) as err:
            manager.query("t1", sid, [0])
        assert err.value.code == CODE_SESSION_NOT_FOUND

    def test_capacity_eviction_restores_from_checkpoint(self, tmp_path):
        manager = SessionManager(capacity=1, checkpoint_dir=str(tmp_path))
        a = manager.open("t0", _open_payload())["session_id"]
        manager.push("t0", a, OBS[:2])
        manager.open("t0", _open_payload())  # evicts a (checkpointed first)
        assert manager.stats()["live"] == 1
        assert manager.get("t0", a).journal == OBS[:2]

    def test_journal_cap_answers_session_limit(self):
        manager = SessionManager()
        sid = manager.open("t0", _open_payload(max_steps=2))["session_id"]
        manager.push("t0", sid, OBS[:2])
        with pytest.raises(StreamingError) as err:
            manager.push("t0", sid, [1.0])
        assert err.value.code == CODE_SESSION_LIMIT

    def test_duplicate_client_id_rejected(self):
        manager = SessionManager()
        manager.open("t0", _open_payload(), session_id="dup")
        with pytest.raises(StreamingError) as err:
            manager.open("t0", _open_payload(), session_id="dup")
        assert err.value.code == "invalid_request"


class TestFixedDemandModels:
    def test_buffering_until_demand_met(self):
        bench = get_benchmark("seasonal")
        manager = SessionManager()
        sid = manager.open("t0", {"benchmark": "seasonal", "params": {"seed": 3}})[
            "session_id"
        ]
        demand = len(bench.obs_values)
        for i, value in enumerate(bench.obs_values):
            body = manager.push("t0", sid, [float(value)])
            expected = "active" if i == demand - 1 else "buffering"
            assert body["status"] == expected, f"push {i}: {body}"
        assert body["steps_applied"] == demand

    def test_extra_observations_reported_unused(self):
        bench = get_benchmark("seasonal")
        manager = SessionManager()
        sid = manager.open("t0", {"benchmark": "seasonal", "params": {"seed": 3}})[
            "session_id"
        ]
        manager.push("t0", sid, [float(v) for v in bench.obs_values])
        body = manager.push("t0", sid, [9.9])
        assert body["status"] == "active"
        assert body["unused_observations"] == 1


class TestGrowableFamilies:
    def test_stream_rw_registered(self):
        assert "stream_rw" in STREAMING_FAMILIES
        bench = get_benchmark("stream_rw")
        assert bench.model_entry == "StreamRW"

    @pytest.mark.parametrize("steps", [1, 2, 5, 9])
    def test_every_unroll_certifies(self, steps):
        model, guide = streaming_sources(steps)
        session = ProgramSession.from_sources(model, guide)
        assert session.certified, session.certification_reason
