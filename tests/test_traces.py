"""Tests for guidance traces and the well-formedness judgment σ : A."""

import pytest

from repro.core import types as ty
from repro.core.semantics import traces as tr
from repro.errors import TraceTypeMismatch


FIG5_LATENT = ty.SendVal(ty.PREAL, ty.Choose(ty.End(), ty.SendVal(ty.UREAL, ty.End())))


class TestTraceBasics:
    def test_sample_values_extraction(self):
        trace = (tr.ValP(1.0), tr.DirC(True), tr.ValP(0.3), tr.Fold())
        assert tr.sample_values(trace) == [1.0, 0.3]

    def test_branch_selections_extraction(self):
        trace = (tr.ValP(1.0), tr.DirC(True), tr.DirP(False))
        assert tr.branch_selections(trace) == [True, False]

    def test_format_trace(self):
        text = tr.format_trace((tr.ValP(1.0), tr.Fold()))
        assert text.startswith("[") and "fold" in text

    def test_provider_samples_helper(self):
        assert tr.provider_samples(1.0, 2.0) == (tr.ValP(1.0), tr.ValP(2.0))

    def test_concat(self):
        assert tr.concat((tr.ValP(1.0),), (tr.Fold(),)) == (tr.ValP(1.0), tr.Fold())

    def test_messages_are_hashable_and_comparable(self):
        assert tr.ValP(1.0) == tr.ValP(1.0)
        assert tr.ValP(1.0) != tr.ValC(1.0)
        assert hash(tr.DirP(True)) == hash(tr.DirP(True))


class TestTraceCursor:
    def test_take_in_order(self):
        cursor = tr.TraceCursor((tr.ValP(1.0), tr.DirC(True)))
        assert cursor.take(tr.ValP, "first").value == 1.0
        assert cursor.take(tr.DirC, "second").value is True
        assert cursor.exhausted()

    def test_take_wrong_kind_raises(self):
        cursor = tr.TraceCursor((tr.ValP(1.0),))
        with pytest.raises(TraceTypeMismatch):
            cursor.take(tr.DirP, "selection")

    def test_take_past_end_raises(self):
        cursor = tr.TraceCursor(())
        with pytest.raises(TraceTypeMismatch):
            cursor.take(tr.ValP, "value")

    def test_snapshot_restore(self):
        cursor = tr.TraceCursor((tr.ValP(1.0), tr.ValP(2.0)))
        mark = cursor.snapshot()
        cursor.take(tr.ValP, "x")
        cursor.restore(mark)
        assert cursor.position == 0

    def test_remaining(self):
        cursor = tr.TraceCursor((tr.ValP(1.0), tr.ValP(2.0)))
        cursor.take(tr.ValP, "x")
        assert cursor.remaining() == (tr.ValP(2.0),)


class TestConformance:
    def test_empty_trace_has_end_type(self):
        assert tr.trace_conforms((), ty.End())

    def test_nonempty_trace_fails_end_type(self):
        assert not tr.trace_conforms((tr.ValP(1.0),), ty.End())

    def test_fig5_then_branch_trace(self):
        trace = (tr.ValP(1.5), tr.DirC(True))
        assert tr.trace_conforms(trace, FIG5_LATENT)

    def test_fig5_else_branch_trace(self):
        trace = (tr.ValP(3.0), tr.DirC(False), tr.ValP(0.9))
        assert tr.trace_conforms(trace, FIG5_LATENT)

    def test_fig5_wrong_payload_type_rejected(self):
        # @x must be a positive real; a negative value breaks ℝ+.
        trace = (tr.ValP(-1.0), tr.DirC(True))
        assert not tr.trace_conforms(trace, FIG5_LATENT)

    def test_fig5_missing_branch_payload_rejected(self):
        trace = (tr.ValP(3.0), tr.DirC(False))
        assert not tr.trace_conforms(trace, FIG5_LATENT)

    def test_fig5_extra_messages_rejected(self):
        trace = (tr.ValP(1.5), tr.DirC(True), tr.ValP(0.5))
        assert not tr.trace_conforms(trace, FIG5_LATENT)

    def test_wrong_message_polarity_rejected(self):
        trace = (tr.ValC(1.5), tr.DirC(True))
        assert not tr.trace_conforms(trace, FIG5_LATENT)

    def test_recv_val_type(self):
        recv_type = ty.RecvVal(ty.REAL, ty.End())
        assert tr.trace_conforms((tr.ValC(0.7),), recv_type)
        assert not tr.trace_conforms((tr.ValP(0.7),), recv_type)

    def test_offer_type_uses_provider_selection(self):
        offer = ty.Offer(ty.SendVal(ty.REAL, ty.End()), ty.End())
        assert tr.trace_conforms((tr.DirP(True), tr.ValP(0.0)), offer)
        assert tr.trace_conforms((tr.DirP(False),), offer)
        assert not tr.trace_conforms((tr.DirC(True), tr.ValP(0.0)), offer)

    def test_operator_application_needs_fold_and_table(self):
        table = ty.TypeTable()
        table.define(ty.TypeDef("T", "X", ty.SendVal(ty.UREAL, ty.TyVar("X"))))
        applied = ty.OpApp("T", ty.End())
        assert tr.trace_conforms((tr.Fold(), tr.ValP(0.5)), applied, table)
        assert not tr.trace_conforms((tr.ValP(0.5),), applied, table)

    def test_operator_application_without_table_raises(self):
        applied = ty.OpApp("T", ty.End())
        with pytest.raises(TraceTypeMismatch):
            tr.check_trace((tr.Fold(),), applied, table=None)

    def test_recursive_operator_conformance(self):
        # R[X] = ureal /\ ((real /\ X) & R[R[X]]), the Fig. 6 protocol.
        table = ty.TypeTable()
        x = ty.TyVar("X")
        table.define(
            ty.TypeDef(
                "R",
                "X",
                ty.SendVal(
                    ty.UREAL,
                    ty.Choose(ty.SendVal(ty.REAL, x), ty.OpApp("R", ty.OpApp("R", x))),
                ),
            )
        )
        leaf = (tr.Fold(), tr.ValP(0.2), tr.DirC(True), tr.ValP(0.1))
        assert tr.trace_conforms(leaf, ty.OpApp("R", ty.End()), table)
        node = (
            tr.Fold(), tr.ValP(0.9), tr.DirC(False),
            tr.Fold(), tr.ValP(0.2), tr.DirC(True), tr.ValP(-1.0),
            tr.Fold(), tr.ValP(0.3), tr.DirC(True), tr.ValP(2.0),
        )
        assert tr.trace_conforms(node, ty.OpApp("R", ty.End()), table)

    def test_open_type_cannot_be_checked(self):
        with pytest.raises(TraceTypeMismatch):
            tr.check_trace((), ty.TyVar("X"))
