"""The async batch-inference service: coalescing, counters, TCP protocol."""

import asyncio
import json

import pytest

from repro.engine import ProgramSession
from repro.engine.server import InferenceService, ServerCounters, serve_tcp
from repro.models import get_benchmark

BENCH = get_benchmark("weight")


def _payload(seed=0, request_id=None, particles=400, **overrides):
    payload = {
        "id": request_id,
        "model": BENCH.model_source,
        "guide": BENCH.guide_source,
        "engine": "is",
        "sites": [0],
        "params": {
            "num_particles": particles,
            "seed": seed,
            "obs_values": list(BENCH.obs_values),
            "guide_args": [8.5, 0.0],
            "shards": 4,
        },
    }
    payload.update(overrides)
    return payload


async def _with_service(coro, workers=1, batch_window_s=0.005):
    service = InferenceService(workers=workers, batch_window_s=batch_window_s)
    await service.start()
    try:
        return await coro(service)
    finally:
        await service.stop()


class TestSubmit:
    def test_single_request_round_trip(self):
        async def go(service):
            return await service.submit(_payload(request_id="r1"))

        response = asyncio.run(_with_service(go))
        assert response["ok"] and response["id"] == "r1"
        assert response["engine"] == "is"
        assert response["posterior_means"]["0"] == pytest.approx(9.14, abs=0.2)
        assert response["log_evidence"] is not None
        assert response["server"]["run_s"] >= 0.0

    def test_coalesced_requests_match_solo_runs(self):
        """Batched scheduling never changes values: every coalesced response
        equals the same request submitted alone."""

        async def batched(service):
            return await asyncio.gather(
                *[service.submit(_payload(seed=s, request_id=f"r{s}")) for s in range(3)]
            )

        async def solo(service):
            return [await service.submit(_payload(seed=s)) for s in range(3)]

        together = asyncio.run(_with_service(batched))
        alone = asyncio.run(_with_service(solo, batch_window_s=0.0))
        assert any(r["server"]["batch_size"] > 1 for r in together)
        for got, want in zip(together, alone):
            assert got["posterior_means"] == want["posterior_means"]
            assert got["log_evidence"] == want["log_evidence"]

    def test_mixed_engines_in_one_batch(self):
        async def go(service):
            return await asyncio.gather(
                service.submit(_payload(engine="is")),
                service.submit(_payload(engine="smc")),
            )

        is_resp, smc_resp = asyncio.run(_with_service(go))
        assert is_resp["ok"] and smc_resp["ok"]
        assert smc_resp["posterior_means"]["0"] == pytest.approx(
            is_resp["posterior_means"]["0"], abs=0.3
        )


class TestValidation:
    def test_parse_error_is_reported_not_raised(self):
        async def go(service):
            return await service.submit(_payload(model="not a program"))

        response = asyncio.run(_with_service(go))
        assert not response["ok"] and "error" in response

    def test_unknown_engine_rejected(self):
        async def go(service):
            return await service.submit(_payload(engine="quantum"))

        response = asyncio.run(_with_service(go))
        assert not response["ok"] and "unknown engine" in response["error"]

    def test_unknown_request_fields_rejected(self):
        async def go(service):
            bad = _payload()
            bad["params"]["particules"] = 7
            return await service.submit(bad)

        response = asyncio.run(_with_service(go))
        assert not response["ok"] and "particules" in response["error"]

    def test_uncertified_pair_refused_without_force(self):
        model = """
        proc M() consume latent provide obs {
          v <- sample.recv{latent}(Normal(0.0, 1.0));
          _ <- sample.send{obs}(Normal(v, 1.0));
          return(v)
        }
        """
        guide = """
        proc G() provide latent {
          v <- sample.send{latent}(Unif);
          return(v)
        }
        """
        # Sanity: this pair really is uncertified (Unif cannot cover Normal).
        assert not ProgramSession.from_sources(model, guide).certified

        async def go(service):
            refused = await service.submit(
                {"model": model, "guide": guide, "params": {"num_particles": 10}}
            )
            forced = await service.submit(
                {"model": model, "guide": guide, "force": True,
                 "params": {"num_particles": 10, "seed": 0}}
            )
            return refused, forced

        refused, forced = asyncio.run(_with_service(go))
        assert not refused["ok"] and "not certified" in refused["error"]
        # Forced runs execute (they may still fail statistically downstream,
        # but this pair overlaps enough to produce weights).
        assert forced["ok"]


class TestCounters:
    def test_counters_track_requests_and_coalescing(self):
        async def go(service):
            await asyncio.gather(
                *[service.submit(_payload(seed=s)) for s in range(3)]
            )
            await service.submit(_payload(model="broken source"))
            return service.counters.snapshot()

        snap = asyncio.run(_with_service(go))
        assert snap["requests_total"] == 4
        assert snap["failures_total"] == 1
        assert snap["particles_total"] == 3 * 400
        assert snap["batches_total"] >= 1
        assert snap["latency_s_max"] >= snap["queue_wait_s_mean"]
        assert snap["requests_per_s"] > 0

    def test_counters_snapshot_is_json_serialisable(self):
        json.dumps(ServerCounters().snapshot())


class TestTCP:
    def test_jsonl_round_trip_and_stats(self):
        async def go(service):
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write((json.dumps(_payload(request_id="a")) + "\n").encode())
            writer.write((json.dumps(_payload(seed=1, request_id="b")) + "\n").encode())
            writer.write(b'{"op": "stats", "id": "stats"}\n')
            writer.write(b'not json\n')
            writer.write(b'{"op": "warp", "id": "w"}\n')
            await writer.drain()
            responses = [json.loads(await reader.readline()) for _ in range(5)]
            writer.close()
            server.close()
            await server.wait_closed()
            return {r.get("id"): r for r in responses}

        by_id = asyncio.run(_with_service(go))
        assert by_id["a"]["ok"] and by_id["b"]["ok"]
        assert by_id["a"]["posterior_means"]["0"] != by_id["b"]["posterior_means"]["0"]
        # Responses stream back out of order; stats may answer before the
        # inference requests land, so only its shape is guaranteed.
        assert by_id["stats"]["ok"] and "requests_total" in by_id["stats"]["counters"]
        assert not by_id[None]["ok"] and "bad JSON" in by_id[None]["error"]
        assert not by_id["w"]["ok"] and "unknown op" in by_id["w"]["error"]


def test_serve_subcommand_registered():
    """The CLI exposes the server with its shard controls."""
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--port", "0", "--workers", "2", "--batch-window-ms", "1"]
    )
    assert args.workers == 2 and args.port == 0


class TestResilience:
    """Regression tests for failure modes found in review."""

    def test_bad_param_type_fails_one_request_not_the_dispatcher(self):
        """A request whose params blow up inside the engine must come back
        as ok:false — and the dispatcher must keep serving afterwards."""

        async def go(service):
            bad = _payload()
            bad["params"]["num_particles"] = "ten"  # passes intake, fails in-engine
            first = await service.submit(bad)
            second = await service.submit(_payload())  # dispatcher must survive
            return first, second

        first, second = asyncio.run(_with_service(go))
        assert not first["ok"] and "error" in first
        assert second["ok"]

    def test_coalesced_zero_weight_requests_fail_like_solo_runs(self):
        """The fused wave applies the same all-weights-zero guard as a solo
        vectorized_importance run."""
        model = """
        proc M() consume latent provide obs {
          v <- sample.recv{latent}(Beta(2.0, 2.0));
          _ <- sample.send{obs}(Normal(v, 1.0));
          return(v)
        }
        """
        guide = """
        proc G() provide latent {
          v <- sample.send{latent}(Normal(5.0, 0.1));
          return(v)
        }
        """

        def payload(seed):
            return {
                "id": f"z{seed}", "model": model, "guide": guide,
                "engine": "is", "force": True,
                "params": {"num_particles": 200, "seed": seed,
                           "obs_values": [0.5], "shards": 4},
            }

        async def coalesced(service):
            return await asyncio.gather(
                service.submit(payload(0)), service.submit(payload(1))
            )

        async def solo(service):
            return [await service.submit(payload(0))]

        together = asyncio.run(_with_service(coalesced))
        alone = asyncio.run(_with_service(solo, batch_window_s=0.0))
        assert not alone[0]["ok"] and "weights are zero" in alone[0]["error"]
        for response in together:
            assert not response["ok"] and "weights are zero" in response["error"]

    def test_half_close_client_still_receives_responses(self):
        """write -> EOF -> read is the canonical JSONL batch client; queued
        requests must be answered, not cancelled, after the read side sees
        EOF."""

        async def go(service):
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write((json.dumps(_payload(seed=0, request_id="h0")) + "\n").encode())
            writer.write((json.dumps(_payload(seed=1, request_id="h1")) + "\n").encode())
            await writer.drain()
            writer.write_eof()  # half-close: no more requests
            lines = []
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=30)
                if not line:
                    break
                lines.append(json.loads(line))
            writer.close()
            server.close()
            await server.wait_closed()
            return lines

        responses = asyncio.run(_with_service(go))
        assert {r["id"] for r in responses} == {"h0", "h1"}
        assert all(r["ok"] for r in responses)
