"""Property tests: score-function gradients vs finite differences of the ELBO.

The score-function estimator never differentiates the ELBO directly — it
rescans the recorded particle groups under perturbed parameters to measure
per-particle scores ``∂_θ log q_θ``.  These tests pin the identity

    E[(f - b) ∂_θ log q_θ]  ==  ∂_θ ELBO(θ)

by comparing the estimator against central finite differences of
:func:`repro.engine.svi.estimate_elbo_batched` computed under common random
numbers (the same seed produces the same underlying draws on both sides of
the perturbation, so the difference isolates the effect of θ).  Both sides
are Monte-Carlo estimates, so agreement is within a stochastic tolerance.

Covered guide families:

* ``weight``: Normal guide with an exp-reparameterized scale (2 real params);
* ``weight`` with ``WeighGuideP``: Normal guide whose scale parameter is
  constrained positive by a ParamStore softplus transform (exercises the
  chain rule through the transform);
* ``vae``: two-site factorized Normal guide (4 real params);
* ``coin`` with ``CoinGuideP``: Beta guide with two positive shape params.
"""

import numpy as np
import pytest

from repro.core.parser import parse_program
from repro.core.semantics import traces as tr
from repro.engine.params import store_from_inits
from repro.engine.svi import (
    elbo_and_score_gradient,
    estimate_elbo_batched,
    guide_entry_params,
)
from repro.models import (
    COIN_GUIDE_PARAM_SOURCE,
    WEIGHT_GUIDE_POSITIVE_SOURCE,
    get_benchmark,
)

NUM_PARTICLES = 4000
SEED = 123
FD_EPSILON = 1e-3
#: Stochastic agreement tolerance: both sides are MC estimates over the same
#: draws, so residual disagreement comes from the score-vs-difference
#: estimator gap (empirically < 0.3 at 4000 particles on every family).
ABS_TOL = 0.35
REL_TOL = 0.2


def _families():
    weight = get_benchmark("weight")
    vae = get_benchmark("vae")
    coin = get_benchmark("coin")
    return {
        "weight-exp-scale": (
            weight.model_program(), weight.guide_program(),
            weight.model_entry, weight.guide_entry,
            store_from_inits({"loc": 8.0, "log_scale": 0.3}),
            (tr.ValP(9.5),),
        ),
        "weight-positive-scale": (
            weight.model_program(), parse_program(WEIGHT_GUIDE_POSITIVE_SOURCE),
            weight.model_entry, "WeighGuideP",
            store_from_inits({"loc": 8.0, "scale": 1.3}, {"scale": "positive"}),
            (tr.ValP(9.5),),
        ),
        "vae-factorized-normal": (
            vae.model_program(), vae.guide_program(),
            vae.model_entry, vae.guide_entry,
            store_from_inits({"m1": 0.2, "s1": 0.1, "m2": -0.1, "s2": 0.0}),
            tuple(tr.ValP(x) for x in vae.obs_values),
        ),
        "coin-beta": (
            coin.model_program(), parse_program(COIN_GUIDE_PARAM_SOURCE),
            coin.model_entry, "CoinGuideP",
            store_from_inits({"a": 2.0, "b": 2.0}, {"a": "positive", "b": "positive"}),
            tuple(tr.ValP(x) for x in coin.obs_values),
        ),
    }


def _finite_difference_gradient(model, guide, model_entry, guide_entry, store, obs):
    """Central differences of the batched ELBO under common random numbers."""
    param_names = guide_entry_params(guide, guide_entry)
    gradient = {}
    for name, index in store.coordinates():
        values = []
        for delta in (+FD_EPSILON, -FD_EPSILON):
            estimate = estimate_elbo_batched(
                model, guide, model_entry, guide_entry,
                obs_trace=obs, num_particles=NUM_PARTICLES,
                rng=np.random.default_rng(SEED),
                guide_args=store.perturbed(name, index, delta).guide_args(param_names),
            )
            values.append(estimate.value)
        gradient.setdefault(name, {})[index] = (values[0] - values[1]) / (2.0 * FD_EPSILON)
    return gradient


def _assert_gradients_agree(score_grads, fd_grads, store, label):
    for name, index in store.coordinates():
        score = float(np.asarray(score_grads[name]).flat[index])
        finite_difference = fd_grads[name][index]
        assert np.isfinite(score) and np.isfinite(finite_difference), (label, name)
        tolerance = ABS_TOL + REL_TOL * abs(finite_difference)
        assert abs(score - finite_difference) <= tolerance, (
            f"{label}.{name}[{index}]: score-function {score:.4f} vs "
            f"finite-difference {finite_difference:.4f} (tol {tolerance:.4f})"
        )


@pytest.mark.parametrize("family", sorted(_families()))
def test_score_gradient_matches_finite_differences(family):
    model, guide, model_entry, guide_entry, store, obs = _families()[family]
    estimate = elbo_and_score_gradient(
        model, guide, model_entry, guide_entry, store, obs,
        NUM_PARTICLES, rng=np.random.default_rng(SEED),
    )
    assert estimate.num_infinite == 0
    fd = _finite_difference_gradient(model, guide, model_entry, guide_entry, store, obs)
    _assert_gradients_agree(estimate.grads, fd, store, family)


@pytest.mark.parametrize("family", ["vae-factorized-normal", "coin-beta"])
def test_rao_blackwellized_gradient_matches_finite_differences(family):
    """Per-site RB changes the variance, never the target of the estimator."""
    model, guide, model_entry, guide_entry, store, obs = _families()[family]
    estimate = elbo_and_score_gradient(
        model, guide, model_entry, guide_entry, store, obs,
        NUM_PARTICLES, rng=np.random.default_rng(SEED), rao_blackwellize=True,
    )
    fd = _finite_difference_gradient(model, guide, model_entry, guide_entry, store, obs)
    _assert_gradients_agree(estimate.grads, fd, store, f"rb-{family}")


def test_parameter_branch_flip_under_perturbation_is_dropped_not_fatal():
    """Regression: a pure parameter branch sitting exactly on its threshold.

    The ±ε rescore re-evaluates the (scalar) predicate under the perturbed
    parameter; one side takes the other arm, whose message sequence differs
    from the recorded one.  That replay mismatch must drop the group from
    the affected coordinate's gradient — not escape as a
    ChannelProtocolError that aborts the whole fit.
    """
    model = parse_program(
        """
        proc M() consume latent provide obs {
          w <- sample.recv{latent}(Normal(0.0, 2.0));
          _ <- sample.send{obs}(Normal(w, 1.0));
          return(w)
        }
        """
    )
    guide = parse_program(
        """
        proc G(t: real) provide latent {
          if t < 0.0 {
            w <- sample.send{latent}(Normal(t, 1.0));
            u <- sample.send{latent}(Normal(0.0, 1.0));
            return(w)
          } else {
            w <- sample.send{latent}(Normal(t, 1.0));
            return(w)
          }
        }
        """
    )
    store = store_from_inits({"t": 0.0})  # exactly on the branch threshold
    estimate = elbo_and_score_gradient(
        model, guide, "M", "G", store, (tr.ValP(0.5),),
        64, rng=np.random.default_rng(11),
    )
    # At t=0 the else-arm runs (one latent site); the t-ε rescore takes the
    # then-arm, mismatches the recorded log, and every particle is dropped
    # for the 't' coordinate — the gradient defaults to zero, finitely.
    assert float(np.asarray(estimate.grads["t"])) == 0.0
    assert np.isfinite(estimate.elbo.value)


def test_gradient_of_unused_coordinate_is_zero():
    """A parameter the guide never consumes in-density must get a zero score."""
    model = get_benchmark("weight").model_program()
    guide = parse_program(
        """
        proc G(loc: real, unused: real) provide latent {
          weight <- sample.send{latent}(Normal(loc, 1.0));
          return(weight)
        }
        """
    )
    store = store_from_inits({"loc": 9.0, "unused": 3.0})
    estimate = elbo_and_score_gradient(
        model, guide, "Weigh", "G", store, (tr.ValP(9.5),),
        500, rng=np.random.default_rng(7),
    )
    assert float(np.asarray(estimate.grads["unused"])) == pytest.approx(0.0, abs=1e-9)
    assert float(np.asarray(estimate.grads["loc"])) != 0.0
