"""Tests for the reduction relation and the possible-combination predicate."""

import pytest

from repro.core.parser import parse_program
from repro.core.semantics import traces as tr
from repro.core.semantics.reduction import (
    is_possible_combination,
    reduce_procedure,
    reduces,
)


class TestReduction:
    def test_reduction_of_possible_trace(self, fig5_model):
        latent = (tr.ValP(1.0), tr.DirC(True))
        obs = (tr.ValP(0.8),)
        value = reduce_procedure(
            fig5_model, "Model", traces={"latent": latent, "obs": obs}
        )
        assert value == pytest.approx(1.0)

    def test_reduction_fails_on_unsupported_value(self, fig5_model):
        latent = (tr.ValP(-1.0), tr.DirC(True))
        obs = (tr.ValP(0.8),)
        assert not reduces(fig5_model, "Model", traces={"latent": latent, "obs": obs})

    def test_reduction_fails_on_contradictory_selection(self, fig5_model):
        latent = (tr.ValP(1.0), tr.DirC(False), tr.ValP(0.9))
        obs = (tr.ValP(0.8),)
        assert not reduces(fig5_model, "Model", traces={"latent": latent, "obs": obs})

    def test_reduction_fails_on_truncated_trace(self, fig5_model):
        assert not reduces(fig5_model, "Model", traces={"latent": (), "obs": ()})

    def test_reduction_of_unit_returning_guide_yields_sentinel(self):
        guide = parse_program(
            """
            proc G() provide latent {
              v <- sample.send{latent}(Unif);
              return()
            }
            """
        )
        value = reduce_procedure(guide, "G", traces={"latent": (tr.ValP(0.5),)})
        assert value == ()


class TestPossibleCombinations:
    """Lemma 5.1-style checks on the Fig. 5 pair."""

    def test_then_branch_combination_is_possible(self, fig5_model, fig5_guide):
        assert is_possible_combination(
            fig5_model,
            fig5_guide,
            "Model",
            "Guide1",
            latent_trace=(tr.ValP(1.0), tr.DirC(True)),
            obs_trace=(tr.ValP(0.8),),
        )

    def test_else_branch_combination_is_possible(self, fig5_model, fig5_guide):
        assert is_possible_combination(
            fig5_model,
            fig5_guide,
            "Model",
            "Guide1",
            latent_trace=(tr.ValP(3.0), tr.DirC(False), tr.ValP(0.4)),
            obs_trace=(tr.ValP(0.8),),
        )

    def test_negative_x_is_impossible(self, fig5_model, fig5_guide):
        assert not is_possible_combination(
            fig5_model,
            fig5_guide,
            "Model",
            "Guide1",
            latent_trace=(tr.ValP(-3.0), tr.DirC(True)),
            obs_trace=(tr.ValP(0.8),),
        )

    def test_branch_inconsistent_with_value_is_impossible(self, fig5_model, fig5_guide):
        assert not is_possible_combination(
            fig5_model,
            fig5_guide,
            "Model",
            "Guide1",
            latent_trace=(tr.ValP(1.0), tr.DirC(False), tr.ValP(0.4)),
            obs_trace=(tr.ValP(0.8),),
        )

    def test_model_without_obs_channel(self, fig6_pcfg, fig6_pcfg_guide):
        latent = (tr.ValP(0.7), tr.Fold(), tr.ValP(0.2), tr.DirC(True), tr.ValP(0.5))
        assert is_possible_combination(
            fig6_pcfg,
            fig6_pcfg_guide,
            "Pcfg",
            "PcfgGuide",
            latent_trace=latent,
            obs_trace=(),
        )
