"""Correctness tests for the coroutine-level inference engines (IS, MH, VI).

Where a posterior is available in closed form (normal-normal, beta-Bernoulli)
the engines' estimates are checked against it; elsewhere the tests check
structural invariants (weights finite, chains move, ELBO increases).
"""

import math

import numpy as np
import pytest

from repro.core.parser import parse_program
from repro.core.semantics import traces as tr
from repro.errors import InferenceError
from repro.inference import (
    estimate_elbo,
    importance_sampling,
    metropolis_hastings,
    svi,
)
from repro.inference.mcmc import prior_initial_trace
from repro.models import get_benchmark

# Conjugate normal-normal model: prior N(8.5, 1), likelihood N(w, 0.75), y = 9.5.
# Posterior: mean 9.1379..., variance 0.36.
WEIGHT_POSTERIOR_MEAN = (8.5 / 1.0 + 9.5 / 0.5625) / (1.0 / 1.0 + 1.0 / 0.5625)

COIN_MODEL = parse_program(
    """
    proc Coin() consume latent provide obs {
      bias <- sample.recv{latent}(Beta(1.0, 1.0));
      _ <- sample.send{obs}(Ber(bias));
      _ <- sample.send{obs}(Ber(bias));
      _ <- sample.send{obs}(Ber(bias));
      _ <- sample.send{obs}(Ber(bias));
      return(bias)
    }
    """
)

COIN_GUIDE = parse_program(
    """
    proc CoinGuide() provide latent {
      bias <- sample.send{latent}(Beta(2.0, 2.0));
      return(bias)
    }
    """
)


class TestImportanceSampling:
    def test_weight_model_posterior_mean(self):
        benchmark = get_benchmark("weight")
        result = importance_sampling(
            benchmark.model_program(), benchmark.guide_program(),
            benchmark.model_entry, benchmark.guide_entry,
            obs_trace=(tr.ValP(9.5),), num_samples=4000,
            rng=np.random.default_rng(0), guide_args=(8.5, 0.0),
        )
        assert result.posterior_expectation_of_site(0) == pytest.approx(
            WEIGHT_POSTERIOR_MEAN, abs=0.1
        )

    def test_weight_model_log_evidence(self):
        benchmark = get_benchmark("weight")
        result = importance_sampling(
            benchmark.model_program(), benchmark.guide_program(),
            benchmark.model_entry, benchmark.guide_entry,
            obs_trace=(tr.ValP(9.5),), num_samples=4000,
            rng=np.random.default_rng(1), guide_args=(8.5, 0.2),
        )
        expected = -0.5 * (9.5 - 8.5) ** 2 / (1.0 + 0.5625) - 0.5 * math.log(
            2 * math.pi * (1.0 + 0.5625)
        )
        assert result.log_evidence() == pytest.approx(expected, abs=0.05)

    def test_beta_bernoulli_posterior_mean(self):
        # Observations T, T, T, F with a uniform prior: posterior Beta(4, 2).
        obs = (tr.ValP(True), tr.ValP(True), tr.ValP(True), tr.ValP(False))
        result = importance_sampling(
            COIN_MODEL, COIN_GUIDE, "Coin", "CoinGuide",
            obs_trace=obs, num_samples=4000, rng=np.random.default_rng(2),
        )
        assert result.posterior_expectation_of_site(0) == pytest.approx(4.0 / 6.0, abs=0.04)

    def test_fig5_posterior_concentrates_below_prior_mean(self, fig5_model, fig5_guide):
        # With @z = 0.8 observed, small @x (then-branch, likelihood centred at -1)
        # is penalised relative to the prior, so the posterior mean of @x moves up.
        result = importance_sampling(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), num_samples=4000,
            rng=np.random.default_rng(3),
        )
        posterior_mean_x = result.posterior_expectation_of_site(0)
        assert posterior_mean_x > 2.0  # prior mean of Gamma(2,1) is 2.0

    def test_posterior_expectation_with_callable(self, fig5_model, fig5_guide):
        result = importance_sampling(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), num_samples=500,
            rng=np.random.default_rng(4),
        )
        prob_else = result.posterior_expectation(
            lambda s: 1.0 if len(s.latent_values) == 2 else 0.0
        )
        assert 0.0 <= prob_else <= 1.0

    def test_resampling_returns_requested_size(self, fig5_model, fig5_guide):
        result = importance_sampling(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), num_samples=100,
            rng=np.random.default_rng(5),
        )
        assert len(result.resample(np.random.default_rng(0), size=50)) == 50

    def test_invalid_sample_count_rejected(self, fig5_model, fig5_guide):
        with pytest.raises(InferenceError):
            importance_sampling(
                fig5_model, fig5_guide, "Model", "Guide1",
                obs_trace=(tr.ValP(0.8),), num_samples=0,
            )

    def test_all_zero_weights_raise(self):
        # A guide that always proposes latents outside the model's likelihood
        # support: observing an impossible Bernoulli outcome never happens, so
        # instead we use a model whose observation is impossible under every
        # proposal (observed value outside the obs distribution's support).
        model = parse_program(
            """
            proc M() consume latent provide obs {
              p <- sample.recv{latent}(Unif);
              _ <- sample.send{obs}(Ber(p));
              return(p)
            }
            """
        )
        guide = parse_program(
            """
            proc G() provide latent {
              p <- sample.send{latent}(Unif);
              return(p)
            }
            """
        )
        with pytest.raises(InferenceError):
            importance_sampling(
                model, guide, "M", "G",
                obs_trace=(tr.ValP(2),),  # 2 is not a Boolean
                num_samples=20, rng=np.random.default_rng(6),
            )


class TestMetropolisHastings:
    def test_weight_model_posterior_mean_with_independence_proposal(self):
        benchmark = get_benchmark("weight")
        result = metropolis_hastings(
            benchmark.model_program(), benchmark.guide_program(),
            benchmark.model_entry, benchmark.guide_entry,
            obs_trace=(tr.ValP(9.5),), num_samples=3000, burn_in=200,
            rng=np.random.default_rng(7),
            proposal_args=lambda old: (9.0, 0.0),
        )
        assert result.posterior_mean(0) == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.15)
        assert 0.05 < result.acceptance_rate <= 1.0

    def test_outliers_trace_dependent_proposal(self):
        benchmark = get_benchmark("outliers")
        model = benchmark.model_program()
        guide = benchmark.guide_program()

        def proposal_args(old_trace):
            values = tr.sample_values(old_trace)
            old_flag = bool(values[1]) if len(values) > 1 else False
            return (old_flag,)

        result = metropolis_hastings(
            model, guide, benchmark.model_entry, benchmark.guide_entry,
            obs_trace=(tr.ValP(2.3),), num_samples=800, burn_in=100,
            rng=np.random.default_rng(8), proposal_args=proposal_args,
        )
        flags = [
            bool(tr.sample_values(trace_)[1]) for trace_ in result.traces
        ]
        # The observation 2.3 is close to the inlier mean (2.5), so most states
        # should classify the point as an inlier.
        assert np.mean(flags) < 0.5
        assert result.acceptance_rate > 0.0

    def test_trace_dependent_proposal_survives_chain_start(self, fig5_model):
        """Regression: ``_initial_state`` used to call ``proposal_args(())``.

        A proposal that indexes into the previous latent trace without a
        length guard crashed at chain initialisation (IndexError on the
        empty tuple).  Initialisation now seeds each attempt with a prior
        draw, so unguarded trace-dependent proposals work from step one.
        """
        proposal = parse_program(
            """
            proc Prop(v0: preal) provide latent {
              v <- sample.send{latent}(Gamma(v0, 1.0));
              if.recv{latent} {
                return(v)
              } else {
                m <- sample.send{latent}(Unif);
                return(v)
              }
            }
            """
        )

        def proposal_args(old_trace):
            # No length guard on purpose: relies on a real previous trace.
            return (float(tr.sample_values(old_trace)[0]) + 1.0,)

        result = metropolis_hastings(
            fig5_model, proposal, "Model", "Prop",
            obs_trace=(tr.ValP(0.8),), num_samples=80, burn_in=20,
            rng=np.random.default_rng(21), proposal_args=proposal_args,
        )
        assert result.num_samples == 80
        assert result.acceptance_rate > 0.0

    def test_chain_has_requested_length(self, fig5_model, fig5_guide):
        result = metropolis_hastings(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), num_samples=50,
            rng=np.random.default_rng(9),
        )
        assert result.num_samples == 50
        assert len(result.accepted) == 50

    def test_explicit_initial_trace(self, fig5_model, fig5_guide):
        initial = (tr.ValP(1.0), tr.DirC(True))
        result = metropolis_hastings(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), num_samples=20,
            rng=np.random.default_rng(10), initial_trace=initial,
        )
        assert result.num_samples == 20

    def test_invalid_initial_trace_rejected(self, fig5_model, fig5_guide):
        bad = (tr.ValP(-1.0), tr.DirC(True))
        with pytest.raises(InferenceError):
            metropolis_hastings(
                fig5_model, fig5_guide, "Model", "Guide1",
                obs_trace=(tr.ValP(0.8),), num_samples=10,
                initial_trace=bad,
            )

    def test_prior_initial_trace_helper(self, fig5_model):
        trace_ = prior_initial_trace(fig5_model, "Model", rng=np.random.default_rng(11))
        assert len(trace_) in (2, 3)


class TestVariationalInference:
    def _weight_family(self):
        benchmark = get_benchmark("weight")
        guide = benchmark.guide_program()

        def family(theta):
            return guide, benchmark.guide_entry, (float(theta[0]), float(theta[1]))

        return benchmark.model_program(), benchmark.model_entry, family

    def test_elbo_is_bounded_by_log_evidence(self):
        model, entry, family = self._weight_family()
        log_evidence = -0.5 * (9.5 - 8.5) ** 2 / 1.5625 - 0.5 * math.log(2 * math.pi * 1.5625)
        estimate = estimate_elbo(
            model, family, np.array([8.5, 0.0]), entry,
            obs_trace=(tr.ValP(9.5),), num_particles=2000,
            rng=np.random.default_rng(12),
        )
        assert estimate.value < log_evidence + 0.05

    def test_elbo_improves_for_better_parameters(self):
        model, entry, family = self._weight_family()
        worse = estimate_elbo(
            model, family, np.array([6.0, 0.0]), entry,
            obs_trace=(tr.ValP(9.5),), num_particles=500,
            rng=np.random.default_rng(13),
        )
        better = estimate_elbo(
            model, family, np.array([9.1, -0.5]), entry,
            obs_trace=(tr.ValP(9.5),), num_particles=500,
            rng=np.random.default_rng(13),
        )
        assert better.value > worse.value

    def test_svi_moves_towards_posterior_mean(self):
        model, entry, family = self._weight_family()
        result = svi(
            model, family, theta0=[8.5, 0.0], model_entry=entry,
            obs_trace=(tr.ValP(9.5),), num_steps=40, num_particles=8,
            learning_rate=0.2, rng=np.random.default_rng(14),
        )
        assert result.theta[0] == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.35)
        assert result.num_steps == 40

    def test_non_finite_base_elbo_does_not_step(self):
        """Regression: a non-finite base ELBO used to keep stepping.

        When the guide proposes outside the model's support the ELBO
        estimate is ``-inf``; the optimiser previously recorded it and then
        took an *unclamped* step from whatever the perturbed evaluations
        happened to return.  It must now record the failure and leave θ
        untouched for that step.
        """
        model = parse_program(
            """
            proc M() consume latent provide obs {
              v <- sample.recv{latent}(Gamma(2.0, 1.0));
              _ <- sample.send{obs}(Normal(v, 1.0));
              return(v)
            }
            """
        )
        guide = parse_program(
            """
            proc G(loc: real) provide latent {
              v <- sample.send{latent}(Normal(loc, 1.0));
              return(v)
            }
            """
        )

        def family(theta):
            return guide, "G", (float(theta[0]),)

        # loc = -40: every proposal is negative, i.e. outside Gamma support.
        result = svi(
            model, family, theta0=[-40.0], model_entry="M",
            obs_trace=(tr.ValP(1.0),), num_steps=6, num_particles=8,
            learning_rate=0.5, rng=np.random.default_rng(20),
        )
        assert result.elbo_history == [-math.inf] * 6
        assert all(float(t[0]) == pytest.approx(-40.0) for t in result.theta_history)
        assert float(result.theta[0]) == pytest.approx(-40.0)

    def test_elbo_estimate_reports_particles(self):
        model, entry, family = self._weight_family()
        estimate = estimate_elbo(
            model, family, np.array([8.5, 0.0]), entry,
            obs_trace=(tr.ValP(9.5),), num_particles=16,
            rng=np.random.default_rng(15),
        )
        assert estimate.num_particles == 16
        assert math.isfinite(estimate.standard_error)
