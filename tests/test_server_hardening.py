"""Service hardening: deadlines, backpressure, quotas, fairness, shutdown.

Every scenario the load harness exercises statistically is pinned here
deterministically, over the real JSONL TCP front-end where the ISSUE asks
for it: deadline-expired-while-queued (the request is *never* executed),
queue-full rejection, per-tenant quota exhaustion, round-robin tenant
fairness, bounded dispatch waves under a burst, exactly-one-response across
``stop()``, the latency >= queue_wait + run invariant, and LRU capacity
enforcement for the kernel/session caches.
"""

import asyncio
import json

import pytest

from repro.engine.server import (
    CODE_DEADLINE_EXCEEDED,
    CODE_INVALID_REQUEST,
    CODE_OVERLOADED,
    CODE_QUOTA_EXCEEDED,
    CODE_SHUTTING_DOWN,
    SHED_CODES,
    InferenceService,
    ServerCounters,
    serve_tcp,
)
from repro.models import get_benchmark

BENCH = get_benchmark("weight")


def _payload(seed=0, request_id=None, particles=200, **overrides):
    payload = {
        "id": request_id,
        "model": BENCH.model_source,
        "guide": BENCH.guide_source,
        "engine": "is",
        "sites": [0],
        "params": {
            "num_particles": particles,
            "seed": seed,
            "obs_values": list(BENCH.obs_values),
            "guide_args": [8.5, 0.0],
        },
    }
    payload.update(overrides)
    return payload


async def _start_service(**kwargs):
    service = InferenceService(**kwargs)
    await service.start()
    return service


async def _connect(service):
    server = await serve_tcp(service, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    return server, reader, writer


async def _send(writer, payload):
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()


async def _recv(reader, timeout=30.0):
    line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


async def _recv_many(reader, count, timeout=60.0):
    return [await _recv(reader, timeout=timeout) for _ in range(count)]


async def _close(server, writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    server.close()
    await server.wait_closed()


class TestDeadlines:
    def test_deadline_expired_while_queued_is_shed_not_executed(self):
        """A queued request whose deadline passes is rejected with a
        structured ``deadline_exceeded`` and never reaches the engine."""

        async def go():
            # A long batch window guarantees the deadline expires while the
            # request sits in the queue, before wave collection.
            service = await _start_service(batch_window_s=0.3)
            server, reader, writer = await _connect(service)
            try:
                # Warm the session cache so admission is instant afterwards.
                await _send(writer, _payload(request_id="warm"))
                warm = await _recv(reader)
                assert warm["ok"], warm
                batches_before = service.counters.batches_total
                await _send(writer, _payload(request_id="doomed", deadline_ms=50))
                response = await _recv(reader)
                return service, response, batches_before
            finally:
                await _close(server, writer)
                await service.stop()

        service, response, batches_before = asyncio.run(go())
        assert response["id"] == "doomed"
        assert response["ok"] is False
        assert response["code"] == CODE_DEADLINE_EXCEEDED
        assert "while queued" in response["error"]
        # The engine never ran it: no new dispatch batch was executed.
        assert service.counters.batches_total == batches_before
        assert service.counters.shed_total[CODE_DEADLINE_EXCEEDED] == 1

    def test_expired_deadline_rejected_at_admission(self):
        async def go():
            service = await _start_service()
            try:
                # Warm the session cache, then submit with a deadline so
                # short it expires during (cached, still non-zero) admission.
                await service.submit(_payload(request_id="warm"))
                return await service.submit(
                    _payload(request_id="late", deadline_ms=1e-6)
                )
            finally:
                await service.stop()

        response = asyncio.run(go())
        assert response["ok"] is False
        assert response["code"] == CODE_DEADLINE_EXCEEDED

    def test_invalid_deadline_is_invalid_request(self):
        async def go():
            service = await _start_service()
            try:
                return [
                    await service.submit(_payload(deadline_ms=bad))
                    for bad in (0, -5, "soon", True)
                ]
            finally:
                await service.stop()

        for response in asyncio.run(go()):
            assert response["ok"] is False
            assert response["code"] == CODE_INVALID_REQUEST


class TestBackpressure:
    def test_queue_full_rejects_with_overloaded(self):
        """With ``max_queue=2`` and a held-open batch window, a burst of 8
        gets 2 admissions and 6 structured ``overloaded`` rejections."""

        async def go():
            service = await _start_service(max_queue=2, batch_window_s=0.5)
            server, reader, writer = await _connect(service)
            try:
                await _send(writer, _payload(request_id="warm"))
                assert (await _recv(reader))["ok"]
                for i in range(8):
                    await _send(writer, _payload(request_id=f"r{i}", seed=i))
                return await _recv_many(reader, 8)
            finally:
                await _close(server, writer)
                await service.stop()

        responses = asyncio.run(go())
        ok = [r for r in responses if r["ok"]]
        rejected = [r for r in responses if not r["ok"]]
        assert len(ok) + len(rejected) == 8
        assert rejected, "queue bound never tripped"
        assert {r["code"] for r in rejected} == {CODE_OVERLOADED}
        for r in rejected:
            assert "queue is full" in r["error"]
        # The admitted requests still completed normally.
        assert len(ok) >= 2

    def test_burst_of_200_is_served_in_bounded_waves(self):
        """Satellite regression: a 200-request burst must not dispatch as
        one giant wave — every wave stays within ``max_batch``."""

        async def go():
            service = await _start_service(
                max_queue=256, max_batch=8, batch_window_s=0.05
            )
            try:
                await service.submit(_payload(request_id="warm"))
                responses = await asyncio.gather(
                    *(
                        service.submit(_payload(request_id=f"b{i}", seed=i, particles=50))
                        for i in range(200)
                    )
                )
                return service.counters, responses
            finally:
                await service.stop()

        counters, responses = asyncio.run(go())
        assert all(r["ok"] for r in responses)
        assert counters.wave_size_max <= 8
        # 200 requests at <=8 per wave needs at least 25 waves.
        assert counters.waves_total >= 25


class TestQuotas:
    def test_tenant_quota_exhaustion_is_isolated_per_tenant(self):
        """Tenant A burns its burst of 2 and gets ``quota_exceeded``; tenant
        B's untouched bucket still admits."""

        async def go():
            service = await _start_service(tenant_rate=0.001, tenant_burst=2)
            server, reader, writer = await _connect(service)
            try:
                results = []
                for i in range(5):
                    await _send(
                        writer, _payload(request_id=f"a{i}", seed=i, tenant="tenant-a")
                    )
                    results.append(await _recv(reader))
                await _send(writer, _payload(request_id="b0", tenant="tenant-b"))
                results.append(await _recv(reader))
                return results
            finally:
                await _close(server, writer)
                await service.stop()

        responses = asyncio.run(go())
        a_responses, b_response = responses[:5], responses[5]
        assert [r["ok"] for r in a_responses] == [True, True, False, False, False]
        for r in a_responses[2:]:
            assert r["code"] == CODE_QUOTA_EXCEEDED
            assert "tenant-a" in r["error"]
        assert b_response["ok"], "tenant-b must not pay for tenant-a's burst"

    def test_invalid_tenant_is_invalid_request(self):
        async def go():
            service = await _start_service()
            try:
                return [
                    await service.submit(_payload(tenant=bad))
                    for bad in ("", 7, "x" * 65)
                ]
            finally:
                await service.stop()

        for response in asyncio.run(go()):
            assert response["ok"] is False
            assert response["code"] == CODE_INVALID_REQUEST


class TestFairness:
    def test_small_tenant_is_not_starved_by_a_flood(self):
        """Tenant B's 2 requests complete in the first few waves despite
        tenant A's 8-deep backlog (round-robin wave collection)."""

        async def go():
            service = await _start_service(max_batch=2, batch_window_s=0.15)
            server, reader, writer = await _connect(service)
            try:
                await _send(writer, _payload(request_id="warm"))
                assert (await _recv(reader))["ok"]
                for i in range(8):
                    await _send(
                        writer,
                        _payload(request_id=f"a{i}", seed=i, particles=100,
                                 tenant="flood"),
                    )
                for i in range(2):
                    await _send(
                        writer,
                        _payload(request_id=f"b{i}", seed=i, particles=100,
                                 tenant="small"),
                    )
                return await _recv_many(reader, 10)
            finally:
                await _close(server, writer)
                await service.stop()

        responses = asyncio.run(go())
        assert all(r["ok"] for r in responses), responses
        completion_order = [r["id"] for r in responses]
        b_positions = [completion_order.index(f"b{i}") for i in range(2)]
        # Round-robin puts one "small" request into each of the first two
        # waves of 2; even with in-wave reordering both land early.
        assert max(b_positions) <= 5, (
            f"tenant 'small' starved: completion order {completion_order}"
        )


class TestShutdown:
    def test_stop_resolves_every_request_exactly_once(self):
        """``stop()`` racing a dispatch leaves no caller hanging: every
        submit resolves to exactly one dict (ok or ``shutting_down``)."""

        async def go():
            service = await _start_service(batch_window_s=0.05)
            await service.submit(_payload(request_id="warm"))
            submits = [
                asyncio.ensure_future(
                    service.submit(_payload(request_id=f"s{i}", seed=i, particles=100))
                )
                for i in range(12)
            ]
            # Let some requests reach the queue (and possibly dispatch),
            # then stop mid-flight.
            await asyncio.sleep(0.02)
            await service.stop()
            return await asyncio.gather(*submits)

        responses = asyncio.run(go())
        assert len(responses) == 12
        for response in responses:
            assert isinstance(response, dict)
            if response["ok"]:
                assert "posterior_means" in response
            else:
                assert response["code"] in (CODE_SHUTTING_DOWN,)

    def test_submit_after_stop_is_structured_shutting_down(self):
        async def go():
            service = await _start_service()
            await service.submit(_payload(request_id="warm"))
            await service.stop()
            return await service.submit(_payload(request_id="late"))

        response = asyncio.run(go())
        assert response["ok"] is False
        assert response["code"] == CODE_SHUTTING_DOWN


class TestLatencyInvariant:
    def test_observe_uses_measured_latency_not_the_sum(self):
        counters = ServerCounters()
        counters.observe(0.1, 0.2, 10, ok=True, latency_s=0.5)
        assert counters.latency_s_total == pytest.approx(0.5)
        assert counters.latency_s_max == pytest.approx(0.5)
        # Sum fallback still applies when no measurement is passed.
        counters.observe(0.1, 0.2, 10, ok=True)
        assert counters.latency_s_total == pytest.approx(0.8)

    def test_response_latency_covers_queue_wait_plus_run(self):
        """The measured enqueue-to-response latency is always >= the sum of
        its parts (the old ``queue_wait + run`` undercounted)."""

        async def go():
            service = await _start_service()
            try:
                response = await service.submit(_payload(request_id="solo"))
                return response, service.counters
            finally:
                await service.stop()

        response, counters = asyncio.run(go())
        assert response["ok"], response
        server = response["server"]
        assert server["latency_s"] >= server["queue_wait_s"] + server["run_s"]
        assert counters.latency_s_total >= (
            counters.queue_wait_s_total + counters.run_s_total
        )


class TestErrorCodes:
    def test_every_shed_code_is_documented(self):
        assert SHED_CODES == {
            "overloaded", "quota_exceeded", "deadline_exceeded", "shutting_down",
        }

    def test_tcp_protocol_errors_carry_invalid_request(self):
        async def go():
            service = await _start_service()
            server, reader, writer = await _connect(service)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                bad_json = await _recv(reader)
                await _send(writer, {"id": "q", "op": "frobnicate"})
                bad_op = await _recv(reader)
                await _send(writer, {"id": "v", "op": "infer", "model": 3, "guide": 4})
                bad_payload = await _recv(reader)
                return bad_json, bad_op, bad_payload
            finally:
                await _close(server, writer)
                await service.stop()

        bad_json, bad_op, bad_payload = asyncio.run(go())
        for response in (bad_json, bad_op, bad_payload):
            assert response["ok"] is False
            assert response["code"] == CODE_INVALID_REQUEST

    def test_stats_exposes_shed_accounting(self):
        async def go():
            service = await _start_service(max_queue=1, batch_window_s=0.3)
            server, reader, writer = await _connect(service)
            try:
                await _send(writer, _payload(request_id="warm"))
                assert (await _recv(reader))["ok"]
                for i in range(4):
                    await _send(writer, _payload(request_id=f"r{i}", seed=i))
                await _recv_many(reader, 4)
                await _send(writer, {"id": "st", "op": "stats"})
                return await _recv(reader)
            finally:
                await _close(server, writer)
                await service.stop()

        stats = asyncio.run(go())
        assert stats["ok"]
        counters = stats["counters"]
        assert counters["shed_total"] >= 1
        assert counters["shed_by_reason"].get("overloaded", 0) >= 1
        assert counters["waves_total"] >= 1
        assert counters["wave_size_max"] >= 1


class TestCacheCapacity:
    def test_session_cache_respects_capacity_and_counts_evictions(self):
        from repro.engine.session import (
            _SESSION_CACHE,
            ProgramSession,
            clear_session_cache,
            session_cache_len,
            set_session_cache_capacity,
        )

        clear_session_cache()
        set_session_cache_capacity(2)
        evictions_before = _SESSION_CACHE.evictions
        try:
            # Three source-distinct (but semantically identical) programs.
            for i in range(3):
                ProgramSession.from_sources(
                    BENCH.model_source + f"\n# variant {i}\n", BENCH.guide_source
                )
            assert session_cache_len() <= 2
            assert _SESSION_CACHE.evictions == evictions_before + 1
            # The survivors are the two most recently used variants.
            ProgramSession.from_sources(
                BENCH.model_source + "\n# variant 2\n", BENCH.guide_source
            )
            assert _SESSION_CACHE.evictions == evictions_before + 1  # cache hit
        finally:
            set_session_cache_capacity(64)
            clear_session_cache()

    def test_kernel_cache_respects_capacity_and_counts_evictions(self):
        from repro.engine.backend import (
            _KERNEL_CACHE,
            clear_kernel_cache,
            fused_kernel_for,
            kernel_cache_len,
            set_kernel_cache_capacity,
        )

        clear_kernel_cache()
        set_kernel_cache_capacity(1)
        evictions_before = _KERNEL_CACHE.evictions
        try:
            weight, coin = get_benchmark("weight"), get_benchmark("coin")
            programs = [
                (weight.model_program(), weight.guide_program(),
                 weight.model_entry, weight.guide_entry),
                (coin.model_program(), coin.guide_program(),
                 coin.model_entry, coin.guide_entry),
            ]
            for model, guide, model_entry, guide_entry in programs:
                fused_kernel_for(model, guide, model_entry, guide_entry)
            assert kernel_cache_len() == 1
            assert _KERNEL_CACHE.evictions == evictions_before + 1
        finally:
            set_kernel_cache_capacity(64)
            clear_kernel_cache()

    def test_shrinking_capacity_evicts_immediately(self):
        from repro.utils.lru import LruCache

        cache = LruCache(4)
        for i in range(4):
            cache.put(i, i)
        cache.get(0)  # promote: 0 is now most recent
        cache.set_capacity(2)
        assert len(cache) == 2
        assert 0 in cache and 3 in cache
        assert cache.evictions == 2
