"""The parameterized benchmark families: determinism, certification, accuracy.

``synthesize_family`` is the bench suite's program generator — unlike the
fuzzer's random ``generate``, its output is a pure function of ``(family,
size)`` and must stay byte-identical across runs, or the pinned snapshot
churns.  Every emitted pair must certify under the guide-type checker (the
paper's soundness property is the point of benchmarking them), and the
engines must agree with the snapshot's exact golden posteriors within
Monte-Carlo error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import golden
from repro.bench.runner import _site_population, point_seed
from repro.bench.snapshot import FAMILY_SIZES
from repro.engine.session import ProgramSession
from repro.fuzz.generator import (
    BENCH_FAMILIES,
    HMM_CHAIN_EMIT_MEANS,
    HMM_CHAIN_EMIT_STD,
    HMM_CHAIN_INIT_P,
    HMM_CHAIN_TRANS_P,
    MIXTURE_COMPONENT_SPACING,
    MIXTURE_EMIT_STD,
    RECURSION_OBS_STD,
    RECURSION_STEP_STD,
    mixture_weights,
    recursion_cont_p,
    synthesize_family,
)
from repro.fuzz.oracles import default_obs_values
from repro.utils.numerics import weighted_mean_se


@pytest.mark.parametrize("family", BENCH_FAMILIES)
def test_synthesis_is_deterministic(family):
    size = min(FAMILY_SIZES[family])
    first = synthesize_family(family, size)
    second = synthesize_family(family, size)
    assert first.model_source == second.model_source
    assert first.guide_source == second.guide_source
    assert first.seed == second.seed


def test_unknown_family_is_rejected():
    with pytest.raises(ValueError, match="unknown bench family"):
        synthesize_family("zipf_tail", 3)


@pytest.mark.parametrize("family", BENCH_FAMILIES)
@pytest.mark.parametrize("size_index", [0, -1])
def test_every_pinned_instance_certifies(family, size_index):
    size = sorted(FAMILY_SIZES[family])[size_index]
    case = synthesize_family(family, size)
    session = ProgramSession.from_sources(case.model_source, case.guide_source)
    assert session.certified


def test_hmm_chain_size_counts_latent_sites():
    small = synthesize_family("hmm_chain", 4)
    large = synthesize_family("hmm_chain", 8)
    assert small.model_source.count("sample.recv{latent}") == 4
    assert large.model_source.count("sample.recv{latent}") == 8
    # One observation per chain step.
    assert small.model_source.count("sample.send{obs}") == 4
    assert large.model_source.count("sample.send{obs}") == 8


def _posterior_mean(session, site, obs_values, seed, particles=6000):
    result = session.infer(
        "is", num_particles=particles, obs_values=obs_values, seed=seed
    )
    values, log_weights = _site_population(result, site)
    return weighted_mean_se(np.asarray(values, dtype=float), log_weights)


def test_hmm_chain_engine_agrees_with_forward_backward():
    case = synthesize_family("hmm_chain", 4)
    obs_values = default_obs_values(case)
    exact = golden.binary_hmm_smoothed(
        HMM_CHAIN_INIT_P, HMM_CHAIN_TRANS_P, HMM_CHAIN_EMIT_MEANS,
        HMM_CHAIN_EMIT_STD, obs_values,
    )
    session = ProgramSession.from_sources(case.model_source, case.guide_source)
    for site, golden_mean in enumerate(exact):
        mean, se = _posterior_mean(
            session, site, obs_values, seed=point_seed(0, f"hmm_chain/4/{site}")
        )
        assert mean == pytest.approx(golden_mean, abs=0.05 + 5 * se)


def test_mixture_width_engine_agrees_with_enumeration():
    case = synthesize_family("mixture_width", 5)
    obs_values = default_obs_values(case)
    exact = golden.mixture_index_posterior_mean(
        mixture_weights(5),
        [MIXTURE_COMPONENT_SPACING * k for k in range(5)],
        MIXTURE_EMIT_STD,
        float(obs_values[0]),
    )
    session = ProgramSession.from_sources(case.model_source, case.guide_source)
    mean, se = _posterior_mean(session, 0, obs_values, seed=point_seed(0, "mixture/5"))
    assert mean == pytest.approx(exact, abs=0.05 + 5 * se)


def test_recursion_depth_engine_agrees_with_geometric_mixture():
    case = synthesize_family("recursion_depth", 2)
    obs_values = default_obs_values(case)
    exact = golden.geometric_walk_first_step_mean(
        recursion_cont_p(2), RECURSION_STEP_STD, RECURSION_OBS_STD, float(obs_values[0])
    )
    session = ProgramSession.from_sources(case.model_source, case.guide_source)
    # The geometric-stopping walk has heavy-tailed weights; average a few
    # seeds and allow the family's wider snapshot tolerance.
    means, ses = zip(
        *(
            _posterior_mean(
                session, 0, obs_values, seed=point_seed(s, "recursion/2"), particles=8000
            )
            for s in range(3)
        )
    )
    pooled_se = float(np.sqrt(sum(se**2 for se in ses)) / len(ses))
    assert float(np.mean(means)) == pytest.approx(exact, abs=0.12 + 5 * pooled_se)
