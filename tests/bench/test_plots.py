"""The hand-rolled SVG curve renderer: structure, determinism, escaping."""

import xml.dom.minidom

from repro.bench.plots import plot_report, render_all, render_model_svg


def _curves():
    def point(particles, wall, err=None):
        p = {"particles": particles, "wall_time_s": wall, "quality_atol": 0.05}
        if err is not None:
            p["max_abs_err"] = err
            p["max_err_se"] = err / 5.0
        return p

    return [
        {
            "key": "weight/is/interp/shards=1",
            "model": "weight", "engine": "is", "backend": "interp",
            "jit": "none", "shards": 1,
            "points": [point(250, 0.01, 0.04), point(1000, 0.04, 0.02)],
        },
        {
            "key": "weight/is/compiled+mega/shards=1",
            "model": "weight", "engine": "is", "backend": "compiled",
            "jit": "mega", "shards": 1,
            "points": [point(250, 0.005, 0.04), point(1000, 0.02, 0.02)],
        },
        {
            "key": "hmm_chain/8/smc/interp/shards=1",
            "model": "hmm_chain/8", "engine": "smc", "backend": "interp",
            "jit": "none", "shards": 1,
            # No golden stats: the accuracy panel must render its placeholder.
            "points": [point(250, 0.02), point(1000, 0.09)],
        },
    ]


def test_render_model_svg_is_wellformed_and_complete():
    svg = render_model_svg("weight", [c for c in _curves() if c["model"] == "weight"])
    xml.dom.minidom.parseString(svg)  # raises on malformed markup
    assert svg.count("<polyline") == 4  # 2 curves x 2 panels
    assert "weight — wall time vs particles" in svg
    assert "max golden error" in svg
    # The mega tier gets the dotted dash; interp stays solid.
    assert 'stroke-dasharray="2 3"' in svg
    assert "weight/is/compiled+mega/shards=1" in svg  # legend row


def test_render_is_deterministic():
    curves = _curves()
    assert render_all(curves) == render_all(list(reversed(curves)))


def test_missing_golden_stats_render_placeholder():
    svg = render_model_svg("hmm_chain/8", [_curves()[2]])
    xml.dom.minidom.parseString(svg)
    assert "no golden-site data" in svg
    assert svg.count("<polyline") == 1  # wall-time panel only


def test_plot_report_writes_one_file_per_model(tmp_path):
    written = plot_report({"curves": _curves()}, tmp_path)
    assert written == ["hmm_chain_8.svg", "weight.svg"]
    for name in written:
        xml.dom.minidom.parse(str(tmp_path / name))
