"""The pinned benchmark snapshot: completeness and drift.

Two invariants keep ``bench/snapshots/v1.json`` honest: *completeness* —
every benchmark the library registers (including the streaming families)
has a snapshot entry, so nothing is silently dropped from the public
surface — and *freshness* — the committed file is byte-identical to what
``build_snapshot`` derives from the live code, so any model, family, or
derivation change forces an explicit, reviewable snapshot diff.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.snapshot import (
    FAMILY_SIZES,
    GOLDEN_LIBRARY,
    SNAPSHOT_FORMAT,
    build_snapshot,
    default_snapshot_path,
    family_instance_name,
    load_snapshot,
    render_snapshot,
    sweep_models,
)
from repro.errors import ReproError
from repro.models.library import STREAMING_FAMILIES, all_benchmarks


@pytest.fixture(scope="module")
def snapshot():
    return load_snapshot()


def test_every_library_benchmark_is_in_the_snapshot(snapshot):
    missing = [b.name for b in all_benchmarks() if b.name not in snapshot["models"]]
    assert missing == []


def test_every_streaming_family_is_in_the_snapshot(snapshot):
    for name in STREAMING_FAMILIES:
        assert name in snapshot["models"]
        assert snapshot["models"][name]["kind"] == "library"


def test_every_parameterized_instance_is_in_the_snapshot(snapshot):
    for family, sizes in FAMILY_SIZES.items():
        for size in sizes:
            name = family_instance_name(family, size)
            entry = snapshot["models"].get(name)
            assert entry is not None, name
            assert entry["kind"] == "family"
            assert entry["golden"], name


def test_pinned_snapshot_matches_live_code():
    """Bit-for-bit drift guard (the same check as `repro bench snapshot`)."""
    pinned = default_snapshot_path().read_text(encoding="utf-8")
    assert pinned == render_snapshot(), (
        "bench/snapshots/v1.json is stale; regenerate with "
        "'repro bench snapshot --write' and review the diff"
    )


def test_snapshot_format_is_pinned(snapshot):
    assert snapshot["format"] == SNAPSHOT_FORMAT
    assert snapshot["snapshot"] == "v1"


def test_sweep_covers_issue_floor(snapshot):
    """>= 6 snapshot library models and >= 3 parameterized families."""
    swept = sweep_models(snapshot)
    library = [n for n, e in swept.items() if e["kind"] == "library"]
    families = {e["family"] for e in swept.values() if e["kind"] == "family"}
    assert len(library) >= 6
    assert len(families) >= 3
    assert set(library) == set(GOLDEN_LIBRARY)


def test_sweep_entries_are_runnable_with_golden_and_tolerance(snapshot):
    for name, entry in sweep_models(snapshot).items():
        assert entry["runnable"], name
        assert entry["golden"], name
        assert entry["quality_atol"] is not None, name
        assert entry["model_source"], name
        assert entry["guide_source"], name


def test_non_expressible_entries_carry_a_reason(snapshot):
    reasons = {
        name: entry.get("reason")
        for name, entry in snapshot["models"].items()
        if not entry["runnable"]
    }
    assert reasons, "expected at least one non-runnable entry (dp)"
    assert all(reasons.values()), reasons


def test_load_snapshot_rejects_unknown_format(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"snapshot": "v9", "format": 99, "models": {}}))
    with pytest.raises(ReproError, match="format"):
        load_snapshot(bad)


def test_build_snapshot_is_deterministic():
    assert build_snapshot() == build_snapshot()
