"""The golden derivations must reproduce the conformance suite's pins.

``tests/conformance/test_posterior_conformance.py`` states each exact
posterior as a literal with its derivation in a comment;
:mod:`repro.bench.golden` computes the same quantities programmatically for
the snapshot.  These tests tie the two together — if either side changes,
the disagreement is a test failure, not a silent snapshot drift.  The
functions with no conformance pin (mixture index, geometric walk) are
checked against independent brute-force enumerations instead.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bench import golden

# The conformance suite's observation tuples (models/library.py).
WEIGHT_OBS = (9.5,)
COIN_OBS = (True, True, False, True, True)
HMM_OBS = (0.8, 1.1, -0.9, -1.2)
KALMAN_OBS = (0.4, 0.9, 1.3, 1.9)


def test_normal_normal_matches_weight_pin():
    assert golden.normal_normal_posterior_mean(8.5, 1.0, 0.75, WEIGHT_OBS) == pytest.approx(
        9.14, abs=1e-9
    )


def test_beta_bernoulli_matches_coin_pin():
    assert golden.beta_bernoulli_posterior_mean(2.0, 2.0, COIN_OBS) == pytest.approx(
        2.0 / 3.0, abs=1e-12
    )


def test_enumeration_matches_sprinkler_pin():
    rain, _sprinkler = golden.enumerate_two_bernoulli(
        0.2,
        (0.01, 0.4),
        {(True, True): 0.99, (True, False): 0.8, (False, True): 0.9, (False, False): 0.05},
    )
    assert rain == pytest.approx(0.339515, abs=1e-6)


def test_enumeration_matches_burglary_pin():
    burglary, _quake = golden.enumerate_two_bernoulli(
        0.01,
        (0.02, 0.02),
        {(True, True): 0.95, (True, False): 0.94, (False, True): 0.29, (False, False): 0.01},
    )
    assert burglary == pytest.approx(0.378411, abs=1e-6)


def test_forward_backward_matches_hmm_pin():
    smoothed = golden.binary_hmm_smoothed(0.5, (0.7, 0.3), (1.0, -1.0), 1.0, HMM_OBS)
    assert smoothed == pytest.approx([0.892642, 0.884778, 0.146949, 0.057596], abs=1e-6)


def test_precision_solve_matches_kalman_pin():
    smoothed = golden.linear_gaussian_smoothed(0.0, 1.0, 1.0, 0.5, KALMAN_OBS)
    assert smoothed == pytest.approx([0.414619, 0.887716, 1.311675, 1.782335], abs=1e-6)


def test_forward_backward_matches_exhaustive_enumeration():
    """The O(N) recursion against the 2^N enumeration it replaces."""
    init_p, trans_p, emit_means, emit_std = 0.4, (0.8, 0.25), (1.3, -0.7), 0.9
    observations = (0.5, -1.0, 1.4, 0.2, -0.3)
    n = len(observations)

    def normal_pdf(x, mean, std):
        z = (x - mean) / std
        return math.exp(-0.5 * z * z) / (std * math.sqrt(2.0 * math.pi))

    weights = {}
    for bits in range(2**n):
        states = [(bits >> t) & 1 for t in range(n)]
        p = init_p if states[0] else 1.0 - init_p
        for t in range(1, n):
            cont = trans_p[0] if states[t - 1] else trans_p[1]
            p *= cont if states[t] else 1.0 - cont
        for t, y in enumerate(observations):
            p *= normal_pdf(y, emit_means[0] if states[t] else emit_means[1], emit_std)
        weights[tuple(states)] = p
    total = sum(weights.values())
    brute = [
        sum(p for states, p in weights.items() if states[t]) / total for t in range(n)
    ]

    fast = golden.binary_hmm_smoothed(init_p, trans_p, emit_means, emit_std, observations)
    assert fast == pytest.approx(brute, abs=1e-12)


def test_precision_solve_matches_sequential_conditioning():
    """One-step chain sanity: with a single observation the smoothed mean is
    the conjugate normal-normal posterior."""
    y = 1.7
    smoothed = golden.linear_gaussian_smoothed(0.0, 1.0, 1.0, 0.5, (y,))
    assert smoothed[0] == pytest.approx(
        golden.normal_normal_posterior_mean(0.0, 1.0, 0.5, (y,)), abs=1e-12
    )


def test_mixture_index_matches_direct_enumeration():
    weights = (1.0, 1.3, 1.6, 1.9)
    means = [0.8 * k for k in range(4)]
    y = 1.1
    posterior = np.array(
        [
            w * math.exp(-0.5 * (y - m) ** 2) / math.sqrt(2.0 * math.pi)
            for w, m in zip(weights, means)
        ]
    )
    posterior /= posterior.sum()
    expected = float(np.dot(np.arange(4), posterior))
    assert golden.mixture_index_posterior_mean(weights, means, 1.0, y) == pytest.approx(
        expected, abs=1e-12
    )


def test_geometric_walk_degenerates_to_normal_normal():
    """With cont_p -> 0 the walk always stops after one step, so the answer
    is the conjugate posterior of a single Normal(0, step_std) latent."""
    y = -1.9
    almost_stopped = golden.geometric_walk_first_step_mean(1e-15, 1.0, 0.5, y)
    assert almost_stopped == pytest.approx(
        golden.normal_normal_posterior_mean(0.0, 1.0, 0.5, (y,)), abs=1e-9
    )


def test_geometric_walk_matches_truncated_enumeration():
    """Independent finite-sum reimplementation over stopping times."""
    cont_p, step_std, obs_std, y = 0.6, 1.1, 0.4, 1.3
    step_var, obs_var = step_std**2, obs_std**2
    numerator = evidence = 0.0
    for t in range(1, 400):  # geometric mass beyond t=400 is ~0.6^399
        prior_t = (cont_p ** (t - 1)) * (1.0 - cont_p)
        marg_var = t * step_var + obs_var
        density = math.exp(-0.5 * y * y / marg_var) / math.sqrt(2.0 * math.pi * marg_var)
        weight = prior_t * density
        numerator += weight * y * step_var / marg_var
        evidence += weight
    assert golden.geometric_walk_first_step_mean(
        cont_p, step_std, obs_std, y
    ) == pytest.approx(numerator / evidence, abs=1e-9)


def test_geometric_walk_is_odd_in_the_observation():
    mean = golden.geometric_walk_first_step_mean(0.5, 1.0, 0.5, 0.0)
    assert mean == pytest.approx(0.0, abs=1e-12)
    plus = golden.geometric_walk_first_step_mean(0.5, 1.0, 0.5, 0.9)
    minus = golden.geometric_walk_first_step_mean(0.5, 1.0, 0.5, -0.9)
    assert plus == pytest.approx(-minus, abs=1e-12)
