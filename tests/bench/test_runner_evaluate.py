"""End-to-end tests of ``repro bench run`` / ``repro bench evaluate``.

A miniature sweep (two models, one engine ladder) exercises the whole
subsystem: deterministic per-point seeding, the per-run directory layout,
curve construction, both regression gates against injected failures, and
the schema-3 ``BENCH_results.json`` recording.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import results as bench_results
from repro.bench.evaluate import (
    EvaluateConfig,
    baseline_payload,
    build_curves,
    evaluate_run,
    load_baseline,
    record_report,
)
from repro.bench.runner import RunnerConfig, fast_config, point_seed, run_sweep
from repro.errors import ReproError

TINY = RunnerConfig(
    seed=0,
    particles=(60, 240),
    engines=("is",),
    backends=("interp",),
    shards=(1,),
    repeats=1,
    models=("weight", "mixture_width/3"),
)


def _strip_walls(points):
    return [{k: v for k, v in p.items() if k != "wall_time_s"} for p in points]


@pytest.fixture(scope="module")
def tiny_run(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench_run")
    document = run_sweep(TINY, out_dir)
    return out_dir, document


def test_run_writes_the_per_run_directory(tiny_run):
    out_dir, document = tiny_run
    config = json.loads((out_dir / "config.json").read_text())
    results = json.loads((out_dir / "results.json").read_text())
    metrics = json.loads((out_dir / "metrics.json").read_text())
    assert config["snapshot"] == "v1"
    assert config["instances"] == ["mixture_width/3", "weight"]
    assert results == document
    assert len(document["points"]) == 2 * 1 * 1 * 1 * 2  # models x engine grid
    assert metrics["total_wall_s"] > 0
    assert isinstance(metrics["registry_delta"], dict)


def test_sweep_statistics_are_deterministic(tiny_run, tmp_path):
    _out, first = tiny_run
    second = run_sweep(TINY, tmp_path / "again")
    assert _strip_walls(first["points"]) == _strip_walls(second["points"])


def test_point_seed_is_positional_independent(tiny_run, tmp_path):
    """Filtering to one model never changes the other points' numbers."""
    _out, full = tiny_run
    import dataclasses

    solo = run_sweep(
        dataclasses.replace(TINY, models=("weight",)), tmp_path / "solo"
    )
    full_weight = [p for p in full["points"] if p["model"] == "weight"]
    assert _strip_walls(solo["points"]) == _strip_walls(full_weight)


def test_point_seed_depends_on_identity_not_order():
    a = point_seed(0, "weight/is/interp/shards=1/particles=60")
    b = point_seed(0, "weight/is/interp/shards=1/particles=240")
    c = point_seed(1, "weight/is/interp/shards=1/particles=60")
    assert len({a, b, c}) == 3
    assert all(0 <= s < 2**31 for s in (a, b, c))


def test_unknown_model_filter_is_a_repro_error(tmp_path):
    import dataclasses

    with pytest.raises(ReproError, match="unknown sweep model"):
        run_sweep(dataclasses.replace(TINY, models=("nope",)), tmp_path / "x")


def test_fast_config_covers_issue_floor(tmp_path):
    """Fast mode still sweeps >= 6 snapshot models and >= 3 families."""
    config = fast_config(seed=0)
    document = run_sweep(config, tmp_path / "fast")
    models = {p["model"] for p in document["points"]}
    library = {m for m in models if "/" not in m}
    families = {m.split("/")[0] for m in models if "/" in m}
    assert len(library) >= 6
    assert len(families) >= 3


def test_build_curves_groups_and_sorts(tiny_run):
    _out, document = tiny_run
    curves = build_curves(document)
    assert len(curves) == 2
    for curve in curves:
        particles = [p["particles"] for p in curve["points"]]
        assert particles == sorted(particles)
        assert all("max_abs_err" in p for p in curve["points"])


def test_evaluate_passes_on_a_clean_run(tiny_run):
    out_dir, _document = tiny_run
    report, violations = evaluate_run(out_dir)
    assert violations == []
    assert report["passed"]
    assert report["curve_count"] == 2
    assert report["models"] == ["mixture_width/3", "weight"]


def test_evaluate_passes_against_its_own_baseline(tiny_run, tmp_path):
    out_dir, _document = tiny_run
    report, _ = evaluate_run(out_dir)
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(
        json.dumps(baseline_payload(report["curves"], report["snapshot"]))
    )
    _report, violations = evaluate_run(out_dir, baseline=load_baseline(baseline_file))
    assert violations == []


def _tampered_copy(document, tmp_path, *, wall_factor=1.0, shift_sigma=0.0):
    tampered = copy.deepcopy(document)
    for point in tampered["points"]:
        point["wall_time_s"] *= wall_factor
        for stats in point.get("stats", {}).get("sites", {}).values():
            stats["mean"] += shift_sigma * stats["se"] + (0.15 if shift_sigma else 0.0)
            stats["abs_err"] = abs(stats["mean"] - stats["golden"])
    run_dir = tmp_path / "tampered"
    run_dir.mkdir()
    (run_dir / "results.json").write_text(json.dumps(tampered))
    return run_dir


def test_quality_gate_fires_on_posterior_shift(tiny_run, tmp_path):
    """A 6-sigma + 0.15 shift on every site must trip the 5-sigma gate."""
    out_dir, document = tiny_run
    run_dir = _tampered_copy(document, tmp_path, shift_sigma=6.0)
    report, violations = evaluate_run(run_dir)
    assert not report["passed"]
    assert {v["gate"] for v in violations} == {"quality"}


def test_speed_gate_fires_on_wall_time_regression(tiny_run, tmp_path):
    """A uniform 2x wall-time regression must trip the 1.75x gate."""
    out_dir, document = tiny_run
    report, _ = evaluate_run(out_dir)
    baseline = baseline_payload(report["curves"], report["snapshot"])
    run_dir = _tampered_copy(document, tmp_path, wall_factor=2.0)
    # Tiny sweeps finish in microseconds; lower the timer-noise floor so the
    # injected ratio is actually compared.
    config = EvaluateConfig(min_wall_s=0.0)
    _report, violations = evaluate_run(run_dir, config, baseline=baseline)
    assert violations
    assert {v["gate"] for v in violations} == {"speed"}
    assert all(v["wall_ratio_geomean"] == pytest.approx(2.0, rel=1e-6) for v in violations)


def test_speed_gate_ignores_sub_resolution_points(tiny_run, tmp_path):
    """With the default floor, microsecond-scale points cannot fire the gate."""
    out_dir, document = tiny_run
    report, _ = evaluate_run(out_dir)
    baseline = baseline_payload(report["curves"], report["snapshot"])
    fast_walls = all(
        p["wall_time_s"] < EvaluateConfig().min_wall_s for p in document["points"]
    )
    run_dir = _tampered_copy(document, tmp_path, wall_factor=2.0)
    _report, violations = evaluate_run(run_dir, baseline=baseline)
    if fast_walls:
        assert violations == []


def test_snapshot_mismatch_is_a_baseline_violation(tiny_run, tmp_path):
    out_dir, _document = tiny_run
    report, _ = evaluate_run(out_dir)
    baseline = baseline_payload(report["curves"], "v0-other")
    _report, violations = evaluate_run(out_dir, baseline=baseline)
    assert any(v["gate"] == "baseline" for v in violations)


def test_record_report_writes_schema_3_curves(tiny_run, tmp_path, monkeypatch):
    out_dir, _document = tiny_run
    artifact = tmp_path / "BENCH_results.json"
    monkeypatch.setenv("REPRO_BENCH_RESULTS", str(artifact))
    report, _ = evaluate_run(out_dir)
    record_report(report)
    data = json.loads(artifact.read_text())
    assert data["schema"] == bench_results.SCHEMA_VERSION == 3
    (tag,) = data["curves"]
    assert tag == "bench:v1:seed=0"
    assert data["curves"][tag]["passed"] is True
    assert len(data["curves"][tag]["curves"]) == 2


def test_curve_history_is_bounded(tmp_path):
    artifact = tmp_path / "BENCH_results.json"
    for i in range(bench_results.MAX_CURVE_SETS + 3):
        bench_results.record_curves(f"tag-{i}", {"i": i}, str(artifact))
    data = json.loads(artifact.read_text())
    assert len(data["curves"]) == bench_results.MAX_CURVE_SETS
    assert f"tag-{bench_results.MAX_CURVE_SETS + 2}" in data["curves"]
    assert "tag-0" not in data["curves"]


def test_evaluate_rejects_an_empty_run(tmp_path):
    run_dir = tmp_path / "empty"
    run_dir.mkdir()
    (run_dir / "results.json").write_text(json.dumps({"snapshot": "v1", "points": []}))
    with pytest.raises(ReproError, match="no sweep points"):
        evaluate_run(run_dir)
