"""Tests for the support / absolute-continuity analyses."""

import numpy as np

from repro.analysis import (
    absolute_continuity_certificate,
    empirical_support_check,
    enumerate_trace_shapes,
)
from repro.core import types as ty
from repro.core.parser import parse_program
from repro.core.semantics import traces as tr
from repro.core.typecheck import infer_guide_types
from repro.models.library import (
    EX1_GUIDE_UNSOUND_IS_SOURCE,
    get_benchmark,
)


class TestStaticCertificate:
    def test_sound_pair_is_certified(self, fig5_model, fig5_guide):
        report = absolute_continuity_certificate(fig5_model, fig5_guide, "Model", "Guide1")
        assert report.certified
        assert report.reason is None

    def test_unsound_pair_is_not_certified(self, fig5_model):
        bad_guide = parse_program(EX1_GUIDE_UNSOUND_IS_SOURCE)
        report = absolute_continuity_certificate(fig5_model, bad_guide, "Model", "Guide1Bad")
        assert not report.certified
        assert report.reason is not None


class TestEmpiricalCheck:
    def test_sound_pair_passes_empirically(self, fig5_model, fig5_guide):
        result = empirical_support_check(
            fig5_model, fig5_guide, "Model", "Guide1",
            obs_trace=(tr.ValP(0.8),), num_draws=40,
            rng=np.random.default_rng(0),
        )
        assert result.looks_absolutely_continuous
        assert result.protocol_errors == 0

    def test_unsound_guide_fails_empirically(self, fig5_model):
        bad_guide = parse_program(EX1_GUIDE_UNSOUND_IS_SOURCE)
        result = empirical_support_check(
            fig5_model, bad_guide, "Model", "Guide1Bad",
            obs_trace=(tr.ValP(0.8),), num_draws=40,
            rng=np.random.default_rng(1),
        )
        assert not result.looks_absolutely_continuous

    def test_benchmark_pairs_pass_empirically(self):
        benchmark = get_benchmark("kalman")
        result = empirical_support_check(
            benchmark.model_program(), benchmark.guide_program(),
            benchmark.model_entry, benchmark.guide_entry,
            obs_trace=tuple(tr.ValP(v) for v in benchmark.obs_values),
            num_draws=25, rng=np.random.default_rng(2),
        )
        assert result.looks_absolutely_continuous


class TestTraceShapeEnumeration:
    def test_fig5_shapes_match_support_equation(self, fig5_model):
        result = infer_guide_types(fig5_model)
        latent = result.entry_channel_type("Model", "latent")
        shapes = enumerate_trace_shapes(latent)
        # Equation (2): {[x]} ∪ {[x; y]} — two shapes.
        assert set(shapes) == {
            ("valP:preal", "dirC:T"),
            ("valP:preal", "dirC:F", "valP:ureal"),
        }

    def test_recursive_type_enumeration_is_bounded(self, fig6_pcfg):
        result = infer_guide_types(fig6_pcfg)
        latent = result.entry_channel_type("Pcfg", "latent")
        shapes = enumerate_trace_shapes(latent, result.table, max_depth=3, max_shapes=32)
        assert 1 <= len(shapes) <= 32
        # The single-leaf derivation must be among the enumerated shapes.
        assert ("valP:ureal", "fold", "valP:ureal", "dirC:T", "valP:real") in shapes

    def test_end_type_has_single_empty_shape(self):
        assert enumerate_trace_shapes(ty.End()) == [()]
