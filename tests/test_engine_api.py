"""The inference-engine registry, SMC engine, and program sessions."""

import math

import numpy as np
import pytest

from repro.core.semantics import traces as tr
from repro.engine import (
    InferenceRequest,
    ProgramSession,
    available_engines,
    clear_session_cache,
    get_engine,
    smc,
)
from repro.engine.smc import systematic_resample
from repro.errors import InferenceError
from repro.models import get_benchmark

#: Conjugate normal-normal posterior mean for the "weight" model at y = 9.5.
WEIGHT_POSTERIOR_MEAN = (8.5 / 1.0 + 9.5 / 0.5625) / (1.0 / 1.0 + 1.0 / 0.5625)


@pytest.fixture(autouse=True)
def _fresh_session_cache():
    clear_session_cache()
    yield
    clear_session_cache()


@pytest.fixture
def ex1_session():
    bench = get_benchmark("ex-1")
    return ProgramSession.from_sources(bench.model_source, bench.guide_source)


class TestRegistry:
    def test_all_engines_registered(self):
        assert {"is", "is-sequential", "smc", "mh"} <= set(available_engines())

    def test_unknown_engine_raises(self):
        with pytest.raises(InferenceError, match="unknown inference engine"):
            get_engine("does-not-exist")

    def test_every_engine_estimates_the_fig2_posterior(self, ex1_session):
        means = {}
        for engine in ["is", "is-sequential", "smc", "mh"]:
            result = ex1_session.infer(
                engine, num_particles=2000, obs_values=[0.8], seed=0
            )
            means[engine] = result.posterior_mean(0)
        # All engines target the same posterior (mean ~2.8, prior mean 2.0).
        for engine, mean in means.items():
            assert mean > 2.2, (engine, mean)
            assert abs(mean - means["is"]) < 0.35, (engine, means)

    def test_request_object_and_kwargs_are_exclusive(self, ex1_session):
        request = InferenceRequest(num_particles=10, obs_values=[0.8])
        with pytest.raises(InferenceError):
            ex1_session.infer("is", request=request, num_particles=20)


class TestProgramSession:
    def test_from_sources_is_cached(self):
        bench = get_benchmark("ex-1")
        first = ProgramSession.from_sources(bench.model_source, bench.guide_source)
        second = ProgramSession.from_sources(bench.model_source, bench.guide_source)
        assert first is second

    def test_certified_pair(self, ex1_session):
        assert ex1_session.certified
        assert ex1_session.certification_reason is None
        ex1_session.require_certified()
        assert ex1_session.model_entry == "Model"
        assert ex1_session.guide_entry == "Guide1"

    def test_uncertified_pair_reports_reason(self):
        bench = get_benchmark("ex-1")
        from repro.models.library import EX1_GUIDE_UNSOUND_IS_SOURCE

        session = ProgramSession.from_sources(
            bench.model_source, EX1_GUIDE_UNSOUND_IS_SOURCE
        )
        assert not session.certified
        assert session.certification_reason
        with pytest.raises(InferenceError, match="not certified"):
            session.require_certified()

    def test_typecheck_can_be_skipped(self):
        bench = get_benchmark("ex-1")
        session = ProgramSession.from_sources(
            bench.model_source, bench.guide_source, typecheck=False
        )
        assert session.check is None
        with pytest.raises(InferenceError, match="skipped typechecking"):
            session.require_certified()

    def test_obs_trace_takes_precedence_over_values(self):
        request = InferenceRequest(obs_values=[1.0], obs_trace=(tr.ValP(2.0),))
        assert request.resolved_obs_trace() == (tr.ValP(2.0),)
        assert InferenceRequest(obs_values=[1.0]).resolved_obs_trace() == (tr.ValP(1.0),)
        assert InferenceRequest().resolved_obs_trace() is None


class TestSMC:
    def test_recovers_conjugate_posterior(self):
        bench = get_benchmark("weight")
        result = smc(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=(tr.ValP(9.5),), num_particles=4000,
            rng=np.random.default_rng(0), guide_args=(8.5, 0.0),
        )
        assert result.posterior_mean(0) == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.15)
        assert math.isfinite(result.log_evidence())

    def test_multi_step_annealing_resamples_on_ess_collapse(self):
        bench = get_benchmark("kalman")
        obs_trace = tuple(tr.ValP(v) for v in bench.obs_values)
        result = smc(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_particles=1500,
            rng=np.random.default_rng(0), ess_threshold=0.9,
        )
        assert len(result.ess_history) == len(bench.obs_values)
        assert result.resample_steps, "a 0.9 ESS threshold must trigger resampling"
        assert len(result.rejuvenation_rates) == len(result.resample_steps)
        # Pointwise agreement with importance sampling on the same pair.
        from repro.inference import importance_sampling

        reference = importance_sampling(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_samples=4000, rng=np.random.default_rng(1),
        )
        assert result.posterior_mean(3) == pytest.approx(
            reference.posterior_expectation_of_site(3), abs=0.3
        )

    def test_rejuvenation_can_be_disabled(self):
        bench = get_benchmark("kalman")
        obs_trace = tuple(tr.ValP(v) for v in bench.obs_values)
        result = smc(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_particles=500,
            rng=np.random.default_rng(0), ess_threshold=0.9, rejuvenate=False,
        )
        assert result.rejuvenation_rates == []

    def test_branch_dependent_observation_counts_are_handled(self):
        """Regression: rejuvenation used to crash (or silently broadcast) when
        a proposal run's obs-score matrix had a different width than the
        current population's — which happens whenever the number of observe
        statements depends on a latent branch."""
        from repro.core.parser import parse_program

        model = parse_program(
            """
            proc M() consume latent provide obs {
              gate <- sample.recv{latent}(Ber(0.5));
              _ <- sample.send{obs}(Normal(0.0, 1.0));
              if gate {
                observe(Normal(0.0, 1.0), 0.3);
                observe(Normal(0.0, 1.0), 0.4);
                return(gate)
              } else {
                return(gate)
              }
            }
            """
        )
        guide = parse_program(
            """
            proc G() provide latent {
              gate <- sample.send{latent}(Ber(0.5));
              return(gate)
            }
            """
        )
        for seed in range(4):
            try:
                result = smc(
                    model, guide, "M", "G",
                    obs_trace=(tr.ValP(0.1),), num_particles=16,
                    rng=np.random.default_rng(seed), ess_threshold=1.01,
                )
            except InferenceError as err:
                # A proposal path revealed more steps than the schedule: the
                # engine must refuse loudly, never broadcast-corrupt weights.
                assert "branch-dependent" in str(err)
            else:
                assert math.isfinite(result.log_evidence())

    def test_requires_observations(self):
        bench = get_benchmark("ex-1")
        with pytest.raises(InferenceError, match="non-empty observation trace"):
            smc(
                bench.model_program(), bench.guide_program(),
                bench.model_entry, bench.guide_entry,
                obs_trace=None, num_particles=10,
            )

    def test_log_evidence_matches_importance_sampling(self):
        bench = get_benchmark("ex-1")
        obs_trace = (tr.ValP(0.8),)
        result = smc(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_particles=4000, rng=np.random.default_rng(2),
        )
        from repro.inference import importance_sampling

        reference = importance_sampling(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=obs_trace, num_samples=4000, rng=np.random.default_rng(3),
        )
        assert result.log_evidence() == pytest.approx(reference.log_evidence(), abs=0.2)


class TestSystematicResample:
    def test_concentrated_weights_select_the_heavy_particle(self):
        weights = np.asarray([0.0, 0.0, 1.0, 0.0])
        indices = systematic_resample(weights, np.random.default_rng(0))
        assert np.all(indices == 2)

    def test_uniform_weights_cover_all_particles(self):
        weights = np.full(8, 1.0 / 8.0)
        indices = systematic_resample(weights, np.random.default_rng(0))
        assert sorted(indices) == list(range(8))


class TestParallelMH:
    def test_pooled_chains_recover_conjugate_posterior(self):
        bench = get_benchmark("weight")
        session = ProgramSession.from_sources(bench.model_source, bench.guide_source)
        result = session.infer(
            "mh",
            num_particles=4000,
            num_chains=4,
            burn_in=150,
            obs_values=[9.5],
            seed=0,
            guide_args=(9.0, 0.0),
        )
        assert result.posterior_mean(0) == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.2)
        diagnostics = result.diagnostics()
        assert diagnostics["num_chains"] == 4
        assert all(0.0 < rate <= 1.0 for rate in diagnostics["acceptance_rates"])
        assert diagnostics["gelman_rubin_site0"] == pytest.approx(1.0, abs=0.2)
