"""Shared fixtures: the paper's running examples as parsed programs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parser import parse_program
from repro.minipyro import clear_param_store

FIG5_MODEL_SOURCE = """
proc Model() consume latent provide obs {
  v <- sample.recv{latent}(Gamma(2.0, 1.0));
  if.send{latent} v < 2.0 {
    _ <- sample.send{obs}(Normal(-1.0, 1.0));
    return(v)
  } else {
    m <- sample.recv{latent}(Beta(3.0, 1.0));
    _ <- sample.send{obs}(Normal(m, 1.0));
    return(v)
  }
}
"""

FIG5_GUIDE_SOURCE = """
proc Guide1() provide latent {
  v <- sample.send{latent}(Gamma(1.0, 1.0));
  if.recv{latent} {
    return(v)
  } else {
    m <- sample.send{latent}(Unif);
    return(v)
  }
}
"""

FIG6_PCFG_SOURCE = """
proc Pcfg() consume latent {
  k <- sample.recv{latent}(Beta(3.0, 1.0));
  call PcfgGen(k)
}

proc PcfgGen(k: ureal) consume latent {
  u <- sample.recv{latent}(Unif);
  if.send{latent} u < k {
    v <- sample.recv{latent}(Normal(0.0, 1.0));
    return(v)
  } else {
    lhs <- call PcfgGen(k);
    rhs <- call PcfgGen(k);
    return(lhs + rhs)
  }
}
"""

FIG6_PCFG_GUIDE_SOURCE = """
proc PcfgGuide() provide latent {
  k <- sample.send{latent}(Beta(2.0, 2.0));
  call PcfgGenGuide(k)
}

proc PcfgGenGuide(k: ureal) provide latent {
  u <- sample.send{latent}(Unif);
  if.recv{latent} {
    v <- sample.send{latent}(Normal(0.0, 2.0));
    return(v)
  } else {
    lhs <- call PcfgGenGuide(k);
    rhs <- call PcfgGenGuide(k);
    return(lhs + rhs)
  }
}
"""


@pytest.fixture
def fig5_model():
    return parse_program(FIG5_MODEL_SOURCE)


@pytest.fixture
def fig5_guide():
    return parse_program(FIG5_GUIDE_SOURCE)


@pytest.fixture
def fig6_pcfg():
    return parse_program(FIG6_PCFG_SOURCE)


@pytest.fixture
def fig6_pcfg_guide():
    return parse_program(FIG6_PCFG_GUIDE_SOURCE)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _clean_param_store():
    """Keep the global mini-Pyro parameter store isolated between tests."""
    clear_param_store()
    yield
    clear_param_store()
