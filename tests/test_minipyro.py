"""Tests for the mini-Pyro substrate: handlers, primitives, and inference."""

import math

import numpy as np
import pytest

from repro.dists import Bernoulli, Beta, Normal
from repro.minipyro import (
    clear_param_store,
    condition,
    get_param_store,
    param,
    replay,
    sample,
    seed,
    trace,
)
from repro.minipyro.infer import MH, SVI, Adam, Importance, SGD, elbo_estimate
from repro.minipyro.trace_struct import Trace, TraceSite
from repro.errors import InferenceError


def simple_model(data):
    w = sample("w", Normal(0.0, 1.0))
    sample("y", Normal(w, 0.5), obs=data)
    return w


def simple_guide(data):
    loc = param("loc", 0.0)
    return sample("w", Normal(loc, 0.5))


class TestPrimitives:
    def test_sample_outside_handlers_draws_a_value(self):
        with seed(0):
            value = sample("x", Normal(0.0, 1.0))
        assert isinstance(value, float)

    def test_sample_with_obs_returns_obs(self):
        assert sample("x", Normal(0.0, 1.0), obs=2.5) == 2.5

    def test_param_requires_init_on_first_use(self):
        clear_param_store()
        with pytest.raises(KeyError):
            param("unknown")

    def test_param_persists_in_store(self):
        param("theta", 1.5)
        assert get_param_store()["theta"] == 1.5
        assert param("theta") == 1.5


class TestHandlers:
    def test_trace_records_sites_in_order(self):
        tracer = trace(simple_model)
        recorded = tracer.get_trace(1.0)
        assert recorded.names() == ["w", "y"]
        assert recorded["y"].is_observed
        assert not recorded["w"].is_observed

    def test_trace_log_prob_sum(self):
        recorded = trace(simple_model).get_trace(1.0)
        w = recorded["w"].value
        expected = Normal(0.0, 1.0).log_prob(w) + Normal(w, 0.5).log_prob(1.0)
        assert recorded.log_prob_sum() == pytest.approx(expected)

    def test_log_prob_sum_observed_only(self):
        recorded = trace(simple_model).get_trace(1.0)
        w = recorded["w"].value
        assert recorded.log_prob_sum(observed_only=True) == pytest.approx(
            Normal(w, 0.5).log_prob(1.0)
        )

    def test_replay_forces_latent_values(self):
        guide_trace = Trace()
        guide_trace.add_site(TraceSite("w", Normal(0.0, 1.0), 0.75))
        replayed = replay(guide_trace)(simple_model)
        recorded = trace(replayed).get_trace(1.0)
        assert recorded["w"].value == 0.75

    def test_replay_does_not_override_observations(self):
        guide_trace = Trace()
        guide_trace.add_site(TraceSite("y", Normal(0.0, 1.0), 99.0))
        replayed = replay(guide_trace)(simple_model)
        recorded = trace(replayed).get_trace(1.0)
        assert recorded["y"].value == 1.0

    def test_condition_marks_sites_observed(self):
        def prior_model():
            return sample("w", Normal(0.0, 1.0))

        conditioned = condition({"w": 0.3})(prior_model)
        recorded = trace(conditioned).get_trace()
        assert recorded["w"].value == 0.3
        assert recorded["w"].is_observed

    def test_seed_handler_is_reproducible(self):
        def model():
            return sample("x", Normal(0.0, 1.0))

        with seed(123):
            a = model()
        with seed(123):
            b = model()
        assert a == b

    def test_duplicate_site_names_rejected(self):
        def bad_model():
            sample("x", Normal(0.0, 1.0))
            sample("x", Normal(0.0, 1.0))

        with pytest.raises(ValueError):
            trace(bad_model).get_trace()


class TestImportance:
    def test_posterior_mean_of_conjugate_normal(self):
        # Prior N(0,1), likelihood N(w, 0.5) with y=1.0:
        # posterior mean = 1.0 * (1 / (1 + 0.25)) = 0.8
        def guide(data):
            return sample("w", Normal(0.5, 1.0))

        results = Importance(simple_model, guide, num_samples=4000).run(
            1.0, rng=np.random.default_rng(0)
        )
        assert results.posterior_mean("w") == pytest.approx(0.8, abs=0.08)

    def test_log_evidence_estimate(self):
        def guide(data):
            return sample("w", Normal(0.0, 1.0))

        results = Importance(simple_model, guide, num_samples=4000).run(
            1.0, rng=np.random.default_rng(1)
        )
        # Marginal likelihood of y=1.0 under N(0, sqrt(1 + 0.25)).
        expected = Normal(0.0, math.sqrt(1.25)).log_prob(1.0)
        assert results.log_evidence() == pytest.approx(expected, abs=0.05)

    def test_effective_sample_size_bounded_by_n(self):
        def guide(data):
            return sample("w", Normal(0.0, 1.0))

        results = Importance(simple_model, guide, num_samples=100).run(
            1.0, rng=np.random.default_rng(2)
        )
        assert 1.0 <= results.effective_sample_size() <= 100.0

    def test_invalid_num_samples_rejected(self):
        with pytest.raises(InferenceError):
            Importance(simple_model, simple_guide, num_samples=0)


class TestMH:
    def test_posterior_mean_of_conjugate_normal(self):
        chain = MH(simple_model, num_samples=3000, burn_in=300).run(
            1.0, rng=np.random.default_rng(3)
        )
        assert chain.posterior_mean("w") == pytest.approx(0.8, abs=0.1)
        assert 0.0 < chain.acceptance_rate <= 1.0

    def test_beta_bernoulli_posterior(self):
        def coin_model(flips):
            p = sample("p", Beta(1.0, 1.0))
            for i, flip in enumerate(flips):
                sample(f"flip{i}", Bernoulli(p), obs=flip)
            return p

        flips = [True, True, True, False]
        chain = MH(coin_model, num_samples=3000, burn_in=300).run(
            flips, rng=np.random.default_rng(4)
        )
        # Posterior Beta(1+3, 1+1) has mean 4/6.
        assert chain.posterior_mean("p") == pytest.approx(4.0 / 6.0, abs=0.07)


class TestSVI:
    def test_svi_moves_guide_towards_posterior(self):
        clear_param_store()
        svi = SVI(simple_model, simple_guide, optim=Adam(lr=0.1), num_particles=4)
        rng = np.random.default_rng(5)
        for _ in range(60):
            svi.step(1.0, rng=rng)
        assert get_param_store()["loc"] == pytest.approx(0.8, abs=0.25)

    def test_elbo_estimate_is_finite(self):
        clear_param_store()
        param("loc", 0.0)
        value = elbo_estimate(
            simple_model, simple_guide, 1.0, num_particles=10, rng=np.random.default_rng(6)
        )
        assert math.isfinite(value)

    def test_svi_requires_parameters(self):
        def paramless_guide(data):
            return sample("w", Normal(0.0, 1.0))

        clear_param_store()
        svi = SVI(simple_model, paramless_guide)
        with pytest.raises(InferenceError):
            svi.step(1.0, rng=np.random.default_rng(7))

    def test_sgd_and_adam_update_parameters(self):
        params = {"a": 0.0}
        SGD(lr=0.5).update(params, {"a": 2.0})
        assert params["a"] == pytest.approx(1.0)
        adam = Adam(lr=0.1)
        adam.update(params, {"a": 1.0})
        assert params["a"] > 1.0
