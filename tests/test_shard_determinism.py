"""Shard-count/worker-count invariance: the determinism contract, pinned.

Two guarantees from :mod:`repro.engine.shard`:

1. **Worker invariance** — with the shard plan fixed, ``workers ∈ {1, 2, 4}``
   produce *bit-identical* posteriors, evidence estimates, weights, and
   traces under a fixed seed, for all three vectorized engines on both
   backends.  Inline execution and the process pool are the same computation.
2. **Legacy parity** — ``workers=1, shards=1`` is bit-identical to a request
   that never mentions sharding at all (the pre-sharding single-process
   path).
"""

import pytest

from repro.engine import ProgramSession
from repro.models import get_benchmark

WORKER_COUNTS = (1, 2, 4)
SHARDS = 4
ENGINES = ("is", "smc", "svi")
BACKENDS = ("interp", "compiled")
#: One straight-line conjugate model and one with divergent control flow
#: (so sharding composes with control-flow group splitting and the compiled
#: backend's sub-kernel dispatch).
MODELS = ("weight", "switching")


def _session(name):
    bench = get_benchmark(name)
    return ProgramSession(
        bench.model_program(), bench.guide_program(), bench.model_entry, bench.guide_entry
    )


def _infer(name, engine, backend, seed=0, **shard_kwargs):
    bench = get_benchmark(name)
    kwargs = dict(
        num_particles=300,
        obs_values=bench.obs_values,
        seed=seed,
        backend=backend,
        **shard_kwargs,
    )
    if name == "weight":
        kwargs["guide_args"] = (8.5, 0.0)
        if engine == "svi":
            kwargs.update(
                guide_params={"loc": 8.5, "log_scale": 0.0},
                num_steps=3,
                num_particles=64,
                final_particles=300,
            )
    elif engine == "svi":
        pytest.skip(f"{name} has no parametrised guide for SVI")
    return _session(name).infer(engine, **kwargs)


def _fingerprint(engine, result):
    """Everything bit-comparable about one engine result."""
    out = {
        "mean": result.posterior_mean(0),
        "evidence": result.log_evidence(),
        "ess": result.effective_sample_size(),
    }
    raw = result.raw
    if engine == "is":
        out["weights"] = tuple(raw.log_weights)
        out["traces"] = tuple(raw.run.trace_for(i) for i in (0, 150, 299))
    elif engine == "smc":
        out["weights"] = tuple(raw.log_weights)
        out["resampled"] = tuple(raw.resample_steps)
        out["traces"] = tuple(raw.trace_for(i) for i in (0, 299))
    return out


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("model", MODELS)
def test_worker_count_never_changes_results(model, engine, backend):
    """workers 1/2/4 with a pinned shard plan are bit-identical."""
    fingerprints = [
        _fingerprint(engine, _infer(model, engine, backend, workers=w, shards=SHARDS))
        for w in WORKER_COUNTS
    ]
    for other in fingerprints[1:]:
        assert other == fingerprints[0]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("model", MODELS)
def test_single_shard_matches_legacy_path(model, engine):
    """workers=1, shards=1 is bit-identical to an unsharded request."""
    legacy = _fingerprint(engine, _infer(model, engine, "interp"))
    sharded = _fingerprint(engine, _infer(model, engine, "interp", workers=1, shards=1))
    assert sharded == legacy


def test_default_shards_follow_workers():
    """shards=None resolves to one shard per worker (documented default)."""
    from repro.engine import InferenceRequest

    assert InferenceRequest(workers=1).resolved_shards() == 1
    assert InferenceRequest(workers=3).resolved_shards() == 3
    assert InferenceRequest(workers=3, shards=8).resolved_shards() == 8


def test_sharded_posterior_still_agrees_with_golden():
    """Sharding changes the RNG schedule, not the estimator: the conjugate
    posterior mean (9.14, see the conformance suite) still comes out."""
    result = _infer("weight", "is", "interp", workers=2, shards=8)
    assert result.posterior_mean(0) == pytest.approx(9.14, abs=0.15)


def test_recursive_model_shards_compose_with_group_splitting():
    """The recursive Poisson-trace model (recursion-driven group splitting,
    compiled-backend fallback) still merges exactly at any worker count."""
    bench = get_benchmark("ptrace")
    session = ProgramSession(
        bench.model_program(), bench.guide_program(), bench.model_entry, bench.guide_entry
    )
    results = [
        session.infer(
            "is",
            num_particles=60,
            obs_values=bench.obs_values,
            seed=0,
            workers=w,
            shards=3,
        )
        for w in (1, 2)
    ]
    assert results[0].posterior_mean(0) == results[1].posterior_mean(0)
    assert tuple(results[0].raw.log_weights) == tuple(results[1].raw.log_weights)
