"""Unit tests for the vectorized SVI stack: transforms, ParamStore, engines.

The gradient-correctness property tests live in ``test_svi_gradients.py``
and the cross-engine posterior agreement checks in ``tests/conformance``;
this file covers the plumbing: constraint transforms round-trip, the store
builds guide arguments, ``fit_svi`` converges on the conjugate weight model
and never steps on degenerate batches, and both SVI engines answer the
registry's uniform result interface.
"""

import math

import numpy as np
import pytest

from repro.core.parser import parse_program
from repro.core.semantics import traces as tr
from repro.engine import ProgramSession, available_engines
from repro.engine.params import ParamStore, get_transform, store_from_inits
from repro.engine.svi import (
    estimate_elbo_batched,
    fit_svi,
    make_optimizer,
)
from repro.errors import InferenceError
from repro.inference.vi import estimate_elbo
from repro.minipyro.infer.optim import Adam
from repro.models import get_benchmark

WEIGHT_POSTERIOR_MEAN = (8.5 / 1.0 + 9.5 / 0.5625) / (1.0 / 1.0 + 1.0 / 0.5625)
WEIGHT_POSTERIOR_STD = math.sqrt(1.0 / (1.0 / 1.0 + 1.0 / 0.5625))


class TestTransforms:
    @pytest.mark.parametrize("name", ["real", "positive", "unit"])
    @pytest.mark.parametrize("value", [0.25, 1.0e-3, 0.9])
    def test_scalar_round_trip(self, name, value):
        transform = get_transform(name)
        assert float(transform.forward(transform.inverse(np.asarray(value)))) == pytest.approx(
            value, rel=1e-9
        )

    def test_positive_forward_is_positive_and_stable(self):
        transform = get_transform("positive")
        u = np.array([-50.0, -1.0, 0.0, 1.0, 50.0, 800.0])
        c = transform.forward(u)
        assert np.all(c > 0.0)
        assert np.all(np.isfinite(c))
        # For large u, softplus(u) ~ u.
        assert float(c[-1]) == pytest.approx(800.0)

    def test_unit_forward_stays_inside_interval(self):
        transform = get_transform("unit")
        c = transform.forward(np.array([-40.0, 0.0, 40.0]))
        assert np.all((c > 0.0) & (c < 1.0))

    def test_simplex_round_trip_and_normalisation(self):
        transform = get_transform("simplex")
        weights = np.array([0.2, 0.5, 0.3])
        out = transform.forward(transform.inverse(weights))
        assert np.allclose(out, weights)
        assert float(out.sum()) == pytest.approx(1.0)

    def test_invalid_initialisations_rejected(self):
        with pytest.raises(InferenceError):
            get_transform("positive").inverse(np.asarray(-1.0))
        with pytest.raises(InferenceError):
            get_transform("unit").inverse(np.asarray(1.5))
        with pytest.raises(InferenceError):
            get_transform("simplex").inverse(np.asarray([0.5, -0.1]))
        with pytest.raises(InferenceError):
            get_transform("does-not-exist")


class TestParamStore:
    def test_guide_args_follow_declaration_order(self):
        store = store_from_inits({"b": 2.0, "a": 1.0})
        assert store.guide_args(("a", "b")) == (1.0, 2.0)

    def test_constrained_values_apply_transforms(self):
        store = store_from_inits({"scale": 2.5}, {"scale": "positive"})
        assert store.constrained("scale") == pytest.approx(2.5)
        # The optimiser-facing value is unconstrained (softplus inverse).
        assert float(store.unconstrained_dict()["scale"]) != pytest.approx(2.5)

    def test_vector_round_trip(self):
        store = store_from_inits({"loc": 1.0, "w": np.array([0.2, 0.3, 0.5])}, {"w": "simplex"})
        theta = store.vector()
        assert theta.size == store.size == 4
        clone = store.copy()
        clone.load_vector(theta + 0.0)
        assert np.allclose(clone.vector(), theta)

    def test_perturbed_touches_one_coordinate(self):
        store = store_from_inits({"loc": 1.0, "w": np.array([0.2, 0.8])}, {"w": "simplex"})
        bumped = store.perturbed("w", 1, 0.1)
        assert float(store.vector()[2]) == pytest.approx(float(bumped.vector()[2]) - 0.1)
        assert np.allclose(store.vector()[[0, 1]], bumped.vector()[[0, 1]])

    def test_missing_parameter_rejected(self):
        store = store_from_inits({"loc": 1.0})
        with pytest.raises(InferenceError):
            store.guide_args(("loc", "scale"))

    def test_constraint_for_unknown_parameter_rejected(self):
        with pytest.raises(InferenceError):
            store_from_inits({"loc": 1.0}, {"scalee": "positive"})

    def test_duplicate_registration_rejected(self):
        store = ParamStore()
        store.register("x", 1.0)
        with pytest.raises(InferenceError):
            store.register("x", 2.0)


class TestBatchedELBO:
    def test_matches_sequential_estimator_semantics(self):
        bench = get_benchmark("weight")
        model, guide = bench.model_program(), bench.guide_program()

        batched = estimate_elbo_batched(
            model, guide, bench.model_entry, bench.guide_entry,
            obs_trace=(tr.ValP(9.5),), num_particles=4000,
            rng=np.random.default_rng(0), guide_args=(8.5, 0.0),
        )

        def family(theta):
            return guide, bench.guide_entry, (float(theta[0]), float(theta[1]))

        sequential = estimate_elbo(
            model, family, np.array([8.5, 0.0]), bench.model_entry,
            obs_trace=(tr.ValP(9.5),), num_particles=4000,
            rng=np.random.default_rng(1),
        )
        assert batched.num_particles == 4000
        assert batched.value == pytest.approx(sequential.value, abs=0.1)

    def test_elbo_bounded_by_log_evidence(self):
        bench = get_benchmark("weight")
        log_evidence = -0.5 * (9.5 - 8.5) ** 2 / 1.5625 - 0.5 * math.log(2 * math.pi * 1.5625)
        estimate = estimate_elbo_batched(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            obs_trace=(tr.ValP(9.5),), num_particles=4000,
            rng=np.random.default_rng(2), guide_args=(8.5, 0.0),
        )
        assert estimate.value < log_evidence + 0.05


class TestFitSVI:
    def _fit(self, **kwargs):
        bench = get_benchmark("weight")
        store = store_from_inits({"loc": 8.5, "log_scale": 0.0})
        defaults = dict(
            num_steps=60, num_particles=64,
            optimizer=Adam(lr=0.1), rng=np.random.default_rng(0),
        )
        defaults.update(kwargs)
        return fit_svi(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
            store, (tr.ValP(9.5),), **defaults,
        ), store

    def test_converges_to_conjugate_posterior(self):
        result, store = self._fit()
        fitted = result.fitted_params()
        assert fitted["loc"] == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.2)
        assert math.exp(fitted["log_scale"]) == pytest.approx(WEIGHT_POSTERIOR_STD, abs=0.2)
        assert result.num_steps == 60
        # The ELBO trend is upward (tail average beats head average).
        head = np.mean(result.elbo_history[:10])
        tail = np.mean(result.elbo_history[-10:])
        assert tail > head

    def test_rao_blackwellized_fit_also_converges(self):
        result, _ = self._fit(rao_blackwellize=True)
        assert result.fitted_params()["loc"] == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.2)

    def test_store_updated_in_place(self):
        result, store = self._fit(num_steps=5)
        assert result.store is store
        assert store.constrained("loc") != pytest.approx(8.5)

    def test_rejects_degenerate_particle_counts(self):
        bench = get_benchmark("weight")
        store = store_from_inits({"loc": 8.5, "log_scale": 0.0})
        with pytest.raises(InferenceError):
            fit_svi(
                bench.model_program(), bench.guide_program(),
                bench.model_entry, bench.guide_entry,
                store, (tr.ValP(9.5),), num_steps=1, num_particles=1,
            )

    def test_out_of_support_batches_do_not_move_parameters(self):
        # Gamma-supported latent, Normal guide centred at a negative value:
        # essentially every batch contains out-of-support proposals, and with
        # loc=-40 effectively *all* particles are out of support.
        model = parse_program(
            """
            proc M() consume latent provide obs {
              v <- sample.recv{latent}(Gamma(2.0, 1.0));
              _ <- sample.send{obs}(Normal(v, 1.0));
              return(v)
            }
            """
        )
        guide = parse_program(
            """
            proc G(loc: real) provide latent {
              v <- sample.send{latent}(Normal(loc, 1.0));
              return(v)
            }
            """
        )
        store = store_from_inits({"loc": -40.0})
        result = fit_svi(
            model, guide, "M", "G", store, (tr.ValP(1.0),),
            num_steps=5, num_particles=16, rng=np.random.default_rng(3),
        )
        assert all(value == -math.inf for value in result.elbo_history)
        assert all(count == 16 for count in result.num_infinite_history)
        assert store.constrained("loc") == pytest.approx(-40.0)


class TestSVIEngines:
    def test_both_svi_engines_registered(self):
        assert {"svi", "svi-fd"} <= set(available_engines())

    def _weight_session(self):
        bench = get_benchmark("weight")
        return ProgramSession(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
        )

    def test_vectorized_engine_recovers_posterior_mean(self):
        session = self._weight_session()
        result = session.infer(
            "svi", num_particles=128, obs_values=(9.5,), seed=0,
            guide_params={"loc": 8.5, "log_scale": 0.0},
            num_steps=50, learning_rate=0.1, final_particles=4000,
        )
        assert result.posterior_mean(0) == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.15)
        diagnostics = result.diagnostics()
        assert diagnostics["engine"] == "svi"
        assert diagnostics["num_steps"] == 50
        assert diagnostics["elbo_history"][-1] > diagnostics["elbo_history"][0]
        assert set(diagnostics["fitted_params"]) == {"loc", "log_scale"}
        assert result.log_evidence() is not None
        assert result.effective_sample_size() > 100

    def test_finite_difference_engine_recovers_posterior_mean(self):
        session = self._weight_session()
        result = session.infer(
            "svi-fd", num_particles=8, obs_values=(9.5,), seed=0,
            guide_params={"loc": 8.5, "log_scale": 0.0},
            num_steps=40, learning_rate=0.2, final_particles=4000,
        )
        assert result.posterior_mean(0) == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.35)
        assert result.diagnostics()["engine"] == "svi-fd"

    def test_fixed_guide_without_params_degenerates_to_reweighting(self):
        bench = get_benchmark("coin")
        session = ProgramSession(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
        )
        result = session.infer(
            "svi", num_particles=4000,
            obs_values=(True, True, False, True, True), seed=0,
        )
        # Beta(2,2) prior and 4/5 successes: posterior Beta(6, 3), mean 2/3.
        assert result.posterior_mean(0) == pytest.approx(2.0 / 3.0, abs=0.05)
        assert result.diagnostics()["num_steps"] == 0

    def test_incomplete_guide_params_rejected(self):
        session = self._weight_session()
        with pytest.raises(InferenceError):
            session.infer(
                "svi", obs_values=(9.5,), guide_params={"loc": 8.5}, num_steps=1,
            )
        with pytest.raises(InferenceError):
            session.infer(
                "svi", obs_values=(9.5,),
                guide_params={"loc": 8.5, "log_scale": 0.0, "typo": 1.0}, num_steps=1,
            )

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(InferenceError):
            make_optimizer("lbfgs", 0.1)

    def test_non_positive_final_particles_rejected(self):
        session = self._weight_session()
        for engine in ("svi", "svi-fd"):
            with pytest.raises(InferenceError, match="final_particles"):
                session.infer(
                    engine, obs_values=(9.5,), final_particles=0,
                    guide_params={"loc": 8.5, "log_scale": 0.0}, num_steps=0,
                )

    def test_finite_difference_engine_rejects_rao_blackwellize(self):
        session = self._weight_session()
        with pytest.raises(InferenceError, match="rao_blackwellize"):
            session.infer(
                "svi-fd", obs_values=(9.5,), rao_blackwellize=True,
                guide_params={"loc": 8.5, "log_scale": 0.0}, num_steps=1,
            )

    def test_finite_difference_engine_honours_optimizer_choice(self):
        """`svi-fd` must thread request.optimizer through, not silently run

        the legacy decayed ascent: identical seeds with different optimisers
        have to produce different fitted parameters.
        """
        session = self._weight_session()
        fitted = {}
        for optimizer in ("adam", "sgd"):
            result = session.infer(
                "svi-fd", num_particles=8, obs_values=(9.5,), seed=3,
                guide_params={"loc": 8.5, "log_scale": 0.0},
                num_steps=10, learning_rate=0.1, optimizer=optimizer,
                final_particles=10,
            )
            fitted[optimizer] = result.diagnostics()["fitted_params"]["loc"]
        assert fitted["adam"] != pytest.approx(fitted["sgd"], abs=1e-9)

    def test_branch_dependent_model_with_parameterized_guide(self):
        """The paper's Fig. 5 pair with the parameterized VI guide (Guide2).

        Exercises gradient estimation across *multiple control-flow groups*:
        particles split at the model's branch, and every group is rescored
        separately at the perturbed parameters.  The fitted guide must both
        raise the ELBO and become a sharper importance proposal than the
        prior-like initialisation.
        """
        from repro.models.library import EX1_GUIDE_VI_SOURCE

        bench = get_benchmark("ex-1")
        session = ProgramSession(
            bench.model_program(), parse_program(EX1_GUIDE_VI_SOURCE),
            bench.model_entry, "Guide2",
        )
        assert session.certified
        result = session.infer(
            "svi", num_particles=256, obs_values=(0.8,), seed=0,
            guide_params={"t1": 0.0, "t2": 0.0, "t3": 0.0, "t4": 0.0},
            num_steps=30, learning_rate=0.1, final_particles=4000,
        )
        diagnostics = result.diagnostics()
        assert diagnostics["elbo_history"][-1] > diagnostics["elbo_history"][0] + 0.5
        # Posterior mean of @x agrees with the IS reference (Fig. 2: ~2.8).
        assert result.posterior_mean(0) == pytest.approx(2.8, abs=0.3)
        # The fitted guide is a far better proposal than 4000 prior draws
        # would be: most of the final pass's particles carry real weight.
        assert result.effective_sample_size() > 1000

    def test_positive_constraint_through_engine(self):
        from repro.models import WEIGHT_GUIDE_POSITIVE_SOURCE

        bench = get_benchmark("weight")
        session = ProgramSession(
            bench.model_program(), parse_program(WEIGHT_GUIDE_POSITIVE_SOURCE),
            bench.model_entry, "WeighGuideP",
        )
        result = session.infer(
            "svi", num_particles=128, obs_values=(9.5,), seed=0,
            guide_params={"loc": 8.5, "scale": 1.0},
            param_constraints={"scale": "positive"},
            num_steps=50, learning_rate=0.1, final_particles=4000,
        )
        fitted = result.diagnostics()["fitted_params"]
        assert fitted["scale"] > 0.0
        assert result.posterior_mean(0) == pytest.approx(WEIGHT_POSTERIOR_MEAN, abs=0.15)
