"""Unit tests for basic types and guide types."""

import pytest

from repro.core import types as ty
from repro.errors import GuideTypeError


class TestSubtyping:
    def test_reflexivity(self):
        for tau in [ty.UNIT, ty.BOOL, ty.UREAL, ty.PREAL, ty.REAL, ty.NAT, ty.FinNatTy(3)]:
            assert ty.is_subtype(tau, tau)

    def test_numeric_chain(self):
        assert ty.is_subtype(ty.UREAL, ty.PREAL)
        assert ty.is_subtype(ty.PREAL, ty.REAL)
        assert ty.is_subtype(ty.UREAL, ty.REAL)

    def test_numeric_chain_is_not_symmetric(self):
        assert not ty.is_subtype(ty.REAL, ty.PREAL)
        assert not ty.is_subtype(ty.PREAL, ty.UREAL)

    def test_finite_nat_subtyping(self):
        assert ty.is_subtype(ty.FinNatTy(3), ty.NAT)
        assert ty.is_subtype(ty.FinNatTy(3), ty.FinNatTy(5))
        assert not ty.is_subtype(ty.FinNatTy(5), ty.FinNatTy(3))

    def test_nat_embeds_into_real(self):
        assert ty.is_subtype(ty.NAT, ty.REAL)
        assert ty.is_subtype(ty.FinNatTy(4), ty.REAL)
        assert not ty.is_subtype(ty.NAT, ty.PREAL)

    def test_bool_unrelated_to_numeric(self):
        assert not ty.is_subtype(ty.BOOL, ty.REAL)
        assert not ty.is_subtype(ty.REAL, ty.BOOL)

    def test_dist_types_are_invariant(self):
        assert not ty.is_subtype(ty.DistTy(ty.UREAL), ty.DistTy(ty.REAL))

    def test_tuple_subtyping_is_componentwise(self):
        assert ty.is_subtype(
            ty.TupleTy((ty.UREAL, ty.NAT)), ty.TupleTy((ty.REAL, ty.NAT))
        )
        assert not ty.is_subtype(
            ty.TupleTy((ty.REAL,)), ty.TupleTy((ty.REAL, ty.REAL))
        )


class TestJoin:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (ty.UREAL, ty.PREAL, ty.PREAL),
            (ty.PREAL, ty.REAL, ty.REAL),
            (ty.UREAL, ty.REAL, ty.REAL),
            (ty.NAT, ty.FinNatTy(3), ty.NAT),
            (ty.BOOL, ty.BOOL, ty.BOOL),
            (ty.NAT, ty.REAL, ty.REAL),
        ],
    )
    def test_join_values(self, a, b, expected):
        assert ty.join(a, b) == expected
        assert ty.join(b, a) == expected

    def test_join_incompatible_is_none(self):
        assert ty.join(ty.BOOL, ty.REAL) is None
        assert ty.join(ty.UNIT, ty.NAT) is None


class TestValueMembership:
    @pytest.mark.parametrize(
        "value,tau,expected",
        [
            (None, ty.UNIT, True),
            (True, ty.BOOL, True),
            (0.5, ty.UREAL, True),
            (1.5, ty.UREAL, False),
            (0.0, ty.UREAL, False),
            (2.5, ty.PREAL, True),
            (-1.0, ty.PREAL, False),
            (-1.0, ty.REAL, True),
            (3, ty.NAT, True),
            (-1, ty.NAT, False),
            (2, ty.FinNatTy(3), True),
            (3, ty.FinNatTy(3), False),
            (True, ty.REAL, False),  # Booleans are not numbers
            (1, ty.BOOL, False),
        ],
    )
    def test_membership(self, value, tau, expected):
        assert ty.value_has_type(value, tau) is expected

    def test_tuple_membership(self):
        tau = ty.TupleTy((ty.REAL, ty.BOOL))
        assert ty.value_has_type((1.0, False), tau)
        assert not ty.value_has_type((1.0, 2.0), tau)


class TestGuideTypes:
    def fig5_latent(self):
        # preal /\ (end & (ureal /\ end))
        return ty.SendVal(ty.PREAL, ty.Choose(ty.End(), ty.SendVal(ty.UREAL, ty.End())))

    def test_substitution(self):
        body = ty.SendVal(ty.REAL, ty.TyVar("X"))
        result = ty.substitute(body, {"X": ty.End()})
        assert result == ty.SendVal(ty.REAL, ty.End())

    def test_substitution_under_branches(self):
        body = ty.Offer(ty.TyVar("X"), ty.SendVal(ty.UREAL, ty.TyVar("X")))
        result = ty.substitute(body, {"X": ty.End()})
        assert result == ty.Offer(ty.End(), ty.SendVal(ty.UREAL, ty.End()))

    def test_free_type_vars(self):
        body = ty.Choose(ty.TyVar("X"), ty.OpApp("T", ty.TyVar("Y")))
        assert ty.free_type_vars(body) == {"X", "Y"}

    def test_is_closed(self):
        assert ty.is_closed(self.fig5_latent())
        assert not ty.is_closed(ty.TyVar("X"))

    def test_choose_and_offer_freedom(self):
        latent = self.fig5_latent()
        assert ty.is_offer_free(latent)
        assert not ty.is_choose_free(latent)
        offered = ty.Offer(ty.End(), ty.End())
        assert not ty.is_offer_free(offered)
        assert ty.is_choose_free(offered)

    def test_freedom_unfolds_operators(self):
        table = ty.TypeTable()
        table.define(ty.TypeDef("T", "X", ty.Choose(ty.TyVar("X"), ty.TyVar("X"))))
        applied = ty.OpApp("T", ty.End())
        assert not ty.is_choose_free(applied, table)
        assert ty.is_offer_free(applied, table)

    def test_typedef_instantiate(self):
        typedef = ty.TypeDef("T", "X", ty.SendVal(ty.REAL, ty.TyVar("X")))
        assert typedef.instantiate(ty.End()) == ty.SendVal(ty.REAL, ty.End())

    def test_type_table_duplicate_definition_rejected(self):
        table = ty.TypeTable()
        table.define(ty.TypeDef("T", "X", ty.End()))
        with pytest.raises(GuideTypeError):
            table.define(ty.TypeDef("T", "X", ty.End()))

    def test_type_table_unknown_operator(self):
        with pytest.raises(GuideTypeError):
            ty.TypeTable().lookup("Missing")

    def test_unfold(self):
        table = ty.TypeTable()
        table.define(ty.TypeDef("T", "X", ty.SendVal(ty.BOOL, ty.TyVar("X"))))
        assert table.unfold(ty.OpApp("T", ty.End())) == ty.SendVal(ty.BOOL, ty.End())
        assert table.unfold(ty.End()) == ty.End()

    def test_payload_types(self):
        latent = self.fig5_latent()
        assert ty.payload_types(latent) == {ty.PREAL, ty.UREAL}

    def test_guide_type_depth(self):
        assert ty.guide_type_depth(ty.End()) == 1
        assert ty.guide_type_depth(self.fig5_latent()) == 4

    def test_dual_description_swaps_directions(self):
        description = ty.dual_description(self.fig5_latent())
        assert description.startswith("receive preal")
        assert "send selection" in description

    def test_iter_guide_subtypes(self):
        subtypes = list(ty.iter_guide_subtypes(self.fig5_latent()))
        assert len(subtypes) == 5
