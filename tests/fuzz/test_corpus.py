"""The pinned corpus: fuzz findings as deterministic regression tests.

Every entry pins emitted *sources* plus the expected typecheck verdict, so
this suite keeps its meaning even if the generator changes.  Regenerate the
corpus (after an intentional generator change) with::

    PYTHONPATH=src python tests/fuzz/make_corpus.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.parser import parse_program
from repro.engine import clear_session_cache
from repro.fuzz.corpus import load_corpus
from repro.fuzz.mutations import is_rejected
from repro.utils.pretty import pretty_program

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)


@pytest.fixture(autouse=True)
def _fresh_session_cache():
    clear_session_cache()
    yield


def test_corpus_is_present_and_sized():
    assert len(ENTRIES) >= 100
    kinds = {e.kind for e in ENTRIES}
    assert kinds == {"generated", "mutant"}
    mutations = {e.mutation for e in ENTRIES if e.kind == "mutant"}
    assert {"swap_dist", "drop_site", "reorder_sites", "drop_branch"} <= mutations


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_verdicts_hold(entry):
    rejected, reason = is_rejected(entry.model_source, entry.guide_source)
    if entry.expected == "certified":
        assert not rejected, f"{entry.name}: unexpectedly rejected: {reason}"
    else:
        assert rejected, f"{entry.name}: unexpectedly certified"


@pytest.mark.parametrize(
    "entry",
    [e for e in ENTRIES if e.expected == "certified"],
    ids=lambda e: e.name,
)
def test_certified_corpus_round_trips(entry):
    for source in (entry.model_source, entry.guide_source):
        program = parse_program(source)
        assert parse_program(pretty_program(program)) == program
