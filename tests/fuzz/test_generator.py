"""The generator's contract: deterministic, diverse, well-typed, certified."""

from __future__ import annotations

import collections

import pytest

from repro.core import ast
from repro.engine import ProgramSession, clear_session_cache
from repro.fuzz import FuzzConfig, generate, obs_signature
from repro.fuzz.spec import (
    Branch,
    LatentSite,
    ObsSite,
    PureCond,
    PureLet,
    Recurse,
    count_latent_sites,
)

SWEEP = 60


@pytest.fixture(autouse=True)
def _fresh_session_cache():
    clear_session_cache()
    yield


def _walk_nodes(nodes):
    for node in nodes:
        yield node
        if isinstance(node, Branch):
            yield from _walk_nodes(node.then)
            yield from _walk_nodes(node.orelse)
        elif isinstance(node, Recurse):
            yield from _walk_nodes(node.body)


def test_generation_is_deterministic():
    for seed in (0, 7, 23):
        a, b = generate(seed), generate(seed)
        assert a.model_source == b.model_source
        assert a.guide_source == b.guide_source
        assert a.spec == b.spec


def test_different_seeds_differ():
    sources = {generate(seed).model_source for seed in range(20)}
    assert len(sources) == 20


def test_every_generated_pair_typechecks_and_certifies():
    for seed in range(SWEEP):
        case = generate(seed)
        session = ProgramSession.from_sources(case.model_source, case.guide_source)
        assert session.certified, (
            f"seed {seed} failed certification: {session.certification_reason}\n"
            f"{case.model_source}\n{case.guide_source}"
        )


def test_structural_invariants():
    for seed in range(SWEEP):
        case = generate(seed)
        nodes = case.spec.nodes
        # Site 0 of the latent trace must exist for every particle: the
        # agreement oracle indexes it unconditionally.
        assert isinstance(nodes[0], LatentSite)
        assert count_latent_sites(case.spec) >= 1
        # SMC needs at least one observation to anneal over.
        assert len(obs_signature(case.spec)) >= 1


def test_branch_arms_mirror_obs_signatures():
    def arm_sig(nodes):
        sig = []
        for node in nodes:
            if isinstance(node, ObsSite):
                sig.append((node.support, node.cat_n))
            elif isinstance(node, Branch):
                sig.extend(arm_sig(node.then))
        return sig

    checked = 0
    for seed in range(SWEEP):
        for node in _walk_nodes(generate(seed).spec.nodes):
            if isinstance(node, Branch):
                assert arm_sig(node.then) == arm_sig(node.orelse)
                checked += 1
    assert checked > 10


def test_sweep_covers_all_supports_and_node_kinds():
    supports = collections.Counter()
    kinds = collections.Counter()
    families = set()
    for seed in range(SWEEP):
        for node in _walk_nodes(generate(seed).spec.nodes):
            kinds[type(node).__name__] += 1
            if isinstance(node, LatentSite):
                supports[node.support] += 1
                families.add(node.model_family)
                families.add(node.guide_family)
            elif isinstance(node, ObsSite):
                families.add(node.family)
    # All six support classes and all eight distribution families appear.
    assert set(supports) == {"real", "preal", "ureal", "bool", "nat", "cat"}
    assert families == set(ast.DistKind)
    # Every structural feature is exercised somewhere in the sweep.
    for kind in (LatentSite, ObsSite, Branch, Recurse, PureLet, PureCond):
        assert kinds[kind.__name__] > 0, f"sweep never generated {kind.__name__}"


def test_recursion_can_be_disabled():
    config = FuzzConfig(allow_recursion=False)
    for seed in range(30):
        for node in _walk_nodes(generate(seed, config).spec.nodes):
            assert not isinstance(node, Recurse)


def test_compiled_fragment_coverage():
    """A healthy fraction of generated pairs exercises the compiled backend."""
    compiled = 0
    for seed in range(SWEEP):
        case = generate(seed)
        session = ProgramSession.from_sources(case.model_source, case.guide_source)
        kernel, _reason = session.fused_kernel()
        compiled += kernel is not None
    assert compiled >= SWEEP // 3
