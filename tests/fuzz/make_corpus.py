#!/usr/bin/env python
"""Regenerate or verify the pinned fuzz corpus in ``tests/fuzz/corpus/``.

Run after an *intentional* generator change, then review the diff — the
corpus is the deterministic record of what the generator produced and what
the typechecker said, so its churn should always be explainable::

    PYTHONPATH=src python tests/fuzz/make_corpus.py

``--check`` rebuilds the corpus into a scratch directory and compares it
bit-for-bit against the pinned files, exiting non-zero on any drift — CI
runs this so a generator change can never silently invalidate the pinned
corpus (the same discipline as ``repro bench snapshot``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _corpus_files(directory: Path) -> dict:
    return {path.name: path.read_bytes() for path in sorted(directory.glob("*.json"))}


def check(directory: Path) -> int:
    from repro.fuzz.corpus import build_corpus

    with tempfile.TemporaryDirectory(prefix="corpus-check-") as scratch:
        rebuilt_dir = Path(scratch)
        build_corpus(rebuilt_dir)
        pinned = _corpus_files(directory)
        rebuilt = _corpus_files(rebuilt_dir)

    drift = []
    for name in sorted(set(pinned) - set(rebuilt)):
        drift.append(f"  pinned but no longer generated: {name}")
    for name in sorted(set(rebuilt) - set(pinned)):
        drift.append(f"  generated but not pinned: {name}")
    for name in sorted(set(pinned) & set(rebuilt)):
        if pinned[name] != rebuilt[name]:
            drift.append(f"  content differs: {name}")
    if drift:
        print(f"corpus drift against {directory}:")
        print("\n".join(drift))
        print(
            "regenerate with 'PYTHONPATH=src python tests/fuzz/make_corpus.py' "
            "and review the diff"
        )
        return 1
    print(f"corpus check: {len(pinned)} pinned entries match the generator bit-for-bit")
    return 0


def regenerate(directory: Path) -> int:
    from repro.fuzz.corpus import build_corpus

    for stale in directory.glob("*.json"):
        stale.unlink()
    entries = build_corpus(directory)
    generated = sum(1 for e in entries if e.kind == "generated")
    mutants = len(entries) - generated
    print(f"wrote {len(entries)} entries ({generated} generated, {mutants} mutants) to {directory}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the pinned corpus reproduces bit-for-bit instead of rewriting it",
    )
    args = parser.parse_args()
    directory = Path(__file__).resolve().parent / "corpus"
    return check(directory) if args.check else regenerate(directory)


if __name__ == "__main__":
    sys.exit(main())
