#!/usr/bin/env python
"""Regenerate the pinned fuzz corpus in ``tests/fuzz/corpus/``.

Run after an *intentional* generator change, then review the diff — the
corpus is the deterministic record of what the generator produced and what
the typechecker said, so its churn should always be explainable::

    PYTHONPATH=src python tests/fuzz/make_corpus.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    from repro.fuzz.corpus import build_corpus

    directory = Path(__file__).resolve().parent / "corpus"
    for stale in directory.glob("*.json"):
        stale.unlink()
    entries = build_corpus(directory)
    generated = sum(1 for e in entries if e.kind == "generated")
    mutants = len(entries) - generated
    print(f"wrote {len(entries)} entries ({generated} generated, {mutants} mutants) to {directory}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
