"""The differential harness itself: clean sweeps, detection power, shrinking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import clear_session_cache
from repro.fuzz import FuzzConfig, generate, run_case, shrink_case
from repro.fuzz.oracles import (
    bitwise_mismatch,
    default_obs_values,
    render_failure,
    repro_command,
)
from repro.fuzz.spec import Branch, LatentSite, Recurse, spec_size

SMOKE_SEEDS = 12


@pytest.fixture(autouse=True)
def _fresh_session_cache():
    clear_session_cache()
    yield


# ---------------------------------------------------------------------------
# The acceptance property: a seed sweep runs with zero violations
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(SMOKE_SEEDS))
def test_differential_sweep_is_clean(seed):
    config = FuzzConfig(particles=256, smc_particles=256)
    case = generate(seed, config)
    report = run_case(case, config)
    assert report.ok, "\n".join(v.describe() for v in report.violations)
    # The harness actually ran its checks (not vacuously green).
    assert report.checks.get("determinism")
    assert any(k.startswith("backend-") for k in report.checks)
    assert "agreement/smc" in report.checks
    assert "agreement/svi" in report.checks


def test_obs_values_are_deterministic_and_in_support():
    case = generate(3)
    a, b = default_obs_values(case), default_obs_values(case)
    assert a == b
    from repro.fuzz.spec import obs_signature

    sig = obs_signature(case.spec)
    assert len(a) == len(sig)
    for value, (support, cat_n) in zip(a, sig):
        if support == "bool":
            assert isinstance(value, bool)
        elif support in ("nat", "cat"):
            assert isinstance(value, int) and value >= 0
            if support == "cat":
                assert value < cat_n
        elif support == "ureal":
            assert 0.0 < value < 1.0
        elif support == "preal":
            assert value > 0.0


# ---------------------------------------------------------------------------
# Detection power: the comparators must actually flag differences
# ---------------------------------------------------------------------------


class _FakeRun:
    def __init__(self, weights, sites):
        self.model_log_weights = weights
        self.guide_log_weights = np.zeros_like(weights)
        self._sites = sites

    def site_values(self, index):
        return self._sites[index]


class _FakeResult:
    def __init__(self, weights, sites):
        self.raw = self
        self.log_weights = weights
        self.run = _FakeRun(weights, sites)


def test_bitwise_mismatch_flags_single_particle_differences():
    w = np.linspace(-1.0, 0.0, 16)
    sites = [np.linspace(0.0, 1.0, 16)]
    a = _FakeResult(w.copy(), [s.copy() for s in sites])
    b = _FakeResult(w.copy(), [s.copy() for s in sites])
    assert bitwise_mismatch(a, b, 1) is None

    b.log_weights[7] += 1e-12
    detail = bitwise_mismatch(a, b, 1)
    assert detail is not None and "particle 7" in detail

    b = _FakeResult(w.copy(), [s.copy() for s in sites])
    b.run._sites[0][3] = np.nan
    detail = bitwise_mismatch(a, b, 1)
    assert detail is not None and "site 0" in detail


def test_bitwise_mismatch_treats_shared_nan_as_equal():
    w = np.array([0.0, -np.inf])
    sites = [np.array([1.0, np.nan])]
    a = _FakeResult(w.copy(), [s.copy() for s in sites])
    b = _FakeResult(w.copy(), [s.copy() for s in sites])
    assert bitwise_mismatch(a, b, 1) is None


def test_harness_flags_an_uncertified_pair():
    from repro.fuzz.generator import FuzzCase
    from repro.fuzz.mutations import swap_dist

    case = generate(0)
    mutant = swap_dist(case)
    assert mutant is not None
    broken = FuzzCase(
        seed=case.seed,
        spec=case.spec,
        model_source=mutant.model_source,
        guide_source=mutant.guide_source,
    )
    report = run_case(broken, FuzzConfig(particles=64))
    assert not report.ok
    assert {v.kind for v in report.violations} <= {"uncertified", "generator-ill-typed"}


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _contains(case, predicate):
    def walk(nodes):
        for node in nodes:
            if predicate(node):
                return True
            if isinstance(node, Branch) and (walk(node.then) or walk(node.orelse)):
                return True
            if isinstance(node, Recurse) and walk(node.body):
                return True
        return False

    return walk(case.spec.nodes)


def test_shrinker_minimises_to_the_relevant_node():
    def has_nat_site(case):
        return _contains(
            case, lambda n: isinstance(n, LatentSite) and n.support == "nat"
        )

    shrunk_sizes = []
    for seed in range(20):
        case = generate(seed)
        if not has_nat_site(case):
            continue
        shrunk = shrink_case(case, has_nat_site)
        assert has_nat_site(shrunk)
        assert spec_size(shrunk.spec) <= spec_size(case.spec)
        shrunk_sizes.append(spec_size(shrunk.spec))
    assert shrunk_sizes, "sweep produced no nat sites"
    # Greedy minimisation should reach the single offending site.
    assert min(shrunk_sizes) == 1


def test_shrinker_emits_wellformed_candidates():
    # Even a predicate that accepts everything must only see parseable,
    # repairable programs (dangling references replaced by literals).
    from repro.core.parser import parse_program

    seen = []

    def record(candidate):
        parse_program(candidate.model_source)
        parse_program(candidate.guide_source)
        seen.append(candidate)
        return False  # reject every candidate: original case returned

    case = generate(5)
    result = shrink_case(case, record)
    assert result.model_source == case.model_source
    assert len(seen) > 5


def test_shrinker_canonicalises_parameters():
    def always(case):
        return True

    case = generate(2)
    shrunk = shrink_case(case, always)
    assert spec_size(shrunk.spec) == 1  # a lone node survives


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def test_failure_report_contains_program_and_repro_command():
    config = FuzzConfig(particles=99)
    case = generate(4, config)
    report = run_case(case, config)
    # Fabricate a violation to render (the sweep itself is clean).
    from repro.fuzz.oracles import Violation

    report.violations.append(Violation(4, "example", "synthetic", "is/interp"))
    text = render_failure(case, report, config)
    assert "seed 4" in text
    assert "proc Main" in text and "proc MainGuide" in text
    assert repro_command(4, config) in text
    assert "--seed 4" in text and "--particles 99" in text


def test_cli_fuzz_smoke(capsys):
    from repro.cli import main

    assert main(["fuzz", "--seeds", "3", "--particles", "64", "--progress-every", "0"]) == 0
    out = capsys.readouterr().out
    assert "3 seed(s), 0 with violations" in out
