"""Pretty-print/reparse round trip: ``parse(pretty(parse(s))) == parse(s)``.

The property runs over the full generated sweep plus the hand-written
library models; the targeted cases at the bottom pin the two printer bugs
the fuzzer surfaced (low-precedence operands and lossy float rendering).
"""

from __future__ import annotations

import pytest

from repro.core import ast
from repro.core.parser import parse_expression, parse_program
from repro.fuzz import generate
from repro.models import all_benchmarks
from repro.utils.pretty import pretty_expr, pretty_program

SWEEP = 60


@pytest.mark.parametrize("seed", range(SWEEP))
def test_generated_programs_round_trip(seed):
    case = generate(seed)
    for source in (case.model_source, case.guide_source):
        first = parse_program(source)
        reparsed = parse_program(pretty_program(first))
        assert reparsed == first, f"seed {seed} round-trip mismatch"


def test_library_models_round_trip():
    for bench in all_benchmarks():
        if not bench.expressible:
            continue
        for source in (bench.model_source, bench.guide_source):
            if source is None:
                continue
            first = parse_program(source)
            assert parse_program(pretty_program(first)) == first, bench.name


# ---------------------------------------------------------------------------
# Pinned printer regressions (found by the round-trip property)
# ---------------------------------------------------------------------------


def _round_trips(expr: ast.Expr) -> bool:
    return parse_expression(pretty_expr(expr)) == expr


def test_if_expression_as_operand_is_parenthesised():
    # (if c then a else b) + 1.0 used to print as "if c then a else b + 1.0",
    # which reparses with the addition inside the else arm.
    expr = ast.PrimOp(
        ast.BinOp.ADD,
        ast.IfExpr(ast.BoolLit(True), ast.RealLit(1.0), ast.RealLit(2.0)),
        ast.RealLit(1.0),
    )
    assert "(if" in pretty_expr(expr)
    assert _round_trips(expr)


def test_let_as_operand_is_parenthesised():
    expr = ast.PrimOp(
        ast.BinOp.ADD,
        ast.Let(ast.RealLit(1.0), "t", ast.Var("t")),
        ast.RealLit(2.0),
    )
    assert _round_trips(expr)


def test_negated_if_expression_round_trips():
    expr = ast.PrimUnOp(
        ast.UnOp.NEG,
        ast.IfExpr(ast.BoolLit(False), ast.RealLit(1.0), ast.RealLit(2.0)),
    )
    assert _round_trips(expr)


def test_float_literals_render_shortest_round_trip():
    # %g kept six significant digits, so high-precision literals and tiny
    # magnitudes silently changed value across a print/parse cycle.
    for value in (0.1234567890123, 1e-07, 12345678.5, 0.30000000000000004):
        expr = ast.RealLit(value)
        reparsed = parse_expression(pretty_expr(expr))
        assert isinstance(reparsed, ast.RealLit)
        assert reparsed.value == value

    # Scientific notation must stay within the lexer's grammar.
    assert parse_expression(pretty_expr(ast.RealLit(1e-07))) == ast.RealLit(1e-07)
