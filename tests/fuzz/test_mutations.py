"""Negative tests: mutated near-misses must be rejected by the typechecker.

The positive half of the fuzzer shows the type system *accepts* well-typed
programs; these tests pin the soundness boundary by checking it *rejects*
systematic single-edit breakages of those same programs.
"""

from __future__ import annotations

import collections

import pytest

from repro.engine import ProgramSession, clear_session_cache
from repro.fuzz import generate
from repro.fuzz.mutations import (
    ALL_MUTATIONS,
    applicable_mutants,
    drop_branch,
    drop_site,
    is_rejected,
    reorder_sites,
    swap_dist,
)

SWEEP = 40


@pytest.fixture(autouse=True)
def _fresh_session_cache():
    clear_session_cache()
    yield


def test_every_applicable_mutant_is_rejected():
    applied = collections.Counter()
    for seed in range(SWEEP):
        case = generate(seed)
        for mutant in applicable_mutants(case):
            rejected, reason = is_rejected(mutant.model_source, mutant.guide_source)
            assert rejected, (
                f"seed {seed} mutant {mutant.name} was accepted\n"
                f"{mutant.model_source}\n{mutant.guide_source}"
            )
            applied[mutant.name] += 1
    # The sweep must exercise every operator, or the test is vacuous.
    for mutation in ALL_MUTATIONS:
        assert applied[mutation.__name__] > 0, f"{mutation.__name__} never applied"
    assert sum(applied.values()) >= SWEEP  # at least ~one mutant per seed


def test_swap_dist_changes_payload_type():
    mutant = swap_dist(generate(0))
    assert mutant is not None
    rejected, reason = is_rejected(mutant.model_source, mutant.guide_source)
    assert rejected
    # The original pair stays certified: rejection is due to the edit alone.
    case = generate(0)
    session = ProgramSession.from_sources(case.model_source, case.guide_source)
    assert session.certified


def test_drop_site_shortens_guide_protocol():
    mutant = drop_site(generate(1))
    assert mutant is not None
    assert is_rejected(mutant.model_source, mutant.guide_source)[0]


def test_reorder_requires_distinct_payloads():
    # reorder_sites only fires on adjacent sites with different payload
    # types (same-payload sites commute at the protocol level).
    found = None
    for seed in range(SWEEP):
        found = reorder_sites(generate(seed))
        if found is not None:
            break
    assert found is not None
    assert is_rejected(found.model_source, found.guide_source)[0]


def test_drop_branch_breaks_choose_structure():
    found = None
    for seed in range(SWEEP):
        found = drop_branch(generate(seed))
        if found is not None:
            break
    assert found is not None
    rejected, reason = is_rejected(found.model_source, found.guide_source)
    assert rejected
