"""The metrics-schema check: the scraped name set is pinned in a text file.

A rename or removal of any metric family is a breaking change for dashboards
and alerts; this test (also run as a CI step against a live server) forces
such changes to update ``tests/obs/metrics_catalog.txt`` explicitly.
"""

import asyncio
from pathlib import Path

# Importing the instrumented modules registers every family at import time —
# the catalog is complete before any request runs.
import repro.engine.server  # noqa: F401
import repro.engine.smc  # noqa: F401
import repro.engine.svi  # noqa: F401
from repro.engine.server import InferenceService, serve_tcp
from repro.obs import REGISTRY, metric_names

CATALOG = Path(__file__).parent / "metrics_catalog.txt"


def expected_names():
    """The pinned family names (one per line, comments allowed)."""
    names = []
    for line in CATALOG.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            names.append(line)
    return sorted(names)


async def _scrape_live_server():
    service = InferenceService(workers=1)
    await service.start()
    server = await serve_tcp(service, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        return raw.split(b"\r\n\r\n", 1)[1].decode()
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()


def test_registry_catalog_matches_the_pinned_set():
    assert metric_names(REGISTRY.snapshot()) == expected_names()


def test_live_scrape_matches_the_pinned_set():
    text = asyncio.run(_scrape_live_server())
    assert metric_names(text) == expected_names()


def test_every_family_documents_itself():
    for family in REGISTRY.families():
        assert family.name.startswith("repro_"), family.name
        assert family.help.strip(), f"{family.name} has no help text"
