"""The disabled-tracing overhead contract: instrumentation must be ~free.

The engines keep their ``span(...)`` calls in the hot loops permanently, so
the disabled path (one module-global check returning a shared no-op) is held
to a contract: a 10k-particle importance-sampling run with tracing *disabled*
must cost within 2% of the same run with every ``span`` call replaced by an
inert stub.  Wall-clock comparisons are noisy, so each variant takes the
minimum over several interleaved repetitions (the minimum estimates the
noise-free cost) and the contract gets a handful of attempts before failing.
"""

import sys
import time

import pytest

import repro.engine.api
import repro.engine.backend
import repro.engine.session
import repro.engine.shard
import repro.engine.smc
import repro.engine.svi
import repro.engine.vectorize
from repro.engine.session import ProgramSession
from repro.models import get_benchmark
from repro.obs import trace as trace_mod
from repro.obs.trace import disable_tracing, tracing_enabled

# sys.modules entries, because ``repro.engine``'s package namespace exports
# same-named *functions* (e.g. ``smc``) that shadow the submodules.
INSTRUMENTED_MODULES = tuple(
    sys.modules[f"repro.engine.{name}"]
    for name in ("api", "backend", "session", "shard", "smc", "svi", "vectorize")
)

BENCH = get_benchmark("weight")


class _StubSpan:
    """What the engines would cost with no instrumentation at all."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_STUB = _StubSpan()


def _stub_span(name, _tid=None, **attrs):
    return _STUB


@pytest.fixture(autouse=True)
def _tracing_disabled():
    disable_tracing()
    yield
    disable_tracing()


def _run_once(sess):
    started = time.perf_counter()
    sess.infer(
        "is", num_particles=10_000, seed=3,
        obs_values=list(BENCH.obs_values), guide_args=(8.5, 0.0),
    )
    return time.perf_counter() - started


def _min_cost_pair(sess, monkeypatch, repetitions=5):
    """(disabled-tracing cost, stubbed cost): minima over interleaved reps."""
    disabled, stubbed = [], []
    for _ in range(repetitions):
        assert not tracing_enabled()
        disabled.append(_run_once(sess))
        with pytest.MonkeyPatch.context() as patch:
            for module in INSTRUMENTED_MODULES:
                patch.setattr(module, "span", _stub_span)
            stubbed.append(_run_once(sess))
    return min(disabled), min(stubbed)


def test_disabled_tracing_costs_under_two_percent(monkeypatch):
    sess = ProgramSession.from_sources(BENCH.model_source, BENCH.guide_source)
    _run_once(sess)  # warm up: session caches, numpy, allocator
    for attempt in range(4):
        disabled_s, stubbed_s = _min_cost_pair(sess, monkeypatch)
        if disabled_s <= stubbed_s * 1.02:
            return
    pytest.fail(
        f"disabled tracing costs {disabled_s / stubbed_s - 1:+.1%} over the "
        f"no-op stub (contract: <2%); disabled={disabled_s:.4f}s stub={stubbed_s:.4f}s"
    )


def test_disabled_span_allocates_nothing():
    """The disabled fast path returns one shared singleton, not a new object."""
    a = trace_mod.span("hot.loop", particles=10_000)
    b = trace_mod.span("other")
    assert a is b is trace_mod._NOOP
