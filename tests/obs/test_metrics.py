"""The metrics registry: bucket math, quantiles, rendering, attribution."""

import json
import math
from pathlib import Path

import pytest

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    HistogramValue,
    MetricsRegistry,
    _log_spaced,
    metric_names,
    percentile_keys,
)

GOLDEN = Path(__file__).parent / "golden_metrics.txt"


def _golden_registry() -> MetricsRegistry:
    """A small registry with deterministic contents, for rendering tests."""
    reg = MetricsRegistry()
    requests = reg.counter("demo_requests_total", "Requests by status.", labels=("status",))
    requests.labels(status="ok").inc(3)
    requests.labels(status="error").inc()
    reg.gauge("demo_queue_depth", "Depth of the dispatch queue.").set(2)
    latency = reg.histogram("demo_latency_seconds", "Request latency.", buckets=(0.1, 0.5, 1.0))
    for value in (0.05, 0.3, 0.7, 2.0):
        latency.observe(value)
    weird = reg.counter("demo_escapes_total", "Label escaping.", labels=("path",))
    weird.labels(path='a"b\\c\nd').inc()
    return reg


class TestBuckets:
    def test_log_spaced_follows_1_2p5_5_per_decade(self):
        assert _log_spaced(1e-2, 1.0) == (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)

    def test_default_bucket_sets_are_sorted_unique_and_span_their_range(self):
        for buckets, lo, hi in (
            (DEFAULT_TIME_BUCKETS, 1e-4, 100.0),
            (DEFAULT_COUNT_BUCKETS, 1.0, 1e9),
        ):
            assert list(buckets) == sorted(set(buckets))
            assert buckets[0] == lo and buckets[-1] == hi

    def test_unsorted_or_empty_bounds_are_rejected(self):
        with pytest.raises(ValueError):
            HistogramValue(())
        with pytest.raises(ValueError):
            HistogramValue((1.0, 0.5))
        with pytest.raises(ValueError):
            HistogramValue((1.0, 1.0))

    def test_observation_on_a_bound_lands_in_that_bounds_bucket(self):
        # Prometheus buckets are ``le``-inclusive: an observation equal to a
        # bound counts toward that bound's cumulative count.
        h = HistogramValue((1.0, 2.0))
        h.observe(1.0)
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 1), (math.inf, 1)]

    def test_observation_beyond_the_last_bound_lands_in_inf(self):
        h = HistogramValue((1.0, 2.0))
        h.observe(5.0)
        assert h.cumulative_buckets() == [(1.0, 0), (2.0, 0), (math.inf, 1)]


class TestQuantiles:
    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(HistogramValue().quantile(0.5))

    def test_out_of_range_quantile_rejected(self):
        h = HistogramValue()
        h.observe(0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_interpolates_within_the_bucket(self):
        # 100 observations uniformly inside (1.0, 2.0]: the median rank (50)
        # lands mid-bucket, so the estimate interpolates to ~1.5.
        h = HistogramValue((1.0, 2.0, 4.0))
        for i in range(100):
            h.observe(1.0 + (i + 0.5) / 100.0)
        assert h.quantile(0.5) == pytest.approx(1.5, abs=0.01)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)

    def test_first_bucket_interpolates_from_zero(self):
        h = HistogramValue((1.0, 2.0))
        h.observe(0.5)
        h.observe(0.5)
        assert 0.0 < h.quantile(0.5) <= 1.0

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        h = HistogramValue((1.0, 2.0))
        for _ in range(10):
            h.observe(100.0)
        assert h.quantile(0.99) == 2.0

    def test_percentile_keys_helper(self):
        h = HistogramValue((1.0, 2.0))
        h.observe(0.5)
        keys = percentile_keys(h, "latency_s")
        assert set(keys) == {"latency_s_p50", "latency_s_p90", "latency_s_p99"}


class TestFamilies:
    def test_counter_only_goes_up(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        with pytest.raises(ValueError):
            c.inc(-1)
        assert reg.snapshot()["c_total"]["samples"][0]["value"] == 3.5

    def test_gauge_goes_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "help")
        g.set(5)
        g.inc()
        g.dec(3)
        assert reg.snapshot()["g"]["samples"][0]["value"] == 3.0

    def test_label_validation(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help", labels=("status",))
        with pytest.raises(ValueError):
            c.labels(wrong="x")
        with pytest.raises(ValueError):
            c.inc()  # labeled family has no default child
        assert c.labels(status="ok") is c.labels(status="ok")

    def test_reregistration_returns_the_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total", "help", labels=("x",))
        assert reg.counter("c_total", "other help", labels=("x",)) is a
        with pytest.raises(ValueError):
            reg.gauge("c_total", "type conflict")
        with pytest.raises(ValueError):
            reg.counter("c_total", "label conflict", labels=("y",))

    def test_reset_clears_samples_but_keeps_the_catalog(self):
        reg = _golden_registry()
        reg.reset()
        snap = reg.snapshot()
        assert set(snap) == {
            "demo_requests_total", "demo_queue_depth",
            "demo_latency_seconds", "demo_escapes_total",
        }
        assert all(not family["samples"] for family in snap.values())


class TestSnapshot:
    def test_snapshot_is_json_ready(self):
        snap = _golden_registry().snapshot()
        json.dumps(snap)
        hist = snap["demo_latency_seconds"]["samples"][0]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(3.05)
        assert hist["buckets"] == {"0.1": 1, "0.5": 2, "1": 3, "+Inf": 4}
        assert hist["p50"] <= hist["p90"] <= hist["p99"]

    def test_mark_delta_reports_only_what_moved(self):
        reg = _golden_registry()
        mark = reg.mark()
        assert reg.delta(mark) == {}
        reg.counter("demo_requests_total", "h", labels=("status",)).labels(status="ok").inc(2)
        reg.histogram("demo_latency_seconds", "h", buckets=(0.1, 0.5, 1.0)).observe(0.2)
        delta = reg.delta(mark)
        assert delta['demo_requests_total{status="ok"}'] == 2.0
        assert delta["demo_latency_seconds_count"] == 1.0
        assert delta["demo_latency_seconds_sum"] == pytest.approx(0.2)
        assert 'demo_requests_total{status="error"}' not in delta


class TestPrometheusRendering:
    def test_matches_the_pinned_golden_file(self):
        rendered = _golden_registry().render_prometheus()
        assert rendered == GOLDEN.read_text(encoding="utf-8")

    def test_parses_with_the_official_parser_when_available(self):
        parser = pytest.importorskip("prometheus_client.parser")
        rendered = _golden_registry().render_prometheus()
        families = {f.name for f in parser.text_string_to_metric_families(rendered)}
        # The official parser strips the _total suffix from counter names.
        assert {"demo_requests", "demo_queue_depth", "demo_latency_seconds"} <= families

    def test_histogram_lines_are_cumulative_and_end_at_inf(self):
        text = _golden_registry().render_prometheus()
        buckets = [line for line in text.splitlines()
                   if line.startswith("demo_latency_seconds_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in buckets[-1]
        assert "demo_latency_seconds_sum 3.05" in text
        assert "demo_latency_seconds_count 4" in text

    def test_label_values_are_escaped(self):
        text = _golden_registry().render_prometheus()
        assert r'path="a\"b\\c\nd"' in text

    def test_metric_names_agree_between_views(self):
        reg = _golden_registry()
        assert metric_names(reg.snapshot()) == metric_names(reg.render_prometheus())
