"""Server observability: failure accounting, percentiles, the /metrics surface."""

import asyncio
import json

import pytest

from repro.engine.server import InferenceService, ServerCounters, serve_tcp
from repro.models import get_benchmark

BENCH = get_benchmark("weight")


def _payload(seed=0, request_id=None, particles=300, **overrides):
    payload = {
        "id": request_id,
        "model": BENCH.model_source,
        "guide": BENCH.guide_source,
        "engine": "is",
        "sites": [0],
        "params": {
            "num_particles": particles,
            "seed": seed,
            "obs_values": list(BENCH.obs_values),
            "guide_args": [8.5, 0.0],
        },
    }
    payload.update(overrides)
    return payload


class TestFailureAccounting:
    """Regression: failures are counted but excluded from latency aggregates.

    The old ``observe`` folded a failed request's (meaningless) timings into
    every latency total — a validation rejection took microseconds and
    dragged the means toward zero; a five-second blow-up inflated the max.
    """

    def test_failure_timings_never_reach_latency_aggregates(self):
        counters = ServerCounters()
        counters.observe(0.0, 5.0, 0, ok=False)  # a slow failure
        counters.observe(0.1, 0.2, 10, ok=True)
        snap = counters.snapshot()
        assert snap["requests_total"] == 2
        assert snap["failures_total"] == 1
        assert snap["particles_total"] == 10
        # Means divide by successes only, and the failure's 5s never landed.
        assert snap["latency_s_mean"] == pytest.approx(0.3)
        assert snap["latency_s_max"] == pytest.approx(0.3)
        assert snap["queue_wait_s_mean"] == pytest.approx(0.1)
        assert snap["run_s_mean"] == pytest.approx(0.2)
        assert counters.latency_hist.count == 1

    def test_all_failure_snapshot_stays_finite_and_serialisable(self):
        counters = ServerCounters()
        counters.observe(0.0, 3.0, 0, ok=False)
        snap = counters.snapshot()
        assert snap["failures_total"] == snap["requests_total"] == 1
        assert snap["latency_s_mean"] == 0.0
        json.dumps(snap)  # NaN percentiles must not break serialisation

    def test_busy_share_accounting_skips_failures(self):
        counters = ServerCounters()
        counters.observe(0.0, 2.0, 100, ok=True, busy_s=0.5)
        assert counters.run_s_total == pytest.approx(0.5)
        assert counters.latency_s_total == pytest.approx(2.0)


class TestPercentiles:
    def test_snapshot_has_histogram_derived_percentiles(self):
        counters = ServerCounters()
        for i in range(100):
            counters.observe(0.001, 0.001 + i * 0.001, 10, ok=True)
        snap = counters.snapshot()
        for prefix in ("latency_s", "queue_wait_s", "run_s"):
            p50, p90, p99 = (snap[f"{prefix}_p{q}"] for q in (50, 90, 99))
            assert 0.0 < p50 <= p90 <= p99
        assert snap["latency_s_p99"] <= snap["latency_s_max"] * 1.5

    def test_legacy_keys_survive(self):
        snap = ServerCounters().snapshot()
        legacy = {
            "requests_total", "failures_total", "batches_total",
            "coalesced_requests_total", "particles_total", "uptime_s",
            "requests_per_s", "particles_per_s", "queue_wait_s_mean",
            "run_s_mean", "latency_s_mean", "latency_s_max",
        }
        assert legacy <= set(snap)

    def test_observe_batch_tracks_groups_and_coalescing(self):
        counters = ServerCounters()
        counters.observe_batch(1)
        counters.observe_batch(3)
        assert counters.batches_total == 2
        assert counters.coalesced_requests_total == 3


async def _serving(run, workers=1):
    service = InferenceService(workers=workers, batch_window_s=0.005)
    await service.start()
    server = await serve_tcp(service, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        return await run(service, port)
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()


async def _jsonl_roundtrip(port, payloads):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for payload in payloads:
        writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    writer.write_eof()
    responses = []
    while True:
        line = await reader.readline()
        if not line:
            break
        responses.append(json.loads(line))
    writer.close()
    return {r["id"]: r for r in responses}


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: test\r\nAccept: */*\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.decode("latin-1"), body


class TestMetricsSurface:
    def test_metrics_op_returns_the_registry_snapshot(self):
        async def go(service, port):
            return await _jsonl_roundtrip(
                port, [_payload(request_id="r1"), {"id": "m", "op": "metrics"}]
            )

        responses = asyncio.run(_serving(go))
        assert responses["r1"]["ok"]
        metrics = responses["m"]["metrics"]
        assert responses["m"]["ok"]
        assert metrics["repro_requests_total"]["type"] == "counter"
        assert metrics["repro_request_latency_seconds"]["type"] == "histogram"

    def test_infer_response_carries_run_metrics(self):
        async def go(service, port):
            return await _jsonl_roundtrip(port, [_payload(request_id="r1")])

        responses = asyncio.run(_serving(go))
        run_metrics = responses["r1"]["diagnostics"]["run_metrics"]
        assert run_metrics["engine"] == "is"
        assert run_metrics["wall_s"] > 0.0

    def test_unknown_op_mentions_metrics(self):
        async def go(service, port):
            return await _jsonl_roundtrip(port, [{"id": "x", "op": "bogus"}])

        responses = asyncio.run(_serving(go))
        error = responses["x"]["error"]
        assert "unknown op" in error and "metrics" in error

    def test_http_scrape_serves_prometheus_text(self):
        async def go(service, port):
            await service.submit(_payload(request_id="warm"))
            return await _http_get(port, "/metrics")

        head, body = asyncio.run(_serving(go))
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain; version=0.0.4" in head
        assert f"Content-Length: {len(body)}" in head
        text = body.decode()
        for family in (
            "repro_requests_total", "repro_request_latency_seconds_bucket",
            "repro_engine_run_seconds", "repro_session_cache_total",
            "repro_server_batches_total",
        ):
            assert family in text
        assert 'repro_requests_total{status="ok"}' in text

    def test_http_scrape_of_unknown_path_is_404(self):
        async def go(service, port):
            return await _http_get(port, "/other")

        head, body = asyncio.run(_serving(go))
        assert head.startswith("HTTP/1.0 404")

    def test_jsonl_still_works_after_a_scrape_connection(self):
        async def go(service, port):
            await _http_get(port, "/metrics")
            return await _jsonl_roundtrip(port, [_payload(request_id="after")])

        responses = asyncio.run(_serving(go))
        assert responses["after"]["ok"]
