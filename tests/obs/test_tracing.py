"""Structured run tracing: span API, Chrome export, shard-track propagation."""

import json

import numpy as np
import pytest

from repro.engine.session import ProgramSession
from repro.models import get_benchmark
from repro.obs import trace as trace_mod
from repro.obs.trace import (
    TraceRecorder,
    current_recorder,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)

BENCH = get_benchmark("weight")


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


def _infer(**overrides):
    session = ProgramSession.from_sources(BENCH.model_source, BENCH.guide_source)
    kwargs = dict(
        num_particles=256, seed=5,
        obs_values=list(BENCH.obs_values), guide_args=(8.5, 0.0),
    )
    kwargs.update(overrides)
    return session.infer("is", **kwargs)


class TestSpanAPI:
    def test_disabled_span_is_the_shared_noop(self):
        assert not tracing_enabled()
        assert span("anything", particles=3) is trace_mod._NOOP
        assert span("other") is span("third")

    def test_enabled_span_records_a_complete_event(self):
        recorder = enable_tracing()
        with span("phase.one", particles=7):
            pass
        assert tracing_enabled() and current_recorder() is recorder
        (event,) = recorder.events
        assert event["name"] == "phase.one"
        assert event["args"] == {"particles": 7}
        assert event["dur"] >= 0.0 and event["ts"] >= 0.0

    def test_span_records_even_when_the_body_raises(self):
        recorder = enable_tracing()
        with pytest.raises(RuntimeError):
            with span("fails"):
                raise RuntimeError("boom")
        assert [e["name"] for e in recorder.events] == ["fails"]

    def test_disable_returns_the_recorder_and_clears_state(self):
        recorder = enable_tracing()
        assert disable_tracing() is recorder
        assert not tracing_enabled() and current_recorder() is None

    def test_ring_buffer_bounds_memory(self):
        recorder = enable_tracing(ring_size=10)
        for i in range(50):
            with span(f"s{i}"):
                pass
        assert len(recorder.events) == 10
        assert recorder.events[-1]["name"] == "s49"

    def test_summary_aggregates_by_name(self):
        recorder = TraceRecorder()
        recorder.add_complete("a", 0.0, 0.5)
        recorder.add_complete("a", 1.0, 1.5)
        recorder.add_complete("b", 0.0, 0.25)
        summary = recorder.summary()
        assert summary["a"] == {"count": 2, "total_s": 2.0, "max_s": 1.5}
        assert summary["b"]["count"] == 1


class TestChromeExport:
    def test_saved_file_is_valid_trace_event_json(self, tmp_path):
        recorder = enable_tracing()
        with span("outer", kind="test"):
            with span("inner"):
                pass
        path = tmp_path / "run.trace.json"
        recorder.save(str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert metadata and events[: len(metadata)] == metadata
        assert {e["name"] for e in spans} == {"outer", "inner"}
        for event in spans:
            assert {"name", "ph", "pid", "tid", "ts", "dur", "cat"} <= set(event)
        names = {e["args"]["name"] for e in metadata if e["name"] == "thread_name"}
        assert "main" in names


class TestEngineTracing:
    def test_engine_run_produces_the_expected_spans(self):
        recorder = enable_tracing()
        _infer()
        names = {e["name"] for e in recorder.events}
        assert {"engine.run", "particles.run"} <= names

    def test_sharded_run_renders_shard_tracks(self):
        recorder = enable_tracing()
        _infer(shards=3)
        shard_events = [e for e in recorder.events if e["name"] == "shard.run"]
        assert sorted(e["tid"] for e in shard_events) == [1, 2, 3]
        assert {1: "shard-0", 2: "shard-1", 3: "shard-2"}.items() <= recorder.thread_names.items()
        assert any(e["name"] == "shard.merge" for e in recorder.events)

    def test_tracing_never_changes_results(self):
        before = _infer(shards=2)
        enable_tracing()
        traced = _infer(shards=2)
        disable_tracing()
        after = _infer(shards=2)
        for other in (traced, after):
            assert np.array_equal(before.raw.log_weights, other.raw.log_weights)
            assert np.array_equal(before.raw.run.site_values(0), other.raw.run.site_values(0))

    def test_run_metrics_attached_via_run_engine(self):
        result = _infer()
        diag = result.diagnostics_with_metrics()
        metrics = diag["run_metrics"]
        assert metrics["engine"] == "is" and metrics["backend"] == "interp"
        assert metrics["wall_s"] > 0.0
        moved = [k for k in metrics["metrics"] if k.startswith("repro_engine_run_seconds")]
        assert any(k.endswith("_count") for k in moved)
