"""Tests for the big-step weighted evaluator (paper Fig. 8)."""

import math

import pytest

from repro.core.parser import parse_command, parse_program
from repro.core.semantics import traces as tr
from repro.core.semantics.evaluate import (
    evaluate_command,
    evaluate_procedure,
    log_density,
)
from repro.core.semantics.values import eval_expr
from repro.core.parser import parse_expression
from repro.dists import Normal
from repro.errors import EvaluationError, TraceTypeMismatch

EMPTY = parse_program("proc Dummy() { return(0.0) }")


def normal_logpdf(x, mean=0.0, std=1.0):
    z = (x - mean) / std
    return -0.5 * z * z - math.log(std) - 0.5 * math.log(2 * math.pi)


class TestExpressionEvaluation:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1.0 + 2.0", 3.0),
            ("2.0 * 3.0 - 1.0", 5.0),
            ("7.0 / 2.0", 3.5),
            ("2 + 3", 5),
            ("1.0 < 2.0", True),
            ("true && false", False),
            ("true || false", True),
            ("!true", False),
            ("-3.5", -3.5),
            ("if true then 1.0 else 2.0", 1.0),
            ("let x = 2.0 in x * x", 4.0),
            ("(1.0, 2.0).1", 2.0),
            ("exp(0.0)", 1.0),
            ("sqrt(4.0)", 2.0),
        ],
    )
    def test_pure_evaluation(self, source, expected):
        assert eval_expr({}, parse_expression(source)) == expected

    def test_variable_lookup(self):
        assert eval_expr({"x": 5.0}, parse_expression("x + 1.0")) == 6.0

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError):
            eval_expr({}, parse_expression("nope"))

    def test_lambda_application(self):
        assert eval_expr({}, parse_expression("(fun(x) x * 2.0)(3.0)")) == 6.0

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            eval_expr({}, parse_expression("1.0 / 0.0"))

    def test_log_of_nonpositive_raises(self):
        with pytest.raises(EvaluationError):
            eval_expr({}, parse_expression("log(0.0)"))

    def test_distribution_expression_evaluates_to_distribution(self):
        value = eval_expr({}, parse_expression("Normal(1.0, 2.0)"))
        assert value == Normal(1.0, 2.0)


class TestExample31:
    """Paper Example 3.1: weight φ(1)·φ(1) and result 3 for the given traces."""

    def test_weight_and_value(self):
        cmd = parse_command(
            """
            {
              x <- sample.recv{a}(Normal(0.0, 1.0));
              y <- sample.send{b}(Normal(x, 1.0));
              return(x + y)
            }
            """
        )
        result = evaluate_command(
            EMPTY,
            cmd,
            traces={"a": (tr.ValP(1.0),), "b": (tr.ValP(2.0),)},
        )
        assert result.value == pytest.approx(3.0)
        expected = normal_logpdf(1.0) + normal_logpdf(2.0, mean=1.0)
        assert result.log_weight == pytest.approx(expected)
        assert result.weight == pytest.approx(math.exp(expected))


class TestWeightedEvaluation:
    def test_return_has_weight_one(self):
        cmd = parse_command("{ return(42) }")
        result = evaluate_command(EMPTY, cmd)
        assert result.value == 42
        assert result.log_weight == 0.0

    def test_sample_outside_support_gives_zero_weight(self):
        cmd = parse_command("{ sample.recv{a}(Gamma(2.0, 1.0)) }")
        result = evaluate_command(EMPTY, cmd, traces={"a": (tr.ValP(-1.0),)})
        assert result.log_weight == -math.inf
        assert not result.possible

    def test_branch_selection_contradicting_predicate_gives_zero_weight(self):
        cmd = parse_command(
            "{ if.send{a} true { return(1.0) } else { return(2.0) } }"
        )
        result = evaluate_command(EMPTY, cmd, traces={"a": (tr.DirC(False),)})
        assert result.log_weight == -math.inf
        # The evaluation still follows the trace's branch selection.
        assert result.value == 2.0

    def test_branch_selection_matching_predicate(self):
        cmd = parse_command(
            "{ if.send{a} true { return(1.0) } else { return(2.0) } }"
        )
        result = evaluate_command(EMPTY, cmd, traces={"a": (tr.DirC(True),)})
        assert result.log_weight == 0.0
        assert result.value == 1.0

    def test_cond_recv_follows_trace(self):
        cmd = parse_command(
            "{ if.recv{a} { return(1.0) } else { return(2.0) } }"
        )
        result = evaluate_command(EMPTY, cmd, traces={"a": (tr.DirP(False),)})
        assert result.value == 2.0
        assert result.log_weight == 0.0

    def test_observe_scores_without_traces(self):
        cmd = parse_command("{ observe(Normal(0.0, 1.0), 0.5) }")
        result = evaluate_command(EMPTY, cmd)
        assert result.log_weight == pytest.approx(normal_logpdf(0.5))

    def test_unconsumed_trace_suffix_raises(self):
        cmd = parse_command("{ return(1.0) }")
        with pytest.raises(TraceTypeMismatch):
            evaluate_command(EMPTY, cmd, traces={"a": (tr.ValP(1.0),)})

    def test_unconsumed_suffix_allowed_when_not_required(self):
        cmd = parse_command("{ return(1.0) }")
        result = evaluate_command(
            EMPTY, cmd, traces={"a": (tr.ValP(1.0),)}, require_exhausted=False
        )
        assert result.value == 1.0

    def test_missing_channel_trace_raises(self):
        cmd = parse_command("{ sample.recv{a}(Unif) }")
        with pytest.raises(EvaluationError):
            evaluate_command(EMPTY, cmd)

    def test_wrong_message_kind_raises(self):
        cmd = parse_command("{ sample.recv{a}(Unif) }")
        with pytest.raises(TraceTypeMismatch):
            evaluate_command(EMPTY, cmd, traces={"a": (tr.DirP(True),)})

    def test_weights_multiply_across_bind(self):
        cmd = parse_command(
            """
            {
              x <- sample.recv{a}(Normal(0.0, 1.0));
              y <- sample.recv{a}(Normal(0.0, 1.0));
              return(x + y)
            }
            """
        )
        result = evaluate_command(
            EMPTY, cmd, traces={"a": (tr.ValP(0.5), tr.ValP(-0.5))}
        )
        assert result.log_weight == pytest.approx(2 * normal_logpdf(0.5))


class TestProcedureEvaluation:
    def test_fig5_model_then_branch(self, fig5_model):
        latent = (tr.ValP(1.0), tr.DirC(True))
        obs = (tr.ValP(0.8),)
        result = evaluate_procedure(
            fig5_model, "Model", traces={"latent": latent, "obs": obs}
        )
        assert result.value == pytest.approx(1.0)
        assert result.possible

    def test_fig5_model_else_branch(self, fig5_model):
        latent = (tr.ValP(3.0), tr.DirC(False), tr.ValP(0.9))
        obs = (tr.ValP(0.8),)
        result = evaluate_procedure(
            fig5_model, "Model", traces={"latent": latent, "obs": obs}
        )
        assert result.value == pytest.approx(3.0)
        assert result.possible

    def test_fig5_inconsistent_branch_has_zero_weight(self, fig5_model):
        # @x = 1.0 < 2, but the trace selects the else branch.
        latent = (tr.ValP(1.0), tr.DirC(False), tr.ValP(0.9))
        obs = (tr.ValP(0.8),)
        assert (
            log_density(fig5_model, "Model", {"latent": latent, "obs": obs})
            == -math.inf
        )

    def test_recursive_call_consumes_fold_markers(self, fig6_pcfg):
        latent = (tr.ValP(0.7), tr.Fold(), tr.ValP(0.2), tr.DirC(True), tr.ValP(0.5))
        result = evaluate_procedure(fig6_pcfg, "Pcfg", traces={"latent": latent})
        assert result.possible
        assert result.value == pytest.approx(0.5)

    def test_recursive_call_missing_fold_is_impossible(self, fig6_pcfg):
        latent = (tr.ValP(0.7), tr.ValP(0.2), tr.DirC(True), tr.ValP(0.5))
        assert log_density(fig6_pcfg, "Pcfg", {"latent": latent}) == -math.inf

    def test_procedure_arguments_are_bound(self):
        program = parse_program(
            """
            proc Shift(offset: real) consume latent {
              x <- sample.recv{latent}(Normal(offset, 1.0));
              return(x + offset)
            }
            """
        )
        result = evaluate_procedure(
            program, "Shift", args=(2.0,), traces={"latent": (tr.ValP(2.0),)}
        )
        assert result.value == pytest.approx(4.0)
        assert result.log_weight == pytest.approx(normal_logpdf(2.0, mean=2.0))

    def test_wrong_argument_count_raises(self, fig6_pcfg):
        with pytest.raises(EvaluationError):
            evaluate_procedure(fig6_pcfg, "PcfgGen", args=(), traces={"latent": ()})

    def test_log_density_returns_neg_inf_on_malformed_trace(self, fig5_model):
        assert log_density(fig5_model, "Model", {"latent": (), "obs": ()}) == -math.inf
