"""Tests for the trace-types baseline (the prior-work comparison of Table 1)."""

import pytest

from repro.baselines import trace_type_check, trace_types_compatible
from repro.core.parser import parse_program
from repro.models import get_benchmark


class TestStraightLinePrograms:
    def test_straight_line_model_is_supported(self):
        benchmark = get_benchmark("lr")
        result = trace_type_check(benchmark.model_program(), benchmark.model_entry)
        assert result.supported
        assert result.num_sample_sites == 8  # 3 latent + 5 observations

    def test_trace_type_lists_channels_and_types(self):
        benchmark = get_benchmark("weight")
        result = trace_type_check(benchmark.model_program(), benchmark.model_entry)
        channels = [site[0] for site in result.trace_type]
        assert channels == ["latent", "obs"]

    def test_conditional_with_identical_branch_sites_is_supported(self):
        benchmark = get_benchmark("sprinkler")
        result = trace_type_check(benchmark.model_program(), benchmark.model_entry)
        assert result.supported

    def test_nonrecursive_call_is_inlined(self):
        program = parse_program(
            """
            proc Main() consume latent {
              a <- call Sub();
              b <- call Sub();
              return(a + b)
            }
            proc Sub() consume latent {
              sample.recv{latent}(Unif)
            }
            """
        )
        result = trace_type_check(program, "Main")
        assert result.supported
        assert result.num_sample_sites == 2


class TestRejectedPrograms:
    @pytest.mark.parametrize("name", ["branching", "ex-1"])
    def test_branch_dependent_sample_sets_rejected(self, name):
        benchmark = get_benchmark(name)
        result = trace_type_check(benchmark.model_program(), benchmark.model_entry)
        assert not result.supported
        assert "different sets" in result.reason

    @pytest.mark.parametrize("name", ["ex-2", "ptrace", "marsaglia", "gp-dsl"])
    def test_recursive_programs_rejected(self, name):
        benchmark = get_benchmark(name)
        result = trace_type_check(benchmark.model_program(), benchmark.model_entry)
        assert not result.supported
        assert "recursion" in result.reason

    def test_mutual_recursion_rejected(self):
        program = parse_program(
            """
            proc A() consume latent {
              u <- sample.recv{latent}(Unif);
              if.send{latent} u < 0.5 { return(u) } else { call B() }
            }
            proc B() consume latent {
              u <- sample.recv{latent}(Unif);
              if.send{latent} u < 0.5 { return(u) } else { call A() }
            }
            """
        )
        result = trace_type_check(program, "A")
        assert not result.supported


class TestPairCompatibility:
    def test_matching_pair_is_compatible(self):
        benchmark = get_benchmark("weight")
        result = trace_types_compatible(
            benchmark.model_program(), benchmark.guide_program(),
            benchmark.model_entry, benchmark.guide_entry,
        )
        assert result.supported

    def test_mismatched_latent_types_rejected(self):
        model = parse_program(
            """
            proc M() consume latent provide obs {
              w <- sample.recv{latent}(Gamma(2.0, 1.0));
              _ <- sample.send{obs}(Normal(w, 1.0));
              return(w)
            }
            """
        )
        guide = parse_program(
            """
            proc G() provide latent {
              w <- sample.send{latent}(Normal(0.0, 1.0));
              return(w)
            }
            """
        )
        result = trace_types_compatible(model, guide, "M", "G")
        assert not result.supported
        assert "disagree" in result.reason

    def test_paper_table1_pattern_is_reproduced(self):
        """The baseline's verdict matches the paper's TP? column on every row."""
        from repro.models import selected_benchmarks

        for benchmark in selected_benchmarks():
            if not benchmark.expressible:
                continue
            verdict = trace_type_check(
                benchmark.model_program(), benchmark.model_entry
            ).supported
            assert verdict == benchmark.paper_table1.typechecks_prior, benchmark.name
