"""Batched-vs-scalar parity for every distribution in :mod:`repro.dists`.

The vectorized particle engine is only sound if the batched distribution API
agrees with the scalar API *pointwise*: for every distribution ``d`` and
batch ``xs``, ``d.log_prob_batch(xs)[i] == d.log_prob(xs[i])`` and
``d.in_support_batch(xs)[i] == d.in_support(xs[i])``.  These are seeded
property sweeps over both in-support samples and adversarial probes
(boundary values, non-integral floats, ``nan``/``inf``, Booleans mixed into
real batches).
"""

import math

import numpy as np
import pytest

from repro.dists.base import Distribution
from repro.dists.continuous import Beta, Gamma, Normal, TruncatedNormal, Uniform01
from repro.dists.discrete import Bernoulli, Categorical, Delta, Geometric, Poisson

#: One representative per family plus parameter variations that stress the
#: closed forms (heavy tails, tight supports, boundary-adjacent parameters).
ALL_DISTRIBUTIONS = [
    Normal(0.0, 1.0),
    Normal(-3.5, 0.25),
    Gamma(2.0, 1.0),
    Gamma(0.5, 4.0),
    Beta(3.0, 1.0),
    Beta(0.5, 0.5),
    Uniform01(),
    TruncatedNormal(0.0, 1.0, -1.0, 2.0),
    TruncatedNormal(1.0, 2.0, 0.0, 5.0),
    Bernoulli(0.3),
    Bernoulli(0.99),
    Categorical([1.0, 2.0, 3.0]),
    Categorical([0.1]),
    Geometric(0.4),
    Poisson(3.0),
    Poisson(0.1),
    Delta(1.5),
]

#: Probes that exercise support boundaries across all families.
PROBES = [-2.5, -1.0, 0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 7.0, float("nan"), float("inf"), -math.inf]

_ids = [f"{d.name}{d.params}" for d in ALL_DISTRIBUTIONS]


def _assert_log_prob_parity(dist: Distribution, values) -> None:
    batch = dist.log_prob_batch(values)
    assert isinstance(batch, np.ndarray)
    assert batch.shape == (len(list(values)),)
    for i, value in enumerate(list(values)):
        scalar = dist.log_prob(value)
        if math.isinf(scalar):
            assert math.isinf(batch[i]) and batch[i] < 0, (dist, value)
        else:
            assert batch[i] == pytest.approx(scalar, abs=1e-10), (dist, value)


def _assert_support_parity(dist: Distribution, values) -> None:
    batch = dist.in_support_batch(values)
    assert isinstance(batch, np.ndarray) and batch.dtype == bool
    for i, value in enumerate(list(values)):
        assert bool(batch[i]) == dist.in_support(value), (dist, value)


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=_ids)
def test_samples_land_in_support_and_score_identically(dist):
    rng = np.random.default_rng(0)
    samples = dist.sample_n(rng, 250)
    assert len(samples) == 250
    for value in samples:
        assert dist.in_support(value), (dist, value)
    _assert_log_prob_parity(dist, samples)
    _assert_support_parity(dist, samples)


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=_ids)
def test_probe_values_score_identically(dist):
    probes = np.asarray(PROBES)
    _assert_log_prob_parity(dist, probes)
    _assert_support_parity(dist, probes)


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=_ids)
def test_mixed_python_batches_score_identically(dist):
    """Lists mixing Booleans, ints, and floats must not be silently coerced."""
    mixed = [True, False, 0, 1, 2, 0.5, -1.0, 2.5]
    _assert_log_prob_parity(dist, mixed)
    _assert_support_parity(dist, mixed)


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=_ids)
def test_empty_batches(dist):
    assert dist.log_prob_batch(np.asarray([], dtype=float)).shape == (0,)
    assert dist.in_support_batch(np.asarray([], dtype=float)).shape == (0,)


@pytest.mark.parametrize("seed", range(5))
def test_random_parameter_sweep_parity(seed):
    """Property sweep: random parameters, random values, exact agreement."""
    rng = np.random.default_rng(seed)
    dists = [
        Normal(float(rng.normal(0, 5)), float(rng.gamma(2.0, 1.0)) + 0.1),
        Gamma(float(rng.gamma(2.0, 1.0)) + 0.1, float(rng.gamma(2.0, 1.0)) + 0.1),
        Beta(float(rng.gamma(2.0, 1.0)) + 0.1, float(rng.gamma(2.0, 1.0)) + 0.1),
        Bernoulli(float(rng.uniform(0.01, 0.99))),
        Categorical(list(rng.uniform(0.1, 5.0, size=rng.integers(1, 6)))),
        Geometric(float(rng.uniform(0.01, 0.99))),
        Poisson(float(rng.gamma(2.0, 1.0)) + 0.1),
    ]
    for dist in dists:
        own = dist.sample_n(rng, 64)
        foreign = rng.normal(0.0, 3.0, size=64)  # mostly out of support for many
        _assert_log_prob_parity(dist, own)
        _assert_log_prob_parity(dist, foreign)
        _assert_support_parity(dist, own)
        _assert_support_parity(dist, foreign)


def test_bernoulli_boolean_array_fast_path():
    dist = Bernoulli(0.25)
    values = np.asarray([True, False, True])
    expected = [math.log(0.25), math.log(0.75), math.log(0.25)]
    assert dist.log_prob_batch(values) == pytest.approx(expected)
    assert dist.in_support_batch(values).all()


def test_base_class_fallback_used_by_delta():
    """Delta has no closed-form batch override; the base loop must serve it."""
    dist = Delta("token")
    batch = dist.log_prob_batch(["token", "other"])
    assert batch[0] == 0.0 and batch[1] == -math.inf
    assert list(dist.in_support_batch(["token", "other"])) == [True, False]
