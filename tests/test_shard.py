"""Unit tests for the sharded execution layer (plans, transport, pool)."""

import numpy as np
import pytest

from repro.engine import ProgramSession
from repro.engine.shard import (
    ShardTask,
    derive_shard_seeds,
    execute_tasks,
    pack_result,
    plan_shards,
    pool_available,
    resolve_shards,
    run_shard_task,
    unpack_result,
)
from repro.errors import InferenceError
from repro.models import get_benchmark


def test_plan_shards_partitions_exactly():
    for n, s in [(10, 3), (7, 7), (100, 4), (5, 8), (1, 1)]:
        spans = plan_shards(n, s)
        assert spans[0][0] == 0
        assert sum(count for _, count in spans) == n
        for (start, count), (next_start, _) in zip(spans, spans[1:]):
            assert next_start == start + count
        # Balanced: sizes differ by at most one.
        sizes = [count for _, count in spans]
        assert max(sizes) - min(sizes) <= 1
        # Never more shards than particles.
        assert len(spans) == min(s, n)


def test_plan_shards_rejects_bad_inputs():
    with pytest.raises(InferenceError):
        plan_shards(0, 2)
    with pytest.raises(InferenceError):
        plan_shards(10, 0)


def test_resolve_shards_defaults_to_workers():
    assert resolve_shards(1, None) == 1
    assert resolve_shards(4, None) == 4
    assert resolve_shards(2, 8) == 8
    with pytest.raises(InferenceError):
        resolve_shards(0, None)
    with pytest.raises(InferenceError):
        resolve_shards(1, 0)


def test_derive_shard_seeds_consumes_one_draw():
    """The parent stream advances identically for any shard count."""
    rng_a = np.random.default_rng(42)
    rng_b = np.random.default_rng(42)
    derive_shard_seeds(rng_a, 2)
    derive_shard_seeds(rng_b, 16)
    assert rng_a.integers(0, 2**63 - 1) == rng_b.integers(0, 2**63 - 1)


def _weight_task(count=64, seed_entropy=0, backend="interp"):
    bench = get_benchmark("weight")
    session = ProgramSession(
        bench.model_program(), bench.guide_program(), bench.model_entry, bench.guide_entry
    )
    from repro.core.semantics import traces as tr

    return ShardTask(
        model_program=session.model_program,
        guide_program=session.guide_program,
        model_entry=session.model_entry,
        guide_entry=session.guide_entry,
        obs_trace=tuple(tr.ValP(v) for v in bench.obs_values),
        model_args=(),
        guide_args=(8.5, 0.0),
        latent_channel="latent",
        obs_channel="obs",
        backend=backend,
        count=count,
        seed=np.random.SeedSequence(seed_entropy),
    )


def test_shared_memory_round_trip_preserves_leaves():
    result = run_shard_task(_weight_task(count=64))
    encoded = pack_result(result)
    restored = unpack_result(encoded)
    assert restored.vectorized == result.vectorized
    assert restored.backend == result.backend
    assert len(restored.leaves) == len(result.leaves)
    for a, b in zip(result.leaves, restored.leaves):
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.model_log_weights, b.model_log_weights)
        np.testing.assert_array_equal(a.guide_log_weights, b.guide_log_weights)
        assert set(a.recorded) == set(b.recorded)
        for channel in a.recorded:
            for m_a, m_b in zip(a.recorded[channel], b.recorded[channel]):
                assert m_a.kind == m_b.kind and m_a.provider == m_b.provider
                if isinstance(m_a.payload, np.ndarray):
                    np.testing.assert_array_equal(m_a.payload, m_b.payload)
                else:
                    assert m_a.payload == m_b.payload


def test_shm_disabled_falls_back_to_pickle(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_SHM", "0")
    result = run_shard_task(_weight_task(count=8))
    kind, payload, name = pack_result(result)
    assert kind == "pickle" and payload is result and name is None
    assert unpack_result((kind, payload, name)) is result


def test_pool_and_inline_execution_agree():
    """The pool path returns exactly what inline execution returns."""
    tasks = [_weight_task(count=32, seed_entropy=k) for k in range(3)]
    inline = execute_tasks(tasks, workers=1)
    if not pool_available(2):
        pytest.skip("no multiprocessing pool in this environment")
    pooled = execute_tasks(tasks, workers=2)
    for a, b in zip(inline, pooled):
        assert a.backend == b.backend and a.vectorized == b.vectorized
        for leaf_a, leaf_b in zip(a.leaves, b.leaves):
            np.testing.assert_array_equal(leaf_a.model_log_weights, leaf_b.model_log_weights)
            np.testing.assert_array_equal(leaf_a.guide_log_weights, leaf_b.guide_log_weights)


def test_compiled_task_runs_in_worker():
    result = run_shard_task(_weight_task(count=16, backend="compiled"))
    assert result.backend == "compiled"


def test_task_error_in_pool_does_not_poison_it():
    """A per-task failure re-raises in the parent but leaves the pool
    healthy for the next wave (review regression: task errors used to mark
    the pool permanently broken and silently fall back to inline)."""
    if not pool_available(2):
        pytest.skip("no multiprocessing pool in this environment")
    good = _weight_task(count=16, seed_entropy=1)
    bad = _weight_task(count=16, seed_entropy=2)
    bad.count = -1  # InferenceError inside the worker
    with pytest.raises(InferenceError):
        execute_tasks([good, bad], workers=2)
    assert pool_available(2), "pool must survive a task-level error"
    results = execute_tasks([good, _weight_task(count=16, seed_entropy=3)], workers=2)
    assert len(results) == 2


def _broken_map(*_args, **_kwargs):
    raise OSError("simulated worker crash: pipe closed")


def test_infrastructure_failure_degrades_inline_then_rebuilds():
    """An infrastructure failure (dead worker, closed pipe) tears the pool
    down and serves that wave inline; the *next* wave rebuilds the pool and
    a completed pool wave resets the failure budget (review regression: the
    old ``_POOL_BROKEN`` latch disabled the pool for the process lifetime
    after a single transient failure)."""
    from repro.engine import shard

    if not pool_available(2):
        pytest.skip("no multiprocessing pool in this environment")
    shard.shutdown_pool()
    tasks = [_weight_task(count=16, seed_entropy=k) for k in (1, 2)]
    try:
        pool = shard.ensure_pool(2)
        pool.map = _broken_map  # next wave hits "infrastructure failure"
        inline = execute_tasks(tasks, workers=2)
        assert len(inline) == 2, "the failed wave must still serve inline"
        assert shard._POOL_FAILURES == 1
        assert shard._POOL is None, "broken pool must be torn down"
        # The next wave rebuilds a healthy pool and forgives the failure.
        rebuilt = execute_tasks(tasks, workers=2)
        assert len(rebuilt) == 2
        assert shard._POOL_FAILURES == 0, "a completed pool wave resets the budget"
        assert shard._POOL is not None
        for a, b in zip(inline, rebuilt):
            for leaf_a, leaf_b in zip(a.leaves, b.leaves):
                np.testing.assert_array_equal(
                    leaf_a.model_log_weights, leaf_b.model_log_weights
                )
    finally:
        shard.shutdown_pool()


def test_pool_rebuilds_are_capped_then_forgiven_by_shutdown():
    """After ``POOL_MAX_FAILURES`` consecutive infrastructure failures the
    pool stops being rebuilt (execution stays inline); an explicit
    ``shutdown_pool`` resets the budget."""
    from repro.engine import shard

    if not pool_available(2):
        pytest.skip("no multiprocessing pool in this environment")
    shard.shutdown_pool()
    tasks = [_weight_task(count=16, seed_entropy=k) for k in (1, 2)]
    try:
        for i in range(shard.POOL_MAX_FAILURES):
            pool = shard.ensure_pool(2)
            assert pool is not None, f"rebuild {i} should still be allowed"
            pool.map = _broken_map
            assert len(execute_tasks(tasks, workers=2)) == 2
        assert shard._POOL_FAILURES == shard.POOL_MAX_FAILURES
        assert shard.ensure_pool(2) is None, "budget exhausted: no more rebuilds"
        # Inline execution still serves traffic with the pool given up.
        assert len(execute_tasks(tasks, workers=2)) == 2
        shard.shutdown_pool()
        assert shard.ensure_pool(2) is not None, "shutdown_pool forgives the budget"
    finally:
        shard.shutdown_pool()


def _sharded_runner(name, backend="interp", jit="none", shards=2):
    from repro.core.semantics import traces as tr
    from repro.engine.backend import make_particle_runner

    bench = get_benchmark(name)
    return make_particle_runner(
        bench.model_program(),
        bench.guide_program(),
        bench.model_entry,
        bench.guide_entry,
        obs_trace=tuple(tr.ValP(v) for v in bench.obs_values),
        guide_args=tuple(bench.guide_param_inits.values()),
        backend=backend,
        jit=jit,
        workers=1,
        shards=shards,
    )


def test_shard_tasks_carry_the_jit_tier():
    """Workers must execute the tier the parent resolved, not re-decide."""
    runner = _sharded_runner("weight", backend="compiled", jit="mega")
    assert runner.effective_backend == "compiled"
    assert runner.jit == "mega"
    wave = runner.prepare(32, np.random.default_rng(0))
    for task in wave.tasks:
        assert task.backend == "compiled"
        assert task.jit == "mega"


def test_gate_fallback_freezes_interp_tasks():
    """A pair outside the fused fragment resolves to interp ONCE, at
    construction; the frozen task template never re-attempts compilation."""
    runner = _sharded_runner("marsaglia", backend="compiled", jit="mega")
    assert runner.requested_backend == "compiled"
    assert runner.effective_backend == "interp"
    assert "recursive" in runner.fallback_reason
    wave = runner.prepare(32, np.random.default_rng(0))
    for task in wave.tasks:
        assert task.backend == "interp"
        assert task.jit == "none"
    run = runner.run(32, np.random.default_rng(0))
    assert "recursive" in run.fallback_reason


def test_fallback_state_is_consistent_across_threads():
    """Regression: fallback state used to be *derived* from ``self.local``
    on every read, so concurrent requests could observe a torn view (one
    thread seeing ``backend == "compiled"`` while another read a non-None
    ``fallback_reason``).  It is now resolved once at construction and
    frozen as plain attributes, so every thread reads one coherent pair."""
    from concurrent.futures import ThreadPoolExecutor

    for name, expect_backend in [("weight", "compiled"), ("marsaglia", "interp")]:
        runner = _sharded_runner(name, backend="compiled", jit="mega")

        def observe(_):
            return (runner.backend, runner.effective_backend, runner.fallback_reason)

        with ThreadPoolExecutor(max_workers=8) as pool:
            views = set(pool.map(observe, range(64)))
        assert len(views) == 1, f"{name}: torn fallback state {views}"
        backend, effective, reason = views.pop()
        assert backend == effective == expect_backend
        assert (reason is None) == (expect_backend == "compiled")
