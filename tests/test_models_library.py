"""Tests for the benchmark model library."""

import pytest

from repro.core.typecheck import check_model_guide_pair, infer_guide_types
from repro.models import (
    all_benchmarks,
    get_benchmark,
    selected_benchmarks,
    source_loc,
)
from repro.models.handwritten import HANDWRITTEN, get_handwritten
from repro.minipyro import trace as mp_trace, seed as mp_seed


EXPRESSIBLE = [b for b in all_benchmarks() if b.expressible]


class TestRegistry:
    def test_all_selected_benchmarks_present(self):
        names = {b.name for b in selected_benchmarks()}
        assert names == {
            "lr", "gmm", "kalman", "sprinkler", "hmm", "branching", "marsaglia",
            "dp", "ptrace", "aircraft", "weight", "vae", "ex-1", "ex-2", "gp-dsl",
        }

    def test_extra_benchmarks_exist(self):
        extras = {b.name for b in all_benchmarks() if not b.selected}
        assert len(extras) >= 5

    def test_lookup_by_name(self):
        assert get_benchmark("ex-1").model_entry == "Model"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("nonexistent")

    def test_dp_is_marked_inexpressible(self):
        dp = get_benchmark("dp")
        assert not dp.expressible
        with pytest.raises(ValueError):
            dp.model_program()

    def test_source_loc_counts_code_lines_only(self):
        assert source_loc("# comment\n\nproc F() { return(1.0) }\n") == 1
        assert source_loc(None) == 0

    def test_paper_table1_metadata_present_for_selected(self):
        for benchmark in selected_benchmarks():
            assert benchmark.paper_table1 is not None

    def test_table2_benchmarks_have_paper_numbers(self):
        for name in ["ex-1", "branching", "gmm", "weight", "vae"]:
            assert get_benchmark(name).paper_table2 is not None


class TestBenchmarkPrograms:
    @pytest.mark.parametrize("bench", EXPRESSIBLE, ids=lambda b: b.name)
    def test_model_parses_and_infers_guide_types(self, bench):
        result = infer_guide_types(bench.model_program())
        assert bench.model_entry in result.channel_types

    @pytest.mark.parametrize("bench", EXPRESSIBLE, ids=lambda b: b.name)
    def test_guide_parses_and_infers_guide_types(self, bench):
        if bench.guide_source is None:
            pytest.skip("benchmark has no guide")
        result = infer_guide_types(bench.guide_program())
        assert bench.guide_entry in result.channel_types

    @pytest.mark.parametrize("bench", EXPRESSIBLE, ids=lambda b: b.name)
    def test_model_guide_pair_is_certified(self, bench):
        if bench.guide_source is None:
            pytest.skip("benchmark has no guide")
        pair = check_model_guide_pair(
            bench.model_program(), bench.guide_program(),
            bench.model_entry, bench.guide_entry,
        )
        assert pair.compatible, pair.reason

    @pytest.mark.parametrize("bench", EXPRESSIBLE, ids=lambda b: b.name)
    def test_paper_expressiveness_column_matches(self, bench):
        # Every expressible benchmark type-checks in our system, as in Table 1.
        if bench.paper_table1 is not None:
            assert bench.paper_table1.typechecks_ours

    @pytest.mark.parametrize("bench", EXPRESSIBLE, ids=lambda b: b.name)
    def test_model_loc_is_positive_and_reasonable(self, bench):
        assert 0 < bench.model_loc < 80

    def test_recursive_flags_are_consistent(self):
        from repro.core import ast

        for bench in EXPRESSIBLE:
            program = bench.model_program()
            has_cycle = any(
                proc.name in ast.calls_in(proc.body) for proc in program.procedures
            )
            if bench.recursive:
                assert has_cycle or len(program.procedures) > 1


class TestHandwrittenPairs:
    def test_all_table2_benchmarks_have_handwritten_versions(self):
        assert set(HANDWRITTEN) == {"ex-1", "branching", "gmm", "weight", "vae"}

    def test_lookup(self):
        pair = get_handwritten("gmm")
        assert pair.algorithm == "IS"
        assert pair.lines_of_code > 5

    def test_unknown_handwritten_raises(self):
        with pytest.raises(KeyError):
            get_handwritten("nope")

    @pytest.mark.parametrize("name", sorted(HANDWRITTEN), ids=str)
    def test_handwritten_model_and_guide_run_under_trace(self, name):
        pair = get_handwritten(name)
        with mp_seed(0):
            model_trace = mp_trace(pair.model).get_trace(pair.data)
            guide_trace = mp_trace(pair.guide).get_trace(pair.data)
        assert len(model_trace) >= len(guide_trace) >= 1

    @pytest.mark.parametrize("name", sorted(HANDWRITTEN), ids=str)
    def test_handwritten_guide_sites_are_subset_of_model_sites(self, name):
        pair = get_handwritten(name)
        with mp_seed(1):
            model_trace = mp_trace(pair.model).get_trace(pair.data)
            guide_trace = mp_trace(pair.guide).get_trace(pair.data)
        model_latents = {s.name for s in model_trace if not s.is_observed}
        guide_latents = {s.name for s in guide_trace if not s.is_observed}
        assert guide_latents <= model_latents
