"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from tests.conftest import (
    FIG5_GUIDE_SOURCE,
    FIG5_MODEL_SOURCE,
    FIG6_PCFG_SOURCE,
)


@pytest.fixture
def model_file(tmp_path):
    path = tmp_path / "model.gt"
    path.write_text(FIG5_MODEL_SOURCE)
    return str(path)


@pytest.fixture
def guide_file(tmp_path):
    path = tmp_path / "guide.gt"
    path.write_text(FIG5_GUIDE_SOURCE)
    return str(path)


@pytest.fixture
def bad_guide_file(tmp_path):
    path = tmp_path / "bad_guide.gt"
    path.write_text(
        """
        proc BadGuide() provide latent {
          v <- sample.send{latent}(Normal(0.0, 1.0));
          if.recv{latent} {
            return(v)
          } else {
            m <- sample.send{latent}(Unif);
            return(v)
          }
        }
        """
    )
    return str(path)


class TestInferTypes:
    def test_prints_protocols(self, model_file, capsys):
        assert main(["infer-types", model_file]) == 0
        out = capsys.readouterr().out
        assert "Model / latent" in out
        assert "Model / obs" in out

    def test_recursive_program(self, tmp_path, capsys):
        path = tmp_path / "pcfg.gt"
        path.write_text(FIG6_PCFG_SOURCE)
        assert main(["infer-types", str(path)]) == 0
        assert "typedef PcfgGen.latent" in capsys.readouterr().out

    def test_missing_file_reports_error(self, capsys):
        assert main(["infer-types", "does_not_exist.gt"]) == 2

    def test_parse_error_reports_error(self, tmp_path):
        path = tmp_path / "broken.gt"
        path.write_text("proc Broken( {")
        assert main(["infer-types", str(path)]) == 2


class TestCheck:
    def test_compatible_pair_exits_zero(self, model_file, guide_file, capsys):
        assert main(["check", model_file, guide_file]) == 0
        assert "compatible" in capsys.readouterr().out

    def test_incompatible_pair_exits_nonzero(self, model_file, bad_guide_file, capsys):
        assert main(["check", model_file, bad_guide_file]) == 1
        assert "INCOMPATIBLE" in capsys.readouterr().out

    def test_explicit_entries(self, model_file, guide_file):
        assert main([
            "check", model_file, guide_file,
            "--model-entry", "Model", "--guide-entry", "Guide1",
        ]) == 0


class TestCompile:
    def test_compile_to_stdout(self, model_file, guide_file, capsys):
        assert main(["compile", model_file, guide_file]) == 0
        out = capsys.readouterr().out
        assert "def Model():" in out
        assert "def GUIDE_ENTRY():" in out

    def test_compile_to_file(self, model_file, guide_file, tmp_path):
        output = tmp_path / "generated.py"
        assert main(["compile", model_file, guide_file, "-o", str(output)]) == 0
        text = output.read_text()
        compile(text, "generated.py", "exec")


class TestRunIS:
    def test_runs_importance_sampling(self, model_file, guide_file, capsys):
        code = main([
            "run-is", model_file, guide_file,
            "--obs", "0.8", "--samples", "200", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "log evidence estimate" in out
        assert "posterior mean" in out

    def test_refuses_uncertified_pair_without_force(self, model_file, bad_guide_file):
        assert main([
            "run-is", model_file, bad_guide_file, "--obs", "0.8", "--samples", "10",
        ]) == 1


class TestRunSVI:
    @pytest.fixture
    def weight_files(self, tmp_path):
        from repro.models import get_benchmark

        bench = get_benchmark("weight")
        model = tmp_path / "weight_model.gt"
        guide = tmp_path / "weight_guide.gt"
        model.write_text(bench.model_source)
        guide.write_text(bench.guide_source)
        return str(model), str(guide)

    def test_fits_parameters_and_reports_posterior(self, weight_files, capsys):
        model_file, guide_file = weight_files
        code = main([
            "run-svi", model_file, guide_file,
            "--obs", "9.5", "--particles", "64", "--steps", "10",
            "--lr", "0.1", "--seed", "1",
            "--param", "loc=8.5", "--param", "log_scale=0.0",
            "--final-particles", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ELBO trajectory" in out
        assert "fitted parameters" in out
        assert "posterior mean" in out

    def test_finite_difference_engine_selectable(self, weight_files, capsys):
        model_file, guide_file = weight_files
        code = main([
            "run-svi", model_file, guide_file, "--engine", "svi-fd",
            "--obs", "9.5", "--particles", "8", "--steps", "2", "--seed", "1",
            "--param", "loc=8.5", "--param", "log_scale=0.0",
        ])
        assert code == 0
        assert "engine                  : svi-fd" in capsys.readouterr().out

    def test_non_numeric_param_reports_clean_error(self, weight_files, capsys):
        model_file, guide_file = weight_files
        code = main([
            "run-svi", model_file, guide_file,
            "--obs", "9.5", "--param", "loc=abc",
        ])
        assert code == 2
        assert "expects a numeric value" in capsys.readouterr().err

    def test_malformed_param_spec_reports_clean_error(self, weight_files, capsys):
        model_file, guide_file = weight_files
        code = main([
            "run-svi", model_file, guide_file, "--obs", "9.5", "--param", "loc",
        ])
        assert code == 2
        assert "expects name=value" in capsys.readouterr().err

    def test_unit_constraint_default_init_is_valid(self, weight_files, capsys):
        # Regression: the auto-init for a unit-constrained parameter used to
        # be 1.0, which the sigmoid inverse rejects as outside (0, 1).
        model_file, guide_file = weight_files
        code = main([
            "run-svi", model_file, guide_file,
            "--obs", "9.5", "--particles", "16", "--steps", "1", "--seed", "1",
            "--constraint", "log_scale=real", "--constraint", "loc=unit",
        ])
        assert code == 0
        assert "'loc': 0.5" in capsys.readouterr().out

    def test_defaults_parameters_when_none_given(self, weight_files, capsys):
        model_file, guide_file = weight_files
        code = main([
            "run-svi", model_file, guide_file,
            "--obs", "9.5", "--particles", "16", "--steps", "1", "--seed", "1",
        ])
        assert code == 0
        assert "no --param given" in capsys.readouterr().out

    def test_refuses_uncertified_pair_without_force(self, model_file, bad_guide_file):
        assert main([
            "run-svi", model_file, bad_guide_file, "--obs", "0.8", "--steps", "1",
        ]) == 1


class TestBenchmarksListing:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "ex-1" in out and "gp-dsl" in out and "dp" in out
