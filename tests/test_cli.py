"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from tests.conftest import (
    FIG5_GUIDE_SOURCE,
    FIG5_MODEL_SOURCE,
    FIG6_PCFG_SOURCE,
)


@pytest.fixture
def model_file(tmp_path):
    path = tmp_path / "model.gt"
    path.write_text(FIG5_MODEL_SOURCE)
    return str(path)


@pytest.fixture
def guide_file(tmp_path):
    path = tmp_path / "guide.gt"
    path.write_text(FIG5_GUIDE_SOURCE)
    return str(path)


@pytest.fixture
def bad_guide_file(tmp_path):
    path = tmp_path / "bad_guide.gt"
    path.write_text(
        """
        proc BadGuide() provide latent {
          v <- sample.send{latent}(Normal(0.0, 1.0));
          if.recv{latent} {
            return(v)
          } else {
            m <- sample.send{latent}(Unif);
            return(v)
          }
        }
        """
    )
    return str(path)


class TestInferTypes:
    def test_prints_protocols(self, model_file, capsys):
        assert main(["infer-types", model_file]) == 0
        out = capsys.readouterr().out
        assert "Model / latent" in out
        assert "Model / obs" in out

    def test_recursive_program(self, tmp_path, capsys):
        path = tmp_path / "pcfg.gt"
        path.write_text(FIG6_PCFG_SOURCE)
        assert main(["infer-types", str(path)]) == 0
        assert "typedef PcfgGen.latent" in capsys.readouterr().out

    def test_missing_file_reports_error(self, capsys):
        assert main(["infer-types", "does_not_exist.gt"]) == 2

    def test_parse_error_reports_error(self, tmp_path):
        path = tmp_path / "broken.gt"
        path.write_text("proc Broken( {")
        assert main(["infer-types", str(path)]) == 2


class TestCheck:
    def test_compatible_pair_exits_zero(self, model_file, guide_file, capsys):
        assert main(["check", model_file, guide_file]) == 0
        assert "compatible" in capsys.readouterr().out

    def test_incompatible_pair_exits_nonzero(self, model_file, bad_guide_file, capsys):
        assert main(["check", model_file, bad_guide_file]) == 1
        assert "INCOMPATIBLE" in capsys.readouterr().out

    def test_explicit_entries(self, model_file, guide_file):
        assert main([
            "check", model_file, guide_file,
            "--model-entry", "Model", "--guide-entry", "Guide1",
        ]) == 0


class TestCompile:
    def test_compile_to_stdout(self, model_file, guide_file, capsys):
        assert main(["compile", model_file, guide_file]) == 0
        out = capsys.readouterr().out
        assert "def Model():" in out
        assert "def GUIDE_ENTRY():" in out

    def test_compile_to_file(self, model_file, guide_file, tmp_path):
        output = tmp_path / "generated.py"
        assert main(["compile", model_file, guide_file, "-o", str(output)]) == 0
        text = output.read_text()
        compile(text, "generated.py", "exec")


class TestRunIS:
    def test_runs_importance_sampling(self, model_file, guide_file, capsys):
        code = main([
            "run-is", model_file, guide_file,
            "--obs", "0.8", "--samples", "200", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "log evidence estimate" in out
        assert "posterior mean" in out

    def test_refuses_uncertified_pair_without_force(self, model_file, bad_guide_file):
        assert main([
            "run-is", model_file, bad_guide_file, "--obs", "0.8", "--samples", "10",
        ]) == 1


class TestBenchmarksListing:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "ex-1" in out and "gp-dsl" in out and "dp" in out
