"""Recursive models: the PCFG of the paper's Fig. 6.

Demonstrates what prior systems (trace types) cannot handle: a model with
general recursion whose set of sample sites is unbounded.  The example

1. infers the recursive guide type — the paper's type operator
   ``R[X] = ℝ(0,1) ∧ ((ℝ ∧ X) N R[R[X]])``;
2. shows that the trace-types baseline rejects the program;
3. pairs the model with a recursive guide, checks compatibility, and runs
   importance sampling on a small conditioned variant (the gp-dsl benchmark)
   to show inference works end-to-end on recursive programs.

Run with:  python examples/recursive_pcfg.py
"""

import numpy as np

from repro import parse_program
from repro.baselines import trace_type_check
from repro.core.semantics.traces import ValP, sample_values
from repro.core.typecheck import check_model_guide_pair, infer_guide_types
from repro.inference import importance_sampling
from repro.models import get_benchmark
from repro.utils.pretty import pretty_guide_type, pretty_type_table

PCFG_MODEL = """
proc Pcfg() consume latent {
  k <- sample.recv{latent}(Beta(3.0, 1.0));
  call PcfgGen(k)
}

proc PcfgGen(k: ureal) consume latent {
  u <- sample.recv{latent}(Unif);
  if.send{latent} u < k {
    v <- sample.recv{latent}(Normal(0.0, 1.0));
    return(v)
  } else {
    lhs <- call PcfgGen(k);
    rhs <- call PcfgGen(k);
    return(lhs + rhs)
  }
}
"""

PCFG_GUIDE = """
proc PcfgGuide() provide latent {
  k <- sample.send{latent}(Beta(4.0, 1.0));
  call PcfgGenGuide(k)
}

proc PcfgGenGuide(k: ureal) provide latent {
  u <- sample.send{latent}(Unif);
  if.recv{latent} {
    v <- sample.send{latent}(Normal(0.0, 2.0));
    return(v)
  } else {
    lhs <- call PcfgGenGuide(k);
    rhs <- call PcfgGenGuide(k);
    return(lhs + rhs)
  }
}
"""


def main() -> None:
    model = parse_program(PCFG_MODEL)
    guide = parse_program(PCFG_GUIDE)

    # -- recursive guide types ---------------------------------------------------
    result = infer_guide_types(model)
    print("Type operators inferred for the recursive PCFG model:")
    print(pretty_type_table(result.table))
    print("\nEntry protocol for channel `latent`:")
    print(" ", pretty_guide_type(result.entry_channel_type("Pcfg", "latent")))

    # -- the prior-work baseline rejects it ----------------------------------------
    baseline = trace_type_check(model, "Pcfg")
    print(f"\nTrace-types baseline accepts the PCFG: {baseline.supported}")
    print(f"  reason: {baseline.reason}")

    # -- model/guide compatibility ----------------------------------------------------
    pair = check_model_guide_pair(model, guide, "Pcfg", "PcfgGuide")
    print(f"\nRecursive model/guide pair certified: {pair.compatible}")

    # -- end-to-end inference on a conditioned recursive model (gp-dsl) -------------
    bench = get_benchmark("gp-dsl")
    gp_model = bench.model_program()
    gp_guide = bench.guide_program()
    observation = tuple(ValP(v) for v in bench.obs_values)
    is_result = importance_sampling(
        gp_model, gp_guide, bench.model_entry, bench.guide_entry,
        obs_trace=observation, num_samples=1500,
        rng=np.random.default_rng(1),
    )
    print("\nImportance sampling on the recursive gp-dsl benchmark (observation = 2.4):")
    print(f"  log evidence          : {is_result.log_evidence():.3f}")
    print(f"  effective sample size : {is_result.effective_sample_size():.1f}")

    expected_leaves = is_result.posterior_expectation(
        lambda s: sum(
            1 for value in sample_values(s.latent_trace) if isinstance(value, float)
        )
    )
    print(f"  posterior expected number of latent draws per kernel: {expected_leaves:.2f}")


if __name__ == "__main__":
    main()
