"""Compiling a model/guide pair to mini-Pyro and running VI on the result.

This mirrors the paper's Sec. 6 workflow: the coroutine-based programs are
type-checked, compiled to Python code against a Pyro-like substrate, and the
substrate's inference engine (here: SVI) is run on the compiled pair.  The
same posterior is also computed with the handwritten mini-Pyro version to
show the two agree.

The model is the "weight" benchmark (the unreliable-weigh example): prior
``w ~ Normal(8.5, 1)``, observation ``y ~ Normal(w, 0.75)`` with ``y = 9.5``.
The exact posterior is Normal(9.138, 0.6).

Run with:  python examples/compile_to_minipyro.py
"""

import numpy as np

from repro.compiler import compile_pair, load_compiled
from repro.minipyro import clear_param_store, get_param_store
from repro.minipyro.infer import SVI, Adam
from repro.models import get_benchmark
from repro.models.handwritten import get_handwritten

EXACT_POSTERIOR_MEAN = (8.5 / 1.0 + 9.5 / 0.5625) / (1.0 / 1.0 + 1.0 / 0.5625)


def main() -> None:
    bench = get_benchmark("weight")

    # -- compile ---------------------------------------------------------------
    source = compile_pair(
        bench.model_program(), bench.guide_program(),
        bench.model_entry, bench.guide_entry,
        guide_param_inits=bench.guide_param_inits,
    )
    compiled = load_compiled(source, module_name="generated_weight")
    print(f"Generated {compiled.lines_of_code} lines of mini-Pyro code.")
    print("First generated procedure:\n")
    print("\n".join(source.splitlines()[28:36]))

    # -- SVI on the compiled pair ------------------------------------------------
    clear_param_store()
    results = compiled.module.svi(
        obs_values=list(bench.obs_values), num_steps=60,
        num_particles=4, learning_rate=0.1, seed=0,
    )
    print("\nSVI on the compiled pair:")
    print(f"  final ELBO        : {results.final_elbo:.3f}")
    print(f"  learned guide loc : {results.params['loc']:.3f}")
    print(f"  exact posterior   : {EXACT_POSTERIOR_MEAN:.3f}")

    # -- SVI on the handwritten mini-Pyro pair -------------------------------------
    clear_param_store()
    pair = get_handwritten("weight")
    svi = SVI(pair.model, pair.guide, optim=Adam(lr=0.1), num_particles=4)
    rng = np.random.default_rng(0)
    last_elbo = 0.0
    for _ in range(60):
        last_elbo = svi.step(pair.data, rng=rng)
    print("\nSVI on the handwritten mini-Pyro pair:")
    print(f"  final ELBO        : {last_elbo:.3f}")
    print(f"  learned guide loc : {get_param_store()['loc']:.3f}")
    print("\nBoth routes converge to the same posterior approximation; the compiled")
    print("route additionally went through guide-type checking, so its soundness is certified.")


if __name__ == "__main__":
    main()
