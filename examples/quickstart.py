"""Quickstart: write a model and a guide, check them, and run inference.

This walks through the paper's running example (Fig. 1 / Fig. 5):

1. write the model and the guide as coroutines in the surface syntax;
2. infer guide types and print the guidance protocols;
3. verify the absolute-continuity certificate for the pair;
4. run importance sampling conditioned on @z = 0.8 and report the posterior
   mean of @x (the quantity plotted in the paper's Fig. 2);
5. show that an unsound guide (Fig. 3's Guide1') is rejected statically.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import check_model_guide_pair, parse_program
from repro.core.semantics.traces import ValP
from repro.core.typecheck import infer_guide_types
from repro.inference import importance_sampling
from repro.utils.pretty import pretty_guide_type

MODEL_SOURCE = """
proc Model() consume latent provide obs {
  v <- sample.recv{latent}(Gamma(2.0, 1.0));
  if.send{latent} v < 2.0 {
    _ <- sample.send{obs}(Normal(-1.0, 1.0));
    return(v)
  } else {
    m <- sample.recv{latent}(Beta(3.0, 1.0));
    _ <- sample.send{obs}(Normal(m, 1.0));
    return(v)
  }
}
"""

GUIDE_SOURCE = """
proc Guide1() provide latent {
  v <- sample.send{latent}(Gamma(1.0, 1.0));
  if.recv{latent} {
    return(v)
  } else {
    m <- sample.send{latent}(Unif);
    return(v)
  }
}
"""

UNSOUND_GUIDE_SOURCE = """
proc Guide1Bad() provide latent {
  v <- sample.send{latent}(Pois(4.0));
  if.recv{latent} {
    return(v)
  } else {
    m <- sample.send{latent}(Unif);
    return(v)
  }
}
"""


def main() -> None:
    model = parse_program(MODEL_SOURCE)
    guide = parse_program(GUIDE_SOURCE)

    # -- 1. guide-type inference ------------------------------------------------
    model_types = infer_guide_types(model)
    print("Inferred guidance protocols for the model:")
    print("  latent :", pretty_guide_type(model_types.entry_channel_type("Model", "latent")))
    print("  obs    :", pretty_guide_type(model_types.entry_channel_type("Model", "obs")))

    guide_types = infer_guide_types(guide)
    print("Inferred guidance protocol for the guide:")
    print("  latent :", pretty_guide_type(guide_types.entry_channel_type("Guide1", "latent")))

    # -- 2. the absolute-continuity certificate ----------------------------------
    pair = check_model_guide_pair(model, guide, "Model", "Guide1")
    print(f"\nModel/Guide1 compatible (absolute continuity certified): {pair.compatible}")

    bad_guide = parse_program(UNSOUND_GUIDE_SOURCE)
    bad_pair = check_model_guide_pair(model, bad_guide, "Model", "Guide1Bad")
    print(f"Model/Guide1' compatible: {bad_pair.compatible}")
    print(f"  reason: {bad_pair.reason}")

    # -- 3. importance sampling ---------------------------------------------------
    observation = (ValP(0.8),)
    result = importance_sampling(
        model, guide, "Model", "Guide1",
        obs_trace=observation, num_samples=2000,
        rng=np.random.default_rng(0),
    )
    print("\nImportance sampling with the sound guide (2000 particles, @z = 0.8):")
    print(f"  log evidence estimate : {result.log_evidence():.3f}")
    print(f"  effective sample size : {result.effective_sample_size():.1f}")
    print(f"  posterior mean of @x  : {result.posterior_expectation_of_site(0):.3f}")
    print("  (the prior mean of @x under Gamma(2,1) is 2.0 — the observation pulls it up)")


if __name__ == "__main__":
    main()
