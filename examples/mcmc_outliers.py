"""MCMC with a trace-dependent proposal: the outlier model of Sec. 2.2.

The model classifies a data point as an outlier (wide noise) or an inlier
(narrow noise around 2.5).  The Metropolis–Hastings proposal follows the
paper's Sec. 2.2 guide: it reads the *previous* value of ``is_outlier`` and
proposes (mostly) its negation — a different control-flow structure from the
model, yet the same guidance protocol, so the pair still type-checks.

Run with:  python examples/mcmc_outliers.py
"""

import numpy as np

from repro.core.semantics import traces as tr
from repro.core.typecheck import check_model_guide_pair
from repro.inference import metropolis_hastings
from repro.models import get_benchmark
from repro.utils.pretty import pretty_guide_type


def proposal_args_from(old_trace: tr.Trace):
    """Extract the previous ``is_outlier`` value for the proposal's parameter."""
    values = tr.sample_values(old_trace)
    old_is_outlier = bool(values[1]) if len(values) > 1 else False
    return (old_is_outlier,)


def run_chain(observation: float, seed: int = 0):
    bench = get_benchmark("outliers")
    model = bench.model_program()
    guide = bench.guide_program()

    pair = check_model_guide_pair(
        model, guide, bench.model_entry, bench.guide_entry
    )
    print(f"Model/guide pair certified: {pair.compatible}")
    print("Shared latent protocol:", pretty_guide_type(pair.latent_type_model))

    chain = metropolis_hastings(
        model, guide, bench.model_entry, bench.guide_entry,
        obs_trace=(tr.ValP(observation),),
        num_samples=4000, burn_in=500,
        rng=np.random.default_rng(seed),
        proposal_args=proposal_args_from,
    )
    outlier_flags = [bool(tr.sample_values(t)[1]) for t in chain.traces]
    outlier_probability = float(np.mean(outlier_flags))
    return chain, outlier_probability


def main() -> None:
    print("=== observation close to the inlier component (y = 2.4) ===")
    chain, p_outlier = run_chain(2.4, seed=0)
    print(f"acceptance rate          : {chain.acceptance_rate:.2f}")
    print(f"posterior P(is_outlier)  : {p_outlier:.3f}  (should be small)")

    print("\n=== observation far from the inlier component (y = 9.0) ===")
    chain, p_outlier = run_chain(9.0, seed=1)
    print(f"acceptance rate          : {chain.acceptance_rate:.2f}")
    print(f"posterior P(is_outlier)  : {p_outlier:.3f}  (should be large)")


if __name__ == "__main__":
    main()
