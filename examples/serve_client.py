"""Batch-inference serving, end to end, in one process.

Starts the async inference service, exposes it over the JSONL TCP protocol
on an ephemeral port, submits a burst of concurrent requests for the same
model/guide session (which the dispatcher coalesces into shared sharded
runs), and prints the responses plus the server's throughput counters.

Run with::

    PYTHONPATH=src python examples/serve_client.py
"""

import asyncio
import json

from repro.engine.server import InferenceService, serve_tcp
from repro.models import get_benchmark


async def main() -> None:
    bench = get_benchmark("weight")
    service = InferenceService(workers=2, batch_window_s=0.005)
    await service.start()
    server = await serve_tcp(service, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    print(f"server listening on 127.0.0.1:{port}")

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for seed in range(4):
        request = {
            "id": f"req-{seed}",
            "model": bench.model_source,
            "guide": bench.guide_source,
            "engine": "is",
            "sites": [0],
            "params": {
                "num_particles": 5_000,
                "seed": seed,
                "obs_values": list(bench.obs_values),
                "guide_args": [8.5, 0.0],
                "shards": 4,
            },
        }
        writer.write((json.dumps(request) + "\n").encode())
    writer.write(b'{"op": "stats", "id": "stats"}\n')
    await writer.drain()

    for _ in range(5):
        response = json.loads(await reader.readline())
        if "counters" in response:
            counters = response["counters"]
            print(
                f"[{response['id']}] {counters['requests_total']} requests, "
                f"{counters['coalesced_requests_total']} coalesced over "
                f"{counters['batches_total']} batches"
            )
        else:
            mean = response["posterior_means"]["0"]
            batch = response["server"]["batch_size"]
            print(
                f"[{response['id']}] ok={response['ok']} "
                f"posterior mean {mean:.4f} (exact: 9.14), batch of {batch}"
            )

    writer.close()
    server.close()
    await server.wait_closed()
    await service.stop()


if __name__ == "__main__":
    asyncio.run(main())
