"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that ``python setup.py develop`` works in offline environments where the
``wheel`` package (required by PEP-517 editable installs) is unavailable.
"""

from setuptools import setup

setup()
