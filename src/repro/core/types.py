"""Type syntax for the core calculus: basic types and guide types.

Basic types (paper Fig. 7)::

    τ ::= 𝟙 | 𝟚 | ℝ(0,1) | ℝ+ | ℝ | ℕn | ℕ | τ1 → τ2 | dist(τ)

Guide types (paper Sec. 4)::

    A, B ::= X | 𝟙 | T[A] | τ ∧ A | τ ⊃ A | A ⊕ B | A & B
    F    ::= τ1 ↝ τ2 | (a : T_a); (b : T_b)
    T    ::= typedef(T. X. A)

Naming: the paper writes the provider-selects branch type with ⊕ and the
consumer-selects branch type with N.  We call them :class:`Offer` (provider
sends the selection) and :class:`Choose` (consumer sends the selection).

The module also implements the *scalar subtyping* order used by the basic
type checker (ℝ(0,1) <: ℝ+ <: ℝ and ℕn <: ℕ), value-membership checks
(`value_has_type`), guide-type well-formedness, substitution of type
variables, and structural equality up to operator unfolding depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import GuideTypeError

# ---------------------------------------------------------------------------
# Basic types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BaseType:
    """Base class of basic types τ."""


@dataclass(frozen=True)
class UnitTy(BaseType):
    """𝟙 — the unit type with single inhabitant ``triv``."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "unit"


@dataclass(frozen=True)
class BoolTy(BaseType):
    """𝟚 — Booleans."""

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class URealTy(BaseType):
    """ℝ(0,1) — the open unit interval."""

    def __str__(self) -> str:
        return "ureal"


@dataclass(frozen=True)
class PRealTy(BaseType):
    """ℝ+ — strictly positive reals."""

    def __str__(self) -> str:
        return "preal"


@dataclass(frozen=True)
class RealTy(BaseType):
    """ℝ — all reals."""

    def __str__(self) -> str:
        return "real"


@dataclass(frozen=True)
class FinNatTy(BaseType):
    """ℕn — the integer ring {0, …, n-1}."""

    size: int

    def __str__(self) -> str:
        return f"nat[{self.size}]"


@dataclass(frozen=True)
class NatTy(BaseType):
    """ℕ — natural numbers."""

    def __str__(self) -> str:
        return "nat"


@dataclass(frozen=True)
class FunTy(BaseType):
    """τ1 → τ2 — simply-typed functions."""

    arg: BaseType
    result: BaseType

    def __str__(self) -> str:
        return f"({self.arg} -> {self.result})"


@dataclass(frozen=True)
class DistTy(BaseType):
    """dist(τ) — primitive distributions whose support is exactly τ."""

    support: BaseType

    def __str__(self) -> str:
        return f"dist({self.support})"


@dataclass(frozen=True)
class TupleTy(BaseType):
    """Product type extension used by benchmark models (pairs/triples)."""

    items: Tuple[BaseType, ...]

    def __str__(self) -> str:
        return "(" + " * ".join(str(t) for t in self.items) + ")"


@dataclass(frozen=True)
class TraceTy(BaseType):
    """|A| — first-class guidance traces of guide type ``A``.

    Used by Metropolis–Hastings proposal procedures that take the previous
    latent trace as an argument (paper Sec. 5.2, Lemma C.4).
    """

    guide_type: "GuideType"

    def __str__(self) -> str:
        return f"trace[{self.guide_type}]"


# Convenient singletons ------------------------------------------------------

UNIT = UnitTy()
BOOL = BoolTy()
UREAL = URealTy()
PREAL = PRealTy()
REAL = RealTy()
NAT = NatTy()


_NUMERIC_ORDER = {URealTy: 0, PRealTy: 1, RealTy: 2}


def is_numeric(tau: BaseType) -> bool:
    """True for the real-valued scalar types ℝ(0,1), ℝ+, ℝ."""
    return isinstance(tau, (URealTy, PRealTy, RealTy))


def is_integral(tau: BaseType) -> bool:
    """True for ℕ and ℕn."""
    return isinstance(tau, (NatTy, FinNatTy))


def is_scalar(tau: BaseType) -> bool:
    """True for the scalar types that may appear inside guidance messages."""
    return isinstance(tau, (UnitTy, BoolTy, URealTy, PRealTy, RealTy, FinNatTy, NatTy))


def is_subtype(sub: BaseType, sup: BaseType) -> bool:
    """Scalar subtyping: ℝ(0,1) <: ℝ+ <: ℝ, ℕn <: ℕ, ℕn <: ℕm for n <= m.

    Function, distribution, and tuple types are invariant.  ``dist`` types
    are *not* related by subtyping of their supports because the support
    characterisation must be exact (paper Sec. 3).
    """
    if sub == sup:
        return True
    if is_numeric(sub) and is_numeric(sup):
        return _NUMERIC_ORDER[type(sub)] <= _NUMERIC_ORDER[type(sup)]
    if isinstance(sub, FinNatTy) and isinstance(sup, NatTy):
        return True
    if isinstance(sub, FinNatTy) and isinstance(sup, FinNatTy):
        return sub.size <= sup.size
    # Natural numbers embed into the reals (but not into ℝ+ or ℝ(0,1),
    # because 0 is a natural number).  This lets models use counts as
    # distribution parameters, e.g. ``Normal(k, 0.1)`` for a ℕ-valued k.
    if is_integral(sub) and isinstance(sup, RealTy):
        return True
    if isinstance(sub, TupleTy) and isinstance(sup, TupleTy):
        return len(sub.items) == len(sup.items) and all(
            is_subtype(a, b) for a, b in zip(sub.items, sup.items)
        )
    return False


def join(a: BaseType, b: BaseType) -> Optional[BaseType]:
    """Least upper bound of two scalar types, or ``None`` if incomparable."""
    if is_subtype(a, b):
        return b
    if is_subtype(b, a):
        return a
    if is_numeric(a) and is_numeric(b):
        return REAL
    if is_integral(a) and is_integral(b):
        return NAT
    return None


def value_has_type(value: object, tau: BaseType) -> bool:
    """Value-membership: does the Python value ``value`` inhabit type τ?

    This is the semantic judgment ``v : τ`` of paper Fig. 13, restricted to
    scalar and tuple values (closures and distribution values are handled by
    the evaluator directly).
    """
    if isinstance(tau, UnitTy):
        return value is None or value == ()
    if isinstance(tau, BoolTy):
        return isinstance(value, bool)
    if isinstance(tau, URealTy):
        return isinstance(value, (int, float)) and not isinstance(value, bool) and 0.0 < float(value) < 1.0
    if isinstance(tau, PRealTy):
        return isinstance(value, (int, float)) and not isinstance(value, bool) and float(value) > 0.0
    if isinstance(tau, RealTy):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if isinstance(tau, FinNatTy):
        return isinstance(value, int) and not isinstance(value, bool) and 0 <= value < tau.size
    if isinstance(tau, NatTy):
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0
    if isinstance(tau, TupleTy):
        return (
            isinstance(value, tuple)
            and len(value) == len(tau.items)
            and all(value_has_type(v, t) for v, t in zip(value, tau.items))
        )
    return False


# ---------------------------------------------------------------------------
# Guide types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuideType:
    """Base class of guide types A, B."""


@dataclass(frozen=True)
class End(GuideType):
    """𝟙 — an ended channel: the guidance trace is empty."""

    def __str__(self) -> str:
        return "end"


@dataclass(frozen=True)
class TyVar(GuideType):
    """A type variable X (continuation placeholder inside a typedef body)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class OpApp(GuideType):
    """T[A] — instantiation of a unary type operator with a continuation."""

    operator: str
    arg: GuideType

    def __str__(self) -> str:
        return f"{self.operator}[{self.arg}]"


@dataclass(frozen=True)
class SendVal(GuideType):
    """τ ∧ A — the provider samples, sends a τ-valued message, continues as A."""

    payload: BaseType
    cont: GuideType

    def __str__(self) -> str:
        return f"{self.payload} /\\ {self.cont}"


@dataclass(frozen=True)
class RecvVal(GuideType):
    """τ ⊃ A — the consumer samples and sends a τ-valued message (dual of ∧)."""

    payload: BaseType
    cont: GuideType

    def __str__(self) -> str:
        return f"{self.payload} => {self.cont}"


@dataclass(frozen=True)
class Offer(GuideType):
    """A ⊕ B — the provider evaluates a predicate and sends the selection."""

    then: GuideType
    orelse: GuideType

    def __str__(self) -> str:
        return f"({self.then} (+) {self.orelse})"


@dataclass(frozen=True)
class Choose(GuideType):
    """A & B (paper's N) — the consumer sends the branch selection."""

    then: GuideType
    orelse: GuideType

    def __str__(self) -> str:
        return f"({self.then} & {self.orelse})"


@dataclass(frozen=True)
class TypeDef:
    """``typedef(T. X. A)`` — declaration of a unary type operator."""

    name: str
    param: str
    body: GuideType

    def instantiate(self, arg: GuideType) -> GuideType:
        """Return ``body[arg / param]``."""
        return substitute(self.body, {self.param: arg})

    def __str__(self) -> str:
        return f"typedef {self.name}[{self.param}] = {self.body}"


@dataclass(frozen=True)
class ProcSignature:
    """Procedure signature ``τ1 ↝ τ2 | (a : T_a); (b : T_b)``.

    ``consume_op`` / ``provide_op`` name the type operators associated with
    the consumed / provided channel, or are ``None`` when the procedure does
    not touch that channel.
    """

    param_types: Tuple[BaseType, ...]
    result_type: BaseType
    consume_channel: Optional[str]
    consume_op: Optional[str]
    provide_channel: Optional[str]
    provide_op: Optional[str]

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types) or "unit"
        pieces = [f"({params}) ~> {self.result_type}"]
        if self.consume_channel:
            pieces.append(f"consume {self.consume_channel}: {self.consume_op}")
        if self.provide_channel:
            pieces.append(f"provide {self.provide_channel}: {self.provide_op}")
        return " | ".join(pieces)


@dataclass
class TypeTable:
    """A collection T of type-operator definitions plus procedure signatures Σ.

    The result of guide-type inference over a program.
    """

    typedefs: Dict[str, TypeDef] = field(default_factory=dict)
    signatures: Dict[str, ProcSignature] = field(default_factory=dict)

    def define(self, typedef: TypeDef) -> None:
        if typedef.name in self.typedefs:
            raise GuideTypeError(f"duplicate type operator definition: {typedef.name}")
        self.typedefs[typedef.name] = typedef

    def lookup(self, operator: str) -> TypeDef:
        try:
            return self.typedefs[operator]
        except KeyError as exc:
            raise GuideTypeError(f"unknown type operator: {operator}") from exc

    def unfold(self, ty: GuideType) -> GuideType:
        """Unfold a top-level operator application once; other types unchanged."""
        if isinstance(ty, OpApp):
            return self.lookup(ty.operator).instantiate(ty.arg)
        return ty

    def signature(self, proc: str) -> ProcSignature:
        try:
            return self.signatures[proc]
        except KeyError as exc:
            raise GuideTypeError(f"no signature for procedure: {proc}") from exc


# ---------------------------------------------------------------------------
# Guide-type utilities
# ---------------------------------------------------------------------------


def substitute(ty: GuideType, subst: Mapping[str, GuideType]) -> GuideType:
    """Capture-free substitution of type variables in a guide type.

    Type operators bind their own parameter inside typedef bodies; this
    function only substitutes inside a *type expression*, where operator
    applications carry their argument explicitly, so no capture can occur.
    """
    if isinstance(ty, TyVar):
        return subst.get(ty.name, ty)
    if isinstance(ty, End):
        return ty
    if isinstance(ty, OpApp):
        return OpApp(ty.operator, substitute(ty.arg, subst))
    if isinstance(ty, SendVal):
        return SendVal(ty.payload, substitute(ty.cont, subst))
    if isinstance(ty, RecvVal):
        return RecvVal(ty.payload, substitute(ty.cont, subst))
    if isinstance(ty, Offer):
        return Offer(substitute(ty.then, subst), substitute(ty.orelse, subst))
    if isinstance(ty, Choose):
        return Choose(substitute(ty.then, subst), substitute(ty.orelse, subst))
    raise GuideTypeError(f"unknown guide type node: {ty!r}")


def free_type_vars(ty: GuideType) -> frozenset[str]:
    """Free type variables of a guide type."""
    if isinstance(ty, TyVar):
        return frozenset({ty.name})
    if isinstance(ty, End):
        return frozenset()
    if isinstance(ty, OpApp):
        return free_type_vars(ty.arg)
    if isinstance(ty, (SendVal, RecvVal)):
        return free_type_vars(ty.cont)
    if isinstance(ty, (Offer, Choose)):
        return free_type_vars(ty.then) | free_type_vars(ty.orelse)
    raise GuideTypeError(f"unknown guide type node: {ty!r}")


def is_closed(ty: GuideType) -> bool:
    """True when the guide type has no free type variables."""
    return not free_type_vars(ty)


def is_choose_free(ty: GuideType, table: Optional[TypeTable] = None,
                   _seen: Optional[set] = None) -> bool:
    """True when the guide type contains no ``&`` (paper: N-free).

    A model's consumed `latent` channel and a guide's provided `latent`
    channel must be &-free / ⊕-free respectively for the normalization
    theorems (Thm. 4.6) and the absolute-continuity theorem (Thm. 5.2).
    Operator applications are unfolded co-inductively with a visited set so
    recursive typedefs terminate.
    """
    return _connective_free(ty, Choose, table, _seen if _seen is not None else set())


def is_offer_free(ty: GuideType, table: Optional[TypeTable] = None,
                  _seen: Optional[set] = None) -> bool:
    """True when the guide type contains no ``⊕`` (paper: ⊕-free)."""
    return _connective_free(ty, Offer, table, _seen if _seen is not None else set())


def _connective_free(ty: GuideType, connective: type, table: Optional[TypeTable],
                     seen: set) -> bool:
    if isinstance(ty, connective):
        return False
    if isinstance(ty, (End, TyVar)):
        return True
    if isinstance(ty, (SendVal, RecvVal)):
        return _connective_free(ty.cont, connective, table, seen)
    if isinstance(ty, (Offer, Choose)):
        return _connective_free(ty.then, connective, table, seen) and _connective_free(
            ty.orelse, connective, table, seen
        )
    if isinstance(ty, OpApp):
        if table is None:
            # Without definitions we conservatively check only the argument.
            return _connective_free(ty.arg, connective, table, seen)
        if ty.operator in seen:
            return _connective_free(ty.arg, connective, table, seen)
        seen.add(ty.operator)
        body = table.lookup(ty.operator).body
        return _connective_free(body, connective, table, seen) and _connective_free(
            ty.arg, connective, table, seen
        )
    raise GuideTypeError(f"unknown guide type node: {ty!r}")


def payload_types(ty: GuideType, table: Optional[TypeTable] = None) -> frozenset[BaseType]:
    """Collect the payload (scalar) types mentioned anywhere in a guide type.

    Recursive type operators are unfolded once per operator.
    """
    seen: set = set()

    def go(t: GuideType) -> frozenset[BaseType]:
        if isinstance(t, (End, TyVar)):
            return frozenset()
        if isinstance(t, (SendVal, RecvVal)):
            return frozenset({t.payload}) | go(t.cont)
        if isinstance(t, (Offer, Choose)):
            return go(t.then) | go(t.orelse)
        if isinstance(t, OpApp):
            acc = go(t.arg)
            if table is not None and t.operator not in seen:
                seen.add(t.operator)
                acc |= go(table.lookup(t.operator).body)
            return acc
        raise GuideTypeError(f"unknown guide type node: {t!r}")

    return go(ty)


def guide_type_depth(ty: GuideType) -> int:
    """Syntactic depth of a guide type (used by tests and pretty-printing)."""
    if isinstance(ty, (End, TyVar)):
        return 1
    if isinstance(ty, OpApp):
        return 1 + guide_type_depth(ty.arg)
    if isinstance(ty, (SendVal, RecvVal)):
        return 1 + guide_type_depth(ty.cont)
    if isinstance(ty, (Offer, Choose)):
        return 1 + max(guide_type_depth(ty.then), guide_type_depth(ty.orelse))
    raise GuideTypeError(f"unknown guide type node: {ty!r}")


def dual_description(ty: GuideType) -> str:
    """Human-readable description of how the *consumer* reads a guide type.

    The two ends of a channel share the same guide type but interpret it
    dually: the consumer receives where the provider sends and vice versa.
    This helper renders the consumer's view (used by docs and error messages).
    """
    if isinstance(ty, End):
        return "end"
    if isinstance(ty, TyVar):
        return ty.name
    if isinstance(ty, OpApp):
        return f"{ty.operator}[{dual_description(ty.arg)}]"
    if isinstance(ty, SendVal):
        return f"receive {ty.payload}; {dual_description(ty.cont)}"
    if isinstance(ty, RecvVal):
        return f"send {ty.payload}; {dual_description(ty.cont)}"
    if isinstance(ty, Offer):
        return (
            f"receive selection [{dual_description(ty.then)} | {dual_description(ty.orelse)}]"
        )
    if isinstance(ty, Choose):
        return (
            f"send selection [{dual_description(ty.then)} | {dual_description(ty.orelse)}]"
        )
    raise GuideTypeError(f"unknown guide type node: {ty!r}")


def iter_guide_subtypes(ty: GuideType) -> Iterable[GuideType]:
    """Yield all syntactic subterms of a guide type (pre-order)."""
    yield ty
    if isinstance(ty, OpApp):
        yield from iter_guide_subtypes(ty.arg)
    elif isinstance(ty, (SendVal, RecvVal)):
        yield from iter_guide_subtypes(ty.cont)
    elif isinstance(ty, (Offer, Choose)):
        yield from iter_guide_subtypes(ty.then)
        yield from iter_guide_subtypes(ty.orelse)
