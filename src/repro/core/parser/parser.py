"""Recursive-descent parser for the surface syntax.

The parser produces :mod:`repro.core.ast` nodes.  Blocks of statements are
desugared into nested ``bnd`` commands::

    { x <- m1; m2 }        ==>   bnd(m1; x. m2)
    { m1; m2 }             ==>   bnd(m1; _. m2)
    { return(e) }          ==>   ret(e)

Parameter type annotations use the concrete names ``unit``, ``bool``,
``ureal`` (ℝ(0,1)), ``preal`` (ℝ+), ``real``, ``nat``, ``nat[n]``,
``dist(τ)``, tuples ``(τ1 * τ2)``, and arrows ``τ1 -> τ2``.  Unannotated
parameters default to ``real``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import ast
from repro.core import types as ty
from repro.core.parser.lexer import Token, TokenKind, tokenize
from repro.errors import ParseError

_DIST_KEYWORDS = {
    "Ber": ast.DistKind.BER,
    "Unif": ast.DistKind.UNIF,
    "Beta": ast.DistKind.BETA,
    "Gamma": ast.DistKind.GAMMA,
    "Normal": ast.DistKind.NORMAL,
    "Cat": ast.DistKind.CAT,
    "Geo": ast.DistKind.GEO,
    "Pois": ast.DistKind.POIS,
}

_UNARY_FUN_KEYWORDS = {
    "exp": ast.UnOp.EXP,
    "log": ast.UnOp.LOG,
    "sqrt": ast.UnOp.SQRT,
}

_CMP_OPS = {
    TokenKind.LT: ast.BinOp.LT,
    TokenKind.LE: ast.BinOp.LE,
    TokenKind.GT: ast.BinOp.GT,
    TokenKind.GE: ast.BinOp.GE,
    TokenKind.EQ: ast.BinOp.EQ,
    TokenKind.NE: ast.BinOp.NE,
}


class _Parser:
    """Stateful token-stream parser.  One instance per parse call."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self._fresh_counter = 0

    # -- token-stream helpers -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def check(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        token = self.peek()
        if token.kind is not kind:
            return False
        return text is None or token.text == text

    def check_keyword(self, word: str) -> bool:
        return self.check(TokenKind.KEYWORD, word)

    def match(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        token = self.peek()
        if self.check(kind, text):
            return self.advance()
        expected = text or kind.value
        raise ParseError(
            f"expected {expected!r} but found {token.text!r}",
            line=token.line,
            column=token.column,
        )

    def expect_keyword(self, word: str) -> Token:
        return self.expect(TokenKind.KEYWORD, word)

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, line=token.line, column=token.column)

    def fresh_name(self) -> str:
        self._fresh_counter += 1
        return f"_ignore{self._fresh_counter}"

    # -- program / procedures -------------------------------------------------

    def parse_program(self) -> ast.Program:
        procedures = []
        while not self.check(TokenKind.EOF):
            procedures.append(self.parse_procedure())
        if not procedures:
            raise self.error("a program must contain at least one procedure")
        return ast.Program(tuple(procedures))

    def parse_procedure(self) -> ast.Procedure:
        start = self.expect_keyword("proc")
        name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.LPAREN)
        params: List[Tuple[str, ty.BaseType]] = []
        if not self.check(TokenKind.RPAREN):
            params.append(self.parse_param())
            while self.match(TokenKind.COMMA):
                params.append(self.parse_param())
        self.expect(TokenKind.RPAREN)

        consumes: Optional[str] = None
        provides: Optional[str] = None
        while True:
            if self.check_keyword("consume"):
                self.advance()
                if consumes is not None:
                    raise self.error("a procedure may consume at most one channel")
                consumes = self.expect(TokenKind.IDENT).text
            elif self.check_keyword("provide"):
                self.advance()
                if provides is not None:
                    raise self.error("a procedure may provide at most one channel")
                provides = self.expect(TokenKind.IDENT).text
            else:
                break
        if consumes is not None and consumes == provides:
            raise self.error("a procedure cannot consume and provide the same channel")

        body = self.parse_block()
        proc = ast.Procedure(
            name=name,
            params=tuple(p for p, _ in params),
            consumes=consumes,
            provides=provides,
            body=body,
            loc=(start.line, start.column),
        )
        # Parameter types are attached out-of-band (see parse_program_with_types).
        object.__setattr__(proc, "_param_types", tuple(t for _, t in params))
        return proc

    def parse_param(self) -> Tuple[str, ty.BaseType]:
        name = self.expect(TokenKind.IDENT).text
        if self.match(TokenKind.COLON):
            return name, self.parse_type()
        return name, ty.REAL

    # -- types -----------------------------------------------------------------

    def parse_type(self) -> ty.BaseType:
        left = self.parse_atom_type()
        if self.match(TokenKind.ARROW):
            right = self.parse_type()
            return ty.FunTy(left, right)
        return left

    def parse_atom_type(self) -> ty.BaseType:
        token = self.peek()
        if token.kind is TokenKind.KEYWORD:
            if token.text == "unit":
                self.advance()
                return ty.UNIT
            if token.text == "bool":
                self.advance()
                return ty.BOOL
            if token.text == "ureal":
                self.advance()
                return ty.UREAL
            if token.text == "preal":
                self.advance()
                return ty.PREAL
            if token.text == "real":
                self.advance()
                return ty.REAL
            if token.text == "nat":
                self.advance()
                if self.match(TokenKind.LBRACKET):
                    size = int(self.expect(TokenKind.INT).text)
                    self.expect(TokenKind.RBRACKET)
                    return ty.FinNatTy(size)
                return ty.NAT
            if token.text == "dist":
                self.advance()
                self.expect(TokenKind.LPAREN)
                inner = self.parse_type()
                self.expect(TokenKind.RPAREN)
                return ty.DistTy(inner)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            first = self.parse_type()
            if self.check(TokenKind.STAR):
                items = [first]
                while self.match(TokenKind.STAR):
                    items.append(self.parse_type())
                self.expect(TokenKind.RPAREN)
                return ty.TupleTy(tuple(items))
            self.expect(TokenKind.RPAREN)
            return first
        raise self.error(f"expected a type but found {token.text!r}")

    # -- commands / blocks -------------------------------------------------------

    def parse_block(self) -> ast.Command:
        self.expect(TokenKind.LBRACE)
        command = self.parse_statement_sequence()
        self.expect(TokenKind.RBRACE)
        return command

    def parse_statement_sequence(self) -> ast.Command:
        if self.check(TokenKind.RBRACE):
            raise self.error("blocks must contain at least one command")
        var, command = self.parse_statement()
        if self.match(TokenKind.SEMI):
            if self.check(TokenKind.RBRACE):
                # Trailing semicolon: the statement is the tail of the block.
                return self._finish_tail(var, command)
            rest = self.parse_statement_sequence()
            binder = var if var is not None else self.fresh_name()
            return ast.Bnd(first=command, var=binder, second=rest, loc=command.loc)
        return self._finish_tail(var, command)

    def _finish_tail(self, var: Optional[str], command: ast.Command) -> ast.Command:
        if var is None:
            return command
        # `x <- m` in tail position desugars to `bnd(m; x. ret(x))`.
        return ast.Bnd(
            first=command,
            var=var,
            second=ast.Ret(ast.Var(var), loc=command.loc),
            loc=command.loc,
        )

    def parse_statement(self) -> Tuple[Optional[str], ast.Command]:
        # lookahead for `IDENT <-`
        if self.peek().kind is TokenKind.IDENT and self.peek(1).kind is TokenKind.LARROW:
            var = self.advance().text
            self.advance()  # <-
            return var, self.parse_command()
        return None, self.parse_command()

    def parse_command(self) -> ast.Command:
        token = self.peek()
        loc = (token.line, token.column)

        if self.check_keyword("return"):
            self.advance()
            self.expect(TokenKind.LPAREN)
            if self.check(TokenKind.RPAREN):
                expr: ast.Expr = ast.Triv(loc=loc)
            else:
                expr = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            return ast.Ret(expr, loc=loc)

        if self.check_keyword("sample"):
            return self.parse_sample(loc)

        if self.check_keyword("observe"):
            self.advance()
            self.expect(TokenKind.LPAREN)
            dist = self.parse_expression()
            self.expect(TokenKind.COMMA)
            value = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            return ast.Observe(dist=dist, value=value, loc=loc)

        if self.check_keyword("call"):
            self.advance()
            name = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.LPAREN)
            args: List[ast.Expr] = []
            if not self.check(TokenKind.RPAREN):
                args.append(self.parse_expression())
                while self.match(TokenKind.COMMA):
                    args.append(self.parse_expression())
            self.expect(TokenKind.RPAREN)
            if len(args) == 0:
                arg: ast.Expr = ast.Triv(loc=loc)
            elif len(args) == 1:
                arg = args[0]
            else:
                arg = ast.Tuple_(tuple(args), loc=loc)
            return ast.Call(proc=name, arg=arg, loc=loc)

        if self.check_keyword("if"):
            return self.parse_conditional(loc)

        if self.check(TokenKind.LBRACE):
            return self.parse_block()

        raise self.error(f"expected a command but found {token.text!r}")

    def parse_sample(self, loc: ast.Loc) -> ast.Command:
        self.expect_keyword("sample")
        self.expect(TokenKind.DOT)
        if self.check_keyword("recv"):
            self.advance()
            direction = "recv"
        elif self.check_keyword("send"):
            self.advance()
            direction = "send"
        else:
            raise self.error("expected 'recv' or 'send' after 'sample.'")
        self.expect(TokenKind.LBRACE)
        channel = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.RBRACE)
        self.expect(TokenKind.LPAREN)
        dist = self.parse_expression()
        self.expect(TokenKind.RPAREN)
        if direction == "recv":
            return ast.SampleRecv(channel=channel, dist=dist, loc=loc)
        return ast.SampleSend(channel=channel, dist=dist, loc=loc)

    def parse_conditional(self, loc: ast.Loc) -> ast.Command:
        self.expect_keyword("if")
        direction: Optional[str] = None
        channel: Optional[str] = None
        if self.match(TokenKind.DOT):
            if self.check_keyword("send"):
                self.advance()
                direction = "send"
            elif self.check_keyword("recv"):
                self.advance()
                direction = "recv"
            else:
                raise self.error("expected 'send' or 'recv' after 'if.'")
            self.expect(TokenKind.LBRACE)
            channel = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.RBRACE)

        if direction == "recv":
            then = self.parse_block()
            self.expect_keyword("else")
            orelse = self.parse_block()
            assert channel is not None
            return ast.CondRecv(channel=channel, then=then, orelse=orelse, loc=loc)

        cond = self.parse_expression()
        then = self.parse_block()
        self.expect_keyword("else")
        orelse = self.parse_block()
        if direction == "send":
            assert channel is not None
            return ast.CondSend(channel=channel, cond=cond, then=then, orelse=orelse, loc=loc)
        return ast.CondPure(cond=cond, then=then, orelse=orelse, loc=loc)

    # -- expressions ------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.check(TokenKind.OROR):
            token = self.advance()
            right = self.parse_and()
            left = ast.PrimOp(ast.BinOp.OR, left, right, loc=(token.line, token.column))
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_comparison()
        while self.check(TokenKind.ANDAND):
            token = self.advance()
            right = self.parse_comparison()
            left = ast.PrimOp(ast.BinOp.AND, left, right, loc=(token.line, token.column))
        return left

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        if self.peek().kind in _CMP_OPS:
            token = self.advance()
            right = self.parse_additive()
            return ast.PrimOp(_CMP_OPS[token.kind], left, right, loc=(token.line, token.column))
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            token = self.advance()
            op = ast.BinOp.ADD if token.kind is TokenKind.PLUS else ast.BinOp.SUB
            right = self.parse_multiplicative()
            left = ast.PrimOp(op, left, right, loc=(token.line, token.column))
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            token = self.advance()
            op = ast.BinOp.MUL if token.kind is TokenKind.STAR else ast.BinOp.DIV
            right = self.parse_unary()
            left = ast.PrimOp(op, left, right, loc=(token.line, token.column))
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.MINUS:
            self.advance()
            operand = self.parse_unary()
            return ast.PrimUnOp(ast.UnOp.NEG, operand, loc=(token.line, token.column))
        if token.kind is TokenKind.BANG:
            self.advance()
            operand = self.parse_unary()
            return ast.PrimUnOp(ast.UnOp.NOT, operand, loc=(token.line, token.column))
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_atom()
        while True:
            if self.check(TokenKind.DOT) and self.peek(1).kind is TokenKind.INT:
                token = self.advance()  # .
                index = int(self.advance().text)
                expr = ast.Proj(expr, index, loc=(token.line, token.column))
            elif self.check(TokenKind.LPAREN) and isinstance(expr, (ast.Var, ast.App, ast.Lam)):
                token = self.advance()
                args = []
                if not self.check(TokenKind.RPAREN):
                    args.append(self.parse_expression())
                    while self.match(TokenKind.COMMA):
                        args.append(self.parse_expression())
                self.expect(TokenKind.RPAREN)
                for arg in args or [ast.Triv()]:
                    expr = ast.App(expr, arg, loc=(token.line, token.column))
            else:
                return expr

    def parse_atom(self) -> ast.Expr:
        token = self.peek()
        loc = (token.line, token.column)

        if token.kind is TokenKind.FLOAT:
            self.advance()
            return ast.RealLit(float(token.text), loc=loc)
        if token.kind is TokenKind.INT:
            self.advance()
            return ast.NatLit(int(token.text), loc=loc)
        if token.kind is TokenKind.IDENT:
            self.advance()
            return ast.Var(token.text, loc=loc)

        if token.kind is TokenKind.KEYWORD:
            if token.text == "true":
                self.advance()
                return ast.BoolLit(True, loc=loc)
            if token.text == "false":
                self.advance()
                return ast.BoolLit(False, loc=loc)
            if token.text in _DIST_KEYWORDS:
                return self.parse_dist_expr(loc)
            if token.text in _UNARY_FUN_KEYWORDS:
                self.advance()
                self.expect(TokenKind.LPAREN)
                operand = self.parse_expression()
                self.expect(TokenKind.RPAREN)
                return ast.PrimUnOp(_UNARY_FUN_KEYWORDS[token.text], operand, loc=loc)
            if token.text == "let":
                self.advance()
                name = self.expect(TokenKind.IDENT).text
                self.expect(TokenKind.ASSIGN)
                bound = self.parse_expression()
                self.expect_keyword("in")
                body = self.parse_expression()
                return ast.Let(bound, name, body, loc=loc)
            if token.text == "fun":
                self.advance()
                self.expect(TokenKind.LPAREN)
                param = self.expect(TokenKind.IDENT).text
                self.expect(TokenKind.RPAREN)
                body = self.parse_expression()
                return ast.Lam(param, body, loc=loc)
            if token.text == "if":
                self.advance()
                cond = self.parse_expression()
                self.expect_keyword("then")
                then = self.parse_expression()
                self.expect_keyword("else")
                orelse = self.parse_expression()
                return ast.IfExpr(cond, then, orelse, loc=loc)

        if token.kind is TokenKind.LPAREN:
            self.advance()
            if self.check(TokenKind.RPAREN):
                self.advance()
                return ast.Triv(loc=loc)
            first = self.parse_expression()
            if self.check(TokenKind.COMMA):
                items = [first]
                while self.match(TokenKind.COMMA):
                    items.append(self.parse_expression())
                self.expect(TokenKind.RPAREN)
                return ast.Tuple_(tuple(items), loc=loc)
            self.expect(TokenKind.RPAREN)
            return first

        raise self.error(f"expected an expression but found {token.text!r}")

    def parse_dist_expr(self, loc: ast.Loc) -> ast.Expr:
        token = self.advance()
        kind = _DIST_KEYWORDS[token.text]
        args: List[ast.Expr] = []
        if self.check(TokenKind.LPAREN):
            self.advance()
            if not self.check(TokenKind.RPAREN):
                args.append(self.parse_expression())
                while self.match(TokenKind.COMMA):
                    args.append(self.parse_expression())
            self.expect(TokenKind.RPAREN)
        arity = ast.DIST_ARITY[kind]
        if arity is not None and len(args) != arity:
            raise ParseError(
                f"distribution {kind.value} expects {arity} argument(s), got {len(args)}",
                line=loc[0] if loc else None,
                column=loc[1] if loc else None,
            )
        if arity is None and len(args) == 0:
            raise ParseError(
                f"distribution {kind.value} expects at least one argument",
                line=loc[0] if loc else None,
                column=loc[1] if loc else None,
            )
        return ast.DistExpr(kind, tuple(args), loc=loc)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_program(source: str) -> ast.Program:
    """Parse a full program (one or more procedures) from source text."""
    parser = _Parser(tokenize(source))
    program = parser.parse_program()
    parser.expect(TokenKind.EOF)
    return program


def param_types_of(procedure: ast.Procedure) -> Tuple[ty.BaseType, ...]:
    """Return the parameter types recorded by the parser for ``procedure``.

    Procedures constructed directly (not via the parser) default to ``real``
    for every parameter.
    """
    recorded = getattr(procedure, "_param_types", None)
    if recorded is not None and len(recorded) == len(procedure.params):
        return recorded
    return tuple(ty.REAL for _ in procedure.params)


def parse_command(source: str) -> ast.Command:
    """Parse a single block (``{ ... }``) into a command.  Testing helper."""
    parser = _Parser(tokenize(source))
    command = parser.parse_block()
    parser.expect(TokenKind.EOF)
    return command


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression.  Testing helper."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    parser.expect(TokenKind.EOF)
    return expr
