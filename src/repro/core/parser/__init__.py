"""Surface syntax for the coroutine-based PPL.

The concrete syntax mirrors the paper's notation::

    proc Model() consume latent provide obs {
      v <- sample.recv{latent}(Gamma(2.0, 1.0));
      if.send{latent} v < 2.0 {
        _ <- sample.send{obs}(Normal(-1.0, 1.0));
        return(v)
      } else {
        m <- sample.recv{latent}(Beta(3.0, 1.0));
        _ <- sample.send{obs}(Normal(m, 1.0));
        return(v)
      }
    }

Use :func:`parse_program` to turn source text into a
:class:`repro.core.ast.Program`.
"""

from repro.core.parser.lexer import Token, TokenKind, tokenize
from repro.core.parser.parser import parse_command, parse_expression, parse_program

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "parse_program",
    "parse_command",
    "parse_expression",
]
