"""Lexer for the surface syntax of the coroutine-based PPL.

The lexer produces a flat list of :class:`Token` values.  It supports
line comments introduced by ``#`` or ``//``, decimal integer and float
literals (including scientific notation), identifiers, keywords, and the
punctuation used by the grammar.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import LexError


class TokenKind(enum.Enum):
    """Lexical categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    DOT = "."
    LARROW = "<-"
    ARROW = "->"
    DARROW = "=>"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    ASSIGN = "="
    ANDAND = "&&"
    OROR = "||"
    BANG = "!"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "proc",
        "consume",
        "provide",
        "sample",
        "recv",
        "send",
        "if",
        "else",
        "then",
        "return",
        "call",
        "observe",
        "let",
        "in",
        "fun",
        "true",
        "false",
        # distribution constructors are keywords so `Unif` (nullary) lexes cleanly
        "Ber",
        "Unif",
        "Beta",
        "Gamma",
        "Normal",
        "Cat",
        "Geo",
        "Pois",
        # unary math builtins
        "exp",
        "log",
        "sqrt",
        # type names (used in parameter annotations)
        "unit",
        "bool",
        "ureal",
        "preal",
        "real",
        "nat",
        "dist",
    }
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.column}"


_TWO_CHAR = {
    "<-": TokenKind.LARROW,
    "->": TokenKind.ARROW,
    "=>": TokenKind.DARROW,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "&&": TokenKind.ANDAND,
    "||": TokenKind.OROR,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "=": TokenKind.ASSIGN,
    "!": TokenKind.BANG,
}


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, returning a list terminated by an EOF token.

    Raises
    ------
    LexError
        On any character that cannot start a token, or on malformed numeric
        literals such as ``1.2.3``.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line=line, column=column)

    while i < n:
        ch = source[i]

        # -- whitespace -----------------------------------------------------
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # -- comments -------------------------------------------------------
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue

        start_line, start_col = line, column

        # -- two-character operators -----------------------------------------
        two = source[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[two], two, start_line, start_col))
            i += 2
            column += 2
            continue

        # -- numbers ----------------------------------------------------------
        # Numeric literals must start with a digit; a leading "." is always a
        # projection or field access (e.g. ``(x, y).1``), never a float.
        if ch.isdigit():
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # A dot followed by a non-digit is a projection, not a float.
                    if j + 1 < n and source[j + 1].isdigit():
                        seen_dot = True
                        j += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and j + 1 < n and (
                    source[j + 1].isdigit() or source[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 2 if source[j + 1] in "+-" else 1
                else:
                    break
            text = source[i:j]
            kind = TokenKind.FLOAT if ("." in text or "e" in text or "E" in text) else TokenKind.INT
            try:
                float(text)
            except ValueError as exc:  # pragma: no cover - defensive
                raise error(f"malformed numeric literal {text!r}") from exc
            tokens.append(Token(kind, text, start_line, start_col))
            column += j - i
            i = j
            continue

        # -- identifiers / keywords -------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            column += j - i
            i = j
            continue

        # -- single-character operators ----------------------------------------
        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], ch, start_line, start_col))
            i += 1
            column += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
