"""The coroutine scheduler: joint execution of model/guide pairs.

The scheduler owns a set of coroutines (interpreted procedure bodies) and a
set of channels.  Each channel has an optional provider coroutine, an
optional consumer coroutine, and an optional *replay* trace:

* when both endpoints are live coroutines, messages flow through a FIFO
  queue from the sender to the receiver;
* when an endpoint is external and a replay trace is supplied, sends are
  *conditioned* on the trace (the trace's value is used and scored; branch
  selections that contradict the predicate force the weight to zero) and
  receives read from the trace;
* when an endpoint is external and no replay trace is supplied, the channel
  is in *generate* mode: sends draw fresh values, receives draw from the
  receiving operation's own distribution (prior simulation).

Every resolved message is recorded in the channel's guidance trace with the
correct polarity (``ValP``/``DirP`` when the provider sent it, ``ValC``/
``DirC`` otherwise), so the recorded traces can be fed back into the
big-step evaluator or validated against inferred guide types.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import ast
from repro.core.coroutines import ops
from repro.core.coroutines.interp import CommandGenerator, interpret_procedure
from repro.core.semantics import traces as tr
from repro.errors import ChannelProtocolError
from repro.utils.recursion import deep_recursion
from repro.utils.rng import ensure_rng


@dataclass
class CoroutineSpec:
    """One coroutine to run: a named entry procedure with arguments."""

    name: str
    program: ast.Program
    entry: str
    args: Tuple[object, ...] = ()


@dataclass
class ChannelSpec:
    """One channel: its provider/consumer coroutine names and optional replay trace."""

    name: str
    provider: Optional[str] = None
    consumer: Optional[str] = None
    replay: Optional[Sequence[tr.Message]] = None


@dataclass
class JointResult:
    """Result of a joint execution.

    Attributes
    ----------
    values:
        Return value of each coroutine, keyed by coroutine name.
    log_weights:
        Accumulated log weight of each coroutine (its density contribution).
    traces:
        The recorded guidance trace of each channel.
    """

    values: Dict[str, object]
    log_weights: Dict[str, float]
    traces: Dict[str, tr.Trace]

    def total_log_weight(self) -> float:
        """Sum of all coroutine log weights (the joint density of the run)."""
        return sum(self.log_weights.values())


# ---------------------------------------------------------------------------
# Internal task / channel state
# ---------------------------------------------------------------------------


@dataclass
class _Task:
    name: str
    generator: CommandGenerator
    log_weight: float = 0.0
    finished: bool = False
    value: object = None
    started: bool = False
    pending_op: Optional[ops.Op] = None
    pending_send: Optional[object] = None  # value to send into the generator


@dataclass
class _ChannelState:
    spec: ChannelSpec
    #: Messages in flight from the provider to the consumer.
    to_consumer: Deque[Tuple[str, object]] = field(default_factory=deque)
    #: Messages in flight from the consumer to the provider.
    to_provider: Deque[Tuple[str, object]] = field(default_factory=deque)
    recorded: List[tr.Message] = field(default_factory=list)
    replay_cursor: Optional[tr.TraceCursor] = None
    #: Name of the coroutine currently waiting at a fold rendezvous, if any.
    fold_waiting: Optional[str] = None
    #: Coroutines released from a completed fold rendezvous that have not
    #: yet re-issued their pending fold operation.
    fold_passes: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.spec.replay is not None:
            self.replay_cursor = tr.TraceCursor(self.spec.replay)

    def outgoing(self, sender_is_provider: bool) -> Deque[Tuple[str, object]]:
        """The queue a sender pushes to."""
        return self.to_consumer if sender_is_provider else self.to_provider

    def incoming(self, receiver_is_provider: bool) -> Deque[Tuple[str, object]]:
        """The queue a receiver pops from."""
        return self.to_provider if receiver_is_provider else self.to_consumer


#: Default cap on the number of channel operations in one joint execution.
#: Recursive models whose branching process is (super)critical can generate
#: unboundedly large traces; the cap turns such runaway executions into an
#: error instead of an apparent hang.
DEFAULT_MAX_OPS = 10_000


class _Scheduler:
    """Cooperative round-robin scheduler over the coroutine tasks."""

    def __init__(
        self,
        coroutines: Sequence[CoroutineSpec],
        channels: Sequence[ChannelSpec],
        rng: np.random.Generator,
        max_ops: int = DEFAULT_MAX_OPS,
    ):
        self.rng = rng
        self.max_ops = max_ops
        self.ops_handled = 0
        self.tasks: Dict[str, _Task] = {}
        for spec in coroutines:
            generator = interpret_procedure(spec.program, spec.entry, spec.args)
            self.tasks[spec.name] = _Task(name=spec.name, generator=generator)
        self.channels: Dict[str, _ChannelState] = {
            spec.name: _ChannelState(spec) for spec in channels
        }

    # -- channel helpers ----------------------------------------------------------

    def _channel(self, name: str) -> _ChannelState:
        if name not in self.channels:
            raise ChannelProtocolError(
                f"coroutine communicates on undeclared channel {name!r}"
            )
        return self.channels[name]

    def _is_provider(self, task: _Task, channel: _ChannelState) -> bool:
        return channel.spec.provider == task.name

    def _partner_is_live(self, task: _Task, channel: _ChannelState) -> bool:
        partner = (
            channel.spec.consumer
            if self._is_provider(task, channel)
            else channel.spec.provider
        )
        return partner is not None and partner in self.tasks

    def _replay_value(self, channel: _ChannelState, what: str) -> object:
        assert channel.replay_cursor is not None
        message = channel.replay_cursor.take(tr.Message, what)
        if not isinstance(message, (tr.ValP, tr.ValC)):
            raise ChannelProtocolError(
                f"{what}: replay trace provides {message}, expected a sample value"
            )
        return message.value

    def _replay_branch(self, channel: _ChannelState, what: str) -> bool:
        assert channel.replay_cursor is not None
        message = channel.replay_cursor.take(tr.Message, what)
        if not isinstance(message, (tr.DirP, tr.DirC)):
            raise ChannelProtocolError(
                f"{what}: replay trace provides {message}, expected a branch selection"
            )
        return bool(message.value)

    def _record(self, channel: _ChannelState, message: tr.Message) -> None:
        channel.recorded.append(message)

    # -- op handlers -------------------------------------------------------------

    def _handle(self, task: _Task, op: ops.Op) -> Tuple[bool, object]:
        """Handle one op.

        Returns ``(ready, value)``: when ``ready`` is False the coroutine is
        blocked waiting for its partner and must be retried later.
        """
        self.ops_handled += 1
        if self.ops_handled > self.max_ops:
            raise ChannelProtocolError(
                f"joint execution exceeded the operation budget ({self.max_ops}); "
                "the model/guide recursion appears not to terminate"
            )
        if isinstance(op, ops.OpObserve):
            task.log_weight += op.dist.log_prob(op.value)
            return True, None

        channel = self._channel(op.channel)
        provider = self._is_provider(task, channel)

        if isinstance(op, ops.OpSendSample):
            if channel.replay_cursor is not None:
                value = self._replay_value(channel, f"send on {op.channel}")
            else:
                value = op.dist.sample(self.rng)
            task.log_weight += op.dist.log_prob(value)
            self._record(channel, tr.ValP(value) if provider else tr.ValC(value))
            if self._partner_is_live(task, channel):
                channel.outgoing(provider).append(("val", value))
            return True, value

        if isinstance(op, ops.OpRecvSample):
            if self._partner_is_live(task, channel):
                incoming = channel.incoming(provider)
                if not incoming:
                    return False, None
                kind, value = incoming.popleft()
                if kind != "val":
                    raise ChannelProtocolError(
                        f"receive on {op.channel}: expected a sample value, got a {kind} message"
                    )
            elif channel.replay_cursor is not None:
                value = self._replay_value(channel, f"receive on {op.channel}")
                self._record(channel, tr.ValC(value) if provider else tr.ValP(value))
            else:
                # Generate mode: the external partner "samples" from the
                # receiving operation's own distribution (prior simulation).
                value = op.dist.sample(self.rng)
                self._record(channel, tr.ValC(value) if provider else tr.ValP(value))
            task.log_weight += op.dist.log_prob(value)
            return True, value

        if isinstance(op, ops.OpSendBranch):
            if channel.replay_cursor is not None:
                selection = self._replay_branch(channel, f"branch on {op.channel}")
                if selection != op.value:
                    task.log_weight = -math.inf
            else:
                selection = op.value
            self._record(channel, tr.DirP(selection) if provider else tr.DirC(selection))
            if self._partner_is_live(task, channel):
                channel.outgoing(provider).append(("dir", selection))
            return True, selection

        if isinstance(op, ops.OpRecvBranch):
            if self._partner_is_live(task, channel):
                incoming = channel.incoming(provider)
                if not incoming:
                    return False, None
                kind, selection = incoming.popleft()
                if kind != "dir":
                    raise ChannelProtocolError(
                        f"receive on {op.channel}: expected a branch selection, got a {kind} message"
                    )
            elif channel.replay_cursor is not None:
                selection = self._replay_branch(channel, f"branch on {op.channel}")
                self._record(
                    channel, tr.DirC(selection) if provider else tr.DirP(selection)
                )
            else:
                raise ChannelProtocolError(
                    f"receive of a branch selection on {op.channel!r} with no partner "
                    "and no replay trace"
                )
            return True, selection

        if isinstance(op, ops.OpFold):
            if not self._partner_is_live(task, channel):
                if channel.replay_cursor is not None:
                    channel.replay_cursor.take(tr.Fold, f"call marker on {op.channel}")
                if provider:
                    self._record(channel, tr.Fold())
                return True, None
            # Fold markers on a live channel synchronise the two coroutines:
            # the first arrival waits; the second arrival records the marker
            # (at its correct protocol position) and releases the first.
            if task.name in channel.fold_passes:
                channel.fold_passes.discard(task.name)
                return True, None
            if channel.fold_waiting is None:
                channel.fold_waiting = task.name
                return False, None
            if channel.fold_waiting == task.name:
                return False, None
            other = channel.fold_waiting
            channel.fold_waiting = None
            channel.fold_passes.add(other)
            self._record(channel, tr.Fold())
            return True, None

        raise ChannelProtocolError(f"unknown channel operation {op!r}")

    # -- the scheduling loop ----------------------------------------------------------

    def _step(self, task: _Task) -> bool:
        """Advance one coroutine until it blocks or finishes.

        Returns True when the coroutine made progress.
        """
        progressed = False
        while not task.finished:
            try:
                if not task.started:
                    task.started = True
                    op = next(task.generator)
                elif task.pending_op is not None:
                    op = task.pending_op
                    task.pending_op = None
                else:
                    op = task.generator.send(task.pending_send)
                    task.pending_send = None
            except StopIteration as stop:
                task.finished = True
                task.value = stop.value
                return True

            ready, value = self._handle(task, op)
            if not ready:
                task.pending_op = op
                return progressed
            task.pending_send = value
            progressed = True
        return progressed

    def run(self) -> JointResult:
        with deep_recursion():
            return self._run_loop()

    def _run_loop(self) -> JointResult:
        pending = deque(self.tasks.values())
        while any(not task.finished for task in self.tasks.values()):
            progressed_any = False
            for _ in range(len(pending)):
                task = pending.popleft()
                pending.append(task)
                if task.finished:
                    continue
                if self._step(task):
                    progressed_any = True
            if not progressed_any:
                blocked = [t.name for t in self.tasks.values() if not t.finished]
                raise ChannelProtocolError(
                    "deadlock: coroutines "
                    + ", ".join(blocked)
                    + " are all blocked waiting for messages; the model and guide "
                    "do not follow the same guidance protocol"
                )

        return JointResult(
            values={name: task.value for name, task in self.tasks.items()},
            log_weights={name: task.log_weight for name, task in self.tasks.items()},
            traces={name: tuple(state.recorded) for name, state in self.channels.items()},
        )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def run_joint(
    coroutines: Sequence[CoroutineSpec],
    channels: Sequence[ChannelSpec],
    rng: Optional[np.random.Generator] = None,
    max_ops: int = DEFAULT_MAX_OPS,
) -> JointResult:
    """Run a set of coroutines to completion over the given channels.

    ``max_ops`` bounds the total number of channel operations; exceeding it
    raises :class:`ChannelProtocolError` (used to cut off recursive models
    whose branching process fails to terminate).
    """
    return _Scheduler(coroutines, channels, ensure_rng(rng), max_ops=max_ops).run()


def run_model_guide(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    obs_trace: Optional[Sequence[tr.Message]] = None,
    rng: Optional[np.random.Generator] = None,
    model_args: Tuple[object, ...] = (),
    guide_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
) -> JointResult:
    """Jointly execute a model and a guide, conditioning on ``obs_trace``.

    The guide provides the latent channel and the model consumes it; the
    model provides the observation channel, which is conditioned on
    ``obs_trace`` when supplied and sampled freely otherwise (prior
    predictive).  Returns per-coroutine log weights (``w_g`` and ``w_m``)
    and the recorded latent/observation traces.
    """
    model_proc = model_program.procedure(model_entry)
    channels = [
        ChannelSpec(name=latent_channel, provider="guide", consumer="model"),
    ]
    if model_proc.provides == obs_channel:
        channels.append(
            ChannelSpec(name=obs_channel, provider="model", consumer=None, replay=obs_trace)
        )
    coroutines = [
        CoroutineSpec(name="model", program=model_program, entry=model_entry, args=model_args),
        CoroutineSpec(name="guide", program=guide_program, entry=guide_entry, args=guide_args),
    ]
    return run_joint(coroutines, channels, rng)


def run_prior(
    model_program: ast.Program,
    model_entry: str,
    rng: Optional[np.random.Generator] = None,
    model_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
) -> JointResult:
    """Simulate the model alone (prior + prior predictive).

    Both channels run in generate mode: every latent the model *receives* is
    drawn from the model's own (prior) distribution at that site, and every
    observation the model *sends* is drawn from its likelihood.
    """
    model_proc = model_program.procedure(model_entry)
    channels = [ChannelSpec(name=latent_channel, provider=None, consumer="model")]
    if model_proc.provides == obs_channel:
        channels.append(ChannelSpec(name=obs_channel, provider="model", consumer=None))
    coroutines = [
        CoroutineSpec(name="model", program=model_program, entry=model_entry, args=model_args)
    ]
    return run_joint(coroutines, channels, rng)
