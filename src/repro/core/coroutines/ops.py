"""Channel operations yielded by interpreted commands.

Each operation names the channel it acts on and carries the data the
scheduler needs to resolve it (the distribution for sampling/scoring, the
predicate value for a sent branch selection).  The scheduler responds with
the *resolved* value — the sample actually used, or the branch actually
taken — which may differ from what the coroutine proposed when the channel
is bound to a replay (conditioning) trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dists.base import Distribution


@dataclass(frozen=True)
class Op:
    """Base class of channel operations."""

    channel: str


@dataclass(frozen=True)
class OpSendSample(Op):
    """Draw a value from ``dist`` and send it on the channel.

    The scheduler resolves the value (sampling fresh, or replaying the bound
    trace) and scores it against ``dist`` in the issuing coroutine's weight.
    """

    dist: Distribution


@dataclass(frozen=True)
class OpRecvSample(Op):
    """Receive a value on the channel and score it against ``dist``."""

    dist: Distribution


@dataclass(frozen=True)
class OpSendBranch(Op):
    """Send the Boolean branch selection ``value`` on the channel."""

    value: bool


@dataclass(frozen=True)
class OpRecvBranch(Op):
    """Receive a branch selection on the channel."""


@dataclass(frozen=True)
class OpFold(Op):
    """Record a procedure-call marker on the channel."""


@dataclass(frozen=True)
class OpObserve(Op):
    """Score ``value`` against ``dist`` without any communication.

    The ``channel`` field is the empty string; ``OpObserve`` exists so the
    interpreter never needs direct access to the weight accumulator.
    """

    dist: Distribution
    value: object
