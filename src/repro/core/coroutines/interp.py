"""Generator-based interpretation of commands.

:func:`interpret_command` turns a command into a Python generator that

* yields :mod:`channel operations <repro.core.coroutines.ops>` whenever the
  command communicates (sample passing, branch selection, call markers,
  observation scoring), and
* receives the *resolved* value for each operation from the scheduler via
  ``generator.send(value)``.

The generator's return value (``StopIteration.value``) is the command's
result value.  Pure computation (expressions, pure conditionals, let
bindings) happens inline without yielding.
"""

from __future__ import annotations

from typing import Dict, Generator, Sequence

from repro.core import ast
from repro.core.coroutines import ops
from repro.core.semantics.values import eval_expr
from repro.dists.base import Distribution
from repro.errors import EvaluationError

#: The generator type produced by the interpreter.
CommandGenerator = Generator[ops.Op, object, object]


def _eval_dist(env: Dict[str, object], expr: ast.Expr) -> Distribution:
    value = eval_expr(env, expr)
    if not isinstance(value, Distribution):
        raise EvaluationError(f"sample command expects a distribution, got {value!r}")
    return value


def _require_bool(value: object, what: str) -> bool:
    if not isinstance(value, bool):
        raise EvaluationError(f"{what}: expected a Boolean, got {value!r}")
    return value


def interpret_command(
    program: ast.Program,
    cmd: ast.Command,
    env: Dict[str, object],
) -> CommandGenerator:
    """Interpret ``cmd`` as a coroutine under environment ``env``."""
    if isinstance(cmd, ast.Ret):
        return eval_expr(env, cmd.expr)

    if isinstance(cmd, ast.Bnd):
        first = yield from interpret_command(program, cmd.first, env)
        inner = dict(env)
        inner[cmd.var] = first
        result = yield from interpret_command(program, cmd.second, inner)
        return result

    if isinstance(cmd, ast.SampleRecv):
        dist = _eval_dist(env, cmd.dist)
        value = yield ops.OpRecvSample(cmd.channel, dist)
        return value

    if isinstance(cmd, ast.SampleSend):
        dist = _eval_dist(env, cmd.dist)
        value = yield ops.OpSendSample(cmd.channel, dist)
        return value

    if isinstance(cmd, ast.CondSend):
        predicate = _require_bool(eval_expr(env, cmd.cond), "branch predicate")
        selection = yield ops.OpSendBranch(cmd.channel, predicate)
        branch = cmd.then if _require_bool(selection, "resolved selection") else cmd.orelse
        result = yield from interpret_command(program, branch, env)
        return result

    if isinstance(cmd, ast.CondRecv):
        selection = yield ops.OpRecvBranch(cmd.channel)
        branch = cmd.then if _require_bool(selection, "received selection") else cmd.orelse
        result = yield from interpret_command(program, branch, env)
        return result

    if isinstance(cmd, ast.CondPure):
        predicate = _require_bool(eval_expr(env, cmd.cond), "branch predicate")
        branch = cmd.then if predicate else cmd.orelse
        result = yield from interpret_command(program, branch, env)
        return result

    if isinstance(cmd, ast.Call):
        try:
            callee = program.procedure(cmd.proc)
        except KeyError as exc:
            raise EvaluationError(f"call to unknown procedure {cmd.proc!r}") from exc
        argument = eval_expr(env, cmd.arg)
        call_env = _bind_arguments(callee, argument)
        for channel in (callee.consumes, callee.provides):
            if channel is not None:
                yield ops.OpFold(channel)
        result = yield from interpret_command(program, callee.body, call_env)
        return result

    if isinstance(cmd, ast.Observe):
        dist = _eval_dist(env, cmd.dist)
        value = eval_expr(env, cmd.value)
        yield ops.OpObserve("", dist, value)
        return None

    raise EvaluationError(f"unknown command node {cmd!r}")


def interpret_procedure(
    program: ast.Program,
    entry: str,
    args: Sequence[object] = (),
) -> CommandGenerator:
    """Interpret the body of an entry procedure as a coroutine.

    As in the big-step semantics helpers, the entry procedure's own channels
    do *not* begin with fold markers; only nested calls emit them.
    """
    procedure = program.procedure(entry)
    if len(args) != len(procedure.params):
        raise EvaluationError(
            f"{entry} expects {len(procedure.params)} arguments, got {len(args)}"
        )
    env = dict(zip(procedure.params, args))
    return interpret_command(program, procedure.body, env)


def _bind_arguments(procedure: ast.Procedure, argument: object) -> Dict[str, object]:
    params = procedure.params
    if len(params) == 0:
        return {}
    if len(params) == 1:
        return {params[0]: argument}
    if not isinstance(argument, tuple) or len(argument) != len(params):
        raise EvaluationError(
            f"{procedure.name} expects {len(params)} arguments, got {argument!r}"
        )
    return dict(zip(params, argument))
