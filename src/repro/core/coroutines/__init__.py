"""Coroutine runtime: channels, generator-based interpretation, and scheduling.

The paper's key operational idea is that the model and the guide run as
*coroutines* that exchange sample values and branch selections over named
channels.  This package implements that idea with standard Python
generators (substituting for the paper's ``greenlet``):

``ops``
    The channel-operation vocabulary yielded by interpreted commands.
``interp``
    A generator-based interpreter: a command becomes a generator that yields
    channel operations and receives resolved values.
``runner``
    The scheduler that connects coroutines over channels, draws samples,
    replays conditioning traces, records per-channel guidance traces, and
    accumulates per-coroutine log weights.
"""

from repro.core.coroutines.ops import (
    OpFold,
    OpObserve,
    OpRecvBranch,
    OpRecvSample,
    OpSendBranch,
    OpSendSample,
)
from repro.core.coroutines.interp import interpret_procedure
from repro.core.coroutines.runner import (
    ChannelSpec,
    CoroutineSpec,
    JointResult,
    run_joint,
    run_model_guide,
    run_prior,
)

__all__ = [
    "OpSendSample",
    "OpRecvSample",
    "OpSendBranch",
    "OpRecvBranch",
    "OpFold",
    "OpObserve",
    "interpret_procedure",
    "CoroutineSpec",
    "ChannelSpec",
    "JointResult",
    "run_joint",
    "run_model_guide",
    "run_prior",
]
