"""Abstract syntax of the core coroutine-based calculus (paper Fig. 7).

The calculus is *modal*: expressions describe pure, deterministic
computations, while commands describe probabilistic computations that may
communicate on channels.  A program is a collection of mutually recursive
procedures, each of which consumes at most one channel and provides at most
one channel.

All nodes are frozen dataclasses so they can be hashed, compared
structurally, and used as dictionary keys.  Every node carries an optional
``loc`` source position (``(line, column)``) that is excluded from equality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

# ---------------------------------------------------------------------------
# Source locations
# ---------------------------------------------------------------------------

Loc = Optional[Tuple[int, int]]


def _loc_field() -> Loc:
    return field(default=None, compare=False, repr=False)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Expressions (pure fragment)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class of the pure expression language."""


@dataclass(frozen=True)
class Var(Expr):
    """A program variable reference ``x``."""

    name: str
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class Triv(Expr):
    """The unit value ``triv`` of type 𝟙."""

    loc: Loc = _loc_field()


@dataclass(frozen=True)
class BoolLit(Expr):
    """A Boolean literal ``true`` or ``false``."""

    value: bool
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class RealLit(Expr):
    """A real-valued literal.

    The basic type checker assigns the most precise scalar type available:
    ℝ(0,1) for values strictly between 0 and 1, ℝ+ for positive values,
    ℝ otherwise.
    """

    value: float
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class NatLit(Expr):
    """A natural-number literal."""

    value: int
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class IfExpr(Expr):
    """Pure conditional expression ``if(e; e1; e2)``."""

    cond: Expr
    then: Expr
    orelse: Expr
    loc: Loc = _loc_field()


class BinOp(enum.Enum):
    """Built-in binary operators on scalar values."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"


@dataclass(frozen=True)
class PrimOp(Expr):
    """Application of a built-in binary operator ``op^(e1; e2)``."""

    op: BinOp
    left: Expr
    right: Expr
    loc: Loc = _loc_field()


class UnOp(enum.Enum):
    """Built-in unary operators."""

    NEG = "-"
    NOT = "!"
    EXP = "exp"
    LOG = "log"
    SQRT = "sqrt"


@dataclass(frozen=True)
class PrimUnOp(Expr):
    """Application of a built-in unary operator."""

    op: UnOp
    operand: Expr
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class Lam(Expr):
    """A lambda abstraction ``λ(x. e)``."""

    param: str
    body: Expr
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class App(Expr):
    """Function application ``app(e1; e2)``."""

    func: Expr
    arg: Expr
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class Let(Expr):
    """Pure let binding ``let(e1; x. e2)``."""

    bound: Expr
    var: str
    body: Expr
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class Tuple_(Expr):
    """An n-ary tuple expression (extension used by benchmark models)."""

    items: Tuple[Expr, ...]
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class Proj(Expr):
    """Tuple projection ``e.i`` (0-based index)."""

    tuple_expr: Expr
    index: int
    loc: Loc = _loc_field()


# -- distribution expressions -----------------------------------------------


class DistKind(enum.Enum):
    """Primitive distribution families supported by the calculus.

    Each family has a fixed number of parameters and a *support type*: the
    scalar type that characterises its support exactly (paper Sec. 3).
    """

    BER = "Ber"          # dist(𝟚), one ℝ(0,1) parameter
    UNIF = "Unif"        # dist(ℝ(0,1)), no parameters
    BETA = "Beta"        # dist(ℝ(0,1)), two ℝ+ parameters
    GAMMA = "Gamma"      # dist(ℝ+), two ℝ+ parameters
    NORMAL = "Normal"    # dist(ℝ), mean ℝ and stddev ℝ+
    CAT = "Cat"          # dist(ℕn), n ℝ+ weights
    GEO = "Geo"          # dist(ℕ), one ℝ(0,1) parameter
    POIS = "Pois"        # dist(ℕ), one ℝ+ parameter


DIST_ARITY = {
    DistKind.BER: 1,
    DistKind.UNIF: 0,
    DistKind.BETA: 2,
    DistKind.GAMMA: 2,
    DistKind.NORMAL: 2,
    DistKind.CAT: None,  # variadic (n >= 1)
    DistKind.GEO: 1,
    DistKind.POIS: 1,
}


@dataclass(frozen=True)
class DistExpr(Expr):
    """A primitive-distribution expression, e.g. ``Normal(mu, sigma)``."""

    kind: DistKind
    args: Tuple[Expr, ...]
    loc: Loc = _loc_field()


# ---------------------------------------------------------------------------
# Commands (probabilistic fragment)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Command:
    """Base class of the monadic command language."""


@dataclass(frozen=True)
class Ret(Command):
    """``ret(e)`` — return the value of a pure expression.

    Evaluates with weight 1 and empty guidance traces.
    """

    expr: Expr
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class Bnd(Command):
    """``bnd(m1; x. m2)`` — monadic sequencing.

    Runs ``m1``, binds its value to ``x``, then runs ``m2``.  Guidance traces
    concatenate and weights multiply.
    """

    first: Command
    var: str
    second: Command
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class SampleRecv(Command):
    """``sample.rv{a}(e)`` — receive a sample on channel ``a``.

    ``e`` evaluates to a primitive distribution ``d``; the received value is
    scored against ``d.density``.
    """

    channel: str
    dist: Expr
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class SampleSend(Command):
    """``sample.sd{a}(e)`` — draw a sample from ``e`` and send it on ``a``."""

    channel: str
    dist: Expr
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class CondRecv(Command):
    """``cond.rv{a}(m1; m2)`` — receive a branch selection on channel ``a``.

    The paper writes the branch hole as ``★``: the predicate is supplied by
    the other coroutine.
    """

    channel: str
    then: Command
    orelse: Command
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class CondSend(Command):
    """``cond.sd{a}(e; m1; m2)`` — evaluate ``e`` to a Boolean, send it as a
    branch selection on channel ``a``, and continue with the matching branch.
    """

    channel: str
    cond: Expr
    then: Command
    orelse: Command
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class CondPure(Command):
    """``if e then m1 else m2`` with no communication.

    This is a convenience extension over the paper's calculus: a conditional
    whose branch selection is *not* communicated.  Guide-type inference
    requires both branches to induce identical protocols on *both* channels,
    so the extension does not weaken the soundness guarantee.
    """

    cond: Expr
    then: Command
    orelse: Command
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class Call(Command):
    """``call(f; e)`` — procedure call with a single argument."""

    proc: str
    arg: Expr
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class Observe(Command):
    """``observe(e_dist; e_value)`` — score a known value against a distribution.

    A convenience extension (sugar over ``sample.sd{obs}`` followed by
    conditioning): it multiplies the current weight by ``d.density(v)``
    without any channel communication.  Used by a few handwritten baselines;
    the benchmark programs in :mod:`repro.models` stick to the paper's
    channel-based observation style.
    """

    dist: Expr
    value: Expr
    loc: Loc = _loc_field()


# ---------------------------------------------------------------------------
# Procedures and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Procedure:
    """A procedure ``fix{a;b}(f. x. m)``.

    Parameters
    ----------
    name:
        Procedure name ``f``.
    params:
        Parameter names.  The paper uses a single parameter; we allow a tuple
        of parameters for convenience (the parser packs/unpacks them).
    consumes:
        Name of the consumed channel ``a``, or ``None``.
    provides:
        Name of the provided channel ``b``, or ``None``.
    body:
        The command ``m``.
    """

    name: str
    params: Tuple[str, ...]
    consumes: Optional[str]
    provides: Optional[str]
    body: Command
    loc: Loc = _loc_field()


@dataclass(frozen=True)
class Program:
    """A probabilistic program: an ordered collection of procedures."""

    procedures: Tuple[Procedure, ...]

    def __post_init__(self) -> None:
        names = [p.name for p in self.procedures]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate procedure names: {dupes}")

    def procedure(self, name: str) -> Procedure:
        """Look up a procedure by name, raising ``KeyError`` if absent."""
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(name)

    def names(self) -> Tuple[str, ...]:
        """Return procedure names in declaration order."""
        return tuple(p.name for p in self.procedures)

    def merged_with(self, other: "Program") -> "Program":
        """Return a program containing this program's procedures plus ``other``'s.

        Useful for pairing a model program with a guide program so that joint
        type checking and joint execution see a single procedure table.
        """
        return Program(self.procedures + other.procedures)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def expr_children(expr: Expr) -> Tuple[Expr, ...]:
    """Return the immediate sub-expressions of ``expr``."""
    if isinstance(expr, (Var, Triv, BoolLit, RealLit, NatLit)):
        return ()
    if isinstance(expr, IfExpr):
        return (expr.cond, expr.then, expr.orelse)
    if isinstance(expr, PrimOp):
        return (expr.left, expr.right)
    if isinstance(expr, PrimUnOp):
        return (expr.operand,)
    if isinstance(expr, Lam):
        return (expr.body,)
    if isinstance(expr, App):
        return (expr.func, expr.arg)
    if isinstance(expr, Let):
        return (expr.bound, expr.body)
    if isinstance(expr, Tuple_):
        return expr.items
    if isinstance(expr, Proj):
        return (expr.tuple_expr,)
    if isinstance(expr, DistExpr):
        return expr.args
    raise TypeError(f"unknown expression node: {expr!r}")


def command_children(cmd: Command) -> Tuple[Command, ...]:
    """Return the immediate sub-commands of ``cmd``."""
    if isinstance(cmd, (Ret, SampleRecv, SampleSend, Call, Observe)):
        return ()
    if isinstance(cmd, Bnd):
        return (cmd.first, cmd.second)
    if isinstance(cmd, (CondRecv,)):
        return (cmd.then, cmd.orelse)
    if isinstance(cmd, (CondSend, CondPure)):
        return (cmd.then, cmd.orelse)
    raise TypeError(f"unknown command node: {cmd!r}")


def free_vars(expr: Expr) -> frozenset[str]:
    """Compute the free variables of a pure expression."""
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, Lam):
        return free_vars(expr.body) - {expr.param}
    if isinstance(expr, Let):
        return free_vars(expr.bound) | (free_vars(expr.body) - {expr.var})
    result: frozenset[str] = frozenset()
    for child in expr_children(expr):
        result |= free_vars(child)
    return result


def command_free_vars(cmd: Command) -> frozenset[str]:
    """Compute the free (expression) variables of a command."""
    if isinstance(cmd, Ret):
        return free_vars(cmd.expr)
    if isinstance(cmd, Bnd):
        return command_free_vars(cmd.first) | (command_free_vars(cmd.second) - {cmd.var})
    if isinstance(cmd, (SampleRecv, SampleSend)):
        return free_vars(cmd.dist)
    if isinstance(cmd, CondRecv):
        return command_free_vars(cmd.then) | command_free_vars(cmd.orelse)
    if isinstance(cmd, (CondSend, CondPure)):
        return (
            free_vars(cmd.cond)
            | command_free_vars(cmd.then)
            | command_free_vars(cmd.orelse)
        )
    if isinstance(cmd, Call):
        return free_vars(cmd.arg)
    if isinstance(cmd, Observe):
        return free_vars(cmd.dist) | free_vars(cmd.value)
    raise TypeError(f"unknown command node: {cmd!r}")


def channels_used(cmd: Command) -> frozenset[str]:
    """Return the set of channel names on which ``cmd`` communicates."""
    if isinstance(cmd, (SampleRecv, SampleSend, CondRecv, CondSend)):
        own = frozenset({cmd.channel})
    else:
        own = frozenset()
    for child in command_children(cmd):
        own |= channels_used(child)
    return own


def command_size(cmd: Command) -> int:
    """Number of command nodes in ``cmd`` (used for statistics/reporting)."""
    return 1 + sum(command_size(c) for c in command_children(cmd))


def count_sample_sites(cmd: Command) -> int:
    """Number of ``sample`` commands (send or receive) in ``cmd``."""
    own = 1 if isinstance(cmd, (SampleRecv, SampleSend)) else 0
    return own + sum(count_sample_sites(c) for c in command_children(cmd))


def calls_in(cmd: Command) -> frozenset[str]:
    """Return the names of procedures called (directly) inside ``cmd``."""
    own = frozenset({cmd.proc}) if isinstance(cmd, Call) else frozenset()
    for child in command_children(cmd):
        own |= calls_in(child)
    return own
