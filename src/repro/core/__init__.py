"""Core calculus of the coroutine-based PPL.

Subpackages
-----------
``repro.core.ast``
    Abstract syntax of expressions, commands, procedures, and programs
    (paper Fig. 7).
``repro.core.types``
    Basic types, distribution types, guide types, type operators, and
    procedure signatures (paper Sec. 3 and 4).
``repro.core.parser``
    Lexer and recursive-descent parser for the surface syntax.
``repro.core.typecheck``
    Basic (simply-typed) checking and guide-type inference.
``repro.core.semantics``
    Guidance traces, big-step weighted evaluation, and the probability-erased
    reduction relation.
``repro.core.coroutines``
    Channel/scheduler machinery for joint model–guide execution.
"""

from repro.core import ast, types  # noqa: F401
