"""Basic (simply-typed) type checking for the deterministic fragment.

This module implements the expression typing rules of paper Fig. 12 and a
*forward* result-type pass over commands.  Guide-type inference
(:mod:`repro.core.typecheck.guide_infer`) is layered on top: it needs to know
the payload type ``τ`` of each sample site (from ``e : dist(τ)``), the
Boolean-ness of branch predicates, and the result type of each sub-command so
the typing context can be extended through ``bnd``.

Numeric literals are typed at the most precise scalar type (``ℝ(0,1)`` for
values in the open unit interval, ``ℝ+`` for positive values, ``ℝ``
otherwise), and scalar subtyping (``ℝ(0,1) <: ℝ+ <: ℝ``, ``ℕn <: ℕ``) is
applied at distribution-parameter positions and joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core import ast
from repro.core import types as ty
from repro.errors import BasicTypeError

# A typing context Γ maps variable names to basic types.
Context = Mapping[str, ty.BaseType]


@dataclass(frozen=True)
class BasicSignature:
    """Parameter and result types for a procedure (basic-type level)."""

    param_types: Tuple[ty.BaseType, ...]
    result_type: Optional[ty.BaseType]  # None = not yet resolved (recursion)


# ---------------------------------------------------------------------------
# Distribution families: parameter types and support types
# ---------------------------------------------------------------------------

#: For each distribution family, the tuple of expected parameter types
#: (``None`` marks variadic families) and the exact support type.
DIST_PARAM_TYPES: Dict[ast.DistKind, Optional[Tuple[ty.BaseType, ...]]] = {
    ast.DistKind.BER: (ty.UREAL,),
    ast.DistKind.UNIF: (),
    ast.DistKind.BETA: (ty.PREAL, ty.PREAL),
    ast.DistKind.GAMMA: (ty.PREAL, ty.PREAL),
    ast.DistKind.NORMAL: (ty.REAL, ty.PREAL),
    ast.DistKind.CAT: None,  # n >= 1 positive weights
    ast.DistKind.GEO: (ty.UREAL,),
    ast.DistKind.POIS: (ty.PREAL,),
}


def dist_support_type(kind: ast.DistKind, n_args: int) -> ty.BaseType:
    """Support type of a distribution family (paper Sec. 3)."""
    if kind is ast.DistKind.BER:
        return ty.BOOL
    if kind in (ast.DistKind.UNIF, ast.DistKind.BETA):
        return ty.UREAL
    if kind is ast.DistKind.GAMMA:
        return ty.PREAL
    if kind is ast.DistKind.NORMAL:
        return ty.REAL
    if kind is ast.DistKind.CAT:
        return ty.FinNatTy(n_args)
    if kind in (ast.DistKind.GEO, ast.DistKind.POIS):
        return ty.NAT
    raise BasicTypeError(f"unknown distribution family {kind!r}")


# ---------------------------------------------------------------------------
# Expression typing
# ---------------------------------------------------------------------------


def _type_of_real_literal(value: float) -> ty.BaseType:
    if 0.0 < value < 1.0:
        return ty.UREAL
    if value > 0.0:
        return ty.PREAL
    return ty.REAL


def _require_subtype(actual: ty.BaseType, expected: ty.BaseType, what: str) -> None:
    if not ty.is_subtype(actual, expected):
        raise BasicTypeError(f"{what}: expected {expected}, got {actual}")


def _numeric_join(a: ty.BaseType, b: ty.BaseType, what: str) -> ty.BaseType:
    joined = ty.join(a, b)
    if joined is None:
        raise BasicTypeError(f"{what}: incompatible operand types {a} and {b}")
    return joined


def infer_expr_type(
    ctx: Context,
    expr: ast.Expr,
    signatures: Optional[Mapping[str, BasicSignature]] = None,
) -> ty.BaseType:
    """Infer the basic type of an expression under context ``ctx``.

    Raises :class:`BasicTypeError` when the expression is ill-typed.
    """
    if isinstance(expr, ast.Var):
        if expr.name not in ctx:
            raise BasicTypeError(f"unbound variable {expr.name!r}")
        return ctx[expr.name]

    if isinstance(expr, ast.Triv):
        return ty.UNIT
    if isinstance(expr, ast.BoolLit):
        return ty.BOOL
    if isinstance(expr, ast.RealLit):
        return _type_of_real_literal(expr.value)
    if isinstance(expr, ast.NatLit):
        return ty.NAT

    if isinstance(expr, ast.IfExpr):
        cond_ty = infer_expr_type(ctx, expr.cond, signatures)
        _require_subtype(cond_ty, ty.BOOL, "if-condition")
        then_ty = infer_expr_type(ctx, expr.then, signatures)
        else_ty = infer_expr_type(ctx, expr.orelse, signatures)
        joined = ty.join(then_ty, else_ty)
        if joined is None:
            raise BasicTypeError(
                f"if-expression branches have incompatible types {then_ty} and {else_ty}"
            )
        return joined

    if isinstance(expr, ast.PrimOp):
        return _infer_primop(ctx, expr, signatures)

    if isinstance(expr, ast.PrimUnOp):
        return _infer_primunop(ctx, expr, signatures)

    if isinstance(expr, ast.Lam):
        # Lambdas default the parameter to ℝ; they are rarely used in models.
        body_ty = infer_expr_type({**ctx, expr.param: ty.REAL}, expr.body, signatures)
        return ty.FunTy(ty.REAL, body_ty)

    if isinstance(expr, ast.App):
        fun_ty = infer_expr_type(ctx, expr.func, signatures)
        arg_ty = infer_expr_type(ctx, expr.arg, signatures)
        if not isinstance(fun_ty, ty.FunTy):
            raise BasicTypeError(f"applying a non-function of type {fun_ty}")
        _require_subtype(arg_ty, fun_ty.arg, "function argument")
        return fun_ty.result

    if isinstance(expr, ast.Let):
        bound_ty = infer_expr_type(ctx, expr.bound, signatures)
        return infer_expr_type({**ctx, expr.var: bound_ty}, expr.body, signatures)

    if isinstance(expr, ast.Tuple_):
        return ty.TupleTy(tuple(infer_expr_type(ctx, e, signatures) for e in expr.items))

    if isinstance(expr, ast.Proj):
        tup_ty = infer_expr_type(ctx, expr.tuple_expr, signatures)
        if not isinstance(tup_ty, ty.TupleTy):
            raise BasicTypeError(f"projecting from a non-tuple of type {tup_ty}")
        if not 0 <= expr.index < len(tup_ty.items):
            raise BasicTypeError(
                f"projection index {expr.index} out of range for {tup_ty}"
            )
        return tup_ty.items[expr.index]

    if isinstance(expr, ast.DistExpr):
        return _infer_dist_expr(ctx, expr, signatures)

    raise BasicTypeError(f"unknown expression node {expr!r}")


def _infer_primop(
    ctx: Context, expr: ast.PrimOp, signatures: Optional[Mapping[str, BasicSignature]]
) -> ty.BaseType:
    left = infer_expr_type(ctx, expr.left, signatures)
    right = infer_expr_type(ctx, expr.right, signatures)
    op = expr.op

    if op in (ast.BinOp.AND, ast.BinOp.OR):
        _require_subtype(left, ty.BOOL, f"left operand of {op.value}")
        _require_subtype(right, ty.BOOL, f"right operand of {op.value}")
        return ty.BOOL

    if op in (ast.BinOp.EQ, ast.BinOp.NE):
        if ty.join(left, right) is None and left != right:
            raise BasicTypeError(
                f"cannot compare values of incompatible types {left} and {right}"
            )
        return ty.BOOL

    if op in (ast.BinOp.LT, ast.BinOp.LE, ast.BinOp.GT, ast.BinOp.GE):
        numeric_like = lambda t: ty.is_numeric(t) or ty.is_integral(t)  # noqa: E731
        if not (numeric_like(left) and numeric_like(right)):
            raise BasicTypeError(
                f"comparison {op.value} requires numeric operands, got {left} and {right}"
            )
        return ty.BOOL

    # Arithmetic
    if ty.is_integral(left) and ty.is_integral(right):
        if op in (ast.BinOp.ADD, ast.BinOp.MUL):
            return ty.NAT
        if op is ast.BinOp.SUB:
            return ty.REAL  # subtraction can go negative
        if op is ast.BinOp.DIV:
            return ty.REAL
    if (ty.is_numeric(left) or ty.is_integral(left)) and (
        ty.is_numeric(right) or ty.is_integral(right)
    ):
        positive = lambda t: ty.is_subtype(t, ty.PREAL) or isinstance(t, (ty.NatTy, ty.FinNatTy))  # noqa: E731
        unit_interval = lambda t: ty.is_subtype(t, ty.UREAL)  # noqa: E731
        if op is ast.BinOp.ADD:
            return ty.PREAL if (ty.is_subtype(left, ty.PREAL) and ty.is_subtype(right, ty.PREAL)) else ty.REAL
        if op is ast.BinOp.MUL:
            if unit_interval(left) and unit_interval(right):
                return ty.UREAL
            if positive(left) and positive(right):
                return ty.PREAL
            return ty.REAL
        if op is ast.BinOp.DIV:
            if ty.is_subtype(left, ty.PREAL) and ty.is_subtype(right, ty.PREAL):
                return ty.PREAL
            return ty.REAL
        if op is ast.BinOp.SUB:
            return ty.REAL
    raise BasicTypeError(
        f"operator {op.value} cannot be applied to operands of types {left} and {right}"
    )


def _infer_primunop(
    ctx: Context, expr: ast.PrimUnOp, signatures: Optional[Mapping[str, BasicSignature]]
) -> ty.BaseType:
    operand = infer_expr_type(ctx, expr.operand, signatures)
    op = expr.op
    if op is ast.UnOp.NOT:
        _require_subtype(operand, ty.BOOL, "operand of !")
        return ty.BOOL
    if op is ast.UnOp.NEG:
        if not (ty.is_numeric(operand) or ty.is_integral(operand)):
            raise BasicTypeError(f"cannot negate a value of type {operand}")
        return ty.REAL
    if op is ast.UnOp.EXP:
        if not (ty.is_numeric(operand) or ty.is_integral(operand)):
            raise BasicTypeError(f"exp expects a numeric operand, got {operand}")
        return ty.PREAL
    if op is ast.UnOp.LOG:
        # The operand is only *statically* required to be numeric; evaluation
        # raises if it is not strictly positive at run time.  Requiring ℝ+
        # statically would reject natural idioms like log(x*x + y*y) where
        # the operand is positive but typed ℝ.
        if not (ty.is_numeric(operand) or ty.is_integral(operand)):
            raise BasicTypeError(f"log expects a numeric operand, got {operand}")
        return ty.REAL
    if op is ast.UnOp.SQRT:
        if not (ty.is_numeric(operand) or ty.is_integral(operand)):
            raise BasicTypeError(f"sqrt expects a numeric operand, got {operand}")
        return ty.PREAL
    raise BasicTypeError(f"unknown unary operator {op!r}")


def _infer_dist_expr(
    ctx: Context, expr: ast.DistExpr, signatures: Optional[Mapping[str, BasicSignature]]
) -> ty.BaseType:
    expected = DIST_PARAM_TYPES[expr.kind]
    if expected is None:
        # Categorical: n >= 1 positive weights.
        if len(expr.args) < 1:
            raise BasicTypeError("Cat expects at least one weight")
        for i, arg in enumerate(expr.args):
            arg_ty = infer_expr_type(ctx, arg, signatures)
            _require_subtype(arg_ty, ty.PREAL, f"Cat weight #{i}")
    else:
        if len(expr.args) != len(expected):
            raise BasicTypeError(
                f"{expr.kind.value} expects {len(expected)} parameter(s), got {len(expr.args)}"
            )
        for i, (arg, want) in enumerate(zip(expr.args, expected)):
            arg_ty = infer_expr_type(ctx, arg, signatures)
            _require_subtype(arg_ty, want, f"{expr.kind.value} parameter #{i}")
    return ty.DistTy(dist_support_type(expr.kind, len(expr.args)))


# ---------------------------------------------------------------------------
# Forward result-type pass over commands
# ---------------------------------------------------------------------------


def command_result_type(
    ctx: Context,
    cmd: ast.Command,
    signatures: Mapping[str, BasicSignature],
) -> Optional[ty.BaseType]:
    """Compute the result (value) type of a command under ``ctx``.

    Returns ``None`` when the result type cannot be resolved yet; this only
    happens for calls to procedures whose result type is still unresolved
    during the fixed-point iteration of :func:`check_program_basic`.
    """
    if isinstance(cmd, ast.Ret):
        return infer_expr_type(ctx, cmd.expr, signatures)

    if isinstance(cmd, ast.Bnd):
        first_ty = command_result_type(ctx, cmd.first, signatures)
        inner_ctx = dict(ctx)
        # An unresolved binder defaults to ℝ during the fixed point; the
        # final iteration re-checks with the resolved type.
        inner_ctx[cmd.var] = first_ty if first_ty is not None else ty.REAL
        return command_result_type(inner_ctx, cmd.second, signatures)

    if isinstance(cmd, (ast.SampleRecv, ast.SampleSend)):
        dist_ty = infer_expr_type(ctx, cmd.dist, signatures)
        if not isinstance(dist_ty, ty.DistTy):
            raise BasicTypeError(
                f"sample command expects a distribution, got {dist_ty}"
            )
        return dist_ty.support

    if isinstance(cmd, ast.Observe):
        dist_ty = infer_expr_type(ctx, cmd.dist, signatures)
        if not isinstance(dist_ty, ty.DistTy):
            raise BasicTypeError(f"observe expects a distribution, got {dist_ty}")
        value_ty = infer_expr_type(ctx, cmd.value, signatures)
        _require_subtype(value_ty, _observable_supertype(dist_ty.support), "observed value")
        return ty.UNIT

    if isinstance(cmd, ast.CondRecv):
        return _join_branches(ctx, cmd.then, cmd.orelse, signatures)

    if isinstance(cmd, (ast.CondSend, ast.CondPure)):
        cond_ty = infer_expr_type(ctx, cmd.cond, signatures)
        _require_subtype(cond_ty, ty.BOOL, "branch predicate")
        return _join_branches(ctx, cmd.then, cmd.orelse, signatures)

    if isinstance(cmd, ast.Call):
        if cmd.proc not in signatures:
            raise BasicTypeError(f"call to unknown procedure {cmd.proc!r}")
        sig = signatures[cmd.proc]
        _check_call_argument(ctx, cmd, sig, signatures)
        return sig.result_type

    raise BasicTypeError(f"unknown command node {cmd!r}")


def _observable_supertype(support: ty.BaseType) -> ty.BaseType:
    """Observed data may come from a wider numeric type than the exact support.

    An observation of a Gamma-distributed site is a positive real, but data
    files typically store it as a plain real; we accept the widest numeric
    supertype and let the density computation assign weight zero to values
    outside the support.
    """
    if ty.is_numeric(support):
        return ty.REAL
    if ty.is_integral(support):
        return ty.NAT
    return support


def _join_branches(
    ctx: Context,
    then: ast.Command,
    orelse: ast.Command,
    signatures: Mapping[str, BasicSignature],
) -> Optional[ty.BaseType]:
    then_ty = command_result_type(ctx, then, signatures)
    else_ty = command_result_type(ctx, orelse, signatures)
    if then_ty is None:
        return else_ty
    if else_ty is None:
        return then_ty
    joined = ty.join(then_ty, else_ty)
    if joined is None and then_ty != else_ty:
        raise BasicTypeError(
            f"conditional branches have incompatible result types {then_ty} and {else_ty}"
        )
    return joined if joined is not None else then_ty


def _check_call_argument(
    ctx: Context,
    call: ast.Call,
    sig: BasicSignature,
    signatures: Mapping[str, BasicSignature],
) -> None:
    """Check a call's argument expression against the callee's parameter types."""
    n_params = len(sig.param_types)
    if n_params == 0:
        return
    arg_ty = infer_expr_type(ctx, call.arg, signatures)
    if n_params == 1:
        _require_subtype(arg_ty, sig.param_types[0], f"argument of {call.proc}")
        return
    if not isinstance(arg_ty, ty.TupleTy) or len(arg_ty.items) != n_params:
        raise BasicTypeError(
            f"{call.proc} expects {n_params} arguments, got {arg_ty}"
        )
    for i, (actual, expected) in enumerate(zip(arg_ty.items, sig.param_types)):
        _require_subtype(actual, expected, f"argument #{i} of {call.proc}")


# ---------------------------------------------------------------------------
# Whole-program basic checking
# ---------------------------------------------------------------------------


def check_program_basic(
    program: ast.Program,
    param_types: Optional[Mapping[str, Tuple[ty.BaseType, ...]]] = None,
    max_iterations: int = 10,
) -> Dict[str, BasicSignature]:
    """Check the deterministic fragment of every procedure and infer result types.

    Result types of (mutually) recursive procedures are resolved by a small
    fixed-point iteration: unresolved call results contribute nothing to
    joins until they stabilise.

    Parameters
    ----------
    program:
        The program to check.
    param_types:
        Optional explicit parameter types per procedure; defaults to the
        annotations recorded by the parser (or ℝ).
    """
    from repro.core.parser.parser import param_types_of

    signatures: Dict[str, BasicSignature] = {}
    for proc in program.procedures:
        if param_types is not None and proc.name in param_types:
            ptypes = param_types[proc.name]
        else:
            ptypes = param_types_of(proc)
        if len(ptypes) != len(proc.params):
            raise BasicTypeError(
                f"{proc.name}: {len(proc.params)} parameters but {len(ptypes)} parameter types"
            )
        signatures[proc.name] = BasicSignature(ptypes, None)

    def proc_context(proc: ast.Procedure) -> Dict[str, ty.BaseType]:
        return dict(zip(proc.params, signatures[proc.name].param_types))

    for _ in range(max_iterations):
        changed = False
        for proc in program.procedures:
            result = command_result_type(proc_context(proc), proc.body, signatures)
            current = signatures[proc.name].result_type
            if result is not None and result != current:
                if current is not None:
                    joined = ty.join(current, result)
                    result = joined if joined is not None else result
                    if result == current:
                        continue
                signatures[proc.name] = BasicSignature(
                    signatures[proc.name].param_types, result
                )
                changed = True
        if not changed:
            break

    # Procedures whose result type never resolved (e.g. a procedure that only
    # ever tail-calls itself) default to unit.
    for name, sig in list(signatures.items()):
        if sig.result_type is None:
            signatures[name] = BasicSignature(sig.param_types, ty.UNIT)

    # Final full re-check with all result types resolved, so any latent type
    # error in a body surfaces.
    for proc in program.procedures:
        command_result_type(proc_context(proc), proc.body, signatures)

    return signatures
