"""Structural equality of guide types.

Guide types produced by backward inference are compared *structurally*;
type-operator applications are compared nominally (same operator name and
equal arguments).  The paper avoids a nontrivial equivalence check (no
sequencing type ``A # B``), so plain structural equality is exactly the
relation the typing rules need: the two branches of a conditional must
induce literally the same protocol on the non-subject channel, and a model
and guide must have literally the same guide type on the ``latent`` channel
(up to unfolding the operators they both reference).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import types as ty
from repro.errors import GuideTypeError


def guide_types_equal(a: ty.GuideType, b: ty.GuideType) -> bool:
    """Structural equality of two guide types."""
    return a == b


def first_difference(
    a: ty.GuideType, b: ty.GuideType, path: str = ""
) -> Optional[Tuple[str, ty.GuideType, ty.GuideType]]:
    """Locate the first structural difference between two guide types.

    Returns ``None`` when the types are equal, otherwise a triple of a
    human-readable path (e.g. ``".cont.then"``) and the differing subterms.
    Used to produce actionable error messages for model/guide mismatches.
    """
    if type(a) is not type(b):
        return (path or ".", a, b)
    if isinstance(a, ty.End):
        return None
    if isinstance(a, ty.TyVar):
        return None if a.name == b.name else (path or ".", a, b)  # type: ignore[union-attr]
    if isinstance(a, ty.OpApp) and isinstance(b, ty.OpApp):
        if a.operator != b.operator:
            return (path or ".", a, b)
        return first_difference(a.arg, b.arg, path + ".arg")
    if isinstance(a, ty.SendVal) and isinstance(b, ty.SendVal):
        if a.payload != b.payload:
            return (path + ".payload", a, b)
        return first_difference(a.cont, b.cont, path + ".cont")
    if isinstance(a, ty.RecvVal) and isinstance(b, ty.RecvVal):
        if a.payload != b.payload:
            return (path + ".payload", a, b)
        return first_difference(a.cont, b.cont, path + ".cont")
    if isinstance(a, (ty.Offer, ty.Choose)) and isinstance(b, (ty.Offer, ty.Choose)):
        diff = first_difference(a.then, b.then, path + ".then")  # type: ignore[union-attr]
        if diff is not None:
            return diff
        return first_difference(a.orelse, b.orelse, path + ".orelse")  # type: ignore[union-attr]
    return (path or ".", a, b)


def require_equal(a: ty.GuideType, b: ty.GuideType, context: str) -> None:
    """Raise :class:`GuideTypeError` with a located message unless ``a == b``."""
    if a == b:
        return
    diff = first_difference(a, b)
    assert diff is not None
    where, left, right = diff
    raise GuideTypeError(
        f"{context}: guidance protocols disagree at {where}: {left} vs {right}"
    )


def types_equal_up_to_unfolding(
    a: ty.GuideType,
    b: ty.GuideType,
    table_a: ty.TypeTable,
    table_b: ty.TypeTable,
    max_depth: int = 64,
) -> bool:
    """Equality of guide types drawn from two different type tables.

    A model program and a guide program are inferred independently, so their
    ``latent`` protocols mention different operator names (e.g. ``Model.latent``
    vs ``Guide.latent``).  This routine decides equality by co-inductively
    unfolding operator applications from each side's own table, memoising the
    pairs of operator instantiations it has already assumed equal.  The
    ``max_depth`` bound guards against pathological non-contractive
    definitions (which inference never produces).
    """
    assumed: set[Tuple[str, str]] = set()

    def go(x: ty.GuideType, y: ty.GuideType, depth: int) -> bool:
        if depth > max_depth:
            raise GuideTypeError(
                "guide-type equality exceeded the unfolding depth limit; "
                "the type operators appear to be non-contractive"
            )
        if isinstance(x, ty.OpApp) or isinstance(y, ty.OpApp):
            if isinstance(x, ty.OpApp) and isinstance(y, ty.OpApp):
                key = (x.operator, y.operator)
                if key in assumed:
                    # Coinductive hypothesis: the operators were already
                    # assumed equal; it remains to compare the arguments.
                    return go(x.arg, y.arg, depth + 1)
                assumed.add(key)
            x2 = table_a.unfold(x) if isinstance(x, ty.OpApp) else x
            y2 = table_b.unfold(y) if isinstance(y, ty.OpApp) else y
            return go(x2, y2, depth + 1)
        if type(x) is not type(y):
            return False
        if isinstance(x, ty.End):
            return True
        if isinstance(x, ty.TyVar):
            return x.name == y.name  # type: ignore[union-attr]
        if isinstance(x, (ty.SendVal, ty.RecvVal)):
            return x.payload == y.payload and go(x.cont, y.cont, depth + 1)  # type: ignore[union-attr]
        if isinstance(x, (ty.Offer, ty.Choose)):
            return go(x.then, y.then, depth + 1) and go(x.orelse, y.orelse, depth + 1)  # type: ignore[union-attr]
        raise GuideTypeError(f"unknown guide type node: {x!r}")

    return go(a, b, 0)
