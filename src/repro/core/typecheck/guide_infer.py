"""Guide-type inference (paper Fig. 9 turned into a backward algorithm).

The typing rules for commands are syntax-directed, so they can be read as a
function from a command, a typing context, and *continuation* guide types
(the protocols that remain on each channel after the command) to the guide
types that hold *before* the command.  Per the paper's Sec. 4
"Type-inference algorithm":

1. every procedure ``fix{a;b}(f. x. m)`` receives two fresh type operators
   ``T_a``, ``T_b`` and the signature ``τ1 ↝ τ2 | (a : T_a); (b : T_b)``;
2. for each procedure, fresh continuation variables ``X_a``, ``X_b`` are
   introduced and the body is typed backward from them, producing guide
   types ``A`` and ``B``;
3. the definitions ``typedef(T_a. X_a. A)`` and ``typedef(T_b. X_b. B)`` are
   recorded.

The entry points are :func:`infer_guide_types` for a single program and
:func:`check_model_guide_pair` for verifying that a model and a guide agree
on the ``latent`` channel (the absolute-continuity certificate of
Thm. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core import ast
from repro.core import types as ty
from repro.core.typecheck import basic
from repro.core.typecheck.equality import require_equal, types_equal_up_to_unfolding
from repro.errors import GuideTypeError


@dataclass
class InferenceResult:
    """Everything guide-type inference learns about a program.

    Attributes
    ----------
    table:
        Type-operator definitions and procedure signatures.
    basic_signatures:
        Parameter/result basic types per procedure.
    channel_types:
        For each procedure, the closed guide type of its consumed and
        provided channels when the procedure is run as an entry point (the
        continuation instantiated with ``End``).
    """

    table: ty.TypeTable
    basic_signatures: Dict[str, basic.BasicSignature]
    channel_types: Dict[str, Dict[str, ty.GuideType]]

    def entry_channel_type(self, proc: str, channel: str) -> ty.GuideType:
        """Guide type of ``channel`` when ``proc`` is executed as an entry point."""
        try:
            return self.channel_types[proc][channel]
        except KeyError as exc:
            raise GuideTypeError(
                f"procedure {proc!r} does not communicate on channel {channel!r}"
            ) from exc


# ---------------------------------------------------------------------------
# Per-command backward inference
# ---------------------------------------------------------------------------


class _Inferencer:
    """Backward guide-type inference over a single program."""

    def __init__(
        self,
        program: ast.Program,
        basic_signatures: Mapping[str, basic.BasicSignature],
    ):
        self.program = program
        self.basic_signatures = dict(basic_signatures)
        self.table = ty.TypeTable()
        # Pre-register a signature (with operator names) for every procedure
        # so that mutually recursive calls can be typed before their callee's
        # typedefs exist.
        for proc in program.procedures:
            consume_op = f"{proc.name}.{proc.consumes}" if proc.consumes else None
            provide_op = f"{proc.name}.{proc.provides}" if proc.provides else None
            sig = ty.ProcSignature(
                param_types=self.basic_signatures[proc.name].param_types,
                result_type=self.basic_signatures[proc.name].result_type or ty.UNIT,
                consume_channel=proc.consumes,
                consume_op=consume_op,
                provide_channel=proc.provides,
                provide_op=provide_op,
            )
            self.table.signatures[proc.name] = sig

    # -- helpers ---------------------------------------------------------------

    def _dist_payload(self, ctx: basic.Context, expr: ast.Expr) -> ty.BaseType:
        dist_ty = basic.infer_expr_type(ctx, expr, self.basic_signatures)
        if not isinstance(dist_ty, ty.DistTy):
            raise GuideTypeError(
                f"sample command expects an expression of type dist(τ), got {dist_ty}"
            )
        return dist_ty.support

    def _result_type(self, ctx: basic.Context, cmd: ast.Command) -> ty.BaseType:
        result = basic.command_result_type(ctx, cmd, self.basic_signatures)
        return result if result is not None else ty.UNIT

    # -- the backward pass ------------------------------------------------------

    def infer_command(
        self,
        ctx: Dict[str, ty.BaseType],
        cmd: ast.Command,
        proc: ast.Procedure,
        consume_after: Optional[ty.GuideType],
        provide_after: Optional[ty.GuideType],
    ) -> Tuple[ty.BaseType, Optional[ty.GuideType], Optional[ty.GuideType]]:
        """Return ``(result_type, consume_before, provide_before)``.

        ``consume_after`` / ``provide_after`` are the protocols that remain on
        the procedure's consumed / provided channel *after* ``cmd`` runs
        (``None`` when the procedure does not declare that channel).
        """
        if isinstance(cmd, ast.Ret):
            result = basic.infer_expr_type(ctx, cmd.expr, self.basic_signatures)
            return result, consume_after, provide_after

        if isinstance(cmd, ast.Bnd):
            first_ty = self._result_type(ctx, cmd.first)
            inner_ctx = dict(ctx)
            inner_ctx[cmd.var] = first_ty
            second_ty, consume_mid, provide_mid = self.infer_command(
                inner_ctx, cmd.second, proc, consume_after, provide_after
            )
            _, consume_before, provide_before = self.infer_command(
                ctx, cmd.first, proc, consume_mid, provide_mid
            )
            return second_ty, consume_before, provide_before

        if isinstance(cmd, ast.SampleRecv):
            payload = self._dist_payload(ctx, cmd.dist)
            if cmd.channel == proc.consumes:
                self._require_channel(consume_after, proc, cmd)
                return payload, ty.SendVal(payload, consume_after), provide_after
            if cmd.channel == proc.provides:
                self._require_channel(provide_after, proc, cmd)
                return payload, consume_after, ty.RecvVal(payload, provide_after)
            raise self._unknown_channel(proc, cmd)

        if isinstance(cmd, ast.SampleSend):
            payload = self._dist_payload(ctx, cmd.dist)
            if cmd.channel == proc.consumes:
                self._require_channel(consume_after, proc, cmd)
                return payload, ty.RecvVal(payload, consume_after), provide_after
            if cmd.channel == proc.provides:
                self._require_channel(provide_after, proc, cmd)
                return payload, consume_after, ty.SendVal(payload, provide_after)
            raise self._unknown_channel(proc, cmd)

        if isinstance(cmd, ast.CondSend):
            cond_ty = basic.infer_expr_type(ctx, cmd.cond, self.basic_signatures)
            if not ty.is_subtype(cond_ty, ty.BOOL):
                raise GuideTypeError(
                    f"branch predicate must be Boolean, got {cond_ty}"
                )
            return self._infer_branching(
                ctx, cmd, proc, consume_after, provide_after, direction="send"
            )

        if isinstance(cmd, ast.CondRecv):
            return self._infer_branching(
                ctx, cmd, proc, consume_after, provide_after, direction="recv"
            )

        if isinstance(cmd, ast.CondPure):
            cond_ty = basic.infer_expr_type(ctx, cmd.cond, self.basic_signatures)
            if not ty.is_subtype(cond_ty, ty.BOOL):
                raise GuideTypeError(
                    f"branch predicate must be Boolean, got {cond_ty}"
                )
            then_ty, c1, p1 = self.infer_command(ctx, cmd.then, proc, consume_after, provide_after)
            else_ty, c2, p2 = self.infer_command(ctx, cmd.orelse, proc, consume_after, provide_after)
            self._require_branch_agreement(c1, c2, "consumed", "uncommunicated conditional")
            self._require_branch_agreement(p1, p2, "provided", "uncommunicated conditional")
            _join_or_raise(then_ty, else_ty)
            return then_ty, c1, p1

        if isinstance(cmd, ast.Call):
            return self._infer_call(ctx, cmd, proc, consume_after, provide_after)

        if isinstance(cmd, ast.Observe):
            # Pure scoring: no channel communication.
            basic.command_result_type(ctx, cmd, self.basic_signatures)
            return ty.UNIT, consume_after, provide_after

        raise GuideTypeError(f"unknown command node {cmd!r}")

    def _infer_branching(
        self,
        ctx: Dict[str, ty.BaseType],
        cmd,
        proc: ast.Procedure,
        consume_after: Optional[ty.GuideType],
        provide_after: Optional[ty.GuideType],
        direction: str,
    ) -> Tuple[ty.BaseType, Optional[ty.GuideType], Optional[ty.GuideType]]:
        then_ty, c1, p1 = self.infer_command(ctx, cmd.then, proc, consume_after, provide_after)
        else_ty, c2, p2 = self.infer_command(ctx, cmd.orelse, proc, consume_after, provide_after)
        _join_or_raise(then_ty, else_ty)

        if cmd.channel == proc.consumes:
            self._require_channel(consume_after, proc, cmd)
            self._require_branch_agreement(p1, p2, "provided", "conditional on the consumed channel")
            assert c1 is not None and c2 is not None
            # The consumer of channel `a` sends the selection with `cond.send`
            # (type A1 & A2, paper's N) and receives it with `cond.recv`
            # (type A1 ⊕ A2).
            combined: ty.GuideType = (
                ty.Choose(c1, c2) if direction == "send" else ty.Offer(c1, c2)
            )
            return then_ty, combined, p1

        if cmd.channel == proc.provides:
            self._require_channel(provide_after, proc, cmd)
            self._require_branch_agreement(c1, c2, "consumed", "conditional on the provided channel")
            assert p1 is not None and p2 is not None
            # The provider of channel `b` sends the selection with `cond.send`
            # (type B1 ⊕ B2) and receives it with `cond.recv` (type B1 & B2).
            combined = ty.Offer(p1, p2) if direction == "send" else ty.Choose(p1, p2)
            return then_ty, c1, combined

        raise self._unknown_channel(proc, cmd)

    def _infer_call(
        self,
        ctx: Dict[str, ty.BaseType],
        cmd: ast.Call,
        proc: ast.Procedure,
        consume_after: Optional[ty.GuideType],
        provide_after: Optional[ty.GuideType],
    ) -> Tuple[ty.BaseType, Optional[ty.GuideType], Optional[ty.GuideType]]:
        if cmd.proc not in self.table.signatures:
            raise GuideTypeError(f"call to unknown procedure {cmd.proc!r}")
        sig = self.table.signatures[cmd.proc]
        basic._check_call_argument(  # noqa: SLF001 - shared helper
            ctx, cmd, self.basic_signatures[cmd.proc], self.basic_signatures
        )

        consume_before = consume_after
        provide_before = provide_after

        if sig.consume_channel is not None:
            if sig.consume_channel != proc.consumes:
                raise GuideTypeError(
                    f"{proc.name} calls {cmd.proc}, which consumes channel "
                    f"{sig.consume_channel!r}, but {proc.name} consumes "
                    f"{proc.consumes!r}"
                )
            self._require_channel(consume_after, proc, cmd)
            assert sig.consume_op is not None and consume_after is not None
            consume_before = ty.OpApp(sig.consume_op, consume_after)

        if sig.provide_channel is not None:
            if sig.provide_channel != proc.provides:
                raise GuideTypeError(
                    f"{proc.name} calls {cmd.proc}, which provides channel "
                    f"{sig.provide_channel!r}, but {proc.name} provides "
                    f"{proc.provides!r}"
                )
            self._require_channel(provide_after, proc, cmd)
            assert sig.provide_op is not None and provide_after is not None
            provide_before = ty.OpApp(sig.provide_op, provide_after)

        return sig.result_type, consume_before, provide_before

    # -- error helpers ------------------------------------------------------------

    @staticmethod
    def _require_channel(after: Optional[ty.GuideType], proc: ast.Procedure, cmd) -> None:
        if after is None:
            raise GuideTypeError(
                f"{proc.name}: command at {cmd.loc} communicates on channel "
                f"{getattr(cmd, 'channel', '?')!r}, which the procedure does not declare"
            )

    @staticmethod
    def _unknown_channel(proc: ast.Procedure, cmd) -> GuideTypeError:
        return GuideTypeError(
            f"{proc.name}: channel {cmd.channel!r} is neither consumed "
            f"({proc.consumes!r}) nor provided ({proc.provides!r})"
        )

    @staticmethod
    def _require_branch_agreement(
        left: Optional[ty.GuideType],
        right: Optional[ty.GuideType],
        which: str,
        context: str,
    ) -> None:
        if left is None and right is None:
            return
        if left is None or right is None:
            raise GuideTypeError(
                f"{context}: branches disagree on whether the {which} channel is used"
            )
        require_equal(left, right, f"{context}: {which} channel")

    # -- per-procedure driver -------------------------------------------------------

    def infer_procedure(self, proc: ast.Procedure) -> None:
        sig = self.table.signatures[proc.name]
        ctx = dict(zip(proc.params, sig.param_types))

        consume_var = ty.TyVar(f"X<{proc.name}.{proc.consumes}>") if proc.consumes else None
        provide_var = ty.TyVar(f"X<{proc.name}.{proc.provides}>") if proc.provides else None

        result_ty, consume_before, provide_before = self.infer_command(
            ctx, proc.body, proc, consume_var, provide_var
        )

        expected_result = self.basic_signatures[proc.name].result_type
        if expected_result is not None and not ty.is_subtype(result_ty, expected_result) \
                and ty.join(result_ty, expected_result) != expected_result:
            # Result types can legitimately widen during the basic fixed point;
            # only flag genuinely incompatible results.
            if ty.join(result_ty, expected_result) is None:
                raise GuideTypeError(
                    f"{proc.name}: body has result type {result_ty}, "
                    f"signature says {expected_result}"
                )

        if proc.consumes:
            assert consume_var is not None and consume_before is not None
            assert sig.consume_op is not None
            self.table.define(ty.TypeDef(sig.consume_op, consume_var.name, consume_before))
        if proc.provides:
            assert provide_var is not None and provide_before is not None
            assert sig.provide_op is not None
            self.table.define(ty.TypeDef(sig.provide_op, provide_var.name, provide_before))


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def infer_guide_types(
    program: ast.Program,
    param_types: Optional[Mapping[str, Tuple[ty.BaseType, ...]]] = None,
) -> InferenceResult:
    """Infer guide types for every procedure of ``program``.

    Returns an :class:`InferenceResult` whose table holds one typedef per
    declared channel per procedure and a signature per procedure.  The
    ``channel_types`` map additionally exposes, for every procedure, the
    *closed* guide type of each of its channels when the procedure is the
    entry point (continuation = ``End``), which is the form used for
    model/guide compatibility checking and trace validation.
    """
    basic_signatures = basic.check_program_basic(program, param_types)
    inferencer = _Inferencer(program, basic_signatures)
    for proc in program.procedures:
        inferencer.infer_procedure(proc)

    channel_types: Dict[str, Dict[str, ty.GuideType]] = {}
    for proc in program.procedures:
        sig = inferencer.table.signatures[proc.name]
        per_proc: Dict[str, ty.GuideType] = {}
        if proc.consumes:
            assert sig.consume_op is not None
            per_proc[proc.consumes] = inferencer.table.lookup(sig.consume_op).instantiate(ty.End())
        if proc.provides:
            assert sig.provide_op is not None
            per_proc[proc.provides] = inferencer.table.lookup(sig.provide_op).instantiate(ty.End())
        channel_types[proc.name] = per_proc

    return InferenceResult(
        table=inferencer.table,
        basic_signatures=basic_signatures,
        channel_types=channel_types,
    )


@dataclass(frozen=True)
class PairCheckResult:
    """Outcome of a model/guide compatibility check."""

    compatible: bool
    latent_type_model: ty.GuideType
    latent_type_guide: ty.GuideType
    reason: Optional[str] = None


def check_model_guide_pair(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    latent_channel: str = "latent",
    obs_channel: str = "obs",
) -> PairCheckResult:
    """Verify the absolute-continuity certificate for a model/guide pair.

    Checks (paper Thm. 5.2 side-conditions):

    1. the model consumes ``latent_channel`` and (optionally) provides
       ``obs_channel``; the guide provides ``latent_channel``;
    2. both programs infer guide types successfully;
    3. the model's consumed ``latent`` type is &-free and its provided
       ``obs`` type is ⊕-free (the model never *receives* branch selections);
    4. the model and guide agree on the ``latent`` protocol (equality up to
       unfolding their respective type operators).

    Returns a :class:`PairCheckResult`; raises :class:`GuideTypeError` only
    for structural errors (missing channels, inference failure), while a
    protocol mismatch is reported via ``compatible=False`` so callers can
    present the reason.
    """
    model_result = infer_guide_types(model_program)
    guide_result = infer_guide_types(guide_program)

    model_proc = model_program.procedure(model_entry)
    guide_proc = guide_program.procedure(guide_entry)

    if model_proc.consumes != latent_channel:
        raise GuideTypeError(
            f"model entry {model_entry!r} must consume channel {latent_channel!r}"
        )
    if guide_proc.provides != latent_channel:
        raise GuideTypeError(
            f"guide entry {guide_entry!r} must provide channel {latent_channel!r}"
        )

    model_latent = model_result.entry_channel_type(model_entry, latent_channel)
    guide_latent = guide_result.entry_channel_type(guide_entry, latent_channel)

    # Thm. 5.2 side-condition: the model never *receives* branch selections,
    # i.e. its consumed latent type is ⊕-free and its provided obs type is
    # &-free (a `cond.recv` on a consumed channel introduces ⊕; on a provided
    # channel it introduces &).
    if not ty.is_offer_free(model_latent, model_result.table):
        return PairCheckResult(
            False,
            model_latent,
            guide_latent,
            reason="the model receives branch selections on the latent channel "
            "(its latent guide type is not ⊕-free)",
        )
    if model_proc.provides == obs_channel:
        model_obs = model_result.entry_channel_type(model_entry, obs_channel)
        if not ty.is_choose_free(model_obs, model_result.table):
            return PairCheckResult(
                False,
                model_latent,
                guide_latent,
                reason="the model receives branch selections on the obs channel "
                "(its obs guide type is not &-free)",
            )

    if types_equal_up_to_unfolding(
        model_latent, guide_latent, model_result.table, guide_result.table
    ):
        return PairCheckResult(True, model_latent, guide_latent)

    return PairCheckResult(
        False,
        model_latent,
        guide_latent,
        reason=(
            "model and guide disagree on the latent protocol: "
            f"model expects {model_latent}, guide provides {guide_latent}"
        ),
    )


def _join_or_raise(a: ty.BaseType, b: ty.BaseType) -> ty.BaseType:
    joined = ty.join(a, b)
    if joined is None and a != b:
        raise GuideTypeError(
            f"conditional branches have incompatible result types {a} and {b}"
        )
    return joined if joined is not None else a
