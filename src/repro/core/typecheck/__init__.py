"""Type checking for the coroutine-based PPL.

``basic``
    Simply-typed checking/inference for the deterministic fragment and a
    forward result-type pass over commands (paper Fig. 12, expression rules).
``equality``
    Structural equality and agreement checks on guide types.
``guide_infer``
    Backward, syntax-directed guide-type inference (paper Fig. 9 + Sec. 4
    "Type-inference algorithm").
"""

#: Version of the typechecking pipeline (basic types + guide-type inference).
#: Bump on any change that can alter inference results or certificates:
#: caches keyed by program source (e.g. the ProgramSession cache, compiled
#: fused kernels) include this value so a compiler/typechecker change can
#: never replay stale cached artifacts.
TYPECHECKER_VERSION = "2021.guide-types.3"

from repro.core.typecheck.basic import (
    BasicSignature,
    check_program_basic,
    infer_expr_type,
    command_result_type,
)
from repro.core.typecheck.equality import guide_types_equal, require_equal
from repro.core.typecheck.guide_infer import (
    InferenceResult,
    check_model_guide_pair,
    infer_guide_types,
)

__all__ = [
    "TYPECHECKER_VERSION",
    "BasicSignature",
    "check_program_basic",
    "infer_expr_type",
    "command_result_type",
    "guide_types_equal",
    "require_equal",
    "InferenceResult",
    "infer_guide_types",
    "check_model_guide_pair",
]
