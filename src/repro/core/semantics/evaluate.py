"""Big-step weighted evaluation of commands over given guidance traces.

This module implements the judgment (paper Fig. 8/11)::

    V | (a : σa); (b : σb) ⊢ m ⇓w v

as a function from an environment, a command, and per-channel guidance
traces to a value and a *log* weight.  Weights are kept in log space to
avoid underflow on long traces; a weight of zero is represented by
``-inf``.

The evaluator is also the density function of a program (paper Sec. 5.1):
``P_m(σa, σb) = w`` when evaluation succeeds and ``0`` otherwise —
see :func:`log_density`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core import ast
from repro.core.semantics import traces as tr
from repro.core.semantics.values import Environment, eval_expr
from repro.dists.base import Distribution
from repro.errors import EvaluationError, TraceTypeMismatch
from repro.utils.recursion import deep_recursion


@dataclass(frozen=True)
class EvalResult:
    """Result of evaluating a command: the value and the log weight."""

    value: object
    log_weight: float

    @property
    def weight(self) -> float:
        """The weight on the linear scale (may underflow for long traces)."""
        return math.exp(self.log_weight) if self.log_weight > -math.inf else 0.0

    @property
    def possible(self) -> bool:
        """True when the trace combination has non-zero density."""
        return self.log_weight > -math.inf


class _Evaluator:
    """Recursive big-step evaluator with per-channel trace cursors."""

    def __init__(self, program: ast.Program, score: bool = True):
        self.program = program
        self.score = score
        self.log_weight = 0.0

    # -- scoring helpers ---------------------------------------------------------

    def _score_sample(self, dist: Distribution, value: object) -> None:
        if not dist.in_support(value):
            self.log_weight = -math.inf
            return
        if self.score:
            self.log_weight += dist.log_prob(value)

    def _score_branch(self, expected: bool, actual: bool) -> None:
        if expected != actual:
            self.log_weight = -math.inf

    # -- the evaluator ---------------------------------------------------------

    def eval_command(
        self,
        env: Dict[str, object],
        cmd: ast.Command,
        cursors: Mapping[str, tr.TraceCursor],
    ) -> object:
        """Evaluate ``cmd``; mutate ``self.log_weight``; return the value."""
        if isinstance(cmd, ast.Ret):
            return eval_expr(env, cmd.expr)

        if isinstance(cmd, ast.Bnd):
            first = self.eval_command(env, cmd.first, cursors)
            inner = dict(env)
            inner[cmd.var] = first
            return self.eval_command(inner, cmd.second, cursors)

        if isinstance(cmd, ast.SampleRecv):
            dist = self._eval_dist(env, cmd.dist)
            cursor = self._cursor(cursors, cmd.channel)
            message = cursor.take(tr.Message, f"sample.recv on {cmd.channel}")
            if not isinstance(message, (tr.ValP, tr.ValC)):
                raise TraceTypeMismatch(
                    f"sample.recv on {cmd.channel}: expected a sample message, found {message}"
                )
            self._score_sample(dist, message.value)
            return message.value

        if isinstance(cmd, ast.SampleSend):
            dist = self._eval_dist(env, cmd.dist)
            cursor = self._cursor(cursors, cmd.channel)
            message = cursor.take(tr.Message, f"sample.send on {cmd.channel}")
            if not isinstance(message, (tr.ValP, tr.ValC)):
                raise TraceTypeMismatch(
                    f"sample.send on {cmd.channel}: expected a sample message, found {message}"
                )
            self._score_sample(dist, message.value)
            return message.value

        if isinstance(cmd, ast.CondSend):
            predicate = eval_expr(env, cmd.cond)
            if not isinstance(predicate, bool):
                raise EvaluationError(
                    f"branch predicate evaluated to a non-Boolean {predicate!r}"
                )
            cursor = self._cursor(cursors, cmd.channel)
            message = cursor.take(tr.Message, f"cond.send on {cmd.channel}")
            if not isinstance(message, (tr.DirP, tr.DirC)):
                raise TraceTypeMismatch(
                    f"cond.send on {cmd.channel}: expected a branch selection, found {message}"
                )
            selection = message.value
            self._score_branch(expected=selection, actual=predicate)
            branch = cmd.then if selection else cmd.orelse
            return self.eval_command(env, branch, cursors)

        if isinstance(cmd, ast.CondRecv):
            cursor = self._cursor(cursors, cmd.channel)
            message = cursor.take(tr.Message, f"cond.recv on {cmd.channel}")
            if not isinstance(message, (tr.DirP, tr.DirC)):
                raise TraceTypeMismatch(
                    f"cond.recv on {cmd.channel}: expected a branch selection, found {message}"
                )
            branch = cmd.then if message.value else cmd.orelse
            return self.eval_command(env, branch, cursors)

        if isinstance(cmd, ast.CondPure):
            predicate = eval_expr(env, cmd.cond)
            if not isinstance(predicate, bool):
                raise EvaluationError(
                    f"branch predicate evaluated to a non-Boolean {predicate!r}"
                )
            branch = cmd.then if predicate else cmd.orelse
            return self.eval_command(env, branch, cursors)

        if isinstance(cmd, ast.Call):
            return self._eval_call(env, cmd, cursors)

        if isinstance(cmd, ast.Observe):
            dist = self._eval_dist(env, cmd.dist)
            value = eval_expr(env, cmd.value)
            self._score_sample(dist, value)
            return None

        raise EvaluationError(f"unknown command node {cmd!r}")

    def _eval_call(
        self,
        env: Dict[str, object],
        cmd: ast.Call,
        cursors: Mapping[str, tr.TraceCursor],
    ) -> object:
        try:
            callee = self.program.procedure(cmd.proc)
        except KeyError as exc:
            raise EvaluationError(f"call to unknown procedure {cmd.proc!r}") from exc

        argument = eval_expr(env, cmd.arg)
        call_env = _bind_arguments(callee, argument)

        for channel in (callee.consumes, callee.provides):
            if channel is not None:
                cursor = self._cursor(cursors, channel)
                cursor.take(tr.Fold, f"call {cmd.proc} on channel {channel}")

        return self.eval_command(call_env, callee.body, cursors)

    # -- small helpers -----------------------------------------------------------

    @staticmethod
    def _cursor(cursors: Mapping[str, tr.TraceCursor], channel: str) -> tr.TraceCursor:
        if channel not in cursors:
            raise EvaluationError(
                f"command communicates on channel {channel!r} but no trace was supplied for it"
            )
        return cursors[channel]

    @staticmethod
    def _eval_dist(env: Environment, expr: ast.Expr) -> Distribution:
        value = eval_expr(env, expr)
        if not isinstance(value, Distribution):
            raise EvaluationError(
                f"sample command expects a distribution, got {value!r}"
            )
        return value


def _bind_arguments(procedure: ast.Procedure, argument: object) -> Dict[str, object]:
    """Bind a call argument to a procedure's parameters.

    Multi-parameter procedures receive a tuple, mirroring how the parser
    packs call arguments.
    """
    params = procedure.params
    if len(params) == 0:
        return {}
    if len(params) == 1:
        return {params[0]: argument}
    if not isinstance(argument, tuple) or len(argument) != len(params):
        raise EvaluationError(
            f"{procedure.name} expects {len(params)} arguments, got {argument!r}"
        )
    return dict(zip(params, argument))


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def evaluate_command(
    program: ast.Program,
    command: ast.Command,
    env: Optional[Mapping[str, object]] = None,
    traces: Optional[Mapping[str, Sequence[tr.Message]]] = None,
    score: bool = True,
    require_exhausted: bool = True,
) -> EvalResult:
    """Evaluate a command against per-channel guidance traces.

    Parameters
    ----------
    program:
        Procedure table used to resolve calls.
    command:
        The command to evaluate.
    env:
        Initial environment (defaults to empty).
    traces:
        Mapping from channel name to guidance trace.
    score:
        When False, run the probability-erased reduction relation instead:
        the returned log weight is 0 when the combination is possible and
        ``-inf`` when a value falls outside a distribution's support or a
        branch selection contradicts its predicate.
    require_exhausted:
        When True (the default), every supplied trace must be consumed
        exactly, matching the paper's judgment; a leftover suffix raises
        :class:`TraceTypeMismatch`.
    """
    evaluator = _Evaluator(program, score=score)
    cursors = {name: tr.TraceCursor(trace) for name, trace in (traces or {}).items()}
    with deep_recursion():
        value = evaluator.eval_command(dict(env or {}), command, cursors)
    if require_exhausted:
        for name, cursor in cursors.items():
            if not cursor.exhausted():
                raise TraceTypeMismatch(
                    f"trace on channel {name!r} has unconsumed messages: "
                    f"{tr.format_trace(cursor.remaining())}"
                )
    return EvalResult(value=value, log_weight=evaluator.log_weight)


def evaluate_procedure(
    program: ast.Program,
    entry: str,
    args: Sequence[object] = (),
    traces: Optional[Mapping[str, Sequence[tr.Message]]] = None,
    score: bool = True,
) -> EvalResult:
    """Evaluate an entry procedure's *body* against guidance traces.

    Note: following the paper's Sec. 5 usage, the entry procedure itself is
    evaluated as a command body — its traces do **not** begin with a ``fold``
    marker; only nested calls do.
    """
    procedure = program.procedure(entry)
    if len(args) != len(procedure.params):
        raise EvaluationError(
            f"{entry} expects {len(procedure.params)} arguments, got {len(args)}"
        )
    env = dict(zip(procedure.params, args))
    return evaluate_command(program, procedure.body, env=env, traces=traces, score=score)


def log_density(
    program: ast.Program,
    entry: str,
    traces: Mapping[str, Sequence[tr.Message]],
    args: Sequence[object] = (),
) -> float:
    """The log density ``log P_m(σa, σb)`` of an entry procedure.

    Returns ``-inf`` when evaluation gets stuck (the traces do not have the
    shape the program expects) or assigns zero weight, matching the paper's
    definition ``P_m(σa, σb) = 0`` for non-derivable judgments.
    """
    try:
        result = evaluate_procedure(program, entry, args=args, traces=traces, score=True)
    except (TraceTypeMismatch, EvaluationError):
        return -math.inf
    return result.log_weight
