"""Trace-based operational semantics of the core calculus.

``traces``
    Guidance messages, guidance traces, trace cursors, and the trace
    well-formedness judgment ``σ : A`` (paper Fig. 13).
``values``
    Runtime values (closures) and the pure-expression evaluator
    (paper Fig. 11, expression rules).
``evaluate``
    Big-step weighted evaluation ``V | (a:σa);(b:σb) ⊢ m ⇓w v``
    (paper Fig. 8/11) and density functions P_m.
``reduction``
    The probability-erased reduction relation (paper Fig. 14) and the
    "possible trace" predicate used by Lemma 5.1.
"""

from repro.core.semantics.traces import (
    DirC,
    DirP,
    Fold,
    Message,
    Trace,
    TraceCursor,
    ValC,
    ValP,
    check_trace,
    trace_conforms,
)
from repro.core.semantics.values import Closure, eval_expr
from repro.core.semantics.evaluate import (
    EvalResult,
    evaluate_command,
    evaluate_procedure,
    log_density,
)
from repro.core.semantics.reduction import is_possible_combination, reduce_procedure

__all__ = [
    "Message",
    "ValP",
    "ValC",
    "DirP",
    "DirC",
    "Fold",
    "Trace",
    "TraceCursor",
    "trace_conforms",
    "check_trace",
    "Closure",
    "eval_expr",
    "EvalResult",
    "evaluate_command",
    "evaluate_procedure",
    "log_density",
    "reduce_procedure",
    "is_possible_combination",
]
