"""Runtime values and the pure-expression evaluator (paper Fig. 11).

Runtime values are plain Python values:

* unit        — ``None``
* Booleans    — ``bool``
* reals       — ``float``
* naturals    — ``int``
* tuples      — Python tuples
* closures    — :class:`Closure`
* distributions — :class:`repro.dists.Distribution` objects

The evaluator is strict and environment-based; it raises
:class:`repro.errors.EvaluationError` on unbound variables or ill-typed
primitive applications (which the basic type checker normally rules out).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core import ast
from repro.dists import make_distribution
from repro.errors import EvaluationError

Environment = Mapping[str, object]


@dataclass(frozen=True)
class Closure:
    """A function closure ``clo(V, λ(x.e))``."""

    env: "tuple"
    param: str
    body: ast.Expr

    @staticmethod
    def make(env: Environment, param: str, body: ast.Expr) -> "Closure":
        return Closure(tuple(sorted(env.items(), key=lambda kv: kv[0])), param, body)

    def environment(self) -> Dict[str, object]:
        return dict(self.env)


def _as_number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"{what}: expected a number, got {value!r}")
    return float(value)


def _as_bool(value: object, what: str) -> bool:
    if not isinstance(value, bool):
        raise EvaluationError(f"{what}: expected a Boolean, got {value!r}")
    return value


_ARITH = {
    ast.BinOp.ADD: lambda a, b: a + b,
    ast.BinOp.SUB: lambda a, b: a - b,
    ast.BinOp.MUL: lambda a, b: a * b,
    ast.BinOp.DIV: lambda a, b: a / b,
}

_CMP = {
    ast.BinOp.LT: lambda a, b: a < b,
    ast.BinOp.LE: lambda a, b: a <= b,
    ast.BinOp.GT: lambda a, b: a > b,
    ast.BinOp.GE: lambda a, b: a >= b,
}


def eval_expr(env: Environment, expr: ast.Expr) -> object:
    """Evaluate a pure expression under an environment."""
    if isinstance(expr, ast.Var):
        if expr.name not in env:
            raise EvaluationError(f"unbound variable {expr.name!r}")
        return env[expr.name]

    if isinstance(expr, ast.Triv):
        return None
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.RealLit):
        return float(expr.value)
    if isinstance(expr, ast.NatLit):
        return int(expr.value)

    if isinstance(expr, ast.IfExpr):
        cond = _as_bool(eval_expr(env, expr.cond), "if-condition")
        return eval_expr(env, expr.then if cond else expr.orelse)

    if isinstance(expr, ast.PrimOp):
        return _eval_primop(env, expr)

    if isinstance(expr, ast.PrimUnOp):
        return _eval_primunop(env, expr)

    if isinstance(expr, ast.Lam):
        return Closure.make(env, expr.param, expr.body)

    if isinstance(expr, ast.App):
        func = eval_expr(env, expr.func)
        arg = eval_expr(env, expr.arg)
        if not isinstance(func, Closure):
            raise EvaluationError(f"applying a non-function value {func!r}")
        call_env = func.environment()
        call_env[func.param] = arg
        return eval_expr(call_env, func.body)

    if isinstance(expr, ast.Let):
        bound = eval_expr(env, expr.bound)
        inner = dict(env)
        inner[expr.var] = bound
        return eval_expr(inner, expr.body)

    if isinstance(expr, ast.Tuple_):
        return tuple(eval_expr(env, item) for item in expr.items)

    if isinstance(expr, ast.Proj):
        value = eval_expr(env, expr.tuple_expr)
        if not isinstance(value, tuple) or not 0 <= expr.index < len(value):
            raise EvaluationError(
                f"invalid projection .{expr.index} from {value!r}"
            )
        return value[expr.index]

    if isinstance(expr, ast.DistExpr):
        args = [eval_expr(env, a) for a in expr.args]
        numeric_args = [_as_number(a, f"{expr.kind.value} parameter") for a in args]
        return make_distribution(expr.kind, numeric_args)

    raise EvaluationError(f"unknown expression node {expr!r}")


def _eval_primop(env: Environment, expr: ast.PrimOp) -> object:
    op = expr.op
    if op is ast.BinOp.AND:
        left = _as_bool(eval_expr(env, expr.left), "left operand of &&")
        if not left:
            return False
        return _as_bool(eval_expr(env, expr.right), "right operand of &&")
    if op is ast.BinOp.OR:
        left = _as_bool(eval_expr(env, expr.left), "left operand of ||")
        if left:
            return True
        return _as_bool(eval_expr(env, expr.right), "right operand of ||")

    left = eval_expr(env, expr.left)
    right = eval_expr(env, expr.right)

    if op in (ast.BinOp.EQ, ast.BinOp.NE):
        equal = left == right
        return equal if op is ast.BinOp.EQ else not equal

    if op in _CMP:
        return _CMP[op](_as_number(left, "comparison operand"), _as_number(right, "comparison operand"))

    if op in _ARITH:
        a = _as_number(left, f"operand of {op.value}")
        b = _as_number(right, f"operand of {op.value}")
        if op is ast.BinOp.DIV and b == 0.0:
            raise EvaluationError("division by zero")
        result = _ARITH[op](a, b)
        # Preserve integer-ness for nat arithmetic where possible.
        if isinstance(left, int) and isinstance(right, int) and not isinstance(left, bool) \
                and not isinstance(right, bool) and op in (ast.BinOp.ADD, ast.BinOp.SUB, ast.BinOp.MUL):
            return int(result)
        return result

    raise EvaluationError(f"unknown binary operator {op!r}")


def _eval_primunop(env: Environment, expr: ast.PrimUnOp) -> object:
    op = expr.op
    operand = eval_expr(env, expr.operand)
    if op is ast.UnOp.NOT:
        return not _as_bool(operand, "operand of !")
    number = _as_number(operand, f"operand of {op.value}")
    if op is ast.UnOp.NEG:
        return -number if not isinstance(operand, int) else -operand
    if op is ast.UnOp.EXP:
        return math.exp(number)
    if op is ast.UnOp.LOG:
        if number <= 0.0:
            raise EvaluationError(f"log of a non-positive number {number}")
        return math.log(number)
    if op is ast.UnOp.SQRT:
        if number < 0.0:
            raise EvaluationError(f"sqrt of a negative number {number}")
        return math.sqrt(number)
    raise EvaluationError(f"unknown unary operator {op!r}")
