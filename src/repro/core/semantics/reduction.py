"""The probability-erased reduction relation (paper Fig. 14).

Reduction is evaluation without probabilities: it only checks that every
sample value lies in the support of its distribution and that every branch
selection equals its predicate.  The agreement theorem (Thm. B.8) states
that, for well-typed commands, reduction succeeds exactly when evaluation
yields a strictly positive weight; the property-based tests in
``tests/test_semantics_agreement.py`` exercise this correspondence.

The "possible combination" predicate of Lemma 5.1 — a latent/observation
trace pair is possible for a model and a guide iff both programs reduce
under it — is provided by :func:`is_possible_combination`.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from repro.core import ast
from repro.core.semantics import traces as tr
from repro.core.semantics.evaluate import EvalResult, evaluate_procedure
from repro.errors import EvaluationError, TraceTypeMismatch


def reduce_procedure(
    program: ast.Program,
    entry: str,
    args: Sequence[object] = (),
    traces: Optional[Mapping[str, Sequence[tr.Message]]] = None,
) -> Optional[object]:
    """Run the reduction relation on an entry procedure.

    Returns the reduced value when the judgment
    ``V | (a:σa);(b:σb) ⊢red m ⇓ v`` is derivable, and ``None`` otherwise.
    """
    try:
        result: EvalResult = evaluate_procedure(
            program, entry, args=args, traces=traces, score=False
        )
    except (TraceTypeMismatch, EvaluationError):
        return None
    if result.log_weight <= -math.inf:
        return None
    return result.value if result.value is not None else ()


def reduces(
    program: ast.Program,
    entry: str,
    args: Sequence[object] = (),
    traces: Optional[Mapping[str, Sequence[tr.Message]]] = None,
) -> bool:
    """Boolean form of :func:`reduce_procedure`."""
    return reduce_procedure(program, entry, args=args, traces=traces) is not None


def is_possible_combination(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    latent_trace: Sequence[tr.Message],
    obs_trace: Sequence[tr.Message],
    latent_channel: str = "latent",
    obs_channel: str = "obs",
    model_args: Sequence[object] = (),
    guide_args: Sequence[object] = (),
) -> bool:
    """Is ``(latent_trace, obs_trace)`` possible for the model/guide pair?

    Mirrors the paper's definition: the model must reduce under
    ``(latent : σℓ); (obs : σo)`` and the guide must reduce under
    ``(latent : σℓ)``.
    """
    model_traces = {latent_channel: latent_trace, obs_channel: obs_trace}
    model_proc = model_program.procedure(model_entry)
    if model_proc.provides != obs_channel:
        model_traces = {latent_channel: latent_trace}
    if not reduces(model_program, model_entry, args=model_args, traces=model_traces):
        return False
    return reduces(
        guide_program,
        guide_entry,
        args=guide_args,
        traces={latent_channel: latent_trace},
    )
