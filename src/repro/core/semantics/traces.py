"""Guidance messages, guidance traces, and trace well-formedness (σ : A).

A guidance trace is a finite sequence of messages exchanged on one channel:

* ``ValP(v)`` — a sample value sent from the channel's *provider* to its
  consumer;
* ``ValC(v)`` — a sample value sent from the consumer to the provider;
* ``DirP(b)`` — a branch selection sent by the provider;
* ``DirC(b)`` — a branch selection sent by the consumer;
* ``Fold``    — a procedure-call marker (the introduction form for traces of
  operator-instantiation type, paper footnote 1).

The judgment ``σ : A`` (paper Fig. 13) is implemented by
:func:`trace_conforms` / :func:`check_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import types as ty
from repro.errors import TraceExhausted, TraceTypeMismatch


@dataclass(frozen=True)
class Message:
    """Base class of guidance messages."""


@dataclass(frozen=True)
class ValP(Message):
    """A sample value from the provider to the consumer."""

    value: object

    def __str__(self) -> str:
        return f"valP({_fmt(self.value)})"


@dataclass(frozen=True)
class ValC(Message):
    """A sample value from the consumer to the provider."""

    value: object

    def __str__(self) -> str:
        return f"valC({_fmt(self.value)})"


@dataclass(frozen=True)
class DirP(Message):
    """A branch selection from the provider to the consumer."""

    value: bool

    def __str__(self) -> str:
        return f"dirP({self.value})"


@dataclass(frozen=True)
class DirC(Message):
    """A branch selection from the consumer to the provider."""

    value: bool

    def __str__(self) -> str:
        return f"dirC({self.value})"


@dataclass(frozen=True)
class Fold(Message):
    """A procedure-call marker."""

    def __str__(self) -> str:
        return "fold"


#: A guidance trace is an immutable sequence of messages.
Trace = Tuple[Message, ...]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value)


def format_trace(trace: Sequence[Message]) -> str:
    """Render a trace as ``[m1; m2; ...]`` for error messages and logs."""
    return "[" + "; ".join(str(m) for m in trace) + "]"


def sample_values(trace: Sequence[Message]) -> List[object]:
    """Extract the sample payloads (``ValP``/``ValC`` values) of a trace, in order.

    Branch selections and fold markers are skipped.  This is the "latent
    variables" view of a latent-channel trace used by inference summaries.
    """
    return [m.value for m in trace if isinstance(m, (ValP, ValC))]


def branch_selections(trace: Sequence[Message]) -> List[bool]:
    """Extract the branch selections of a trace, in order."""
    return [m.value for m in trace if isinstance(m, (DirP, DirC))]


class TraceCursor:
    """A read cursor over a guidance trace.

    The big-step evaluator consumes messages through a cursor; at the end it
    checks that the cursor is exhausted, which recovers the paper's exact
    trace-splitting formulation of the ``bnd`` rule.
    """

    def __init__(self, trace: Sequence[Message]):
        self._trace: Tuple[Message, ...] = tuple(trace)
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def trace(self) -> Trace:
        return self._trace

    def exhausted(self) -> bool:
        return self._pos >= len(self._trace)

    def remaining(self) -> Trace:
        return self._trace[self._pos:]

    def peek(self) -> Optional[Message]:
        if self.exhausted():
            return None
        return self._trace[self._pos]

    def take(self, expected: type, what: str) -> Message:
        """Consume the next message, requiring it to be of class ``expected``."""
        message = self.peek()
        if message is None:
            raise TraceExhausted(
                f"{what}: expected a {expected.__name__} message but the trace is exhausted"
            )
        if not isinstance(message, expected):
            raise TraceTypeMismatch(
                f"{what}: expected a {expected.__name__} message but found {message}"
            )
        self._pos += 1
        return message

    def snapshot(self) -> int:
        """Return a position token that :meth:`restore` can rewind to."""
        return self._pos

    def restore(self, snapshot: int) -> None:
        self._pos = snapshot


# ---------------------------------------------------------------------------
# Trace construction helpers
# ---------------------------------------------------------------------------


def trace_of(*messages: Message) -> Trace:
    """Build a trace from messages (thin readability wrapper)."""
    return tuple(messages)


def provider_samples(*values: object) -> Trace:
    """A trace consisting only of provider-sent sample values."""
    return tuple(ValP(v) for v in values)


def concat(*traces: Iterable[Message]) -> Trace:
    """Concatenate traces."""
    result: List[Message] = []
    for trace in traces:
        result.extend(trace)
    return tuple(result)


# ---------------------------------------------------------------------------
# Trace well-formedness: σ : A
# ---------------------------------------------------------------------------


def _conforms(
    cursor: TraceCursor,
    guide_type: ty.GuideType,
    table: Optional[ty.TypeTable],
    depth: int,
    max_depth: int,
) -> None:
    if depth > max_depth:
        raise TraceTypeMismatch(
            "trace/type checking exceeded the unfolding depth limit "
            f"({max_depth}); the trace is longer than any finite unfolding"
        )

    if isinstance(guide_type, ty.End):
        return

    if isinstance(guide_type, ty.TyVar):
        raise TraceTypeMismatch(
            f"cannot check a trace against the open guide type {guide_type}"
        )

    if isinstance(guide_type, ty.SendVal):
        message = cursor.take(ValP, f"protocol {guide_type}")
        if not ty.value_has_type(message.value, guide_type.payload):
            raise TraceTypeMismatch(
                f"sample value {message.value!r} is not of type {guide_type.payload}"
            )
        _conforms(cursor, guide_type.cont, table, depth + 1, max_depth)
        return

    if isinstance(guide_type, ty.RecvVal):
        message = cursor.take(ValC, f"protocol {guide_type}")
        if not ty.value_has_type(message.value, guide_type.payload):
            raise TraceTypeMismatch(
                f"sample value {message.value!r} is not of type {guide_type.payload}"
            )
        _conforms(cursor, guide_type.cont, table, depth + 1, max_depth)
        return

    if isinstance(guide_type, ty.Offer):
        message = cursor.take(DirP, f"protocol {guide_type}")
        branch = guide_type.then if message.value else guide_type.orelse
        _conforms(cursor, branch, table, depth + 1, max_depth)
        return

    if isinstance(guide_type, ty.Choose):
        message = cursor.take(DirC, f"protocol {guide_type}")
        branch = guide_type.then if message.value else guide_type.orelse
        _conforms(cursor, branch, table, depth + 1, max_depth)
        return

    if isinstance(guide_type, ty.OpApp):
        if table is None:
            raise TraceTypeMismatch(
                f"cannot unfold type operator {guide_type.operator!r} without a type table"
            )
        cursor.take(Fold, f"protocol {guide_type}")
        unfolded = table.lookup(guide_type.operator).instantiate(guide_type.arg)
        _conforms(cursor, unfolded, table, depth + 1, max_depth)
        return

    raise TraceTypeMismatch(f"unknown guide type node {guide_type!r}")


def check_trace(
    trace: Sequence[Message],
    guide_type: ty.GuideType,
    table: Optional[ty.TypeTable] = None,
    max_depth: int = 10_000,
) -> None:
    """Check ``trace : guide_type``; raise :class:`TraceTypeMismatch` on failure.

    ``table`` supplies typedef definitions for unfolding operator
    applications; it may be omitted for operator-free types.
    """
    from repro.utils.recursion import deep_recursion

    cursor = TraceCursor(trace)
    with deep_recursion():
        _conforms(cursor, guide_type, table, 0, max_depth)
    if not cursor.exhausted():
        raise TraceTypeMismatch(
            f"trace has {len(cursor.remaining())} unexpected trailing message(s): "
            f"{format_trace(cursor.remaining())}"
        )


def trace_conforms(
    trace: Sequence[Message],
    guide_type: ty.GuideType,
    table: Optional[ty.TypeTable] = None,
    max_depth: int = 10_000,
) -> bool:
    """Boolean version of :func:`check_trace`."""
    try:
        check_trace(trace, guide_type, table, max_depth)
    except TraceTypeMismatch:
        return False
    return True
