"""The array-namespace seam: every numeric hot path imports ``np`` from here.

``repro.xp`` is the single point where the project binds to an array
library.  Today the active namespace is NumPy; the seam exists so a
drop-in accelerated namespace (CuPy, JAX's ``jax.numpy``, or a
Numba-jitted shim) can be swapped in at one import site instead of a
tree-wide rewrite.  The modules routed through the seam are the numeric
hot paths: ``dists/`` (base/continuous/discrete), the compiled kernels'
``compiler/batched_runtime.py``, and the engine loops
(``engine/vectorize.py``, ``engine/smc.py``, ``engine/svi.py``).
Generated fused/mega kernels also import their ``np`` from here, which is
why the kernel caches key on :func:`active_namespace` — a kernel compiled
against one namespace must never be served to another.

Two contracts:

* **No installs.**  The seam only ever *detects* accelerators that are
  already importable; it never adds a dependency.  On a plain NumPy
  environment every helper degrades to the identity.
* **Bitwise stability.**  The conformance suite pins interp/compiled/mega
  parity bit-for-bit under the NumPy namespace.  An accelerated namespace
  is opted into explicitly (``REPRO_XP_JIT=1``) and is *outside* that
  bitwise contract until proven; that is why :func:`jit` defaults to the
  identity even when Numba happens to be importable.
"""

from __future__ import annotations

import importlib.util
import os

import numpy as np

__all__ = ["np", "active_namespace", "jit", "jit_backend", "numba_available"]

#: Name of the active array namespace.  There is exactly one today; the
#: kernel-cache keys carry it so a future second namespace can never be
#: served a stale kernel (see ``engine/backend.py``).
_ACTIVE = "numpy"


def active_namespace() -> str:
    """The name of the array namespace every seam import resolves to."""
    return _ACTIVE


def numba_available() -> bool:
    """True when a Numba installation is importable (never installed by us)."""
    return importlib.util.find_spec("numba") is not None


def jit_backend() -> str:
    """Which JIT decorates :func:`jit`-wrapped helpers: ``"numba"`` or ``"none"``.

    Numba is used only when it is both importable *and* explicitly opted
    into via ``REPRO_XP_JIT=1`` — accelerated codegen is outside the
    bitwise-parity contract until a conformance run proves it.
    """
    if os.environ.get("REPRO_XP_JIT", "") == "1" and numba_available():
        return "numba"
    return "none"


def jit(fn=None, **options):
    """Decorate a pure numeric kernel with the active JIT, or the identity.

    Usage mirrors ``numba.njit``: bare (``@jit``) or with options
    (``@jit(cache=True)``).  Under the default NumPy namespace this is the
    identity decorator, so decorated helpers stay bit-identical to the
    interpreter and carry zero import-time cost.
    """

    def wrap(func):
        if jit_backend() == "numba":  # pragma: no cover - env-gated accelerator
            import numba

            return numba.njit(**options)(func)
        return func

    if fn is not None:
        return wrap(fn)
    return wrap
