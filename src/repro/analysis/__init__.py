"""Support and absolute-continuity analyses built on guide types."""

from repro.analysis.support import (
    AbsoluteContinuityReport,
    absolute_continuity_certificate,
    empirical_support_check,
    enumerate_trace_shapes,
)

__all__ = [
    "AbsoluteContinuityReport",
    "absolute_continuity_certificate",
    "empirical_support_check",
    "enumerate_trace_shapes",
]
