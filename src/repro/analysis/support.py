"""Support analysis and absolute-continuity checking.

Two complementary views are provided:

* the **static certificate** (:func:`absolute_continuity_certificate`):
  guide-type inference plus the model/guide protocol-equality check of
  Thm. 5.2 — this is the paper's contribution and the tool a user runs
  before trusting an inference result;
* an **empirical check** (:func:`empirical_support_check`): sample traces
  from the guide (jointly with the model, so branch selections are
  exchanged) and verify that the model assigns them non-zero density, and
  symmetrically sample from the model's prior and verify the guide covers
  them.  The empirical check cannot prove soundness, but it is how an
  *unsound* pair typically reveals itself at run time; the benchmark
  ``benchmarks/test_soundness_ablation.py`` uses it to contrast the sound
  and unsound guides of the paper's Sec. 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


from repro.core import ast
from repro.core import types as ty
from repro.core.coroutines import run_model_guide, run_prior
from repro.core.semantics import traces as tr
from repro.core.semantics.evaluate import log_density
from repro.core.typecheck.guide_infer import PairCheckResult, check_model_guide_pair
from repro.errors import ChannelProtocolError, EvaluationError, TraceTypeMismatch
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class AbsoluteContinuityReport:
    """The static certificate plus human-readable protocol descriptions."""

    compatible: bool
    model_latent_type: ty.GuideType
    guide_latent_type: ty.GuideType
    reason: Optional[str]

    @property
    def certified(self) -> bool:
        return self.compatible


def absolute_continuity_certificate(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    latent_channel: str = "latent",
    obs_channel: str = "obs",
) -> AbsoluteContinuityReport:
    """Run the static absolute-continuity check of Thm. 5.2."""
    result: PairCheckResult = check_model_guide_pair(
        model_program,
        guide_program,
        model_entry,
        guide_entry,
        latent_channel=latent_channel,
        obs_channel=obs_channel,
    )
    return AbsoluteContinuityReport(
        compatible=result.compatible,
        model_latent_type=result.latent_type_model,
        guide_latent_type=result.latent_type_guide,
        reason=result.reason,
    )


@dataclass
class EmpiricalSupportResult:
    """Outcome of the sampling-based support check."""

    num_guide_draws: int
    num_guide_draws_rejected_by_model: int
    num_prior_draws: int
    num_prior_draws_rejected_by_guide: int
    protocol_errors: int

    @property
    def guide_covered_by_model(self) -> bool:
        return self.num_guide_draws_rejected_by_model == 0 and self.protocol_errors == 0

    @property
    def model_covered_by_guide(self) -> bool:
        return self.num_prior_draws_rejected_by_guide == 0 and self.protocol_errors == 0

    @property
    def looks_absolutely_continuous(self) -> bool:
        return self.guide_covered_by_model and self.model_covered_by_guide


def empirical_support_check(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    obs_trace: Optional[Sequence[tr.Message]] = None,
    num_draws: int = 50,
    rng=None,
    model_args: Tuple[object, ...] = (),
    guide_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
) -> EmpiricalSupportResult:
    """Sample-based two-sided support comparison of a model/guide pair."""
    rng = ensure_rng(rng)
    protocol_errors = 0

    guide_rejected = 0
    guide_draws = 0
    for _ in range(num_draws):
        try:
            joint = run_model_guide(
                model_program,
                guide_program,
                model_entry,
                guide_entry,
                obs_trace=obs_trace,
                rng=rng,
                model_args=model_args,
                guide_args=guide_args,
                latent_channel=latent_channel,
                obs_channel=obs_channel,
            )
        except (ChannelProtocolError, TraceTypeMismatch, EvaluationError):
            protocol_errors += 1
            continue
        guide_draws += 1
        if joint.log_weights["model"] == -math.inf:
            guide_rejected += 1

    prior_rejected = 0
    prior_draws = 0
    for _ in range(num_draws):
        try:
            prior = run_prior(
                model_program, model_entry, rng=rng, model_args=model_args,
                latent_channel=latent_channel, obs_channel=obs_channel,
            )
            latent = prior.traces[latent_channel]
            guide_ld = log_density(
                guide_program, guide_entry, {latent_channel: latent}, args=guide_args
            )
        except (ChannelProtocolError, TraceTypeMismatch, EvaluationError):
            protocol_errors += 1
            continue
        prior_draws += 1
        if guide_ld == -math.inf:
            prior_rejected += 1

    return EmpiricalSupportResult(
        num_guide_draws=guide_draws,
        num_guide_draws_rejected_by_model=guide_rejected,
        num_prior_draws=prior_draws,
        num_prior_draws_rejected_by_guide=prior_rejected,
        protocol_errors=protocol_errors,
    )


def enumerate_trace_shapes(
    guide_type: ty.GuideType,
    table: Optional[ty.TypeTable] = None,
    max_depth: int = 6,
    max_shapes: int = 64,
) -> List[Tuple[str, ...]]:
    """Enumerate the *shapes* of traces permitted by a guide type.

    A shape is a tuple of strings like ``("valP:preal", "dirC:T", "valP:ureal")``
    describing the message kinds and payload types along one resolution of
    all branch selections.  Recursive operators are unfolded up to
    ``max_depth``; unfinished unfoldings are marked with ``"..."``.  The
    function is used by documentation examples and by tests that compare a
    type's shape set with the support equation (1)/(2) of the paper.
    """
    shapes: List[Tuple[str, ...]] = []

    def go(t: ty.GuideType, prefix: Tuple[str, ...], depth: int) -> None:
        if len(shapes) >= max_shapes:
            return
        if depth > max_depth:
            shapes.append(prefix + ("...",))
            return
        if isinstance(t, ty.End):
            shapes.append(prefix)
            return
        if isinstance(t, ty.TyVar):
            shapes.append(prefix + (f"var:{t.name}",))
            return
        if isinstance(t, ty.SendVal):
            go(t.cont, prefix + (f"valP:{t.payload}",), depth)
            return
        if isinstance(t, ty.RecvVal):
            go(t.cont, prefix + (f"valC:{t.payload}",), depth)
            return
        if isinstance(t, ty.Offer):
            go(t.then, prefix + ("dirP:T",), depth)
            go(t.orelse, prefix + ("dirP:F",), depth)
            return
        if isinstance(t, ty.Choose):
            go(t.then, prefix + ("dirC:T",), depth)
            go(t.orelse, prefix + ("dirC:F",), depth)
            return
        if isinstance(t, ty.OpApp):
            if table is None:
                shapes.append(prefix + (f"op:{t.operator}",))
                return
            unfolded = table.lookup(t.operator).instantiate(t.arg)
            go(unfolded, prefix + ("fold",), depth + 1)
            return
        raise TypeError(f"unknown guide type node {t!r}")

    go(guide_type, (), 0)
    return shapes
