"""Trace data structures for the mini-Pyro substrate.

A :class:`Trace` is an ordered mapping from site names to :class:`TraceSite`
records.  It is the object produced by the ``trace`` handler and consumed by
``replay`` and by the inference engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.dists.base import Distribution


@dataclass
class TraceSite:
    """One recorded sample site."""

    name: str
    dist: Distribution
    value: object
    is_observed: bool = False
    log_prob: Optional[float] = None

    def compute_log_prob(self) -> float:
        """Log density of the recorded value under the recorded distribution."""
        if self.log_prob is None:
            self.log_prob = self.dist.log_prob(self.value)
        return self.log_prob


@dataclass
class Trace:
    """An ordered collection of sample sites recorded during one execution."""

    sites: Dict[str, TraceSite] = field(default_factory=dict)

    def add_site(self, site: TraceSite) -> None:
        if site.name in self.sites:
            raise ValueError(f"duplicate sample site name {site.name!r}")
        self.sites[site.name] = site

    def __contains__(self, name: str) -> bool:
        return name in self.sites

    def __getitem__(self, name: str) -> TraceSite:
        return self.sites[name]

    def __iter__(self) -> Iterator[TraceSite]:
        return iter(self.sites.values())

    def __len__(self) -> int:
        return len(self.sites)

    def names(self) -> list[str]:
        return list(self.sites.keys())

    def log_prob_sum(self, observed_only: bool = False, latent_only: bool = False) -> float:
        """Sum of site log probabilities, optionally restricted by observedness."""
        total = 0.0
        for site in self:
            if observed_only and not site.is_observed:
                continue
            if latent_only and site.is_observed:
                continue
            lp = site.compute_log_prob()
            if lp == -math.inf:
                return -math.inf
            total += lp
        return total

    def copy(self) -> "Trace":
        """Shallow copy (sites are shared; used by MH to build neighbour states)."""
        clone = Trace()
        clone.sites = dict(self.sites)
        return clone

    def latent_values(self) -> Dict[str, object]:
        """Mapping of non-observed site names to their values."""
        return {s.name: s.value for s in self if not s.is_observed}
