"""mini-Pyro effect handlers (messengers).

Handlers are context managers that push themselves onto the global handler
stack.  Each ``sample``/``param`` statement inside the ``with`` block is
routed through every active handler.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.minipyro import primitives
from repro.minipyro.trace_struct import Trace, TraceSite
from repro.utils.rng import ensure_rng


class Messenger(primitives.MessengerBase):
    """Base handler: pushes/pops itself on the global stack."""

    def __enter__(self):
        primitives.HANDLER_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        popped = primitives.HANDLER_STACK.pop()
        assert popped is self, "handler stack corrupted"
        return False

    # ``__call__`` lets a handler wrap a model function, Pyro-style:
    # ``traced = trace()(model)`` — calling ``traced(*args)`` runs the model
    # inside the handler and returns its result.
    def __call__(self, fn: Callable) -> Callable:
        def wrapped(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        return wrapped


class trace(Messenger):
    """Record every sample site into a :class:`Trace`.

    Use :meth:`get_trace` to run a function under the handler and return the
    recorded trace (the Pyro idiom ``trace(model).get_trace(*args)``).
    """

    def __init__(self, fn: Optional[Callable] = None):
        self.fn = fn
        self.trace = Trace()

    def postprocess_message(self, msg: dict) -> None:
        if msg["type"] != "sample":
            return
        self.trace.add_site(
            TraceSite(
                name=msg["name"],
                dist=msg["fn"],
                value=msg["value"],
                is_observed=msg["is_observed"],
            )
        )

    def get_trace(self, *args, **kwargs) -> Trace:
        if self.fn is None:
            raise ValueError("trace(...) needs a function to run; pass it to the constructor")
        self.trace = Trace()
        with self:
            self.fn(*args, **kwargs)
        return self.trace


class replay(Messenger):
    """Force sample sites to take the values recorded in a previous trace."""

    def __init__(self, guide_trace: Trace):
        self.guide_trace = guide_trace

    def process_message(self, msg: dict) -> None:
        if msg["type"] != "sample":
            return
        name = msg["name"]
        if name in self.guide_trace and not msg["is_observed"]:
            msg["value"] = self.guide_trace[name].value


class condition(Messenger):
    """Condition named sites on observed data (name → value)."""

    def __init__(self, data: Dict[str, object]):
        self.data = dict(data)

    def process_message(self, msg: dict) -> None:
        if msg["type"] != "sample":
            return
        name = msg["name"]
        if name in self.data:
            msg["value"] = self.data[name]
            msg["is_observed"] = True


class block(Messenger):
    """Hide selected sites from outer handlers.

    ``hide_fn`` receives the message and returns True for sites that outer
    handlers should not see.  Defaults to hiding everything.
    """

    def __init__(self, hide_fn: Optional[Callable[[dict], bool]] = None):
        self.hide_fn = hide_fn if hide_fn is not None else (lambda msg: True)

    def process_message(self, msg: dict) -> None:
        if self.hide_fn(msg):
            msg["stop"] = True


class seed(Messenger):
    """Run the enclosed computation with a dedicated RNG (reproducibility)."""

    def __init__(self, rng_seed) -> None:
        self.rng: np.random.Generator = ensure_rng(rng_seed)

    def process_message(self, msg: dict) -> None:
        if msg["type"] == "sample" and msg.get("rng") is None:
            msg["rng"] = self.rng
