"""Stochastic variational inference for the mini-Pyro substrate.

The ELBO is estimated by the usual trace pairing (sample the guide, replay
the model against the guide's trace) and maximised over the global parameter
store with central finite-difference gradients.  Finite differences keep the
substrate dependency-free (no autograd); the guides used by the paper's
benchmarks have small parameter vectors, for which this is perfectly
adequate and — importantly for Table 2 — costs the same whether the code was
compiled from the coroutine PPL or handwritten.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import InferenceError
from repro.minipyro import handlers, primitives
from repro.minipyro.infer.optim import Optimizer, SGD
from repro.utils.rng import ensure_rng


def elbo_estimate(
    model: Callable,
    guide: Callable,
    *args,
    num_particles: int = 1,
    rng=None,
    **kwargs,
) -> float:
    """Monte-Carlo ELBO estimate with the current parameter-store values."""
    rng = ensure_rng(rng)
    terms: List[float] = []
    for _ in range(num_particles):
        with handlers.seed(rng):
            guide_trace = handlers.trace(guide).get_trace(*args, **kwargs)
            replayed = handlers.replay(guide_trace)(model)
            model_trace = handlers.trace(replayed).get_trace(*args, **kwargs)
        model_lp = model_trace.log_prob_sum()
        guide_lp = guide_trace.log_prob_sum()
        if model_lp == -math.inf:
            return -math.inf
        terms.append(model_lp - guide_lp)
    return float(np.mean(terms))


class SVI:
    """``SVI(model, guide, optim).step(*args)`` performs one ELBO ascent step."""

    def __init__(
        self,
        model: Callable,
        guide: Callable,
        optim: Optional[Optimizer] = None,
        num_particles: int = 2,
        fd_epsilon: float = 1e-3,
    ):
        self.model = model
        self.guide = guide
        self.optim = optim if optim is not None else SGD(lr=0.05)
        self.num_particles = num_particles
        self.fd_epsilon = fd_epsilon

    def _discover_params(self, args, kwargs, rng) -> List[str]:
        """Run the guide once so lazily initialised params enter the store."""
        with handlers.seed(rng):
            handlers.trace(self.guide).get_trace(*args, **kwargs)
        return sorted(primitives.get_param_store().keys())

    def step(self, *args, rng=None, **kwargs) -> float:
        """One optimisation step; returns the ELBO estimate before the update."""
        rng = ensure_rng(rng)
        store = primitives.get_param_store()
        param_names = self._discover_params(args, kwargs, rng)
        if not param_names:
            raise InferenceError(
                "the guide declares no parameters (no repro.minipyro.param calls)"
            )

        seed = int(rng.integers(0, 2**31 - 1))

        def elbo_with(values: Dict[str, float]) -> float:
            saved = dict(store)
            store.update(values)
            try:
                return elbo_estimate(
                    self.model,
                    self.guide,
                    *args,
                    num_particles=self.num_particles,
                    rng=np.random.default_rng(seed),
                    **kwargs,
                )
            finally:
                store.clear()
                store.update(saved)

        current = {name: store[name] for name in param_names}
        base = elbo_with(current)

        grads: Dict[str, float] = {}
        for name in param_names:
            plus = dict(current)
            minus = dict(current)
            plus[name] = current[name] + self.fd_epsilon
            minus[name] = current[name] - self.fd_epsilon
            up = elbo_with(plus)
            down = elbo_with(minus)
            if math.isfinite(up) and math.isfinite(down):
                grads[name] = (up - down) / (2.0 * self.fd_epsilon)
            else:
                grads[name] = 0.0

        self.optim.update(store, grads)
        return base
