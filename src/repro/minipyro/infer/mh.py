"""Single-site Metropolis–Hastings for the mini-Pyro substrate.

Each step picks one latent site uniformly at random, re-proposes it from the
distribution recorded at that site (a "prior proposal"), re-executes the
model with all other sites replayed, and accepts with the standard MH
ratio.  Sites that appear or disappear because of control flow are handled
by the re-execution: the proposal density of vanished/new sites cancels
against the corresponding prior factor, as in lightweight-MH
implementations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.errors import InferenceError
from repro.minipyro import handlers
from repro.minipyro.trace_struct import Trace
from repro.utils.rng import ensure_rng


@dataclass
class MHResults:
    """A chain of traces produced by :class:`MH`."""

    traces: List[Trace]
    accepted: List[bool]

    @property
    def num_samples(self) -> int:
        return len(self.traces)

    @property
    def acceptance_rate(self) -> float:
        if not self.accepted:
            return 0.0
        return sum(self.accepted) / len(self.accepted)

    def site_values(self, site: str) -> List[float]:
        return [
            float(t[site].value)
            for t in self.traces
            if site in t and isinstance(t[site].value, (int, float))
        ]

    def posterior_mean(self, site: str, burn_in: int = 0) -> float:
        values = [
            float(t[site].value)
            for t in self.traces[burn_in:]
            if site in t and isinstance(t[site].value, (int, float))
        ]
        if not values:
            raise InferenceError(f"no chain state contains scalar site {site!r}")
        return float(np.mean(values))


class MH:
    """Lightweight single-site Metropolis–Hastings.

    ``model`` is a callable using :func:`repro.minipyro.sample`; observations
    must be passed as ``obs=`` inside the model or supplied through a
    ``condition`` handler wrapped around it by the caller.
    """

    def __init__(self, model: Callable, num_samples: int = 100, burn_in: int = 0):
        if num_samples <= 0:
            raise InferenceError("num_samples must be positive")
        self.model = model
        self.num_samples = num_samples
        self.burn_in = burn_in

    def _initial_trace(self, args, kwargs, rng) -> Trace:
        for _ in range(100):
            with handlers.seed(rng):
                candidate = handlers.trace(self.model).get_trace(*args, **kwargs)
            if candidate.log_prob_sum() > -math.inf:
                return candidate
        raise InferenceError("could not find an initial trace with non-zero density")

    def run(self, *args, rng=None, **kwargs) -> MHResults:
        rng = ensure_rng(rng)
        current = self._initial_trace(args, kwargs, rng)
        current_lp = current.log_prob_sum()

        kept: List[Trace] = []
        accepted: List[bool] = []

        total = self.burn_in + self.num_samples
        for iteration in range(total):
            latent_sites = [s.name for s in current if not s.is_observed]
            if not latent_sites:
                kept.append(current)
                accepted.append(False)
                continue
            site_name = latent_sites[int(rng.integers(0, len(latent_sites)))]
            site = current[site_name]

            # Propose a fresh value for the chosen site from its own distribution.
            proposed_value = site.dist.sample(rng)
            replay_values: Dict[str, object] = {
                s.name: s.value for s in current if not s.is_observed
            }
            replay_values[site_name] = proposed_value

            replay_trace = Trace()
            for s in current:
                if not s.is_observed:
                    replay_trace.add_site(
                        type(s)(name=s.name, dist=s.dist, value=replay_values[s.name])
                    )

            with handlers.seed(rng):
                replayed_model = handlers.replay(replay_trace)(self.model)
                proposal = handlers.trace(replayed_model).get_trace(*args, **kwargs)
            proposal_lp = proposal.log_prob_sum()

            # Prior-proposal MH: the proposal density at the chosen site equals
            # the prior factor, so the acceptance ratio reduces to the ratio of
            # the remaining joint factors; computing it with the full joints and
            # the two site factors keeps the formula explicit.
            log_q_fwd = site.dist.log_prob(proposed_value)
            log_q_bwd = (
                proposal[site_name].dist.log_prob(site.value)
                if site_name in proposal
                else -math.inf
            )
            log_alpha = (proposal_lp + log_q_bwd) - (current_lp + log_q_fwd)

            accept = (
                proposal_lp > -math.inf
                and log_q_bwd > -math.inf
                and math.log(rng.random()) < min(0.0, log_alpha)
            )
            if accept:
                current = proposal
                current_lp = proposal_lp

            if iteration >= self.burn_in:
                kept.append(current)
                accepted.append(bool(accept))

        return MHResults(traces=kept, accepted=accepted)
