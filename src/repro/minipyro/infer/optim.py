"""Parameter-store optimisers shared by mini-Pyro SVI and the vectorized engine.

The updates are written against a ``name -> value`` dict where values are
floats or NumPy arrays (all arithmetic is elementwise), so the same
implementations serve both the compiled mini-Pyro runtime's global parameter
store and the unconstrained-value dict of
:class:`repro.engine.params.ParamStore`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class Optimizer:
    """Base class: updates the parameter store in place from a gradient dict.

    Both dicts map parameter names to scalars or same-shaped arrays; the
    direction is *ascent* (gradients of an objective being maximised, e.g.
    the ELBO).
    """

    def update(self, params: Dict[str, float], grads: Dict[str, float]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient ascent with optional step decay."""

    def __init__(self, lr: float = 0.01, decay: float = 0.0):
        self.lr = float(lr)
        self.decay = float(decay)
        self._step = 0

    def update(self, params: Dict[str, float], grads: Dict[str, float]) -> None:
        self._step += 1
        lr = self.lr / (1.0 + self.decay * self._step)
        for name, grad in grads.items():
            params[name] = params[name] + lr * grad


class Adam(Optimizer):
    """Adam (ascent direction) over the scalar parameter store."""

    def __init__(self, lr: float = 0.05, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[str, float] = {}
        self._v: Dict[str, float] = {}
        self._step = 0

    def update(self, params: Dict[str, float], grads: Dict[str, float]) -> None:
        self._step += 1
        for name, grad in grads.items():
            m = self._m.get(name, 0.0)
            v = self._v.get(name, 0.0)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[name] = m
            self._v[name] = v
            m_hat = m / (1.0 - self.beta1**self._step)
            v_hat = v / (1.0 - self.beta2**self._step)
            params[name] = params[name] + self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
