"""Inference engines for the mini-Pyro substrate.

``Importance``
    Self-normalised importance sampling with a guide as the proposal.
``MH``
    Single-site Metropolis–Hastings with prior proposals.
``SVI``
    Stochastic variational inference with finite-difference ELBO gradients
    over the global parameter store.
``optim``
    Parameter-store optimisers (SGD, Adam).
"""

from repro.minipyro.infer.importance import Importance, ImportanceResults
from repro.minipyro.infer.mh import MH, MHResults
from repro.minipyro.infer.svi import SVI, elbo_estimate
from repro.minipyro.infer.optim import SGD, Adam

__all__ = [
    "Importance",
    "ImportanceResults",
    "MH",
    "MHResults",
    "SVI",
    "elbo_estimate",
    "SGD",
    "Adam",
]
