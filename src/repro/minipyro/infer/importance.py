"""Importance sampling for the mini-Pyro substrate.

The guide proposes a trace; the model is replayed against it (so latent
sites take the guide's values) and conditioned on any observations baked
into the model; the particle weight is the difference of the two traces'
log joint densities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.errors import InferenceError
from repro.minipyro import handlers
from repro.minipyro.trace_struct import Trace
from repro.utils.numerics import (
    effective_sample_size,
    log_mean_exp,
    normalize_log_weights,
)
from repro.utils.rng import ensure_rng


@dataclass
class ImportanceResults:
    """Weighted traces produced by :class:`Importance`."""

    guide_traces: List[Trace]
    model_traces: List[Trace]
    log_weights: List[float]

    @property
    def num_samples(self) -> int:
        return len(self.log_weights)

    def log_evidence(self) -> float:
        return log_mean_exp(self.log_weights)

    def effective_sample_size(self) -> float:
        return effective_sample_size(self.log_weights)

    def posterior_mean(self, site: str) -> float:
        """Posterior mean of a scalar latent site (skipping traces without it)."""
        values: List[float] = []
        weights: List[float] = []
        for trace_, lw in zip(self.model_traces, self.log_weights):
            if site in trace_ and isinstance(trace_[site].value, (int, float)):
                values.append(float(trace_[site].value))
                weights.append(lw)
        if not values:
            raise InferenceError(f"no trace contains scalar site {site!r}")
        normalized = normalize_log_weights(weights)
        return float(np.dot(np.asarray(values), normalized))


class Importance:
    """Importance sampling: ``Importance(model, guide, num_samples).run(*args)``.

    ``model`` and ``guide`` are plain Python callables using
    :func:`repro.minipyro.sample`; they receive the same positional
    arguments from :meth:`run`.
    """

    def __init__(self, model: Callable, guide: Callable, num_samples: int = 100):
        if num_samples <= 0:
            raise InferenceError("num_samples must be positive")
        self.model = model
        self.guide = guide
        self.num_samples = num_samples

    def run(self, *args, rng=None, **kwargs) -> ImportanceResults:
        rng = ensure_rng(rng)
        guide_traces: List[Trace] = []
        model_traces: List[Trace] = []
        log_weights: List[float] = []

        for _ in range(self.num_samples):
            with handlers.seed(rng):
                guide_trace = handlers.trace(self.guide).get_trace(*args, **kwargs)
                replayed_model = handlers.replay(guide_trace)(self.model)
                model_trace = handlers.trace(replayed_model).get_trace(*args, **kwargs)

            guide_lp = guide_trace.log_prob_sum()
            model_lp = model_trace.log_prob_sum()
            if guide_lp == -math.inf:
                log_weight = -math.inf
            else:
                log_weight = model_lp - guide_lp

            guide_traces.append(guide_trace)
            model_traces.append(model_trace)
            log_weights.append(log_weight)

        return ImportanceResults(
            guide_traces=guide_traces,
            model_traces=model_traces,
            log_weights=log_weights,
        )
