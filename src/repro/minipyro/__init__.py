"""minipyro — a small trace-based probabilistic-programming substrate.

The paper compiles its coroutine-based PPL to Pyro.  Pyro itself (and its
PyTorch dependency) is unavailable offline, so this package provides the
portion of Pyro's programming model that the compiled code and the
handwritten baselines need:

* ``sample(name, dist, obs=None)`` and ``param(name, init)`` primitives;
* an effect-handler (messenger) stack with ``trace``, ``replay``,
  ``condition``, ``block``, and ``seed`` handlers;
* inference engines: importance sampling, Metropolis–Hastings, and SVI.

The design follows the published "mini-Pyro" reference implementation:
handlers are context managers pushed onto a global stack; each ``sample``
statement builds a message that every handler can inspect or modify.
"""

from repro.minipyro.handlers import (
    Messenger,
    block,
    condition,
    replay,
    seed,
    trace,
)
from repro.minipyro.primitives import (
    clear_param_store,
    get_param_store,
    get_rng,
    param,
    sample,
    set_rng,
)
from repro.minipyro.trace_struct import Trace, TraceSite

__all__ = [
    "Messenger",
    "trace",
    "replay",
    "condition",
    "block",
    "seed",
    "sample",
    "param",
    "get_param_store",
    "clear_param_store",
    "get_rng",
    "set_rng",
    "Trace",
    "TraceSite",
]
