"""mini-Pyro primitives: the handler stack, ``sample``, and ``param``.

The global handler stack holds the currently active messengers (innermost
last).  A ``sample`` statement builds a message dictionary, lets every
messenger process it from innermost to outermost, fills in a default value
if none of them supplied one, and then lets every messenger post-process it
from outermost to innermost — the same protocol as Pyro's poutine library.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.dists.base import Distribution
from repro.utils.rng import ensure_rng

#: The global messenger stack (innermost handler last).
HANDLER_STACK: List["MessengerBase"] = []

#: The global parameter store shared by guides and optimisers.
_PARAM_STORE: Dict[str, float] = {}

#: The process-wide RNG used when no ``seed`` handler is active.
_GLOBAL_RNG: np.random.Generator = ensure_rng(0)


class MessengerBase:
    """Minimal interface required of handlers (see ``handlers.Messenger``)."""

    def process_message(self, msg: dict) -> None:  # pragma: no cover - interface
        pass

    def postprocess_message(self, msg: dict) -> None:  # pragma: no cover - interface
        pass


def get_rng() -> np.random.Generator:
    """The RNG used by ``sample`` statements outside any ``seed`` handler."""
    return _GLOBAL_RNG


def set_rng(seed_or_rng) -> np.random.Generator:
    """Set the global RNG (accepts a seed or a generator); returns it."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = ensure_rng(seed_or_rng)
    return _GLOBAL_RNG


def get_param_store() -> Dict[str, float]:
    """The global parameter store (name → value)."""
    return _PARAM_STORE


def clear_param_store() -> None:
    """Remove all parameters (used between benchmark runs and tests)."""
    _PARAM_STORE.clear()


def apply_stack(msg: dict) -> dict:
    """Run a message through the handler stack (the core of the effect system)."""
    for handler in reversed(HANDLER_STACK):
        handler.process_message(msg)
        if msg.get("stop"):
            break
    if msg["value"] is None:
        if msg["type"] == "sample":
            msg["value"] = msg["fn"].sample(msg.get("rng") or get_rng())
        else:
            msg["value"] = msg["init"]
    for handler in HANDLER_STACK:
        handler.postprocess_message(msg)
    return msg


def sample(name: str, dist: Distribution, obs: Optional[object] = None):
    """Draw (or observe) a random value at a named site.

    Outside of any handler this simply samples from ``dist`` (or returns
    ``obs``); inside handlers the value may be replayed, conditioned, or
    recorded.
    """
    if not HANDLER_STACK:
        if obs is not None:
            return obs
        return dist.sample(get_rng())
    msg = {
        "type": "sample",
        "name": name,
        "fn": dist,
        "value": obs,
        "is_observed": obs is not None,
        "rng": None,
        "stop": False,
    }
    apply_stack(msg)
    return msg["value"]


def param(name: str, init: Optional[float] = None) -> float:
    """Read (or lazily initialise) a learnable parameter.

    Parameters live in a global store keyed by name, as in Pyro.  The
    optimisers in :mod:`repro.minipyro.infer` mutate the store directly.
    """
    store = get_param_store()
    if name not in store:
        if init is None:
            raise KeyError(f"parameter {name!r} has not been initialised")
        store[name] = float(init)
    value = store[name]
    if not HANDLER_STACK:
        return value
    msg = {
        "type": "param",
        "name": name,
        "fn": None,
        "value": value,
        "init": value,
        "is_observed": False,
        "stop": False,
    }
    apply_stack(msg)
    return msg["value"]
