"""Process-wide metrics: counters, gauges, and log-bucketed histograms.

A :class:`MetricsRegistry` holds named metric *families*; each family owns
labeled *children* (one per label-value combination) that carry the actual
numbers.  The design mirrors the Prometheus client-library data model —
``Counter`` / ``Gauge`` / ``Histogram`` with a text exposition format — but
is dependency-free and small enough to sit on the hot path:

* **Counters** only go up (requests served, cache hits, bytes shipped).
* **Gauges** go up and down (queue depth, pool size).
* **Histograms** bucket observations into *fixed log-spaced buckets*, so
  latency percentiles (p50/p90/p99) are derivable from any snapshot without
  storing raw samples — means hide tail latency; percentiles are the number
  a capacity plan needs.

Three read surfaces:

* :meth:`MetricsRegistry.snapshot` — a JSON-ready dict (benchmark artifacts,
  the server's ``metrics`` op, per-run diagnostics);
* :meth:`MetricsRegistry.render_prometheus` — Prometheus text exposition
  format, served by the JSONL server's ``GET /metrics`` endpoint;
* :meth:`MetricsRegistry.mark` / :meth:`MetricsRegistry.delta` — flat
  before/after views for attributing activity to one run.

The process-wide default registry lives at :data:`REGISTRY`; instrumented
modules create their families at import time so the metric *catalog* is
stable (every family appears in ``/metrics`` from the first scrape, with or
without samples — and ``tests/obs/metrics_catalog.txt`` pins the set).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "default_registry",
]


def _log_spaced(start: float, stop: float) -> Tuple[float, ...]:
    """1—2.5—5 per-decade bucket bounds from ``start`` up to ``stop``."""
    bounds: List[float] = []
    decade = 10.0 ** math.floor(math.log10(start))
    while decade <= stop * 1.0000001:
        for mult in (1.0, 2.5, 5.0):
            bound = decade * mult
            if start * 0.9999999 <= bound <= stop * 1.0000001:
                bounds.append(float(f"{bound:.12g}"))
        decade *= 10.0
    return tuple(bounds)


#: Default latency buckets: log-spaced (1—2.5—5 per decade) from 100µs to
#: 100s.  Fixed bounds mean snapshots from different processes/runs are
#: always mergeable and p50/p90/p99 are derivable from the bucket counts.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = _log_spaced(1e-4, 100.0)

#: Buckets for dimensionless counts (particles, ESS, bytes): 1 to 10^9.
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = _log_spaced(1.0, 1e9)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(labels: Dict[str, str]) -> str:
    """``{a="x",b="y"}`` (or the empty string for unlabeled samples)."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


class HistogramValue:
    """One histogram's state: fixed bucket counts, a sum, and a count.

    Standalone (registry-free) instances back per-object aggregates such as
    :class:`~repro.engine.server.ServerCounters`'s latency distributions;
    registered :class:`Histogram` children wrap one of these per label set.
    """

    __slots__ = ("bounds", "bucket_counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS):
        if not bounds or list(bounds) != sorted(set(float(b) for b in bounds)):
            raise ValueError("histogram bucket bounds must be sorted, unique, and non-empty")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold one observation into the bucket counts."""
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Uses the same scheme as Prometheus's ``histogram_quantile``: find the
        bucket the rank lands in and interpolate linearly inside it (the
        first bucket interpolates from 0; ranks in the +Inf bucket clamp to
        the highest finite bound).  Returns ``nan`` with no observations.
        """
        if self.count == 0:
            return math.nan
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if i == len(self.bounds):  # +Inf bucket: no finite upper bound
                    return self.bounds[-1]
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i]
                position = (rank - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * position
        return self.bounds[-1]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            running += bucket_count
            out.append((bound, running))
        out.append((math.inf, running + self.bucket_counts[-1]))
        return out


class _Family:
    """Base class for metric families: naming, labels, child bookkeeping."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labels: Sequence[str], registry):
        self.name = name
        self.help = help_text
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._registry = registry
        self._children: "Dict[Tuple[str, ...], object]" = {}

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **label_values: str):
        """The child for one label-value combination (created on first use)."""
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(label_values)}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        with self._registry._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
        return child

    def _default_child(self):
        """The single child of an unlabeled family."""
        if self.label_names:
            raise ValueError(f"metric {self.name!r} has labels; address a child via .labels()")
        return self.labels()

    def _samples(self) -> List[Tuple[Dict[str, str], object]]:
        """``(labels-dict, child)`` pairs in creation order."""
        return [
            (dict(zip(self.label_names, key)), child)
            for key, child in list(self._children.items())
        ]


class Counter(_Family):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    class Child:
        """One labeled counter value."""

        __slots__ = ("value",)

        def __init__(self):
            self.value = 0.0

        def inc(self, amount: float = 1.0) -> None:
            """Increase the counter (negative increments are rejected)."""
            if amount < 0:
                raise ValueError("counters only go up")
            self.value += amount

    def _new_child(self):
        return Counter.Child()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled child."""
        self._default_child().inc(amount)


class Gauge(_Family):
    """A value that can go up and down, optionally labeled."""

    kind = "gauge"

    class Child:
        """One labeled gauge value."""

        __slots__ = ("value",)

        def __init__(self):
            self.value = 0.0

        def set(self, value: float) -> None:
            """Set the gauge to ``value``."""
            self.value = float(value)

        def inc(self, amount: float = 1.0) -> None:
            """Add ``amount`` (may be negative)."""
            self.value += amount

        def dec(self, amount: float = 1.0) -> None:
            """Subtract ``amount``."""
            self.value -= amount

    def _new_child(self):
        return Gauge.Child()

    def set(self, value: float) -> None:
        """Set the unlabeled child."""
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled child."""
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabeled child."""
        self._default_child().dec(amount)


class Histogram(_Family):
    """A log-bucketed distribution of observations, optionally labeled."""

    kind = "histogram"

    def __init__(self, name, help_text, labels, registry, buckets=DEFAULT_TIME_BUCKETS):
        super().__init__(name, help_text, labels, registry)
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)

    def _new_child(self):
        return HistogramValue(self.buckets)

    def observe(self, value: float) -> None:
        """Observe into the unlabeled child."""
        self._default_child().observe(value)

    def quantile(self, q: float) -> float:
        """Quantile of the unlabeled child (``nan`` when empty)."""
        return self._default_child().quantile(q)


class MetricsRegistry:
    """A named collection of metric families with JSON and Prometheus views."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: "Dict[str, _Family]" = {}

    # -- family registration (get-or-create, so modules can re-import) -----

    def _register(self, cls, name: str, help_text: str, labels: Sequence[str], **kwargs):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {list(existing.label_names)}"
                    )
                return existing
            family = cls(name, help_text, labels, self, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Counter:
        """Get or create a counter family."""
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge family."""
        return self._register(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family with fixed bucket bounds."""
        return self._register(Histogram, name, help_text, labels, buckets=buckets)

    def families(self) -> List[_Family]:
        """Every registered family, in registration order."""
        with self._lock:
            return list(self._families.values())

    def reset(self) -> None:
        """Drop every family's children (tests); the catalog itself stays."""
        with self._lock:
            for family in self._families.values():
                family._children.clear()

    # -- read surfaces ------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every family's samples as one JSON-ready dict."""
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for family in self._families.values():
                samples: List[Dict[str, object]] = []
                for labels, child in family._samples():
                    if isinstance(child, HistogramValue):
                        samples.append(
                            {
                                "labels": labels,
                                "count": child.count,
                                "sum": child.total,
                                "buckets": {
                                    _format_value(bound): cum
                                    for bound, cum in child.cumulative_buckets()
                                },
                                "p50": child.quantile(0.50),
                                "p90": child.quantile(0.90),
                                "p99": child.quantile(0.99),
                            }
                        )
                    else:
                        samples.append({"labels": labels, "value": child.value})
                out[family.name] = {
                    "type": family.kind,
                    "help": family.help,
                    "labels": list(family.label_names),
                    "samples": samples,
                }
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            for family in self._families.values():
                lines.append(f"# HELP {family.name} {family.help}")
                lines.append(f"# TYPE {family.name} {family.kind}")
                for labels, child in family._samples():
                    if isinstance(child, HistogramValue):
                        for bound, cum in child.cumulative_buckets():
                            bucket_labels = dict(labels)
                            bucket_labels["le"] = _format_value(bound)
                            lines.append(
                                f"{family.name}_bucket{_render_labels(bucket_labels)} {cum}"
                            )
                        lines.append(
                            f"{family.name}_sum{_render_labels(labels)} "
                            f"{_format_value(child.total)}"
                        )
                        lines.append(
                            f"{family.name}_count{_render_labels(labels)} {child.count}"
                        )
                    else:
                        lines.append(
                            f"{family.name}{_render_labels(labels)} "
                            f"{_format_value(child.value)}"
                        )
        return "\n".join(lines) + "\n"

    # -- per-run attribution ------------------------------------------------

    def _flat(self) -> Dict[str, float]:
        """Flatten every sample to ``name{labels}`` keys with numeric values."""
        flat: Dict[str, float] = {}
        with self._lock:
            for family in self._families.values():
                for labels, child in family._samples():
                    key = family.name + _render_labels(labels)
                    if isinstance(child, HistogramValue):
                        flat[key + "_count"] = float(child.count)
                        flat[key + "_sum"] = float(child.total)
                    else:
                        flat[key] = float(child.value)
        return flat

    def mark(self) -> Dict[str, float]:
        """An opaque point-in-time marker for :meth:`delta`."""
        return self._flat()

    def delta(self, mark: Dict[str, float]) -> Dict[str, float]:
        """Per-key numeric change since ``mark`` (only keys that moved)."""
        now = self._flat()
        out: Dict[str, float] = {}
        for key, value in now.items():
            change = value - mark.get(key, 0.0)
            if change != 0.0:
                out[key] = change
        return out


#: The process-wide default registry.  Instrumented modules register their
#: families here at import time; the server's ``/metrics`` endpoint renders
#: it, and per-run diagnostics diff it.
REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return REGISTRY


def metric_names(snapshot_or_text) -> List[str]:
    """The sorted family names in a snapshot dict or Prometheus text blob."""
    if isinstance(snapshot_or_text, dict):
        return sorted(snapshot_or_text)
    names = []
    for line in snapshot_or_text.splitlines():
        if line.startswith("# TYPE "):
            names.append(line.split()[2])
    return sorted(names)


def percentile_keys(hist: HistogramValue, prefix: str) -> Dict[str, float]:
    """``{prefix_p50, prefix_p90, prefix_p99}`` derived from one histogram."""
    return {
        f"{prefix}_p50": hist.quantile(0.50),
        f"{prefix}_p90": hist.quantile(0.90),
        f"{prefix}_p99": hist.quantile(0.99),
    }
