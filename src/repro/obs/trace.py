"""Structured run tracing: timed spans, ring buffer, Chrome trace export.

The API is one call — ``with span("smc.resample", particles=n): ...`` — used
throughout the engines.  Tracing is **off by default** and the disabled path
is a single module-global check returning a shared no-op context manager, so
instrumentation left in the hot loops costs (contractually, see
``tests/obs/test_overhead.py``) under 2% wall time.

When enabled (``enable_tracing()``, or ``repro run-* --profile`` /
``--trace-out``), spans are recorded into a :class:`TraceRecorder` — a
bounded in-memory ring buffer of *complete events* keyed to a shared
``time.perf_counter()`` epoch.  The recorder exports two views:

* :meth:`TraceRecorder.save` — a Chrome ``trace_event`` JSON file loadable
  in ``chrome://tracing`` or Perfetto, with shard workers as named tracks;
* :meth:`TraceRecorder.summary` — per-phase count/total-time aggregates for
  the ``--profile`` table.

Fork-pool propagation: ``time.perf_counter()`` is CLOCK_MONOTONIC on Linux
and therefore comparable across forked processes.  The parent stamps its
epoch into each :class:`~repro.engine.shard.ShardTask`; workers install a
worker-local recorder against that epoch (one track per shard index), return
their events inside :class:`~repro.engine.shard.ShardResult`, and the
parent's merge step ingests them — so a multi-process run renders as one
coherent timeline.  Recording never touches the RNG, so traced runs stay
bit-identical with untraced ones.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "span",
    "TraceRecorder",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_recorder",
]

_PID = 1  # single logical process in the exported timeline; tracks are tids


class TraceRecorder:
    """A bounded buffer of completed spans sharing one perf_counter epoch."""

    def __init__(self, ring_size: int = 100_000, epoch: Optional[float] = None,
                 default_tid: int = 0):
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.events: "deque[dict]" = deque(maxlen=ring_size)
        self.thread_names: Dict[int, str] = {0: "main"}
        self.default_tid = default_tid
        self._lock = threading.Lock()

    def add_complete(self, name: str, start: float, duration: float,
                     attrs: Optional[dict] = None, tid: Optional[int] = None) -> None:
        """Record one finished span (times are perf_counter seconds)."""
        event = {
            "name": name,
            "ts": (start - self.epoch) * 1e6,  # µs relative to the epoch
            "dur": duration * 1e6,
            "tid": self.default_tid if tid is None else tid,
        }
        if attrs:
            event["args"] = attrs
        with self._lock:
            self.events.append(event)

    def set_thread_name(self, tid: int, name: str) -> None:
        """Name a track (e.g. ``shard-3``) in the exported timeline."""
        with self._lock:
            self.thread_names[tid] = name

    def ingest(self, events: List[dict]) -> None:
        """Absorb events captured by a worker recorder (same epoch)."""
        with self._lock:
            self.events.extend(events)

    def chrome_events(self) -> List[dict]:
        """The buffer as Chrome ``trace_event`` dicts (metadata first)."""
        with self._lock:
            events = list(self.events)
            names = dict(self.thread_names)
        out: List[dict] = [
            {"name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
             "args": {"name": "repro"}},
        ]
        for tid in sorted(names):
            out.append({"name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
                        "args": {"name": names[tid]}})
        for event in events:
            full = {"ph": "X", "pid": _PID, "cat": "repro"}
            full.update(event)
            out.append(full)
        return out

    def save(self, path: str) -> None:
        """Write the buffer as a Chrome/Perfetto-loadable JSON file."""
        payload = {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregates: ``{name: {count, total_s, max_s}}``."""
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            events = list(self.events)
        for event in events:
            row = out.setdefault(event["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0})
            duration_s = event["dur"] / 1e6
            row["count"] += 1
            row["total_s"] += duration_s
            row["max_s"] = max(row["max_s"], duration_s)
        return out


class _NoopSpan:
    """The disabled-tracing fast path: one shared, stateless context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()

_ENABLED = False
_RECORDER: Optional[TraceRecorder] = None


class _Span:
    """A live span: records a complete event into the recorder on exit."""

    __slots__ = ("name", "attrs", "tid", "_start", "_recorder")

    def __init__(self, name: str, attrs: Optional[dict], tid: Optional[int],
                 recorder: TraceRecorder):
        self.name = name
        self.attrs = attrs
        self.tid = tid
        self._recorder = recorder

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        duration = time.perf_counter() - self._start
        self._recorder.add_complete(self.name, self._start, duration,
                                    self.attrs, self.tid)
        return False


def span(name: str, _tid: Optional[int] = None, **attrs):
    """A context manager timing one phase; a shared no-op when disabled.

    ``attrs`` become the event's ``args`` in the Chrome trace (visible when
    a slice is selected in Perfetto).  ``_tid`` pins the span to a specific
    track — used for in-process shard runs so they render as shard tracks.
    """
    if not _ENABLED:
        return _NOOP
    recorder = _RECORDER
    if recorder is None:  # pragma: no cover - enable/disable race guard
        return _NOOP
    return _Span(name, attrs or None, _tid, recorder)


def enable_tracing(ring_size: int = 100_000, epoch: Optional[float] = None,
                   default_tid: int = 0) -> TraceRecorder:
    """Switch tracing on with a fresh recorder and return it."""
    global _ENABLED, _RECORDER
    _RECORDER = TraceRecorder(ring_size=ring_size, epoch=epoch, default_tid=default_tid)
    _ENABLED = True
    return _RECORDER


def disable_tracing() -> Optional[TraceRecorder]:
    """Switch tracing off; returns the recorder that was active (if any)."""
    global _ENABLED, _RECORDER
    recorder = _RECORDER
    _ENABLED = False
    _RECORDER = None
    return recorder


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _ENABLED


def current_recorder() -> Optional[TraceRecorder]:
    """The active recorder, or ``None`` when tracing is off."""
    return _RECORDER
