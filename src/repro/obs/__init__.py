"""Dependency-free observability: metrics registry + structured tracing.

Two halves, both safe to leave in hot paths:

* :mod:`repro.obs.metrics` — process-wide ``Counter``/``Gauge``/``Histogram``
  families with labeled children, JSON snapshots, per-run deltas, and a
  Prometheus text renderer (served by the JSONL server's ``GET /metrics``).
* :mod:`repro.obs.trace` — a ``span()`` API recording per-run timed phase
  trees, off by default with near-zero overhead, exportable as Chrome
  ``trace_event`` JSON (``--trace-out``) with shard workers as named tracks.

See ``docs/observability.md`` for the metric catalog and quickstart.
"""

from repro.obs.metrics import (  # noqa: F401
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricsRegistry,
    REGISTRY,
    default_registry,
    metric_names,
    percentile_keys,
)
from repro.obs.trace import (  # noqa: F401
    TraceRecorder,
    current_recorder,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "default_registry",
    "metric_names",
    "percentile_keys",
    "TraceRecorder",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_recorder",
]
