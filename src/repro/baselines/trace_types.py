"""A simplified *trace-types* checker (baseline for the Table 1 comparison).

Lew et al. [40] type probabilistic programs with **trace types**: a record of
the sample sites a program draws, with their value types.  Their system
supports straight-line models, plates, and three restricted loop forms, but —
as discussed in the paper's related-work section — it cannot type:

* conditionals whose branches draw *different* sets of latent variables
  (the branch predicate's value is unknown statically, so the trace type
  would have to be a union); and
* general (non-tail, unbounded) recursion.

This module reproduces those restrictions over our core calculus so the
expressiveness comparison of Table 1 can be regenerated: for each benchmark
we ask whether this baseline accepts the model, and whether our guide-type
system does.

The checker works bottom-up over commands, producing a
:class:`TraceTypeResult` whose ``trace_type`` is the static tuple of
``(channel, direction, payload type)`` triples the program performs, or a
rejection reason when the program falls outside the supported fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import ast
from repro.core import types as ty
from repro.core.typecheck import basic
from repro.errors import UnsupportedModelError

#: One element of a trace type: (channel, "sample"/"branch", payload type or None).
TraceSiteType = Tuple[str, str, Optional[ty.BaseType]]


@dataclass(frozen=True)
class TraceTypeResult:
    """Outcome of running the trace-types baseline on one program."""

    supported: bool
    trace_type: Tuple[TraceSiteType, ...]
    reason: Optional[str] = None

    @property
    def num_sample_sites(self) -> int:
        return sum(1 for site in self.trace_type if site[1] == "sample")


class _TraceTypeChecker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.basic_signatures = basic.check_program_basic(program)
        self._call_stack: List[str] = []

    # -- call graph -------------------------------------------------------------

    def _check_no_recursion(self, entry: str) -> None:
        """Reject programs whose call graph (from the entry) contains a cycle."""
        visiting: List[str] = []

        def visit(name: str) -> None:
            if name in visiting:
                cycle = " -> ".join(visiting[visiting.index(name):] + [name])
                raise UnsupportedModelError(
                    f"trace types do not support general recursion (call cycle {cycle})"
                )
            visiting.append(name)
            try:
                proc = self.program.procedure(name)
            except KeyError as exc:
                raise UnsupportedModelError(f"unknown procedure {name!r}") from exc
            for callee in sorted(ast.calls_in(proc.body)):
                visit(callee)
            visiting.pop()

        visit(entry)

    # -- per-command analysis ------------------------------------------------------

    def analyze_command(
        self, ctx: Dict[str, ty.BaseType], cmd: ast.Command
    ) -> Tuple[ty.BaseType, Tuple[TraceSiteType, ...]]:
        if isinstance(cmd, ast.Ret):
            return basic.infer_expr_type(ctx, cmd.expr, self.basic_signatures), ()

        if isinstance(cmd, ast.Bnd):
            first_ty, first_sites = self.analyze_command(ctx, cmd.first)
            inner = dict(ctx)
            inner[cmd.var] = first_ty
            second_ty, second_sites = self.analyze_command(inner, cmd.second)
            return second_ty, first_sites + second_sites

        if isinstance(cmd, (ast.SampleRecv, ast.SampleSend)):
            dist_ty = basic.infer_expr_type(ctx, cmd.dist, self.basic_signatures)
            assert isinstance(dist_ty, ty.DistTy)
            return dist_ty.support, ((cmd.channel, "sample", dist_ty.support),)

        if isinstance(cmd, ast.Observe):
            return ty.UNIT, ()

        if isinstance(cmd, (ast.CondSend, ast.CondRecv, ast.CondPure)):
            then_ty, then_sites = self.analyze_command(ctx, cmd.then)
            else_ty, else_sites = self.analyze_command(ctx, cmd.orelse)
            if then_sites != else_sites:
                raise UnsupportedModelError(
                    "trace types do not support conditionals whose branches draw "
                    "different sets of random variables: "
                    f"then-branch {_describe(then_sites)} vs else-branch {_describe(else_sites)}"
                )
            joined = ty.join(then_ty, else_ty) or then_ty
            branch_site: Tuple[TraceSiteType, ...] = ()
            if isinstance(cmd, (ast.CondSend, ast.CondRecv)):
                branch_site = ((cmd.channel, "branch", None),)
            return joined, branch_site + then_sites

        if isinstance(cmd, ast.Call):
            proc = self.program.procedure(cmd.proc)
            sig = self.basic_signatures[cmd.proc]
            call_ctx = dict(zip(proc.params, sig.param_types))
            result_ty, sites = self.analyze_command(call_ctx, proc.body)
            return result_ty, sites

        raise UnsupportedModelError(f"trace types cannot analyse command {cmd!r}")

    def check(self, entry: str) -> TraceTypeResult:
        self._check_no_recursion(entry)
        proc = self.program.procedure(entry)
        ctx = dict(zip(proc.params, self.basic_signatures[entry].param_types))
        _, sites = self.analyze_command(ctx, proc.body)
        return TraceTypeResult(supported=True, trace_type=sites)


def _describe(sites: Tuple[TraceSiteType, ...]) -> str:
    if not sites:
        return "{}"
    return "{" + ", ".join(f"{c}:{d}" for c, d, _ in sites) + "}"


def trace_type_check(program: ast.Program, entry: str) -> TraceTypeResult:
    """Run the trace-types baseline on ``entry``.

    Returns a :class:`TraceTypeResult` whose ``supported`` flag is False
    (with a reason) when the program uses recursion or branch-dependent
    sample sets.
    """
    checker = _TraceTypeChecker(program)
    try:
        return checker.check(entry)
    except UnsupportedModelError as exc:
        return TraceTypeResult(supported=False, trace_type=(), reason=str(exc))


def trace_types_compatible(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    latent_channel: str = "latent",
) -> TraceTypeResult:
    """Check a model/guide pair under the trace-types baseline.

    The pair is compatible when both programs are supported and their latent
    sample-site type lists coincide (observation sites are excluded, as
    trace types compare the *latent* trace spaces).
    """
    model_result = trace_type_check(model_program, model_entry)
    if not model_result.supported:
        return model_result
    guide_result = trace_type_check(guide_program, guide_entry)
    if not guide_result.supported:
        return guide_result

    def latent_samples(result: TraceTypeResult) -> Tuple[TraceSiteType, ...]:
        return tuple(
            site for site in result.trace_type
            if site[0] == latent_channel and site[1] == "sample"
        )

    model_latents = latent_samples(model_result)
    guide_latents = latent_samples(guide_result)
    if model_latents != guide_latents:
        return TraceTypeResult(
            supported=False,
            trace_type=(),
            reason=(
                "model and guide disagree on the latent trace type: "
                f"{_describe(model_latents)} vs {_describe(guide_latents)}"
            ),
        )
    return TraceTypeResult(supported=True, trace_type=model_latents)
