"""Baselines the paper compares against.

``trace_types``
    A simplified checker in the style of Lew et al. [40]'s *trace types*:
    it assigns each program a static list of sample sites and their types,
    and accepts a model/guide pair only when the two lists agree.  It
    rejects general recursion and conditionals whose branches sample
    different sets of latent variables — the restrictions the paper's
    Table 1 comparison hinges on.
"""

from repro.baselines.trace_types import (
    TraceTypeResult,
    trace_type_check,
    trace_types_compatible,
)

__all__ = ["TraceTypeResult", "trace_type_check", "trace_types_compatible"]
