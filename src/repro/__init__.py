"""repro — a reproduction of "Sound Probabilistic Inference via Guide Types" (PLDI 2021).

The package implements a coroutine-based probabilistic programming language
with *guide types*: a type discipline over the communication between a model
program and its guide program that certifies absolute continuity (the model
and guide define distributions with the same support), which is the key
soundness condition for importance sampling, Markov-chain Monte Carlo, and
variational inference.

Quickstart
----------

>>> from repro import parse_program, infer_guide_types, check_model_guide_pair
>>> model = parse_program('''
... proc Model() consume latent provide obs {
...   v <- sample.recv{latent}(Gamma(2.0, 1.0));
...   if.send{latent} v < 2.0 {
...     _ <- sample.send{obs}(Normal(-1.0, 1.0));
...     return(v)
...   } else {
...     m <- sample.recv{latent}(Beta(3.0, 1.0));
...     _ <- sample.send{obs}(Normal(m, 1.0));
...     return(v)
...   }
... }
... ''')
>>> result = infer_guide_types(model)

See ``examples/quickstart.py`` for an end-to-end model/guide/inference run.
"""

from repro.core.ast import Program
from repro.core.parser import parse_program
from repro.core.typecheck import check_model_guide_pair, infer_guide_types
from repro.core.semantics import evaluate_procedure, log_density
from repro.core.coroutines import run_model_guide, run_prior
from repro.engine import ProgramSession, smc, vectorized_importance

__version__ = "1.0.0"

__all__ = [
    "Program",
    "parse_program",
    "infer_guide_types",
    "check_model_guide_pair",
    "evaluate_procedure",
    "log_density",
    "run_model_guide",
    "run_prior",
    "ProgramSession",
    "smc",
    "vectorized_importance",
    "__version__",
]
