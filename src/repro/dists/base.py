"""Abstract base class for primitive distributions."""

from __future__ import annotations

import abc
import math
from typing import Any

from repro.xp import np

from repro.core import types as ty


class Distribution(abc.ABC):
    """A primitive distribution ``d`` of type ``dist(τ)``.

    Subclasses must implement :meth:`sample`, :meth:`log_prob`,
    :meth:`in_support`, and the :attr:`support_type` property.  Equality is
    structural on the parameters (used to compare model/guide sites in tests
    and in the mini-Pyro replay handler).
    """

    #: Name used by pretty printers and compiled code.
    name: str = "Distribution"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a single value from the distribution."""

    @abc.abstractmethod
    def log_prob(self, value: Any) -> float:
        """Log density/mass of ``value``; ``-inf`` outside the support."""

    @abc.abstractmethod
    def in_support(self, value: Any) -> bool:
        """Exact support membership (paper's ``v ∈ d.support``)."""

    @property
    @abc.abstractmethod
    def support_type(self) -> ty.BaseType:
        """The basic type τ that characterises the support exactly."""

    @property
    @abc.abstractmethod
    def params(self) -> tuple:
        """The distribution's parameters, used for equality and printing."""

    # -- batched API -----------------------------------------------------------
    #
    # The vectorized particle engine (:mod:`repro.engine`) executes many
    # particles in lockstep and resolves every sample site with one batched
    # call instead of N scalar calls.  The defaults below fall back to the
    # scalar methods so exotic distributions stay correct; the standard
    # families override them with closed-form NumPy implementations.

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` i.i.d. values as an array (scalar-loop fallback)."""
        return np.asarray([self.sample(rng) for _ in range(int(n))])

    def log_prob_batch(self, values: Any) -> np.ndarray:
        """Elementwise :meth:`log_prob` over a batch of values.

        Agrees with the scalar method pointwise: ``log_prob_batch(xs)[i] ==
        log_prob(xs[i])`` for every ``i``, including ``-inf`` outside the
        support.
        """
        return np.asarray([self.log_prob(v) for v in _iter_batch(values)], dtype=float)

    def in_support_batch(self, values: Any) -> np.ndarray:
        """Elementwise :meth:`in_support` over a batch of values."""
        return np.asarray([self.in_support(v) for v in _iter_batch(values)], dtype=bool)

    # -- derived API -----------------------------------------------------------

    def prob(self, value: Any) -> float:
        """Density/mass of ``value`` (the paper's ``d.density(v)``)."""
        lp = self.log_prob(value)
        return math.exp(lp) if lp > -math.inf else 0.0

    def expected_value(self) -> float:
        """Mean of the distribution; subclasses override where closed forms exist."""
        raise NotImplementedError(f"{self.name} does not expose a closed-form mean")

    # -- dunder helpers -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self.params == other.params  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.params))

    def __repr__(self) -> str:
        args = ", ".join(repr(p) for p in self.params)
        return f"{self.name}({args})"


def _iter_batch(values: Any):
    """Iterate a batch given as a list, tuple, or NumPy array."""
    if isinstance(values, np.ndarray):
        return iter(values)
    return iter(list(values))


def as_float_batch(values: Any) -> "np.ndarray | None":
    """Coerce a batch to a float array, or ``None`` when that would lie.

    Boolean and object arrays are refused (``True`` is not a real number in
    the scalar support semantics), signalling callers to take the exact
    scalar-loop fallback instead.
    """
    if not isinstance(values, np.ndarray) and any(
        isinstance(v, (bool, np.bool_)) for v in values
    ):
        # np.asarray would silently coerce True -> 1.0 in a mixed list.
        return None
    arr = np.asarray(values)
    if arr.dtype == object or arr.dtype.kind == "b":
        return None
    return arr.astype(float, copy=False)


def require_positive(name: str, value: float) -> float:
    """Validate a strictly positive scalar parameter."""
    value = float(value)
    if not value > 0.0 or math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be a finite positive real, got {value}")
    return value


def require_unit_interval(name: str, value: float) -> float:
    """Validate a parameter in the open unit interval (0, 1)."""
    value = float(value)
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must lie in the open interval (0, 1), got {value}")
    return value


def require_real(name: str, value: float) -> float:
    """Validate a finite real parameter."""
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be a finite real, got {value}")
    return value


def is_real_number(value: Any) -> bool:
    """True for Python ints/floats/numpy scalars, excluding booleans."""
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return False
    return isinstance(value, (int, float, np.integer, np.floating))


def is_integer_number(value: Any) -> bool:
    """True for integral Python/numpy values, excluding booleans."""
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return False
    if isinstance(value, (int, np.integer)):
        return True
    if isinstance(value, (float, np.floating)):
        return float(value).is_integer()
    return False
