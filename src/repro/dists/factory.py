"""Factory mapping core-calculus distribution expressions to distribution objects."""

from __future__ import annotations

from typing import Sequence

from repro.core import ast
from repro.dists.base import Distribution
from repro.dists.continuous import Beta, Gamma, Normal, Uniform01
from repro.dists.discrete import Bernoulli, Categorical, Geometric, Poisson
from repro.errors import EvaluationError


def make_distribution(kind: ast.DistKind, args: Sequence[float]) -> Distribution:
    """Build a :class:`Distribution` from a family tag and evaluated parameters.

    Raises :class:`EvaluationError` when the parameter count or values are
    invalid (the basic type checker rules most of these out statically, but
    run-time values can still stray — e.g. a guide parameter optimised to a
    non-positive stddev).
    """
    try:
        if kind is ast.DistKind.BER:
            (p,) = args
            return Bernoulli(p)
        if kind is ast.DistKind.UNIF:
            if args:
                raise ValueError("Unif takes no parameters")
            return Uniform01()
        if kind is ast.DistKind.BETA:
            alpha, beta = args
            return Beta(alpha, beta)
        if kind is ast.DistKind.GAMMA:
            shape, rate = args
            return Gamma(shape, rate)
        if kind is ast.DistKind.NORMAL:
            mean, stddev = args
            return Normal(mean, stddev)
        if kind is ast.DistKind.CAT:
            return Categorical(list(args))
        if kind is ast.DistKind.GEO:
            (p,) = args
            return Geometric(p)
        if kind is ast.DistKind.POIS:
            (rate,) = args
            return Poisson(rate)
    except (ValueError, TypeError) as exc:
        raise EvaluationError(
            f"invalid parameters for {kind.value}: {list(args)!r} ({exc})"
        ) from exc
    raise EvaluationError(f"unknown distribution family {kind!r}")
