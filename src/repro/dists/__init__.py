"""Primitive probability distributions with exact supports and densities.

Every distribution exposes:

``sample(rng)``
    Draw one value using a ``numpy.random.Generator``.
``log_prob(value)``
    Log density (continuous) or log mass (discrete) of ``value``; ``-inf``
    outside the support.
``prob(value)``
    ``exp(log_prob(value))`` — the paper's ``d.density``.
``in_support(value)``
    Exact support membership — the paper's ``v ∈ d.support``.
``support_type``
    The basic type τ such that the distribution has type ``dist(τ)``.

The families match the core calculus: Bernoulli, Uniform(0,1), Beta, Gamma,
Normal, Categorical, Geometric, Poisson.
"""

from repro.dists.base import Distribution
from repro.dists.continuous import Beta, Gamma, Normal, Uniform01
from repro.dists.discrete import Bernoulli, Categorical, Geometric, Poisson
from repro.dists.factory import make_distribution

__all__ = [
    "Distribution",
    "Normal",
    "Gamma",
    "Beta",
    "Uniform01",
    "Bernoulli",
    "Categorical",
    "Geometric",
    "Poisson",
    "make_distribution",
]
