"""Discrete primitive distributions: Bernoulli, Categorical, Geometric, Poisson."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core import types as ty
from repro.dists.base import (
    Distribution,
    is_integer_number,
    require_positive,
    require_unit_interval,
)


class Bernoulli(Distribution):
    """Bernoulli distribution ``Ber(p)`` with support 𝟚 = {true, false}."""

    name = "Ber"

    def __init__(self, p: float):
        self.p = require_unit_interval("p", p)

    @property
    def params(self) -> tuple:
        return (self.p,)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.BOOL

    def sample(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.p)

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        return math.log(self.p) if value else math.log1p(-self.p)

    def in_support(self, value) -> bool:
        return isinstance(value, (bool, np.bool_))

    def expected_value(self) -> float:
        return self.p


class Categorical(Distribution):
    """Categorical distribution ``Cat(w_0, ..., w_{n-1})`` with support ℕn.

    The weights need not be normalised; they must be strictly positive.
    """

    name = "Cat"

    def __init__(self, weights: Sequence[float]):
        if len(weights) < 1:
            raise ValueError("Cat requires at least one weight")
        ws = [require_positive(f"weight #{i}", w) for i, w in enumerate(weights)]
        total = sum(ws)
        self.weights = tuple(ws)
        self.probs = tuple(w / total for w in ws)

    @property
    def params(self) -> tuple:
        return self.weights

    @property
    def support_type(self) -> ty.BaseType:
        return ty.FinNatTy(len(self.weights))

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(len(self.probs), p=self.probs))

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        return math.log(self.probs[int(value)])

    def in_support(self, value) -> bool:
        return is_integer_number(value) and 0 <= int(value) < len(self.weights)

    def expected_value(self) -> float:
        return sum(i * p for i, p in enumerate(self.probs))


class Geometric(Distribution):
    """Geometric distribution ``Geo(p)`` with support ℕ = {0, 1, 2, ...}.

    ``Geo(p)`` counts the number of failures before the first success, so
    ``P(k) = (1-p)^k p``.
    """

    name = "Geo"

    def __init__(self, p: float):
        self.p = require_unit_interval("p", p)

    @property
    def params(self) -> tuple:
        return (self.p,)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.NAT

    def sample(self, rng: np.random.Generator) -> int:
        # numpy's geometric counts trials (>= 1); shift to count failures.
        return int(rng.geometric(self.p)) - 1

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        k = int(value)
        return k * math.log1p(-self.p) + math.log(self.p)

    def in_support(self, value) -> bool:
        return is_integer_number(value) and int(value) >= 0

    def expected_value(self) -> float:
        return (1.0 - self.p) / self.p


class Poisson(Distribution):
    """Poisson distribution ``Pois(rate)`` with support ℕ."""

    name = "Pois"

    def __init__(self, rate: float):
        self.rate = require_positive("rate", rate)

    @property
    def params(self) -> tuple:
        return (self.rate,)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.NAT

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.rate))

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        k = int(value)
        return k * math.log(self.rate) - self.rate - math.lgamma(k + 1.0)

    def in_support(self, value) -> bool:
        return is_integer_number(value) and int(value) >= 0

    def expected_value(self) -> float:
        return self.rate


class Delta(Distribution):
    """A point mass at a fixed value.

    Not part of the core calculus; used by the mini-Pyro substrate for
    deterministic sites and by MCMC proposals that keep a coordinate fixed.
    The density is 1 at the point and 0 elsewhere (counting-measure style).
    """

    name = "Delta"

    def __init__(self, value):
        self.value = value

    @property
    def params(self) -> tuple:
        return (self.value,)

    @property
    def support_type(self) -> ty.BaseType:
        if isinstance(self.value, bool):
            return ty.BOOL
        if isinstance(self.value, int):
            return ty.NAT
        return ty.REAL

    def sample(self, rng: np.random.Generator):
        return self.value

    def log_prob(self, value) -> float:
        return 0.0 if self.in_support(value) else -math.inf

    def in_support(self, value) -> bool:
        return value == self.value

    def expected_value(self) -> float:
        return float(self.value)
