"""Discrete primitive distributions: Bernoulli, Categorical, Geometric, Poisson."""

from __future__ import annotations

import math
from typing import Sequence

from repro.xp import np

from repro.core import types as ty
from repro.dists.base import (
    Distribution,
    as_float_batch,
    is_integer_number,
    require_positive,
    require_unit_interval,
)


def _integral_batch(arr: np.ndarray) -> np.ndarray:
    """Elementwise ``is_integer_number`` over a (non-boolean) float array."""
    return np.isfinite(arr) & (np.floor(arr) == arr)


# -- batched log-mass kernels --------------------------------------------------
#
# One implementation per family, shared by the scalar-parameter batch methods
# below and by the engine's per-particle-parameter BatchedDist (parameters may
# be scalars or arrays broadcasting against the value batch).


def bernoulli_log_prob_kernel(p, values: np.ndarray) -> np.ndarray:
    """``values`` must be a Boolean array (the caller screens dtypes)."""
    return np.where(values, np.log(p), np.log1p(-p))


def geometric_log_prob_kernel(p, x: np.ndarray) -> np.ndarray:
    ok = _integral_batch(x) & (x >= 0)
    k = np.where(ok, x, 0.0)
    lp = k * np.log1p(-p) + np.log(p)
    return np.where(ok, lp, -np.inf)


def poisson_log_prob_kernel(rate, x: np.ndarray) -> np.ndarray:
    from scipy.special import gammaln

    ok = _integral_batch(x) & (x >= 0)
    k = np.where(ok, x, 0.0)
    with np.errstate(over="ignore"):
        lp = k * np.log(rate) - rate - gammaln(k + 1.0)
    return np.where(ok, lp, -np.inf)


# -- in-bounds kernels -----------------------------------------------------------
#
# Like the ``*_log_prob_inbounds`` kernels in :mod:`repro.dists.continuous`:
# bitwise-equal to the masked kernels above when every value is in the
# support (here: a non-negative integer array).  ``np.where(ok, x, 0.0)``
# converts the integer batch to float; the in-bounds variants reproduce that
# conversion through the same arithmetic, which promotes exactly.


def geometric_log_prob_inbounds(p, x: np.ndarray) -> np.ndarray:
    """``geometric_log_prob_kernel`` for values known to be naturals."""
    return x * np.log1p(-p) + np.log(p)


def poisson_log_prob_inbounds(rate, x: np.ndarray) -> np.ndarray:
    """``poisson_log_prob_kernel`` for values known to be naturals."""
    from scipy.special import gammaln

    # No errstate here: the compiled kernels hold one per-run
    # ``errstate(over="ignore")`` (see repro.dists.continuous).
    return x * np.log(rate) - rate - gammaln(x + 1.0)


class Bernoulli(Distribution):
    """Bernoulli distribution ``Ber(p)`` with support 𝟚 = {true, false}."""

    name = "Ber"

    def __init__(self, p: float):
        self.p = require_unit_interval("p", p)

    @property
    def params(self) -> tuple:
        return (self.p,)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.BOOL

    def sample(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.p)

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        return math.log(self.p) if value else math.log1p(-self.p)

    def in_support(self, value) -> bool:
        return isinstance(value, (bool, np.bool_))

    def expected_value(self) -> float:
        return self.p

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.random(int(n)) < self.p

    def log_prob_batch(self, values) -> np.ndarray:
        arr = np.asarray(values)
        if arr.dtype.kind != "b":
            return super().log_prob_batch(values)
        return bernoulli_log_prob_kernel(self.p, arr)

    def in_support_batch(self, values) -> np.ndarray:
        arr = np.asarray(values)
        if arr.dtype.kind != "b":
            return super().in_support_batch(values)
        return np.ones(arr.shape, dtype=bool)


class Categorical(Distribution):
    """Categorical distribution ``Cat(w_0, ..., w_{n-1})`` with support ℕn.

    The weights need not be normalised; they must be strictly positive.
    """

    name = "Cat"

    def __init__(self, weights: Sequence[float]):
        if len(weights) < 1:
            raise ValueError("Cat requires at least one weight")
        ws = [require_positive(f"weight #{i}", w) for i, w in enumerate(weights)]
        total = sum(ws)
        self.weights = tuple(ws)
        self.probs = tuple(w / total for w in ws)

    @property
    def params(self) -> tuple:
        return self.weights

    @property
    def support_type(self) -> ty.BaseType:
        return ty.FinNatTy(len(self.weights))

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(len(self.probs), p=self.probs))

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        return math.log(self.probs[int(value)])

    def in_support(self, value) -> bool:
        return is_integer_number(value) and 0 <= int(value) < len(self.weights)

    def expected_value(self) -> float:
        return sum(i * p for i, p in enumerate(self.probs))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(len(self.probs), size=int(n), p=self.probs)

    def log_prob_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().log_prob_batch(values)
        ok = _integral_batch(arr) & (arr >= 0) & (arr < len(self.weights))
        idx = np.where(ok, arr, 0.0).astype(int)
        lp = np.log(np.asarray(self.probs))[idx]
        return np.where(ok, lp, -np.inf)

    def in_support_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().in_support_batch(values)
        return _integral_batch(arr) & (arr >= 0) & (arr < len(self.weights))


class Geometric(Distribution):
    """Geometric distribution ``Geo(p)`` with support ℕ = {0, 1, 2, ...}.

    ``Geo(p)`` counts the number of failures before the first success, so
    ``P(k) = (1-p)^k p``.
    """

    name = "Geo"

    def __init__(self, p: float):
        self.p = require_unit_interval("p", p)

    @property
    def params(self) -> tuple:
        return (self.p,)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.NAT

    def sample(self, rng: np.random.Generator) -> int:
        # numpy's geometric counts trials (>= 1); shift to count failures.
        return int(rng.geometric(self.p)) - 1

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        k = int(value)
        return k * math.log1p(-self.p) + math.log(self.p)

    def in_support(self, value) -> bool:
        return is_integer_number(value) and int(value) >= 0

    def expected_value(self) -> float:
        return (1.0 - self.p) / self.p

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.geometric(self.p, size=int(n)) - 1

    def log_prob_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().log_prob_batch(values)
        return geometric_log_prob_kernel(self.p, arr)

    def in_support_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().in_support_batch(values)
        return _integral_batch(arr) & (arr >= 0)


class Poisson(Distribution):
    """Poisson distribution ``Pois(rate)`` with support ℕ."""

    name = "Pois"

    def __init__(self, rate: float):
        self.rate = require_positive("rate", rate)

    @property
    def params(self) -> tuple:
        return (self.rate,)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.NAT

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.rate))

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        k = int(value)
        return k * math.log(self.rate) - self.rate - math.lgamma(k + 1.0)

    def in_support(self, value) -> bool:
        return is_integer_number(value) and int(value) >= 0

    def expected_value(self) -> float:
        return self.rate

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.poisson(self.rate, size=int(n))

    def log_prob_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().log_prob_batch(values)
        return poisson_log_prob_kernel(self.rate, arr)

    def in_support_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().in_support_batch(values)
        return _integral_batch(arr) & (arr >= 0)


class Delta(Distribution):
    """A point mass at a fixed value.

    Not part of the core calculus; used by the mini-Pyro substrate for
    deterministic sites and by MCMC proposals that keep a coordinate fixed.
    The density is 1 at the point and 0 elsewhere (counting-measure style).
    """

    name = "Delta"

    def __init__(self, value):
        self.value = value

    @property
    def params(self) -> tuple:
        return (self.value,)

    @property
    def support_type(self) -> ty.BaseType:
        if isinstance(self.value, bool):
            return ty.BOOL
        if isinstance(self.value, int):
            return ty.NAT
        return ty.REAL

    def sample(self, rng: np.random.Generator):
        return self.value

    def log_prob(self, value) -> float:
        return 0.0 if self.in_support(value) else -math.inf

    def in_support(self, value) -> bool:
        return value == self.value

    def expected_value(self) -> float:
        return float(self.value)
