"""Continuous primitive distributions: Normal, Gamma, Beta, Uniform(0,1)."""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.core import types as ty
from repro.dists.base import (
    Distribution,
    is_real_number,
    require_positive,
    require_real,
)


class Normal(Distribution):
    """Normal distribution ``Normal(mean; stddev)`` with support ℝ."""

    name = "Normal"

    def __init__(self, mean: float, stddev: float):
        self.mean = require_real("mean", mean)
        self.stddev = require_positive("stddev", stddev)

    @property
    def params(self) -> tuple:
        return (self.mean, self.stddev)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.REAL

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.normal(self.mean, self.stddev))

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        z = (float(value) - self.mean) / self.stddev
        return -0.5 * z * z - math.log(self.stddev) - 0.5 * math.log(2.0 * math.pi)

    def in_support(self, value) -> bool:
        return is_real_number(value) and math.isfinite(float(value))

    def expected_value(self) -> float:
        return self.mean


class Gamma(Distribution):
    """Gamma distribution ``Gamma(shape; rate)`` with support ℝ+.

    Parameterised by *shape* and *rate* (inverse scale), matching the paper's
    ``Gamma(2; 1)`` examples.
    """

    name = "Gamma"

    def __init__(self, shape: float, rate: float):
        self.shape = require_positive("shape", shape)
        self.rate = require_positive("rate", rate)

    @property
    def params(self) -> tuple:
        return (self.shape, self.rate)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.PREAL

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.gamma(self.shape, 1.0 / self.rate))
        # Guard against underflow to exactly 0.0, which lies outside ℝ+.
        return value if value > 0.0 else math.ulp(0.0)

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        x = float(value)
        return (
            self.shape * math.log(self.rate)
            - math.lgamma(self.shape)
            + (self.shape - 1.0) * math.log(x)
            - self.rate * x
        )

    def in_support(self, value) -> bool:
        return is_real_number(value) and float(value) > 0.0 and math.isfinite(float(value))

    def expected_value(self) -> float:
        return self.shape / self.rate


class Beta(Distribution):
    """Beta distribution ``Beta(alpha; beta)`` with support ℝ(0,1)."""

    name = "Beta"

    def __init__(self, alpha: float, beta: float):
        self.alpha = require_positive("alpha", alpha)
        self.beta = require_positive("beta", beta)

    @property
    def params(self) -> tuple:
        return (self.alpha, self.beta)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.UREAL

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.beta(self.alpha, self.beta))
        # Clamp away from the closed endpoints, which are outside ℝ(0,1).
        eps = 1e-12
        return min(max(value, eps), 1.0 - eps)

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        x = float(value)
        log_beta_fn = math.lgamma(self.alpha) + math.lgamma(self.beta) - math.lgamma(
            self.alpha + self.beta
        )
        return (self.alpha - 1.0) * math.log(x) + (self.beta - 1.0) * math.log1p(-x) - log_beta_fn

    def in_support(self, value) -> bool:
        return is_real_number(value) and 0.0 < float(value) < 1.0

    def expected_value(self) -> float:
        return self.alpha / (self.alpha + self.beta)


class Uniform01(Distribution):
    """The uniform distribution on the open unit interval (paper's ``Unif``)."""

    name = "Unif"

    def __init__(self) -> None:
        pass

    @property
    def params(self) -> tuple:
        return ()

    @property
    def support_type(self) -> ty.BaseType:
        return ty.UREAL

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.random())
        eps = 1e-12
        return min(max(value, eps), 1.0 - eps)

    def log_prob(self, value) -> float:
        return 0.0 if self.in_support(value) else -math.inf

    def in_support(self, value) -> bool:
        return is_real_number(value) and 0.0 < float(value) < 1.0

    def expected_value(self) -> float:
        return 0.5


class TruncatedNormal(Distribution):
    """Normal distribution truncated to an interval.

    Not part of the core calculus; used by a few handwritten mini-Pyro
    baselines (e.g. proposing positive-valued latents) and exposed here for
    completeness of the substrate.
    """

    name = "TruncatedNormal"

    def __init__(self, mean: float, stddev: float, low: float, high: float):
        self.mean = require_real("mean", mean)
        self.stddev = require_positive("stddev", stddev)
        if not low < high:
            raise ValueError(f"low must be < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self._a = (self.low - self.mean) / self.stddev
        self._b = (self.high - self.mean) / self.stddev

    @property
    def params(self) -> tuple:
        return (self.mean, self.stddev, self.low, self.high)

    @property
    def support_type(self) -> ty.BaseType:
        if self.low >= 0.0:
            return ty.PREAL
        return ty.REAL

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        return float(
            stats.truncnorm.ppf(u, self._a, self._b, loc=self.mean, scale=self.stddev)
        )

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        return float(
            stats.truncnorm.logpdf(
                float(value), self._a, self._b, loc=self.mean, scale=self.stddev
            )
        )

    def in_support(self, value) -> bool:
        return is_real_number(value) and self.low < float(value) < self.high

    def expected_value(self) -> float:
        return float(
            stats.truncnorm.mean(self._a, self._b, loc=self.mean, scale=self.stddev)
        )
