"""Continuous primitive distributions: Normal, Gamma, Beta, Uniform(0,1)."""

from __future__ import annotations

import math

from repro.xp import np
from scipy import stats

from repro.core import types as ty
from repro.dists.base import (
    Distribution,
    as_float_batch,
    is_real_number,
    require_positive,
    require_real,
)

LOG_2PI = math.log(2.0 * math.pi)


# -- batched log-density kernels ------------------------------------------------
#
# One implementation per family, shared by the scalar-parameter batch methods
# below and by the engine's per-particle-parameter BatchedDist: parameters may
# be Python scalars or arrays broadcasting against the value batch.  Values
# outside the support map to -inf, mirroring the scalar ``log_prob`` exactly.


def normal_log_prob_kernel(mean, stddev, x: np.ndarray) -> np.ndarray:
    ok = np.isfinite(x)
    with np.errstate(over="ignore"):
        z = (np.where(ok, x, 0.0) - mean) / stddev
        lp = -0.5 * z * z - np.log(stddev) - 0.5 * LOG_2PI
    return np.where(ok, lp, -np.inf)


# -- in-bounds kernels -----------------------------------------------------------
#
# Each ``*_log_prob_inbounds`` function computes exactly what the masked
# kernel above it computes *when every value is in the support*: the masking
# ``np.where(ok, x, neutral)`` passes ``x`` through unchanged and the final
# ``np.where(ok, lp, -inf)`` passes ``lp`` through unchanged, so dropping
# both is a pure strength reduction with bitwise-identical results (the
# arithmetic expressions keep the masked kernels' association order).  The
# compiled batched backend calls these when the value's provenance (the
# family that sampled it) proves support membership; anything else must go
# through the masked kernel.  ``tests/test_fused_codegen.py`` pins the
# bitwise agreement per family.  Unlike the masked kernels these enter no
# ``np.errstate`` context of their own — the compiled kernels hold one
# ``errstate(over="ignore")`` for the whole run (a per-call context was
# measurably hot at fine-grained control-flow groups), and errstate only
# affects warning emission, never values.


def normal_log_prob_inbounds(mean, stddev, x: np.ndarray) -> np.ndarray:
    """``normal_log_prob_kernel`` for values known to be finite reals."""
    z = (x - mean) / stddev
    return -0.5 * z * z - np.log(stddev) - 0.5 * LOG_2PI


def gamma_log_prob_inbounds(shape, rate, x: np.ndarray) -> np.ndarray:
    """``gamma_log_prob_kernel`` for values known to be finite and positive."""
    from scipy.special import gammaln

    return shape * np.log(rate) - gammaln(shape) + (shape - 1.0) * np.log(x) - rate * x


def beta_log_prob_inbounds(alpha, beta, x: np.ndarray) -> np.ndarray:
    """``beta_log_prob_kernel`` for values known to lie in the open (0, 1)."""
    from scipy.special import gammaln

    log_beta_fn = gammaln(alpha) + gammaln(beta) - gammaln(alpha + beta)
    return (alpha - 1.0) * np.log(x) + (beta - 1.0) * np.log1p(-x) - log_beta_fn


def uniform01_log_prob_inbounds(x: np.ndarray) -> np.ndarray:
    """``uniform01_log_prob_kernel`` for values known to lie in the open (0, 1)."""
    return np.zeros(np.shape(x))


def gamma_log_prob_kernel(shape, rate, x: np.ndarray) -> np.ndarray:
    from scipy.special import gammaln

    ok = np.isfinite(x) & (x > 0.0)
    v = np.where(ok, x, 1.0)
    with np.errstate(over="ignore"):
        lp = shape * np.log(rate) - gammaln(shape) + (shape - 1.0) * np.log(v) - rate * v
    return np.where(ok, lp, -np.inf)


def beta_log_prob_kernel(alpha, beta, x: np.ndarray) -> np.ndarray:
    from scipy.special import gammaln

    ok = (x > 0.0) & (x < 1.0)
    v = np.where(ok, x, 0.5)
    log_beta_fn = gammaln(alpha) + gammaln(beta) - gammaln(alpha + beta)
    lp = (alpha - 1.0) * np.log(v) + (beta - 1.0) * np.log1p(-v) - log_beta_fn
    return np.where(ok, lp, -np.inf)


def uniform01_log_prob_kernel(x: np.ndarray) -> np.ndarray:
    return np.where((x > 0.0) & (x < 1.0), 0.0, -np.inf)


class Normal(Distribution):
    """Normal distribution ``Normal(mean; stddev)`` with support ℝ."""

    name = "Normal"

    def __init__(self, mean: float, stddev: float):
        self.mean = require_real("mean", mean)
        self.stddev = require_positive("stddev", stddev)

    @property
    def params(self) -> tuple:
        return (self.mean, self.stddev)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.REAL

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.normal(self.mean, self.stddev))

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        z = (float(value) - self.mean) / self.stddev
        return -0.5 * z * z - math.log(self.stddev) - 0.5 * math.log(2.0 * math.pi)

    def in_support(self, value) -> bool:
        return is_real_number(value) and math.isfinite(float(value))

    def expected_value(self) -> float:
        return self.mean

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.normal(self.mean, self.stddev, size=int(n))

    def log_prob_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().log_prob_batch(values)
        return normal_log_prob_kernel(self.mean, self.stddev, arr)

    def in_support_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().in_support_batch(values)
        return np.isfinite(arr)


class Gamma(Distribution):
    """Gamma distribution ``Gamma(shape; rate)`` with support ℝ+.

    Parameterised by *shape* and *rate* (inverse scale), matching the paper's
    ``Gamma(2; 1)`` examples.
    """

    name = "Gamma"

    def __init__(self, shape: float, rate: float):
        self.shape = require_positive("shape", shape)
        self.rate = require_positive("rate", rate)

    @property
    def params(self) -> tuple:
        return (self.shape, self.rate)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.PREAL

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.gamma(self.shape, 1.0 / self.rate))
        # Guard against underflow to exactly 0.0, which lies outside ℝ+.
        return value if value > 0.0 else math.ulp(0.0)

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        x = float(value)
        return (
            self.shape * math.log(self.rate)
            - math.lgamma(self.shape)
            + (self.shape - 1.0) * math.log(x)
            - self.rate * x
        )

    def in_support(self, value) -> bool:
        return is_real_number(value) and float(value) > 0.0 and math.isfinite(float(value))

    def expected_value(self) -> float:
        return self.shape / self.rate

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        values = rng.gamma(self.shape, 1.0 / self.rate, size=int(n))
        return np.maximum(values, math.ulp(0.0))

    def log_prob_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().log_prob_batch(values)
        return gamma_log_prob_kernel(self.shape, self.rate, arr)

    def in_support_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().in_support_batch(values)
        return np.isfinite(arr) & (arr > 0.0)


class Beta(Distribution):
    """Beta distribution ``Beta(alpha; beta)`` with support ℝ(0,1)."""

    name = "Beta"

    def __init__(self, alpha: float, beta: float):
        self.alpha = require_positive("alpha", alpha)
        self.beta = require_positive("beta", beta)

    @property
    def params(self) -> tuple:
        return (self.alpha, self.beta)

    @property
    def support_type(self) -> ty.BaseType:
        return ty.UREAL

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.beta(self.alpha, self.beta))
        # Clamp away from the closed endpoints, which are outside ℝ(0,1).
        eps = 1e-12
        return min(max(value, eps), 1.0 - eps)

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        x = float(value)
        log_beta_fn = math.lgamma(self.alpha) + math.lgamma(self.beta) - math.lgamma(
            self.alpha + self.beta
        )
        return (self.alpha - 1.0) * math.log(x) + (self.beta - 1.0) * math.log1p(-x) - log_beta_fn

    def in_support(self, value) -> bool:
        return is_real_number(value) and 0.0 < float(value) < 1.0

    def expected_value(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        eps = 1e-12
        return np.clip(rng.beta(self.alpha, self.beta, size=int(n)), eps, 1.0 - eps)

    def log_prob_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().log_prob_batch(values)
        return beta_log_prob_kernel(self.alpha, self.beta, arr)

    def in_support_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().in_support_batch(values)
        return (arr > 0.0) & (arr < 1.0)


class Uniform01(Distribution):
    """The uniform distribution on the open unit interval (paper's ``Unif``)."""

    name = "Unif"

    def __init__(self) -> None:
        pass

    @property
    def params(self) -> tuple:
        return ()

    @property
    def support_type(self) -> ty.BaseType:
        return ty.UREAL

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.random())
        eps = 1e-12
        return min(max(value, eps), 1.0 - eps)

    def log_prob(self, value) -> float:
        return 0.0 if self.in_support(value) else -math.inf

    def in_support(self, value) -> bool:
        return is_real_number(value) and 0.0 < float(value) < 1.0

    def expected_value(self) -> float:
        return 0.5

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        eps = 1e-12
        return np.clip(rng.random(int(n)), eps, 1.0 - eps)

    def log_prob_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().log_prob_batch(values)
        return uniform01_log_prob_kernel(arr)

    def in_support_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().in_support_batch(values)
        return (arr > 0.0) & (arr < 1.0)


class TruncatedNormal(Distribution):
    """Normal distribution truncated to an interval.

    Not part of the core calculus; used by a few handwritten mini-Pyro
    baselines (e.g. proposing positive-valued latents) and exposed here for
    completeness of the substrate.
    """

    name = "TruncatedNormal"

    def __init__(self, mean: float, stddev: float, low: float, high: float):
        self.mean = require_real("mean", mean)
        self.stddev = require_positive("stddev", stddev)
        if not low < high:
            raise ValueError(f"low must be < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self._a = (self.low - self.mean) / self.stddev
        self._b = (self.high - self.mean) / self.stddev

    @property
    def params(self) -> tuple:
        return (self.mean, self.stddev, self.low, self.high)

    @property
    def support_type(self) -> ty.BaseType:
        if self.low >= 0.0:
            return ty.PREAL
        return ty.REAL

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        return float(
            stats.truncnorm.ppf(u, self._a, self._b, loc=self.mean, scale=self.stddev)
        )

    def log_prob(self, value) -> float:
        if not self.in_support(value):
            return -math.inf
        return float(
            stats.truncnorm.logpdf(
                float(value), self._a, self._b, loc=self.mean, scale=self.stddev
            )
        )

    def in_support(self, value) -> bool:
        return is_real_number(value) and self.low < float(value) < self.high

    def expected_value(self) -> float:
        return float(
            stats.truncnorm.mean(self._a, self._b, loc=self.mean, scale=self.stddev)
        )

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(int(n))
        return stats.truncnorm.ppf(u, self._a, self._b, loc=self.mean, scale=self.stddev)

    def log_prob_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().log_prob_batch(values)
        ok = (arr > self.low) & (arr < self.high)
        lp = stats.truncnorm.logpdf(
            np.where(ok, arr, 0.5 * (self.low + self.high)),
            self._a, self._b, loc=self.mean, scale=self.stddev,
        )
        return np.where(ok, lp, -np.inf)

    def in_support_batch(self, values) -> np.ndarray:
        arr = as_float_batch(values)
        if arr is None:
            return super().in_support_batch(values)
        return (arr > self.low) & (arr < self.high)
