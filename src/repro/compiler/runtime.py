"""Runtime support for compiled model/guide pairs.

The compiler emits generator functions that yield op tuples; this module
schedules a (model, guide) pair of those generators, routing messages over
the latent channel, replaying observation values into the model's obs sends,
and scoring every sample site through :func:`repro.minipyro.sample` so the
mini-Pyro tracing machinery is exercised exactly as by handwritten code.

Op tuple vocabulary (produced by :mod:`repro.compiler.codegen`)::

    ("recv_sample", channel, dist)
    ("send_sample", channel, dist)
    ("send_branch", channel, bool_value)
    ("recv_branch", channel)
    ("fold", channel)
    ("observe", "", dist, value)
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ChannelProtocolError, InferenceError
from repro.minipyro import handlers, primitives
from repro.minipyro.primitives import sample as minipyro_sample
from repro.minipyro.trace_struct import Trace
from repro.utils.numerics import (
    effective_sample_size,
    log_mean_exp,
    normalize_log_weights,
)
from repro.utils.rng import ensure_rng

GeneratorFactory = Callable[[], object]


@dataclass
class PairRun:
    """The outcome of one joint execution of a compiled model/guide pair."""

    model_log_weight: float
    guide_log_weight: float
    model_trace: Trace
    guide_trace: Trace
    latent_values: List[object]
    model_value: object
    guide_value: object

    @property
    def log_weight(self) -> float:
        if self.guide_log_weight == -math.inf:
            return -math.inf
        return self.model_log_weight - self.guide_log_weight


@dataclass
class _Coroutine:
    name: str
    generator: object
    tracer: handlers.trace = field(default_factory=handlers.trace)
    started: bool = False
    finished: bool = False
    value: object = None
    pending_op: Optional[tuple] = None
    pending_send: Optional[object] = None
    site_counter: int = 0

    def next_site(self, channel: str) -> str:
        name = f"{self.name}/{channel}_{self.site_counter}"
        self.site_counter += 1
        return name


def run_compiled_pair(
    model_factory: GeneratorFactory,
    guide_factory: GeneratorFactory,
    obs_values: Optional[Sequence[object]] = None,
    rng: Optional[np.random.Generator] = None,
    latent_channel: str = "latent",
    obs_channel: str = "obs",
) -> PairRun:
    """Jointly execute compiled model and guide coroutines once."""
    rng = ensure_rng(rng)
    obs_queue = deque(obs_values or [])

    model = _Coroutine(name="model", generator=model_factory())
    guide = _Coroutine(name="guide", generator=guide_factory())

    # Directional message queues on the latent channel.
    guide_to_model: deque = deque()
    model_to_guide: deque = deque()
    latent_values: List[object] = []
    extra_log_weight = {"model": 0.0, "guide": 0.0}

    def scored_sample(coroutine: _Coroutine, channel: str, dist, value=None):
        site = coroutine.next_site(channel)
        with handlers.seed(rng), coroutine.tracer:
            return minipyro_sample(site, dist, obs=value)

    def handle(coroutine: _Coroutine, op: tuple):
        """Returns (ready, value_to_send)."""
        kind = op[0]
        if kind == "observe":
            _, _, dist, value = op
            extra_log_weight[coroutine.name] += dist.log_prob(value)
            return True, None
        if kind == "fold":
            return True, None

        channel = op[1]
        is_model = coroutine is model

        if kind == "send_sample":
            dist = op[2]
            if is_model and channel == obs_channel:
                observed = obs_queue.popleft() if obs_queue else None
                value = scored_sample(coroutine, channel, dist, value=observed)
                return True, value
            value = scored_sample(coroutine, channel, dist)
            if not is_model and channel == latent_channel:
                guide_to_model.append(("val", value))
                latent_values.append(value)
            elif is_model and channel == latent_channel:
                model_to_guide.append(("val", value))
            return True, value

        if kind == "recv_sample":
            dist = op[2]
            incoming = guide_to_model if is_model else model_to_guide
            if not incoming:
                return False, None
            tag, value = incoming.popleft()
            if tag != "val":
                raise ChannelProtocolError(
                    f"{coroutine.name} expected a sample on {channel!r} but received a {tag}"
                )
            scored_sample(coroutine, channel, dist, value=value)
            return True, value

        if kind == "send_branch":
            selection = bool(op[2])
            outgoing = model_to_guide if is_model else guide_to_model
            outgoing.append(("dir", selection))
            return True, selection

        if kind == "recv_branch":
            incoming = guide_to_model if is_model else model_to_guide
            if not incoming:
                return False, None
            tag, selection = incoming.popleft()
            if tag != "dir":
                raise ChannelProtocolError(
                    f"{coroutine.name} expected a branch selection on {channel!r} but received a {tag}"
                )
            return True, selection

        raise ChannelProtocolError(f"unknown compiled op {op!r}")

    def step(coroutine: _Coroutine) -> bool:
        progressed = False
        while not coroutine.finished:
            try:
                if not coroutine.started:
                    coroutine.started = True
                    op = next(coroutine.generator)
                elif coroutine.pending_op is not None:
                    op = coroutine.pending_op
                    coroutine.pending_op = None
                else:
                    op = coroutine.generator.send(coroutine.pending_send)
                    coroutine.pending_send = None
            except StopIteration as stop:
                coroutine.finished = True
                coroutine.value = stop.value
                return True
            ready, value = handle(coroutine, op)
            if not ready:
                coroutine.pending_op = op
                return progressed
            coroutine.pending_send = value
            progressed = True
        return progressed

    while not (model.finished and guide.finished):
        progressed = False
        for coroutine in (guide, model):
            if not coroutine.finished and step(coroutine):
                progressed = True
        if not progressed:
            raise ChannelProtocolError(
                "deadlock while running compiled model/guide coroutines: "
                "the two programs do not follow the same guidance protocol"
            )

    return PairRun(
        model_log_weight=model.tracer.trace.log_prob_sum() + extra_log_weight["model"],
        guide_log_weight=guide.tracer.trace.log_prob_sum() + extra_log_weight["guide"],
        model_trace=model.tracer.trace,
        guide_trace=guide.tracer.trace,
        latent_values=latent_values,
        model_value=model.value,
        guide_value=guide.value,
    )


# ---------------------------------------------------------------------------
# Inference wrappers for compiled pairs
# ---------------------------------------------------------------------------


@dataclass
class CompiledImportanceResults:
    """Importance-sampling output for a compiled pair."""

    runs: List[PairRun]

    @property
    def num_samples(self) -> int:
        return len(self.runs)

    @property
    def log_weights(self) -> List[float]:
        return [run.log_weight for run in self.runs]

    def log_evidence(self) -> float:
        return log_mean_exp(self.log_weights)

    def effective_sample_size(self) -> float:
        return effective_sample_size(self.log_weights)

    def posterior_mean_of_latent(self, index: int) -> float:
        pairs = [
            (float(run.latent_values[index]), run.log_weight)
            for run in self.runs
            if len(run.latent_values) > index
            and isinstance(run.latent_values[index], (int, float))
        ]
        if not pairs:
            raise InferenceError(f"no run produced a latent value at index {index}")
        values, weights = zip(*pairs)
        normalized = normalize_log_weights(list(weights))
        return float(np.dot(np.asarray(values), normalized))


def compiled_importance_sampling(
    model_factory: GeneratorFactory,
    guide_factory: GeneratorFactory,
    obs_values: Optional[Sequence[object]] = None,
    num_samples: int = 100,
    seed: int = 0,
    latent_channel: str = "latent",
    obs_channel: str = "obs",
) -> CompiledImportanceResults:
    """Self-normalised importance sampling with the compiled pair."""
    rng = ensure_rng(seed)
    runs = [
        run_compiled_pair(
            model_factory,
            guide_factory,
            obs_values=obs_values,
            rng=rng,
            latent_channel=latent_channel,
            obs_channel=obs_channel,
        )
        for _ in range(num_samples)
    ]
    return CompiledImportanceResults(runs)


@dataclass
class CompiledSVIResults:
    """SVI output for a compiled pair."""

    elbo_history: List[float]
    params: Dict[str, float]

    @property
    def final_elbo(self) -> float:
        if not self.elbo_history:
            raise InferenceError("SVI took no steps")
        return self.elbo_history[-1]


def compiled_svi(
    model_factory: GeneratorFactory,
    guide_factory: GeneratorFactory,
    obs_values: Optional[Sequence[object]] = None,
    num_steps: int = 50,
    num_particles: int = 2,
    learning_rate: float = 0.05,
    fd_epsilon: float = 1e-3,
    seed: int = 0,
    param_inits: Optional[Dict[str, float]] = None,
    latent_channel: str = "latent",
    obs_channel: str = "obs",
) -> CompiledSVIResults:
    """Finite-difference SVI over the compiled pair's parameter store."""
    rng = ensure_rng(seed)
    store = primitives.get_param_store()
    for name, init in (param_inits or {}).items():
        store.setdefault(name, float(init))

    def elbo(seed_value: int) -> float:
        local_rng = np.random.default_rng(seed_value)
        terms = []
        for _ in range(num_particles):
            run = run_compiled_pair(
                model_factory,
                guide_factory,
                obs_values=obs_values,
                rng=local_rng,
                latent_channel=latent_channel,
                obs_channel=obs_channel,
            )
            if run.model_log_weight == -math.inf:
                return -math.inf
            terms.append(run.model_log_weight - run.guide_log_weight)
        return float(np.mean(terms))

    history: List[float] = []
    for _ in range(num_steps):
        seed_value = int(rng.integers(0, 2**31 - 1))
        base = elbo(seed_value)
        history.append(base)
        param_names = sorted((param_inits or store).keys())
        grads: Dict[str, float] = {}
        for name in param_names:
            original = store[name]
            store[name] = original + fd_epsilon
            up = elbo(seed_value)
            store[name] = original - fd_epsilon
            down = elbo(seed_value)
            store[name] = original
            if math.isfinite(up) and math.isfinite(down):
                grads[name] = (up - down) / (2.0 * fd_epsilon)
            else:
                grads[name] = 0.0
        for name, grad in grads.items():
            store[name] = store[name] + learning_rate * grad

    return CompiledSVIResults(elbo_history=history, params=dict(store))
