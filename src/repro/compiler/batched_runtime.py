"""Runtime support for fused batched kernels (the compiled backend).

:func:`repro.compiler.codegen.compile_fused_pair` emits, for a model/guide
pair, one straight-line Python function over ``(rng, n)`` that resolves every
sample site with a single batched call and accumulates per-particle
log-weights in preallocated arrays.  This module is the emitted code's
standard library: expression helpers that mirror the vectorized evaluator's
semantics (:func:`repro.engine.vectorize.eval_expr_vec`), per-family sample
and score helpers that consume the RNG and compute densities *bitwise
identically* to the interpretive runtime's :class:`~repro.engine.batched.BatchedDist`,
and the branch-partitioning machinery that dispatches divergent particle
groups through compiled sub-kernels.

Bitwise contract
----------------

Every helper here must produce, lane for lane, the same bits the interpretive
vectorizer produces for the same program point — that is what licenses the
conformance suite's exact compiled-vs-interp comparisons and makes
``backend="compiled"`` a pure execution-strategy change.  Three kinds of
freedom are exploited, none of which change results:

* masked support checks are dropped when the value's *provenance* (the family
  that sampled it) proves support membership — ``np.where(ok, x, _)`` with an
  all-true mask is the identity (see ``*_log_prob_inbounds`` in
  :mod:`repro.dists`);
* scalar parameters are kept scalar instead of broadcast to ``(n,)`` arrays —
  NumPy scalar-array arithmetic broadcasts to the same lanewise values;
* loop-invariant scalar subexpressions are hoisted and computed once.

The RNG stream is pinned by always issuing exactly the draw calls
:class:`~repro.engine.batched.BatchedDist` would issue, with the same
scalar-vs-array parameter dispatch.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.xp import np

from repro.core import ast
from repro.core.semantics import traces as tr
from repro.dists.base import Distribution
from repro.dists.continuous import (
    beta_log_prob_inbounds,
    beta_log_prob_kernel,
    gamma_log_prob_inbounds,
    gamma_log_prob_kernel,
    normal_log_prob_inbounds,
    normal_log_prob_kernel,
    uniform01_log_prob_inbounds,
    uniform01_log_prob_kernel,
)
from repro.dists.discrete import (
    bernoulli_log_prob_kernel,
    geometric_log_prob_inbounds,
    geometric_log_prob_kernel,
    poisson_log_prob_inbounds,
    poisson_log_prob_kernel,
)
from repro.engine.batched import BatchedDist, _require_all
from repro.engine.vectorize import (
    VecMessage,
    VectorizationUnsupported,
    _broadcast_values,
    _GroupResult,
    _Leaf,
)
from repro.errors import ChannelProtocolError, EvaluationError, TraceExhausted, TraceTypeMismatch

__all__ = [
    "as_bool",
    "bind_args",
    "uniform_or_none",
]

_ULP0 = math.ulp(0.0)
_CLIP_EPS = 1e-12


# ---------------------------------------------------------------------------
# Argument binding and expression semantics (mirror eval_expr_vec)
# ---------------------------------------------------------------------------


def bind_args(entry: str, nparams: int, args: Sequence[object]) -> Tuple[object, ...]:
    """Mirror ``interpret_procedure_vec``'s arity check for an entry point."""
    args = tuple(args)
    if len(args) != nparams:
        raise EvaluationError(f"{entry} expects {nparams} arguments, got {len(args)}")
    return args


def as_bool(value: object, what: str) -> object:
    """Mirror the vectorized evaluator's Boolean screening."""
    if isinstance(value, bool):
        return value
    if isinstance(value, np.ndarray) and value.dtype.kind == "b":
        return value
    raise EvaluationError(f"{what}: expected a Boolean, got {value!r}")


def ifexp(cond: object, then, orelse):
    """Strict-both-arms array conditional / lazy scalar conditional.

    Mirrors ``eval_expr_vec``'s ``IfExpr`` case exactly, including the
    :class:`VectorizationUnsupported` screen on non-scalar arms — the
    compiled runner catches it and takes the same whole-batch sequential
    fallback the interpretive vectorizer takes.
    """
    cond = as_bool(cond, "if-condition")
    if isinstance(cond, bool):
        return then() if cond else orelse()
    then_value, else_value = then(), orelse()
    for value in (then_value, else_value):
        if not (isinstance(value, np.ndarray) or isinstance(value, (int, float, bool))):
            raise VectorizationUnsupported(
                f"if-expression over a particle axis with non-scalar arm {value!r}"
            )
    return np.where(cond, then_value, else_value)


def and_(left: object, right):
    left = as_bool(left, "left operand of &&")
    if isinstance(left, bool):
        if not left:
            return False
        return as_bool(right(), "right operand of &&")
    return np.logical_and(left, as_bool(right(), "right operand of &&"))


def or_(left: object, right):
    left = as_bool(left, "left operand of ||")
    if isinstance(left, bool):
        if left:
            return True
        return as_bool(right(), "right operand of ||")
    return np.logical_or(left, as_bool(right(), "right operand of ||"))


def not_(value: object) -> object:
    value = as_bool(value, "operand of !")
    return (not value) if isinstance(value, bool) else np.logical_not(value)


def eq(left: object, right: object) -> object:
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return np.equal(left, right)
    return left == right


def ne(left: object, right: object) -> object:
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return np.not_equal(left, right)
    return left != right


def div(left: object, right: object) -> object:
    if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
        if right == 0.0:
            raise EvaluationError("division by zero")
        return left / right
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.asarray(left, dtype=float) / np.asarray(right, dtype=float)


def _unop(value: object, scalar_fn, array_fn, domain_check=None, domain_msg=None):
    if not isinstance(value, np.ndarray):
        number = float(value)
        if domain_check is not None and not domain_check(number):
            raise EvaluationError(domain_msg.format(number))
        return scalar_fn(number)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return array_fn(value)


def exp_(value: object) -> object:
    return _unop(value, math.exp, np.exp)


def log_(value: object) -> object:
    return _unop(
        value, math.log, np.log,
        domain_check=lambda x: x > 0.0,
        domain_msg="log of a non-positive number {}",
    )


def sqrt_(value: object) -> object:
    return _unop(
        value, math.sqrt, np.sqrt,
        domain_check=lambda x: x >= 0.0,
        domain_msg="sqrt of a negative number {}",
    )


def proj(value: object, index: int) -> object:
    if not isinstance(value, tuple) or not 0 <= index < len(value):
        raise EvaluationError(f"invalid projection .{index} from {value!r}")
    return value[index]


# ---------------------------------------------------------------------------
# Distribution construction (generic paths — exact BatchedDist parity)
# ---------------------------------------------------------------------------


def make_batched(kind: ast.DistKind, args: Sequence[object], n: int) -> BatchedDist:
    """Mirror ``eval_expr_vec``'s ``DistExpr`` case (argument screening included)."""
    for a in args:
        if not (isinstance(a, np.ndarray) or isinstance(a, (int, float))) or isinstance(a, bool):
            raise EvaluationError(f"{kind.value} parameter: expected a number, got {a!r}")
    return BatchedDist(kind, list(args), n)


def as_batched(value: object, n: int) -> BatchedDist:
    """Mirror ``_eval_dist_vec`` for non-literal distribution expressions."""
    if isinstance(value, BatchedDist):
        return value
    if isinstance(value, Distribution):
        return BatchedDist.from_scalar(value, n)
    raise EvaluationError(f"sample command expects a distribution, got {value!r}")


def scalar_dist(kind: ast.DistKind, args: Sequence[object]) -> Distribution:
    """Mirror ``BatchedDist``'s shared-parameter construction exactly."""
    from repro.dists.factory import make_distribution

    return make_distribution(kind, [float(a) for a in args])


def score_scalar(dist: Distribution, value: object, n: int) -> np.ndarray:
    """Score through a scalar distribution's batch API, as the interpreter does."""
    return dist.log_prob_batch(_broadcast_values(value, n))


def bind_call(name: str, nparams: int, argument: object) -> Tuple[object, ...]:
    """Mirror ``_bind_arguments_vec`` for multi-parameter procedure calls."""
    if not isinstance(argument, tuple) or len(argument) != nparams:
        raise EvaluationError(f"{name} expects {nparams} arguments, got {argument!r}")
    return argument


def score_dist(dist: BatchedDist, value: object, n: int) -> np.ndarray:
    """Score through a :class:`BatchedDist` exactly as the interpreter does."""
    return dist.log_prob(_broadcast_values(value, n))


# ---------------------------------------------------------------------------
# Per-family parameter checks (mirror BatchedDist._validate lanewise)
# ---------------------------------------------------------------------------


def chk_normal(mean, stddev) -> None:
    _require_all(np.isfinite(mean), ast.DistKind.NORMAL, "mean must be a finite real")
    _require_all(
        np.isfinite(stddev) & (np.asarray(stddev) > 0.0),
        ast.DistKind.NORMAL,
        "stddev must be positive",
    )


def chk_gamma(shape, rate) -> None:
    _require_all(
        np.isfinite(shape) & (np.asarray(shape) > 0.0),
        ast.DistKind.GAMMA,
        "shape must be positive",
    )
    _require_all(
        np.isfinite(rate) & (np.asarray(rate) > 0.0),
        ast.DistKind.GAMMA,
        "rate must be positive",
    )


def chk_beta(alpha, beta) -> None:
    _require_all(
        np.isfinite(alpha) & (np.asarray(alpha) > 0.0),
        ast.DistKind.BETA,
        "alpha must be positive",
    )
    _require_all(
        np.isfinite(beta) & (np.asarray(beta) > 0.0),
        ast.DistKind.BETA,
        "beta must be positive",
    )


def chk_unit(kind: ast.DistKind, p) -> None:
    p = np.asarray(p)
    _require_all((p > 0.0) & (p < 1.0), kind, "p must lie in (0, 1)")


def chk_pois(rate) -> None:
    _require_all(
        np.isfinite(rate) & (np.asarray(rate) > 0.0),
        ast.DistKind.POIS,
        "rate must be positive",
    )


# Single-parameter variants for the megakernel tier: when provenance proves
# one parameter of a two-parameter family, only the other needs its check.
# Each reproduces the corresponding ``_require_all`` call of the combined
# ``chk_*`` above verbatim (same predicate, same message), so skipping a
# *proven* parameter's check is unobservable — a proven parameter passes it
# by construction.


def chk_normal_mean(mean) -> None:
    _require_all(np.isfinite(mean), ast.DistKind.NORMAL, "mean must be a finite real")


def chk_normal_stddev(stddev) -> None:
    _require_all(
        np.isfinite(stddev) & (np.asarray(stddev) > 0.0),
        ast.DistKind.NORMAL,
        "stddev must be positive",
    )


def chk_gamma_shape(shape) -> None:
    _require_all(
        np.isfinite(shape) & (np.asarray(shape) > 0.0),
        ast.DistKind.GAMMA,
        "shape must be positive",
    )


def chk_gamma_rate(rate) -> None:
    _require_all(
        np.isfinite(rate) & (np.asarray(rate) > 0.0),
        ast.DistKind.GAMMA,
        "rate must be positive",
    )


def chk_beta_alpha(alpha) -> None:
    _require_all(
        np.isfinite(alpha) & (np.asarray(alpha) > 0.0),
        ast.DistKind.BETA,
        "alpha must be positive",
    )


def chk_beta_beta(beta) -> None:
    _require_all(
        np.isfinite(beta) & (np.asarray(beta) > 0.0),
        ast.DistKind.BETA,
        "beta must be positive",
    )


# ---------------------------------------------------------------------------
# Per-family batched samplers (array-parameter fast paths)
#
# Each mirrors the corresponding branch of ``BatchedDist.sample`` verbatim so
# the RNG stream is consumed identically; parameters arrive unbroadcast
# (scalars stay scalar), which NumPy's generators treat identically.
# ---------------------------------------------------------------------------


def samp_normal(rng: np.random.Generator, n: int, mean, stddev) -> np.ndarray:
    return rng.normal(mean, stddev, size=n)


def samp_gamma(rng: np.random.Generator, n: int, shape, rate) -> np.ndarray:
    return np.maximum(rng.gamma(shape, 1.0 / rate, size=n), _ULP0)


def samp_beta(rng: np.random.Generator, n: int, alpha, beta) -> np.ndarray:
    return np.clip(rng.beta(alpha, beta, size=n), _CLIP_EPS, 1.0 - _CLIP_EPS)


def samp_unif(rng: np.random.Generator, n: int) -> np.ndarray:
    return np.clip(rng.random(n), _CLIP_EPS, 1.0 - _CLIP_EPS)


def samp_ber(rng: np.random.Generator, n: int, p) -> np.ndarray:
    return rng.random(n) < p


def samp_geo(rng: np.random.Generator, n: int, p) -> np.ndarray:
    return rng.geometric(p, size=n) - 1


def samp_pois(rng: np.random.Generator, n: int, rate) -> np.ndarray:
    return rng.poisson(rate, size=n)


# ---------------------------------------------------------------------------
# Per-family score helpers
#
# ``score_<family>_in`` requires the value's provenance to prove support
# membership (codegen only emits it then); ``score_<family>_full`` replicates
# the masked kernel path for arbitrary float batches; the ``*_at`` variants
# score one shared scalar value (a replayed observation) against the whole
# group, skipping the interpreter's ``np.full`` broadcast when the scalar is
# representative.  All fall back to the exact BatchedDist path on any input
# the fast expressions do not cover (bools, exotic payloads).
# ---------------------------------------------------------------------------


def _is_plain_number(value: object) -> bool:
    if isinstance(value, (bool, np.bool_)):
        return False
    return isinstance(value, (int, float, np.integer, np.floating))


def _fallback_score(kind: ast.DistKind, params: Sequence[object], value, n: int) -> np.ndarray:
    return score_dist(make_batched(kind, params, n), value, n)


def _spread(lp, ok: bool, n: int) -> np.ndarray:
    """Lift a scalar lane value to the group, mirroring the masked where."""
    if not ok:
        return np.full(n, -np.inf)
    if np.ndim(lp) == 0:
        return np.full(n, lp)
    return lp


def score_normal_in(mean, stddev, x) -> np.ndarray:
    return normal_log_prob_inbounds(mean, stddev, x)


def score_normal_at(mean, stddev, y, n: int) -> np.ndarray:
    if not _is_plain_number(y):
        return _fallback_score(ast.DistKind.NORMAL, (mean, stddev), y, n)
    ok = bool(np.isfinite(y))
    lp = normal_log_prob_inbounds(mean, stddev, y if ok else 0.0)
    return _spread(lp, ok, n)


def score_gamma_in(shape, rate, x) -> np.ndarray:
    return gamma_log_prob_inbounds(shape, rate, x)


def score_gamma_at(shape, rate, y, n: int) -> np.ndarray:
    if not _is_plain_number(y):
        return _fallback_score(ast.DistKind.GAMMA, (shape, rate), y, n)
    ok = bool(np.isfinite(y)) and y > 0.0
    lp = gamma_log_prob_inbounds(shape, rate, y if ok else 1.0)
    return _spread(lp, ok, n)


def score_beta_in(alpha, beta, x) -> np.ndarray:
    return beta_log_prob_inbounds(alpha, beta, x)


def score_beta_at(alpha, beta, y, n: int) -> np.ndarray:
    if not _is_plain_number(y):
        return _fallback_score(ast.DistKind.BETA, (alpha, beta), y, n)
    ok = 0.0 < y < 1.0
    lp = beta_log_prob_inbounds(alpha, beta, y if ok else 0.5)
    return _spread(lp, ok, n)


def score_unif_in(x) -> np.ndarray:
    return uniform01_log_prob_inbounds(x)


def score_unif_at(y, n: int) -> np.ndarray:
    if not _is_plain_number(y):
        return _fallback_score(ast.DistKind.UNIF, (), y, n)
    return np.full(n, 0.0 if 0.0 < y < 1.0 else -np.inf)


def score_ber_in(p, x) -> np.ndarray:
    return bernoulli_log_prob_kernel(p, x)


def score_ber_at(p, y, n: int) -> np.ndarray:
    if not isinstance(y, (bool, np.bool_)):
        return _fallback_score(ast.DistKind.BER, (p,), y, n)
    lp = np.log(p) if y else np.log1p(-p)
    return _spread(lp, True, n)


def score_geo_in(p, x) -> np.ndarray:
    return geometric_log_prob_inbounds(p, x)


def score_geo_at(p, y, n: int) -> np.ndarray:
    if not _is_plain_number(y):
        return _fallback_score(ast.DistKind.GEO, (p,), y, n)
    ok = bool(np.isfinite(y)) and float(y).is_integer() and y >= 0
    lp = geometric_log_prob_inbounds(p, float(y) if ok else 0.0)
    return _spread(lp, ok, n)


def score_pois_in(rate, x) -> np.ndarray:
    return poisson_log_prob_inbounds(rate, x)


def score_pois_at(rate, y, n: int) -> np.ndarray:
    if not _is_plain_number(y):
        return _fallback_score(ast.DistKind.POIS, (rate,), y, n)
    ok = bool(np.isfinite(y)) and float(y).is_integer() and y >= 0
    lp = poisson_log_prob_inbounds(rate, float(y) if ok else 0.0)
    return _spread(lp, ok, n)


_FULL_KERNELS = {
    ast.DistKind.NORMAL: normal_log_prob_kernel,
    ast.DistKind.GAMMA: gamma_log_prob_kernel,
    ast.DistKind.BETA: beta_log_prob_kernel,
    ast.DistKind.GEO: geometric_log_prob_kernel,
    ast.DistKind.POIS: poisson_log_prob_kernel,
}


def score_full(kind: ast.DistKind, params: Sequence[object], value, n: int) -> np.ndarray:
    """Masked-kernel scoring for values of unknown provenance.

    Mirrors ``BatchedDist.log_prob``'s array-parameter dispatch, including the
    dtype screens that shunt Boolean/object batches to the exact scalar loop.
    """
    arr = np.asarray(value)
    if kind is ast.DistKind.BER:
        if arr.dtype.kind != "b":
            return _fallback_score(kind, params, value, n)
        return bernoulli_log_prob_kernel(params[0], arr)
    if arr.dtype == object or arr.dtype.kind == "b":
        return _fallback_score(kind, params, value, n)
    x = arr.astype(float, copy=False)
    if kind is ast.DistKind.UNIF:
        return uniform01_log_prob_kernel(x)
    kernel = _FULL_KERNELS.get(kind)
    if kernel is None:
        return _fallback_score(kind, params, value, n)
    return kernel(*params, x)


# ---------------------------------------------------------------------------
# Branch resolution and group partitioning
# ---------------------------------------------------------------------------


def uniform_or_none(pred: object) -> Optional[bool]:
    """``True``/``False`` when the predicate is uniform, ``None`` when mixed."""
    if isinstance(pred, bool):
        return pred
    pred = np.asarray(pred, dtype=bool)
    if pred.all():
        return True
    if not pred.any():
        return False
    return None


def take(value: object, mask: np.ndarray) -> object:
    """Slice one live variable down to a subgroup (tuples recurse)."""
    if isinstance(value, np.ndarray):
        return value[mask]
    if isinstance(value, tuple):
        return tuple(take(item, mask) for item in value)
    return value


def slc_msgs(
    messages: list,
    mask: np.ndarray,
    dir_provider: Optional[bool] = None,
    selection: bool = False,
) -> list:
    """Slice a recorded-message column set for a subgroup.

    When the split is a communicated branch, the subgroup's log additionally
    carries the branch selection — exactly what the interpretive partitioner
    appends before re-execution.
    """
    out = [message.sliced(mask) for message in messages]
    if dir_provider is not None:
        out.append(VecMessage("dir", dir_provider, selection))
    return out


def slc_arrs(arrays: list, mask: np.ndarray) -> list:
    return [a[mask] if isinstance(a, np.ndarray) else a for a in arrays]


def slc_led(ledger: list, mask: np.ndarray) -> list:
    return [(channel, scores[mask]) for channel, scores in ledger]


def val_msg(provider: bool, payload: object) -> VecMessage:
    return VecMessage("val", provider, payload)


def dir_msg(provider: bool, selection: bool) -> VecMessage:
    return VecMessage("dir", provider, selection)


def fold_msg() -> VecMessage:
    return VecMessage("fold", True)


# ---------------------------------------------------------------------------
# Observation replay (mirror the scheduler's TraceCursor usage)
# ---------------------------------------------------------------------------


def obs_value(obs: Sequence[tr.Message], position: int, what: str) -> object:
    if position >= len(obs):
        raise TraceExhausted(
            f"{what}: expected a Message message but the trace is exhausted"
        )
    message = obs[position]
    if not isinstance(message, (tr.ValP, tr.ValC)):
        raise ChannelProtocolError(
            f"{what}: replay trace provides {message}, expected a sample value"
        )
    return message.value


def obs_fold(obs: Sequence[tr.Message], position: int, what: str) -> None:
    if position >= len(obs):
        raise TraceExhausted(
            f"{what}: expected a Fold message but the trace is exhausted"
        )
    message = obs[position]
    if not isinstance(message, tr.Fold):
        raise TraceTypeMismatch(
            f"{what}: expected a Fold message but found {message}"
        )


# ---------------------------------------------------------------------------
# Leaf assembly
# ---------------------------------------------------------------------------


def make_leaf(
    indices: np.ndarray,
    lw_model: np.ndarray,
    lw_guide: np.ndarray,
    recorded: dict,
    obs_scores: list,
    model_value: object,
    guide_value: object,
    model_site_scores: list,
    guide_site_scores: list,
) -> _Leaf:
    return _Leaf(
        indices=indices,
        model_log_weights=lw_model,
        guide_log_weights=lw_guide,
        recorded=recorded,
        obs_scores=obs_scores,
        model_value=model_value,
        guide_value=guide_value,
        model_site_scores=model_site_scores,
        guide_site_scores=guide_site_scores,
    )


# ---------------------------------------------------------------------------
# Megakernel support: integer gathers, path stamps, and compiled rescoring
# ---------------------------------------------------------------------------
#
# The ``gat*`` helpers are the megakernel's counterparts to the ``slc*``
# mask slicers above.  They take integer *positions* (``np.flatnonzero`` of
# the arm mask, computed once per fork arm) instead of a boolean mask, so
# each state array pays O(subgroup) gather work rather than an O(parent)
# mask scan — NumPy fancy indexing makes the two bitwise-identical.  The
# recorded-message logs need no runtime gathering at all: the megakernel
# compiler tracks them symbolically and the generated leaves materialize
# the message lists from already-gathered payload variables.


def gat(value: object, positions: np.ndarray) -> object:
    """Gather one live variable down to a subgroup (tuples recurse)."""
    if isinstance(value, np.ndarray):
        return value[positions]
    if isinstance(value, tuple):
        return tuple(gat(item, positions) for item in value)
    return value


def gat_led(ledger: list, positions: np.ndarray) -> list:
    return [(channel, scores[positions]) for channel, scores in ledger]


def mega_leaf(
    indices: np.ndarray,
    lw_model: np.ndarray,
    lw_guide: np.ndarray,
    recorded: dict,
    obs_scores: list,
    model_value: object,
    guide_value: object,
    model_site_scores: list,
    guide_site_scores: list,
    path_id: int,
) -> _Leaf:
    """A leaf stamped with its compile-time path id for compiled rescoring."""
    leaf = make_leaf(
        indices, lw_model, lw_guide, recorded, obs_scores,
        model_value, guide_value, model_site_scores, guide_site_scores,
    )
    leaf.mega_path = path_id
    return leaf


class RescoreDivert(Exception):
    """The compiled rescore pass cannot replay this leaf on its straight line.

    Raised when a re-evaluated pure branch predicate no longer uniformly
    selects the compiled arm (the interpretive rescorer would split, follow
    the flipped arm, or fail its log checks) or when a leaf carries no
    megakernel path stamp.  Callers delegate the *whole leaf* to the
    interpretive :meth:`~repro.engine.vectorize.ParticleVectorizer.rescore_group`,
    which reproduces the exact interpreter semantics for every divergent case.
    """


def rep_val(log: list, position: int, channel: str) -> object:
    """Consume a recorded sample value during compiled rescoring."""
    entry = _rep_take(log, position, "val", channel)
    return entry.payload


def rep_dir(log: list, position: int, channel: str, expected: bool) -> None:
    """Consume a recorded branch selection; divert when it contradicts the path."""
    entry = _rep_take(log, position, "dir", channel)
    if bool(entry.payload) != expected:
        raise RescoreDivert(
            f"recorded branch selection on {channel!r} contradicts the leaf's "
            "compiled path stamp"
        )


def rep_fold(log: list, position: int, channel: str) -> None:
    """Consume a recorded procedure-call marker during compiled rescoring."""
    _rep_take(log, position, "fold", channel)


def _rep_take(log: list, position: int, kind: str, channel: str) -> VecMessage:
    if position >= len(log):
        raise ChannelProtocolError(
            f"rescore on {channel!r} ran past the recorded message log; the "
            "replayed execution diverged from the recorded control path"
        )
    entry = log[position]
    if entry.kind != kind:
        raise ChannelProtocolError(
            f"group replay on {channel!r}: expected a {kind} message, found "
            f"a {entry.kind} message"
        )
    return entry


def rep_pure(pred: object, expected: bool) -> None:
    """Check a re-evaluated pure branch still selects the compiled arm.

    A mixed or flipped predicate means the straight-line replay is invalid;
    the caller falls back to the interpretive rescorer, which reproduces the
    exact split/flip/protocol-error semantics.
    """
    selection = uniform_or_none(pred)
    if selection is None or bool(selection) != expected:
        raise RescoreDivert(
            "pure branch predicate changed under the rescoring arguments"
        )


def rep_end(log: list, position: int, channel: str) -> None:
    """Assert the compiled rescore consumed the channel's whole recorded log."""
    if position < len(log):
        raise ChannelProtocolError(
            f"rescore on {channel!r} consumed only {position} of "
            f"{len(log)} recorded messages; the replayed "
            "execution diverged from the recorded control path"
        )


def rescore_result(
    lw_model: np.ndarray,
    lw_guide: np.ndarray,
    model_value: object,
    guide_value: object,
    obs_scores: list,
    model_site_scores: list,
    guide_site_scores: list,
    recorded: dict,
) -> _GroupResult:
    """Assemble a compiled rescore pass's outputs as the interpreter's result type."""
    return _GroupResult(
        log_weights={"model": lw_model, "guide": lw_guide},
        values={"model": model_value, "guide": guide_value},
        recorded=recorded,
        obs_scores={"model": obs_scores, "guide": []},
        site_scores={"model": model_site_scores, "guide": guide_site_scores},
    )
