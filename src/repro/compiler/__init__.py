"""Prototype compiler from the coroutine-based PPL to mini-Pyro Python code.

The paper's artifact compiles its language to Pyro, using ``greenlet`` for
coroutine switching.  This package targets :mod:`repro.minipyro` instead and
uses Python generators for coroutine switching:

* :func:`repro.compiler.codegen.compile_program` translates every procedure
  into a Python *generator function* that yields channel operations;
* :func:`repro.compiler.codegen.compile_pair` additionally emits a module
  with importance-sampling and SVI entry points for a model/guide pair;
* :mod:`repro.compiler.runtime` provides the scheduler that drives the
  generated coroutines, routing every sample through
  :func:`repro.minipyro.sample` so the substrate's tracing machinery is
  exercised exactly as it is by handwritten mini-Pyro code.
"""

from repro.compiler.codegen import (
    CompiledModule,
    FusedKernel,
    compile_fused_pair,
    compile_pair,
    compile_program,
    fused_unsupported_reason,
    load_compiled,
    load_fused,
)
from repro.compiler.runtime import (
    CompiledImportanceResults,
    run_compiled_pair,
    compiled_importance_sampling,
    compiled_svi,
)

__all__ = [
    "FusedKernel",
    "compile_fused_pair",
    "fused_unsupported_reason",
    "load_fused",
    "compile_program",
    "compile_pair",
    "load_compiled",
    "CompiledModule",
    "run_compiled_pair",
    "compiled_importance_sampling",
    "compiled_svi",
    "CompiledImportanceResults",
]
