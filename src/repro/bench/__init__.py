"""The public benchmark subsystem: ``repro bench run`` / ``repro bench evaluate``.

A versioned snapshot (``bench/snapshots/v1.json``) pins every library model —
with exact golden posteriors where conjugacy or enumeration provides them —
plus parameterized families synthesized deterministically from the fuzzer's
spec IR (HMM chains of length N, mixtures of width K, recursion of depth D).
``runner`` sweeps the runnable entries across particles × engine × backend ×
shards and writes a per-run directory; ``evaluate`` folds the points into
accuracy-vs-wall-time scaling curves, gates them against a pinned baseline,
and records the curves into ``BENCH_results.json`` (schema 3).
"""

from repro.bench.evaluate import EvaluateConfig, build_curves, evaluate_run
from repro.bench.golden import (
    beta_bernoulli_posterior_mean,
    binary_hmm_smoothed,
    enumerate_two_bernoulli,
    geometric_walk_first_step_mean,
    linear_gaussian_smoothed,
    mixture_index_posterior_mean,
    normal_normal_posterior_mean,
)
from repro.bench.runner import RunnerConfig, run_sweep
from repro.bench.snapshot import (
    SNAPSHOT_FORMAT,
    build_snapshot,
    default_snapshot_path,
    load_snapshot,
    render_snapshot,
)

__all__ = [
    "EvaluateConfig",
    "RunnerConfig",
    "SNAPSHOT_FORMAT",
    "beta_bernoulli_posterior_mean",
    "binary_hmm_smoothed",
    "build_curves",
    "build_snapshot",
    "default_snapshot_path",
    "enumerate_two_bernoulli",
    "evaluate_run",
    "geometric_walk_first_step_mean",
    "linear_gaussian_smoothed",
    "load_snapshot",
    "mixture_index_posterior_mean",
    "normal_normal_posterior_mean",
    "render_snapshot",
    "run_sweep",
]
