"""The versioned benchmark snapshot: ``bench/snapshots/v1.json``.

A snapshot is a self-contained, reviewable pin of everything a benchmark run
depends on: every library model's sources and observation data, exact golden
posterior site means where conjugacy/enumeration provides them (derived by
:mod:`repro.bench.golden`, never by an engine), and the emitted sources of
the parameterized families from :func:`repro.fuzz.generator.synthesize_family`.
``build_snapshot`` recomputes the document from the live code;
``tests/bench/test_snapshot.py`` asserts the committed file matches it
byte-for-byte, so any change to a model, a family emitter, or a derivation
shows up as an explicit snapshot diff — the NormBench discipline of dataset
snapshots applied to model programs.

Snapshot entries carry ``in_sweep`` (the runner benchmarks them) and
``runnable`` (the pair can execute at all); ``dp`` is pinned as
non-expressible so the registry's paper-fidelity row is versioned too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench import golden
from repro.errors import ReproError
from repro.fuzz.generator import (
    BENCH_FAMILIES,
    HMM_CHAIN_EMIT_MEANS,
    HMM_CHAIN_EMIT_STD,
    HMM_CHAIN_INIT_P,
    HMM_CHAIN_TRANS_P,
    MIXTURE_COMPONENT_SPACING,
    MIXTURE_EMIT_STD,
    RECURSION_OBS_STD,
    RECURSION_STEP_STD,
    mixture_weights,
    recursion_cont_p,
    synthesize_family,
)
from repro.fuzz.oracles import default_obs_values
from repro.models.library import STREAMING_FAMILIES, all_benchmarks

SNAPSHOT_NAME = "v1"
SNAPSHOT_FORMAT = 1

#: Library models whose exact posterior the snapshot pins; these are the
#: default sweep set alongside the parameterized families.
GOLDEN_LIBRARY = ("weight", "coin", "sprinkler", "burglary", "hmm", "kalman", "stream_rw")

#: The sizes each parameterized family is pinned at.
FAMILY_SIZES: Dict[str, tuple] = {
    "hmm_chain": (4, 8, 12),
    "mixture_width": (3, 5, 9),
    "recursion_depth": (2, 4, 6),
}

#: Per-model absolute error floor for the quality gate (on top of the
#: sigma-scaled Monte-Carlo term); calibrated like the conformance suite's
#: tolerances at 4000 particles.
_QUALITY_ATOL = {
    "weight": 0.1,
    "coin": 0.04,
    "sprinkler": 0.04,
    "burglary": 0.04,
    "hmm": 0.05,
    "kalman": 0.12,
    "stream_rw": 0.12,
    "hmm_chain": 0.05,
    "mixture_width": 0.05,
    "recursion_depth": 0.12,
}


def _round6(value: float) -> float:
    """Golden values are pinned at 6 decimals so the snapshot is stable
    across BLAS/numpy builds (the derivations agree far beyond that)."""
    return float(round(float(value), 6))


def _library_golden(name: str, obs_values: tuple) -> Dict[str, float]:
    """Exact posterior site means for one golden library model."""
    if name == "weight":
        # Prior N(8.5, 1), likelihood N(w, 0.75) — models/library.py.
        return {"0": _round6(golden.normal_normal_posterior_mean(8.5, 1.0, 0.75, obs_values))}
    if name == "coin":
        # Prior Beta(2, 2) on the bias.
        return {"0": _round6(golden.beta_bernoulli_posterior_mean(2.0, 2.0, obs_values))}
    if name == "sprinkler":
        # rain ~ Ber(0.2), sprinkler ~ Ber(0.01 | 0.4), CPT from the model.
        rain, sprinkler = golden.enumerate_two_bernoulli(
            0.2,
            (0.01, 0.4),
            {(True, True): 0.99, (True, False): 0.8, (False, True): 0.9, (False, False): 0.05},
            observed=bool(obs_values[0]),
        )
        return {"0": _round6(rain), "1": _round6(sprinkler)}
    if name == "burglary":
        # burglary ~ Ber(0.01), earthquake ~ Ber(0.02), alarm CPT from the model.
        burglary, earthquake = golden.enumerate_two_bernoulli(
            0.01,
            (0.02, 0.02),
            {(True, True): 0.95, (True, False): 0.94, (False, True): 0.29, (False, False): 0.01},
            observed=bool(obs_values[0]),
        )
        return {"0": _round6(burglary), "1": _round6(earthquake)}
    if name == "hmm":
        # s1 ~ Ber(0.5), transitions 0.7/0.3, emissions N(±1, 1).
        smoothed = golden.binary_hmm_smoothed(0.5, (0.7, 0.3), (1.0, -1.0), 1.0, obs_values)
        return {str(i): _round6(m) for i, m in enumerate(smoothed)}
    if name in ("kalman", "stream_rw"):
        # x1 ~ N(0, 1), x_t ~ N(x_{t-1}, 1), y_t ~ N(x_t, 0.5).
        smoothed = golden.linear_gaussian_smoothed(0.0, 1.0, 1.0, 0.5, obs_values)
        return {str(i): _round6(m) for i, m in enumerate(smoothed)}
    raise ReproError(f"no golden derivation registered for library model {name!r}")


def _family_golden(family: str, size: int, obs_values: tuple) -> Dict[str, float]:
    """Exact posterior site means for one parameterized family instance."""
    if family == "hmm_chain":
        smoothed = golden.binary_hmm_smoothed(
            HMM_CHAIN_INIT_P, HMM_CHAIN_TRANS_P, HMM_CHAIN_EMIT_MEANS,
            HMM_CHAIN_EMIT_STD, obs_values,
        )
        return {str(i): _round6(m) for i, m in enumerate(smoothed)}
    if family == "mixture_width":
        mean = golden.mixture_index_posterior_mean(
            mixture_weights(size),
            [MIXTURE_COMPONENT_SPACING * k for k in range(size)],
            MIXTURE_EMIT_STD,
            float(obs_values[0]),
        )
        return {"0": _round6(mean)}
    if family == "recursion_depth":
        mean = golden.geometric_walk_first_step_mean(
            recursion_cont_p(size), RECURSION_STEP_STD, RECURSION_OBS_STD,
            float(obs_values[0]),
        )
        return {"0": _round6(mean)}
    raise ReproError(f"no golden derivation registered for family {family!r}")


def family_instance_name(family: str, size: int) -> str:
    """The snapshot key of one family instance, e.g. ``hmm_chain/8``."""
    return f"{family}/{size}"


def _json_obs(obs_values: tuple) -> List[object]:
    """Observation tuples as plain JSON scalars (bools stay bools)."""
    out: List[object] = []
    for value in obs_values:
        if isinstance(value, bool):
            out.append(value)
        elif isinstance(value, int):
            out.append(int(value))
        else:
            out.append(float(value))
    return out


def build_snapshot() -> dict:
    """Recompute the full snapshot document from the live code."""
    models: Dict[str, dict] = {}
    for bench in all_benchmarks():
        runnable = bench.expressible and bench.inference is not None
        entry = {
            "kind": "library",
            "description": bench.description,
            "runnable": runnable,
            "in_sweep": bench.name in GOLDEN_LIBRARY,
            "recursive": bench.recursive,
            "model_source": bench.model_source,
            "model_entry": bench.model_entry,
            "guide_source": bench.guide_source,
            "guide_entry": bench.guide_entry,
            "obs_values": _json_obs(bench.obs_values),
            "guide_args": [],
            "golden": None,
            "quality_atol": None,
        }
        if not bench.expressible:
            entry["reason"] = "not expressible in the coroutine calculus (paper Table 1)"
        elif bench.inference is None:
            entry["reason"] = "no observation protocol registered (prior-only example)"
        if bench.name == "weight":
            # The weight guide takes (loc, log_scale); the conformance suite
            # runs it fixed at the prior's location.
            entry["guide_args"] = [8.5, 0.0]
        if bench.name in GOLDEN_LIBRARY:
            entry["golden"] = _library_golden(bench.name, bench.obs_values)
            entry["quality_atol"] = _QUALITY_ATOL[bench.name]
        models[bench.name] = entry

    # STREAMING_FAMILIES members are registered benchmarks too (stream_rw's
    # 4-step unroll); assert rather than silently pinning a partial surface.
    for name in STREAMING_FAMILIES:
        if name not in models:
            raise ReproError(f"streaming family {name!r} missing from the benchmark registry")

    for family in BENCH_FAMILIES:
        for size in FAMILY_SIZES[family]:
            case = synthesize_family(family, size)
            obs_values = default_obs_values(case)
            models[family_instance_name(family, size)] = {
                "kind": "family",
                "family": family,
                "size": size,
                "description": f"synthesized {family} instance at size {size}",
                "runnable": True,
                "in_sweep": True,
                "recursive": family == "recursion_depth",
                "model_source": case.model_source,
                "model_entry": None,
                "guide_source": case.guide_source,
                "guide_entry": None,
                "obs_values": _json_obs(obs_values),
                "guide_args": [],
                "golden": _family_golden(family, size, obs_values),
                "quality_atol": _QUALITY_ATOL[family],
            }

    return {
        "snapshot": SNAPSHOT_NAME,
        "format": SNAPSHOT_FORMAT,
        "models": models,
    }


def render_snapshot(snapshot: Optional[dict] = None) -> str:
    """The canonical byte representation the pinned file must match."""
    return json.dumps(snapshot or build_snapshot(), indent=2, sort_keys=True) + "\n"


def default_snapshot_path() -> Path:
    """``bench/snapshots/v1.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "bench" / "snapshots" / f"{SNAPSHOT_NAME}.json"


def write_snapshot(path: Optional[Path] = None) -> Path:
    """Regenerate the pinned snapshot file (run after intentional changes)."""
    path = Path(path) if path is not None else default_snapshot_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_snapshot(), encoding="utf-8")
    return path


def load_snapshot(path: Optional[Path] = None) -> dict:
    """Load a snapshot document, validating its format pin."""
    path = Path(path) if path is not None else default_snapshot_path()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load benchmark snapshot {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != SNAPSHOT_FORMAT:
        raise ReproError(
            f"benchmark snapshot {path} has format {data.get('format')!r}; "
            f"this build reads format {SNAPSHOT_FORMAT}"
        )
    return data


def sweep_models(snapshot: dict) -> Dict[str, dict]:
    """The snapshot entries the default sweep benchmarks, in name order."""
    return {
        name: entry
        for name, entry in sorted(snapshot["models"].items())
        if entry.get("in_sweep") and entry.get("runnable")
    }
