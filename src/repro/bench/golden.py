"""Exact posterior derivations backing the benchmark snapshot's golden values.

Every function here computes a posterior quantity *without* running any
inference engine: conjugate updates, exhaustive enumeration of finite
discrete latents, linear-Gaussian precision solves, and truncated series for
the geometric-stopping recursion family.  The conformance suite
(``tests/conformance/test_posterior_conformance.py``) pins the same numbers
as literals with their derivations; ``tests/bench/test_golden.py`` checks
this module reproduces those pins, so the snapshot builder and the
conformance suite can never disagree about what "exact" means.

All distributions follow the engine convention: ``Normal(mean, std)`` takes
a *standard deviation*, not a variance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np


def normal_normal_posterior_mean(
    prior_mean: float,
    prior_std: float,
    obs_std: float,
    observations: Sequence[float],
) -> float:
    """Posterior mean of a Normal mean under a conjugate Normal prior.

    ``w ~ Normal(prior_mean, prior_std)``, ``y_i ~ Normal(w, obs_std)``:
    the posterior precision is the sum of prior and per-observation
    precisions, and the mean is the precision-weighted average.
    """
    prior_prec = 1.0 / prior_std**2
    obs_prec = 1.0 / obs_std**2
    total_prec = prior_prec + obs_prec * len(observations)
    weighted = prior_mean * prior_prec + obs_prec * float(np.sum(observations))
    return weighted / total_prec


def beta_bernoulli_posterior_mean(
    alpha: float, beta: float, observations: Sequence[bool]
) -> float:
    """Posterior mean of a Bernoulli bias under a conjugate Beta prior."""
    successes = sum(1 for value in observations if value)
    failures = len(observations) - successes
    return (alpha + successes) / (alpha + beta + successes + failures)


def enumerate_two_bernoulli(
    p_first: float,
    p_second_given_first: Tuple[float, float],
    obs_true_probability: Dict[Tuple[bool, bool], float],
    observed: bool = True,
) -> Tuple[float, float]:
    """Exact posterior marginals of two chained Bernoulli latents.

    ``first ~ Ber(p_first)``, ``second ~ Ber(p_second_given_first[first])``
    (index 0 = first is True, 1 = first is False), then one Bernoulli
    observation whose success probability depends on both.  Returns
    ``(P(first | obs), P(second | obs))`` by enumerating the four states.
    """
    posterior = {}
    for first in (True, False):
        pf = p_first if first else 1.0 - p_first
        p_second = p_second_given_first[0 if first else 1]
        for second in (True, False):
            ps = p_second if second else 1.0 - p_second
            p_obs = obs_true_probability[(first, second)]
            likelihood = p_obs if observed else 1.0 - p_obs
            posterior[(first, second)] = pf * ps * likelihood
    total = sum(posterior.values())
    p_first_true = (posterior[(True, True)] + posterior[(True, False)]) / total
    p_second_true = (posterior[(True, True)] + posterior[(False, True)]) / total
    return p_first_true, p_second_true


def _normal_pdf(x: float, mean: float, std: float) -> float:
    z = (x - mean) / std
    return math.exp(-0.5 * z * z) / (std * math.sqrt(2.0 * math.pi))


def binary_hmm_smoothed(
    init_p: float,
    trans_p: Tuple[float, float],
    emit_means: Tuple[float, float],
    emit_std: float,
    observations: Sequence[float],
) -> List[float]:
    """Smoothed marginals ``P(s_t = 1 | y)`` of a two-state HMM, by forward-backward.

    ``s_1 ~ Ber(init_p)``, ``s_t ~ Ber(trans_p[0] if s_{t-1} else trans_p[1])``,
    ``y_t ~ Normal(emit_means[0] if s_t else emit_means[1], emit_std)``.
    The O(N) recursion matches the 2^N enumeration exactly, so it also
    serves the parameterized ``hmm_chain`` family at lengths enumeration
    could not reach.
    """
    n = len(observations)
    # State index 1 = True, 0 = False throughout.
    init = np.array([1.0 - init_p, init_p])
    trans = np.array(
        [
            [1.0 - trans_p[1], trans_p[1]],  # from state 0 (False)
            [1.0 - trans_p[0], trans_p[0]],  # from state 1 (True)
        ]
    )
    emit = np.array(
        [
            [_normal_pdf(y, emit_means[1], emit_std), _normal_pdf(y, emit_means[0], emit_std)]
            for y in observations
        ]
    )
    forward = np.zeros((n, 2))
    forward[0] = init * emit[0]
    forward[0] /= forward[0].sum()
    for t in range(1, n):
        forward[t] = (forward[t - 1] @ trans) * emit[t]
        forward[t] /= forward[t].sum()
    backward = np.ones((n, 2))
    for t in range(n - 2, -1, -1):
        backward[t] = trans @ (emit[t + 1] * backward[t + 1])
        backward[t] /= backward[t].sum()
    smoothed = forward * backward
    smoothed /= smoothed.sum(axis=1, keepdims=True)
    return [float(row[1]) for row in smoothed]


def linear_gaussian_smoothed(
    prior_mean: float,
    prior_std: float,
    trans_std: float,
    obs_std: float,
    observations: Sequence[float],
) -> List[float]:
    """Smoothed state means of a linear-Gaussian chain, by precision solve.

    ``x_1 ~ Normal(prior_mean, prior_std)``, ``x_t ~ Normal(x_{t-1},
    trans_std)``, ``y_t ~ Normal(x_t, obs_std)``.  The joint over states is
    Gaussian with a tridiagonal precision matrix; solving ``Λ μ = b`` gives
    the exact smoothed means (the kalman and stream_rw golden values).
    """
    n = len(observations)
    prior_prec = 1.0 / prior_std**2
    trans_prec = 1.0 / trans_std**2
    obs_prec = 1.0 / obs_std**2
    precision = np.zeros((n, n))
    b = np.zeros(n)
    precision[0, 0] += prior_prec
    b[0] += prior_mean * prior_prec
    for t in range(1, n):
        precision[t, t] += trans_prec
        precision[t - 1, t - 1] += trans_prec
        precision[t, t - 1] -= trans_prec
        precision[t - 1, t] -= trans_prec
    for t, y in enumerate(observations):
        precision[t, t] += obs_prec
        b[t] += float(y) * obs_prec
    return [float(m) for m in np.linalg.solve(precision, b)]


def mixture_index_posterior_mean(
    weights: Sequence[float],
    component_means: Sequence[float],
    emit_std: float,
    observation: float,
) -> float:
    """Posterior mean of a categorical index given one Gaussian emission.

    ``z ~ Cat(weights)`` (unnormalized), ``y ~ Normal(component_means[z],
    emit_std)``.  Engines expose the categorical site as its integer value,
    so the golden "mean" is ``Σ_k k · P(z = k | y)``.
    """
    posterior = np.array(
        [
            w * _normal_pdf(observation, m, emit_std)
            for w, m in zip(weights, component_means)
        ]
    )
    posterior /= posterior.sum()
    return float(np.dot(np.arange(len(posterior)), posterior))


def geometric_walk_first_step_mean(
    cont_p: float,
    step_std: float,
    obs_std: float,
    observation: float,
    tail_mass: float = 1e-12,
) -> float:
    """Posterior mean of the *first* step of a geometric-stopping random walk.

    The ``recursion_depth`` family draws steps ``x_i ~ Normal(0, step_std)``
    and continues with probability ``cont_p`` after each, so the stopping
    time has ``P(T = t) = cont_p^(t-1) (1 - cont_p)`` for ``t >= 1``; the
    observation is ``y ~ Normal(Σ_{i<=T} x_i, obs_std)``.  Conditioned on
    ``T = t`` everything is jointly Gaussian with ``Cov(x_1, y) = step_var``
    and ``Var(y) = t·step_var + obs_var``, so

        E[x_1 | y, T=t] = y · step_var / (t·step_var + obs_var)
        P(T=t | y)     ∝ P(T=t) · N(y; 0, sqrt(t·step_var + obs_var))

    and the answer is the mixture over ``t``, truncated once the remaining
    geometric prior mass falls below ``tail_mass``.
    """
    step_var = step_std**2
    obs_var = obs_std**2
    numerator = 0.0
    evidence = 0.0
    prior_t = 1.0 - cont_p  # P(T = 1)
    t = 1
    while prior_t > tail_mass:
        marginal_std = math.sqrt(t * step_var + obs_var)
        weight = prior_t * _normal_pdf(observation, 0.0, marginal_std)
        numerator += weight * observation * step_var / (t * step_var + obs_var)
        evidence += weight
        prior_t *= cont_p
        t += 1
    return numerator / evidence
