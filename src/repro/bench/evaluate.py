"""``repro bench evaluate``: scaling curves and the regression gates.

A *curve* is one ``(model, engine, backend, shards)`` slice of a run's sweep
points, ordered by particle count: accuracy (max golden absolute error
across sites) against wall time.  Evaluation applies two independent gates
to every curve and exits non-zero if either fires:

* **quality** — each golden site's error must satisfy
  ``abs_err <= quality_atol + quality_sigma * se``: an absolute floor from
  the snapshot plus a Monte-Carlo term scaled by the estimator's own
  standard error.  With ``quality_sigma = 5`` a correct estimator
  essentially never trips this, while a 5-sigma posterior shift always does.
* **speed** — against a pinned baseline, the geometric mean of per-point
  wall-time ratios must stay under ``speed_factor``.  The geometric mean
  makes the gate scale-free across particle counts, and points faster than
  ``min_wall_s`` in both runs are skipped so timer noise on microsecond
  points cannot fire it.

Quality is gated even without a baseline; speed needs one (written with
``--write-baseline``, which stores only curve shapes, never raw results).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench import results as bench_results
from repro.errors import ReproError

BASELINE_FORMAT = 1

#: Quality floor applied when a sweep point carries no snapshot atol.
DEFAULT_QUALITY_ATOL = 0.05


@dataclass(frozen=True)
class EvaluateConfig:
    """The gate thresholds (serialized into the evaluation report)."""

    #: Monte-Carlo slack: errors within ``atol + sigma * se`` pass.
    quality_sigma: float = 5.0
    #: Maximum tolerated geometric-mean wall-time ratio vs the baseline.
    speed_factor: float = 1.75
    #: Points faster than this in both runs are excluded from the speed gate.
    min_wall_s: float = 0.005


def curve_key(point: dict) -> str:
    """The curve a sweep point belongs to.

    The backend segment carries the JIT tier as a ``+tier`` suffix (matching
    the runner's point keys), so ``compiled`` and ``compiled+mega`` gate as
    separate curves.  Points from runs predating the tier field stay on
    their historical keys.
    """
    jit = point.get("jit", "none")
    backend = point["backend"] if jit == "none" else f"{point['backend']}+{jit}"
    return "{}/{}/{}/shards={}".format(
        point["model"], point["engine"], backend, point["shards"]
    )


def build_curves(results_doc: dict) -> List[dict]:
    """Group a run's sweep points into scaling curves.

    Each curve's points are sorted by particle count and carry the wall
    time, the worst golden site error, and that error's Monte-Carlo slack —
    everything the gates and the plots need, nothing machine-specific
    beyond the timings themselves.
    """
    grouped: Dict[str, List[dict]] = {}
    for point in results_doc.get("points", []):
        grouped.setdefault(curve_key(point), []).append(point)
    curves = []
    for key in sorted(grouped):
        points = sorted(grouped[key], key=lambda p: p["particles"])
        first = points[0]
        curve_points = []
        for point in points:
            atol = point.get("quality_atol")
            atol = DEFAULT_QUALITY_ATOL if atol is None else float(atol)
            sites = point.get("stats", {}).get("sites", {})
            record = {
                "particles": point["particles"],
                "wall_time_s": point["wall_time_s"],
                "quality_atol": atol,
            }
            if sites:
                worst = max(sites.values(), key=lambda s: s["abs_err"])
                record["max_abs_err"] = worst["abs_err"]
                record["max_err_se"] = worst["se"]
                record["sites"] = {
                    site: {"abs_err": stats["abs_err"], "se": stats["se"]}
                    for site, stats in sorted(sites.items())
                }
            curve_points.append(record)
        curves.append(
            {
                "key": key,
                "model": first["model"],
                "engine": first["engine"],
                "backend": first["backend"],
                "jit": first.get("jit", "none"),
                "shards": first["shards"],
                "points": curve_points,
            }
        )
    return curves


def _quality_violations(curves: List[dict], config: EvaluateConfig) -> List[dict]:
    violations = []
    for curve in curves:
        for point in curve["points"]:
            for site, stats in (point.get("sites") or {}).items():
                allowed = point["quality_atol"] + config.quality_sigma * stats["se"]
                if stats["abs_err"] > allowed:
                    violations.append(
                        {
                            "gate": "quality",
                            "curve": curve["key"],
                            "particles": point["particles"],
                            "site": site,
                            "abs_err": stats["abs_err"],
                            "allowed": allowed,
                        }
                    )
    return violations


def _speed_violations(
    curves: List[dict], baseline_curves: List[dict], config: EvaluateConfig
) -> List[dict]:
    baseline_walls: Dict[Tuple[str, int], float] = {}
    for curve in baseline_curves:
        for point in curve["points"]:
            baseline_walls[(curve["key"], point["particles"])] = point["wall_time_s"]
    violations = []
    for curve in curves:
        log_ratios = []
        for point in curve["points"]:
            base = baseline_walls.get((curve["key"], point["particles"]))
            if base is None:
                continue
            if point["wall_time_s"] < config.min_wall_s and base < config.min_wall_s:
                continue
            # Floor both sides so a sub-resolution baseline timing cannot
            # manufacture an unbounded ratio.
            ratio = max(point["wall_time_s"], config.min_wall_s) / max(base, config.min_wall_s)
            log_ratios.append(math.log(ratio))
        if not log_ratios:
            continue
        geomean = math.exp(sum(log_ratios) / len(log_ratios))
        if geomean > config.speed_factor:
            violations.append(
                {
                    "gate": "speed",
                    "curve": curve["key"],
                    "wall_ratio_geomean": geomean,
                    "allowed": config.speed_factor,
                    "points_compared": len(log_ratios),
                }
            )
    return violations


def baseline_payload(curves: List[dict], snapshot: Optional[str]) -> dict:
    """The pinned-baseline document: curve shapes only."""
    return {"format": BASELINE_FORMAT, "snapshot": snapshot, "curves": curves}


def load_baseline(path: Path) -> dict:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load benchmark baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise ReproError(
            f"benchmark baseline {path} has format {data.get('format')!r}; "
            f"this build reads format {BASELINE_FORMAT}"
        )
    return data


def evaluate_run(
    run_dir: Path,
    config: Optional[EvaluateConfig] = None,
    baseline: Optional[dict] = None,
) -> Tuple[dict, List[dict]]:
    """Evaluate one run directory; returns ``(report, violations)``.

    The report carries the curves, the thresholds, and every violation;
    an empty violation list means both gates passed.
    """
    config = config or EvaluateConfig()
    run_dir = Path(run_dir)
    results_file = run_dir / "results.json"
    try:
        results_doc = json.loads(results_file.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load benchmark results {results_file}: {exc}") from exc

    curves = build_curves(results_doc)
    if not curves:
        raise ReproError(f"benchmark results {results_file} contain no sweep points")

    violations = _quality_violations(curves, config)
    baseline_snapshot = None
    if baseline is not None:
        baseline_snapshot = baseline.get("snapshot")
        if baseline_snapshot != results_doc.get("snapshot"):
            violations.append(
                {
                    "gate": "baseline",
                    "curve": None,
                    "detail": (
                        f"baseline pinned against snapshot {baseline_snapshot!r}, "
                        f"run used {results_doc.get('snapshot')!r}"
                    ),
                }
            )
        violations.extend(_speed_violations(curves, baseline.get("curves", []), config))

    models = sorted({curve["model"] for curve in curves})
    report = {
        "run_dir": str(run_dir),
        "snapshot": results_doc.get("snapshot"),
        "seed": results_doc.get("seed"),
        "config": {
            "quality_sigma": config.quality_sigma,
            "speed_factor": config.speed_factor,
            "min_wall_s": config.min_wall_s,
        },
        "baseline_snapshot": baseline_snapshot,
        "models": models,
        "curve_count": len(curves),
        "curves": curves,
        "violations": violations,
        "passed": not violations,
    }
    return report, violations


def record_report(report: dict, path: Optional[str] = None) -> Path:
    """Pin the report's curves into ``BENCH_results.json`` (schema 3)."""
    tag = "bench:{}:seed={}".format(report.get("snapshot"), report.get("seed"))
    payload = {
        "run_dir": report["run_dir"],
        "passed": report["passed"],
        "violations": report["violations"],
        "curves": report["curves"],
    }
    return bench_results.record_curves(tag, payload, path)
