"""Schema-3 ``BENCH_results.json`` access for the installed package.

``benchmarks/_record.py`` owns the artifact from the pytest harnesses; this
module is its in-package counterpart for the CLI paths (``repro bench
evaluate`` recording scaling curves, ``repro loadgen --record`` appending a
load entry) so they work without the benchmarks directory on ``sys.path``.
Both speak the same document:

.. code-block:: json

    {"schema": 3, "created_at": "...",
     "runs":   [{"run": "...", "started_at": "...", "entries": [...]}],
     "curves": {"<tag>": {"generated_at": "...", "curves": [...], ...}}}

Schema 3 adds the top-level ``curves`` map — one slot per evaluate tag,
holding that run's accuracy-vs-wall-time scaling curves — next to schema 2's
per-run entry lists.  Migration is lossless in both directions of history:
a schema-1 flat entry list becomes one legacy run, a schema-2 document keeps
its runs untouched and gains an empty ``curves`` map.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

SCHEMA_VERSION = 3

#: Retention caps, shared with ``benchmarks/_record.py``: oldest pruned first.
MAX_RUNS = 8
MAX_CURVE_SETS = 8


def results_path(path: Optional[str] = None) -> Path:
    """Where the artifact lives (``REPRO_BENCH_RESULTS`` overrides)."""
    if path is not None:
        return Path(path)
    return Path(os.environ.get("REPRO_BENCH_RESULTS", "BENCH_results.json"))


def fresh_document() -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "runs": [],
        "curves": {},
    }


def migrate(data: object) -> dict:
    """Bring any prior-schema document (or junk) to schema 3, losslessly."""
    if not isinstance(data, dict):
        return fresh_document()
    if data.get("schema") == SCHEMA_VERSION:
        data.setdefault("runs", [])
        data.setdefault("curves", {})
        return data
    if data.get("schema") == 2 and isinstance(data.get("runs"), list):
        document = fresh_document()
        document["created_at"] = data.get("created_at", document["created_at"])
        document["runs"] = data["runs"]
        return document
    if data.get("schema") == 1 and isinstance(data.get("entries"), list):
        document = fresh_document()
        document["runs"].append(
            {
                "run": "legacy-schema-1",
                "started_at": data.get("created_at"),
                "entries": data["entries"],
            }
        )
        return document
    return fresh_document()


def load_results(path: Optional[str] = None) -> dict:
    resolved = results_path(path)
    if not resolved.exists():
        return fresh_document()
    try:
        data = json.loads(resolved.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return fresh_document()
    return migrate(data)


def write_results(data: dict, path: Optional[str] = None) -> Path:
    resolved = results_path(path)
    resolved.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return resolved


def append_run_entry(entry: dict, run_name: str, path: Optional[str] = None) -> Path:
    """Append one measurement as its own run record (the loadgen path)."""
    data = load_results(path)
    data["runs"].append(
        {
            "run": run_name,
            "started_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "entries": [entry],
        }
    )
    del data["runs"][:-MAX_RUNS]
    return write_results(data, path)


def record_curves(tag: str, payload: dict, path: Optional[str] = None) -> Path:
    """Store one evaluate run's curve set under its tag (bounded history)."""
    data = load_results(path)
    curves = data.setdefault("curves", {})
    curves[tag] = payload
    while len(curves) > MAX_CURVE_SETS:
        # Dict order is insertion order; evict the oldest tag that is not
        # the one just written.
        oldest = next(key for key in curves if key != tag)
        del curves[oldest]
    return write_results(data, path)
