"""``repro bench run``: sweep the snapshot across the engine/runtime grid.

Every sweep point is one ``session.infer`` call pinned by a deterministic
seed derived from the root seed and the point's identity — not its position
in the sweep — so filtering models or engines never changes another point's
numbers, and re-running with the same seed reproduces every statistic
bit-for-bit.  Wall time is best-of-``repeats`` and recorded *next to* the
statistics, never mixed into them: ``results.json`` separates the
deterministic ``stats`` subtree (posterior means, Monte-Carlo standard
errors, golden errors, ESS, log evidence) from the machine-dependent timing
fields, which is what lets the evaluate step gate quality and speed
independently.

A run leaves a per-run directory behind (the NormBench layout):

* ``config.json``  — the resolved sweep configuration and snapshot pin,
* ``results.json`` — one record per sweep point,
* ``metrics.json`` — the observability registry's delta over the run.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.snapshot import (
    FAMILY_SIZES,
    GOLDEN_LIBRARY,
    family_instance_name,
    load_snapshot,
    sweep_models,
)
from repro.engine.session import ProgramSession
from repro.errors import ReproError
from repro.obs import REGISTRY
from repro.utils.numerics import weighted_mean_se

#: The engines the public benchmark sweeps (each a different estimator of
#: the same posterior; ``svi`` runs its fixed-guide final pass — no
#: optimisation — so the grid stays a pure function of the seed).
SWEEP_ENGINES = ("is", "smc", "svi")


@dataclass(frozen=True)
class RunnerConfig:
    """One sweep's resolved knobs (serialized verbatim into ``config.json``)."""

    seed: int = 0
    particles: Tuple[int, ...] = (250, 1000, 4000)
    engines: Tuple[str, ...] = SWEEP_ENGINES
    backends: Tuple[str, ...] = ("interp", "compiled")
    #: Compiled-backend JIT tiers to sweep.  ``"none"`` keeps the historical
    #: point keys (and hence point seeds) unchanged; other tiers append a
    #: ``+tier`` suffix to the backend segment of the key.  The interp
    #: backend has no tiers and always runs once.
    jits: Tuple[str, ...] = ("none", "mega")
    shards: Tuple[int, ...] = (1, 2)
    repeats: int = 2
    #: Optional instance-name filter (None = every in-sweep snapshot entry).
    models: Optional[Tuple[str, ...]] = None
    fast: bool = False


def fast_config(seed: int = 0) -> RunnerConfig:
    """The CI smoke shape: small particle ladder, one shard count, one repeat."""
    return RunnerConfig(
        seed=seed,
        particles=(100, 400),
        shards=(1,),
        repeats=1,
        fast=True,
    )


def _fast_instances() -> Tuple[str, ...]:
    """Fast mode keeps every golden library model and the smallest size of
    each family — still >= 6 snapshot models and >= 3 families."""
    return GOLDEN_LIBRARY + tuple(
        family_instance_name(family, min(sizes)) for family, sizes in sorted(FAMILY_SIZES.items())
    )


def point_seed(root_seed: int, key: str) -> int:
    """A deterministic per-point seed from the root seed and the point key.

    CRC32 of the key mixed with the root seed: independent of sweep order
    and of which other points the run includes.
    """
    return (zlib.crc32(key.encode("utf-8")) ^ (int(root_seed) * 0x9E3779B1)) & 0x7FFFFFFF


def _site_population(result, site: int) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(site values, log weights)`` population behind an engine result
    (same extraction as the fuzz oracles, generalized to any site index)."""
    raw = getattr(result, "final_pass", None) or result.raw
    run = raw.run if hasattr(raw, "run") else raw
    return run.site_values(site), np.asarray(raw.log_weights)


def _best_of(repeats: int, thunk):
    """Best-of-N wall time (mirrors ``benchmarks/_record.best_of``, which
    lives outside the installed package)."""
    best, result = float("inf"), None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - start)
    return best, result


def _request_kwargs(engine: str, entry: dict, particles: int, backend: str,
                    jit: str, shards: int, seed: int) -> dict:
    kwargs = dict(
        num_particles=particles,
        obs_values=tuple(entry["obs_values"]) or None,
        seed=seed,
        backend=backend,
        jit=jit,
        shards=shards,
        guide_args=tuple(entry["guide_args"]),
    )
    if engine == "svi":
        # Fixed-guide mode: no guide_params means no optimisation — the
        # engine runs one posterior pass through the guide as given.
        kwargs["final_particles"] = particles
    return kwargs


def _point_stats(result, entry: dict) -> dict:
    """The deterministic statistics of one sweep point."""
    stats: Dict[str, object] = {}
    log_evidence = result.log_evidence()
    if log_evidence is not None:
        stats["log_evidence"] = float(log_evidence)
    ess = result.effective_sample_size()
    if ess is not None:
        stats["ess"] = float(ess)
    sites: Dict[str, dict] = {}
    for site_key, exact in (entry.get("golden") or {}).items():
        values, log_weights = _site_population(result, int(site_key))
        mean, se = weighted_mean_se(values, log_weights)
        sites[site_key] = {
            "mean": float(mean),
            "se": float(se),
            "golden": float(exact),
            "abs_err": float(abs(mean - exact)),
        }
    if sites:
        stats["sites"] = sites
    return stats


def run_sweep(
    config: RunnerConfig,
    out_dir: Path,
    snapshot_path: Optional[Path] = None,
    progress=None,
) -> dict:
    """Execute the sweep and write the per-run directory.

    Returns the ``results.json`` document.  ``progress``, when given, is
    called with one line per completed sweep point.
    """
    snapshot = load_snapshot(snapshot_path)
    instances = sweep_models(snapshot)
    wanted = config.models
    if wanted is None and config.fast:
        wanted = _fast_instances()
    if wanted is not None:
        missing = sorted(set(wanted) - set(instances))
        if missing:
            available = ", ".join(sorted(instances))
            raise ReproError(f"unknown sweep model(s) {missing}; available: {available}")
        instances = {name: instances[name] for name in wanted}

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "config.json").write_text(
        json.dumps(
            {
                "snapshot": snapshot.get("snapshot"),
                "snapshot_format": snapshot.get("format"),
                "config": asdict(config),
                "instances": sorted(instances),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    mark = REGISTRY.mark()
    started = time.perf_counter()
    points: List[dict] = []
    sessions: Dict[str, ProgramSession] = {}
    for name, entry in instances.items():
        session = sessions.get(name)
        if session is None:
            session = ProgramSession.from_sources(
                entry["model_source"],
                entry["guide_source"],
                model_entry=entry.get("model_entry"),
                guide_entry=entry.get("guide_entry"),
            )
            sessions[name] = session
        for engine in config.engines:
            for backend in config.backends:
                # interp has no JIT tiers; compiled sweeps every configured one.
                tiers = config.jits if backend == "compiled" else ("none",)
                for jit in tiers:
                    backend_key = backend if jit == "none" else f"{backend}+{jit}"
                    for shards in config.shards:
                        for particles in config.particles:
                            key = f"{name}/{engine}/{backend_key}/shards={shards}/particles={particles}"
                            seed = point_seed(config.seed, key)
                            kwargs = _request_kwargs(
                                engine, entry, particles, backend, jit, shards, seed
                            )
                            wall, result = _best_of(
                                config.repeats, lambda: session.infer(engine, **kwargs)
                            )
                            diagnostics = result.diagnostics()
                            point = {
                                "model": name,
                                "engine": engine,
                                "backend": backend,
                                "jit": jit,
                                "shards": shards,
                                "particles": particles,
                                "seed": seed,
                                "wall_time_s": wall,
                                "backend_used": diagnostics.get("backend", "interp"),
                                "fallback_reason": diagnostics.get("fallback_reason"),
                                "quality_atol": entry.get("quality_atol"),
                                "stats": _point_stats(result, entry),
                            }
                            points.append(point)
                            if progress is not None:
                                progress(
                                    f"{key}: wall={wall * 1e3:.1f}ms"
                                    + (
                                        f" max_err={max(s['abs_err'] for s in point['stats']['sites'].values()):.4f}"
                                        if "sites" in point["stats"]
                                        else ""
                                    )
                                )

    document = {
        "snapshot": snapshot.get("snapshot"),
        "seed": config.seed,
        "points": points,
    }
    (out_dir / "results.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    delta = REGISTRY.delta(mark)
    (out_dir / "metrics.json").write_text(
        json.dumps(
            {"total_wall_s": time.perf_counter() - started, "registry_delta": delta},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    return document
