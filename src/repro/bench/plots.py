"""``repro bench plot``: scaling-curve SVGs, rendered by hand.

The benchmark suite's curves (see :mod:`repro.bench.evaluate`) are small —
a handful of points per ``(model, engine, backend[, +jit], shards)`` slice —
so this module renders them as standalone SVG documents with no plotting
dependency: pure string assembly, deterministic output (byte-identical for
identical curves), safe to commit next to the docs.

Each model gets one figure with two log-log panels sharing the x-axis
(particle count):

* **wall time** — every curve; how each execution strategy scales;
* **max golden error** — only curves whose points carry golden-site stats;
  the Monte-Carlo convergence everything is supposed to share.

Colors key on the curve's engine; the backend tier picks the dash pattern,
so ``interp`` / ``compiled`` / ``compiled+mega`` for one engine read as one
hue in three line styles.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_model_svg", "render_all", "plot_report"]

# Figure geometry (viewBox units; consumers scale freely).
_PANEL_W = 430
_PANEL_H = 240
_MARGIN_L = 64
_MARGIN_R = 16
_MARGIN_T = 34
_MARGIN_B = 40
_LEGEND_H_PER_ROW = 16

#: Engine hue; anything unknown falls back to the last entry.
_ENGINE_COLORS = {
    "is": "#1f77b4",
    "smc": "#2ca02c",
    "svi": "#d62728",
    "mh": "#9467bd",
}
_FALLBACK_COLOR = "#7f7f7f"

#: Backend tier → stroke-dasharray ("" = solid).
_TIER_DASHES = {
    "interp": "",
    "compiled": "6 3",
    "compiled+mega": "2 3",
}


def _esc(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _fmt(value: float) -> str:
    """Fixed-precision coordinates so output is platform-deterministic."""
    return f"{value:.2f}"


def _curve_style(curve: dict) -> Tuple[str, str]:
    color = _ENGINE_COLORS.get(curve.get("engine"), _FALLBACK_COLOR)
    jit = curve.get("jit", "none")
    backend = curve.get("backend", "interp")
    tier = backend if jit in (None, "none") else f"{backend}+{jit}"
    return color, _TIER_DASHES.get(tier, "1 2")


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Powers of ten covering [lo, hi] (at least two ticks)."""
    lo_exp = math.floor(math.log10(lo))
    hi_exp = math.ceil(math.log10(hi))
    if hi_exp == lo_exp:
        hi_exp += 1
    return [10.0**e for e in range(lo_exp, hi_exp + 1)]


def _tick_label(value: float) -> str:
    exp = round(math.log10(value))
    if -3 <= exp <= 4:
        return f"{value:g}"
    return f"1e{exp}"


class _LogScale:
    def __init__(self, lo: float, hi: float, out_lo: float, out_hi: float):
        self.lo, self.hi = math.log10(lo), math.log10(hi)
        if self.hi <= self.lo:  # degenerate domain: center it
            self.lo, self.hi = self.lo - 0.5, self.lo + 0.5
        self.out_lo, self.out_hi = out_lo, out_hi

    def __call__(self, value: float) -> float:
        t = (math.log10(value) - self.lo) / (self.hi - self.lo)
        return self.out_lo + t * (self.out_hi - self.out_lo)


def _panel(
    parts: List[str],
    curves: Sequence[dict],
    value_of,
    *,
    y0: float,
    title: str,
    y_label: str,
) -> None:
    """Render one log-log panel at vertical offset ``y0``."""
    xs = [p["particles"] for c in curves for p in c["points"] if value_of(p) is not None]
    ys = [value_of(p) for c in curves for p in c["points"] if value_of(p) is not None]
    ys = [y for y in ys if y > 0.0]
    left, right = _MARGIN_L, _MARGIN_L + _PANEL_W
    top, bottom = y0 + _MARGIN_T, y0 + _MARGIN_T + _PANEL_H
    parts.append(
        f'<text x="{_fmt(left)}" y="{_fmt(y0 + 20)}" class="title">{_esc(title)}</text>'
    )
    parts.append(
        f'<rect x="{_fmt(left)}" y="{_fmt(top)}" width="{_PANEL_W}" '
        f'height="{_PANEL_H}" class="frame"/>'
    )
    if not xs or not ys:
        parts.append(
            f'<text x="{_fmt(left + _PANEL_W / 2)}" y="{_fmt(top + _PANEL_H / 2)}" '
            f'class="empty" text-anchor="middle">no golden-site data</text>'
        )
        return
    sx = _LogScale(min(xs), max(xs), left, right)
    sy = _LogScale(min(ys), max(ys), bottom, top)

    # X ticks at the actual particle counts (the sweep uses few, named sizes).
    for px in sorted(set(xs)):
        x = sx(px)
        parts.append(
            f'<line x1="{_fmt(x)}" y1="{_fmt(bottom)}" x2="{_fmt(x)}" '
            f'y2="{_fmt(bottom + 4)}" class="tick"/>'
        )
        parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(bottom + 16)}" class="lab" '
            f'text-anchor="middle">{_esc(f"{px:g}")}</text>'
        )
    for ty in _log_ticks(min(ys), max(ys)):
        y = sy(ty)
        if y < top - 1 or y > bottom + 1:
            continue
        parts.append(
            f'<line x1="{_fmt(left)}" y1="{_fmt(y)}" x2="{_fmt(right)}" '
            f'y2="{_fmt(y)}" class="grid"/>'
        )
        parts.append(
            f'<text x="{_fmt(left - 6)}" y="{_fmt(y + 3.5)}" class="lab" '
            f'text-anchor="end">{_esc(_tick_label(ty))}</text>'
        )
    parts.append(
        f'<text x="{_fmt(left - 48)}" y="{_fmt((top + bottom) / 2)}" class="lab" '
        f'transform="rotate(-90 {_fmt(left - 48)} {_fmt((top + bottom) / 2)})" '
        f'text-anchor="middle">{_esc(y_label)}</text>'
    )

    for curve in curves:
        pts = [
            (p["particles"], value_of(p))
            for p in curve["points"]
            if value_of(p) is not None and value_of(p) > 0.0
        ]
        if not pts:
            continue
        color, dash = _curve_style(curve)
        coords = " ".join(f"{_fmt(sx(x))},{_fmt(sy(y))}" for x, y in pts)
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="1.6"{dash_attr}/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{_fmt(sx(x))}" cy="{_fmt(sy(y))}" r="2.4" '
                f'fill="{color}"/>'
            )


def _wall(point: dict) -> Optional[float]:
    return point.get("wall_time_s")


def _err(point: dict) -> Optional[float]:
    return point.get("max_abs_err")


def render_model_svg(model: str, curves: Sequence[dict]) -> str:
    """One standalone SVG for one model's curves (deterministic output)."""
    curves = sorted(curves, key=lambda c: c["key"])
    legend_rows = len(curves)
    height = 2 * (_MARGIN_T + _PANEL_H) + _MARGIN_B + legend_rows * _LEGEND_H_PER_ROW + 18
    width = _MARGIN_L + _PANEL_W + _MARGIN_R
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'font-family="ui-monospace, monospace" font-size="11">',
        "<style>"
        ".title{font-size:13px;font-weight:bold;fill:#111}"
        ".frame{fill:none;stroke:#999;stroke-width:1}"
        ".grid{stroke:#e5e5e5;stroke-width:0.8}"
        ".tick{stroke:#999;stroke-width:1}"
        ".lab{fill:#444}"
        ".empty{fill:#999;font-style:italic}"
        "</style>",
    ]
    _panel(
        parts, curves, _wall,
        y0=0, title=f"{model} — wall time vs particles",
        y_label="wall time (s)",
    )
    second_y0 = _MARGIN_T + _PANEL_H + _MARGIN_B
    _panel(
        parts, curves, _err,
        y0=second_y0, title=f"{model} — max golden error vs particles",
        y_label="max abs err",
    )
    legend_y = 2 * (_MARGIN_T + _PANEL_H) + _MARGIN_B + 10
    for i, curve in enumerate(curves):
        color, dash = _curve_style(curve)
        y = legend_y + i * _LEGEND_H_PER_ROW
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{_fmt(y)}" x2="{_MARGIN_L + 28}" '
            f'y2="{_fmt(y)}" stroke="{color}" stroke-width="1.6"{dash_attr}/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L + 36}" y="{_fmt(y + 3.5)}" class="lab">'
            f'{_esc(curve["key"])}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def render_all(curves: Sequence[dict]) -> Dict[str, str]:
    """``{model: svg_text}`` for every model present in ``curves``."""
    by_model: Dict[str, List[dict]] = {}
    for curve in curves:
        by_model.setdefault(curve["model"], []).append(curve)
    return {
        model: render_model_svg(model, model_curves)
        for model, model_curves in sorted(by_model.items())
    }


def plot_report(report: dict, out_dir) -> List[str]:
    """Write one ``<model>.svg`` per model from an evaluation report.

    Returns the written file names (sorted).  ``report`` is the document
    produced by :func:`repro.bench.evaluate.evaluate_run` (or any dict with
    a compatible ``curves`` list).
    """
    from pathlib import Path

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for model, svg in render_all(report.get("curves", [])).items():
        name = f"{model.replace('/', '_')}.svg"
        (out / name).write_text(svg, encoding="utf-8")
        written.append(name)
    return sorted(written)
