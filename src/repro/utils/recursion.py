"""Recursion-limit management for deeply recursive interpreted programs.

The big-step evaluator and the coroutine interpreter are written as direct
recursive Python functions / nested generators, so a deeply recursive
probabilistic program (e.g. a near-critical PCFG) can exceed CPython's
default recursion limit long before it exceeds any semantic limit of the
calculus.  :func:`deep_recursion` temporarily raises the limit around such
computations; the coroutine scheduler's ``max_ops`` budget remains the
backstop against genuinely non-terminating recursions.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator

#: The recursion limit used while interpreting or evaluating programs.
INTERPRETER_RECURSION_LIMIT = 50_000


@contextmanager
def deep_recursion(limit: int = INTERPRETER_RECURSION_LIMIT) -> Iterator[None]:
    """Temporarily raise the recursion limit (never lowers it)."""
    previous = sys.getrecursionlimit()
    target = max(previous, limit)
    sys.setrecursionlimit(target)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)
