"""Deterministic random-number-generator helpers.

All stochastic code in the library takes an optional ``numpy.random.Generator``
and threads it explicitly; these helpers normalise the various ways callers
specify randomness (a seed, a generator, or nothing).
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def ensure_rng(seed_or_rng: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, a generator, or ``None``."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def fork_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split a generator into ``n`` independent child generators.

    Used by inference engines that run several chains or particles so that
    each stream is reproducible independently of the others.
    """
    seed_seq = np.random.SeedSequence(rng.integers(0, 2**63 - 1))
    return [np.random.default_rng(child) for child in seed_seq.spawn(n)]
