"""A small bounded LRU mapping with eviction accounting.

Both cross-request caches (the fused-kernel cache in
``repro.engine.backend`` and the session cache in ``repro.engine.session``)
share this shape: get-or-miss with recency promotion, a hard capacity cap,
and an eviction callback so the owner can count what fell out.  Centralising
it keeps the two caches' semantics identical and lets the server expose one
``--kernel-cache`` / ``--session-cache`` capacity story.

Not thread-safe by itself: callers that touch a cache from worker threads
(the server's executor does) rely on the GIL making each individual
method call atomic enough for a cache — a lost race costs a recompute,
never corruption — matching the previous OrderedDict usage.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LruCache(Generic[K, V]):
    """Bounded least-recently-used mapping.

    ``on_evict(key, value)``, when given, fires once per entry evicted by
    capacity pressure (``put`` beyond capacity or ``set_capacity`` shrink) —
    not for ``clear()``, which is an explicit owner action, not pressure.
    """

    def __init__(self, capacity: int, on_evict: Optional[Callable[[K, V], None]] = None):
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._capacity = int(capacity)
        self._on_evict = on_evict
        self.evictions = 0

    @property
    def capacity(self) -> int:
        """The current maximum number of entries."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K) -> Optional[V]:
        """Return the cached value (promoting it to most-recent) or ``None``."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting the oldest beyond capacity."""
        self._data[key] = value
        self._data.move_to_end(key)
        self._shrink_to(self._capacity)

    def pop(self, key: K) -> Optional[V]:
        """Remove and return an entry (``None`` if absent).

        A deliberate owner action — like :meth:`clear`, it never fires the
        eviction callback.
        """
        return self._data.pop(key, None)

    def values(self) -> "list[V]":
        """Snapshot of the cached values, oldest-recency first."""
        return list(self._data.values())

    def set_capacity(self, capacity: int) -> None:
        """Change the cap, evicting oldest entries if the cache must shrink."""
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._shrink_to(self._capacity)

    def clear(self) -> None:
        """Drop every entry without firing the eviction callback."""
        self._data.clear()

    def _shrink_to(self, capacity: int) -> None:
        while len(self._data) > capacity:
            key, value = self._data.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, value)
