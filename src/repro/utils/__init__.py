"""Shared utilities: RNG handling, pretty printing, and numeric helpers."""

from repro.utils.rng import ensure_rng, fork_rng
from repro.utils.numerics import log_mean_exp, log_sum_exp, normalize_log_weights

__all__ = [
    "ensure_rng",
    "fork_rng",
    "log_sum_exp",
    "log_mean_exp",
    "normalize_log_weights",
]
