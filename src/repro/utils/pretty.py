"""Pretty printers for core-calculus syntax, guide types, and traces.

These printers produce the paper-style concrete syntax and are used by
error messages, examples, the compiler's generated-code headers, and the
benchmark reports.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import ast
from repro.core import types as ty
from repro.core.semantics import traces as tr


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _float_source(value: float) -> str:
    """Render a real literal so it reparses to the exact same float.

    ``repr`` of a Python float is its shortest round-trip representation,
    so ``parse(pretty(e))`` preserves the value bit-for-bit.  (The previous
    ``%g`` rendering kept only six significant digits — a lossy round trip
    the fuzzer's reparse property caught.)
    """
    return repr(float(value))


def _operand(expr: ast.Expr) -> str:
    """Render a subexpression in an operand position.

    The low-precedence expression forms (``if``/``let``/``fun``) extend as
    far right as possible when parsed, so as operands of a binary or unary
    operator they must be parenthesised: ``-if c then a else b + 1`` would
    otherwise reparse with ``+ 1`` inside the conditional's else arm.
    """
    text = pretty_expr(expr)
    if isinstance(expr, (ast.IfExpr, ast.Let, ast.Lam)):
        return f"({text})"
    return text


def pretty_expr(expr: ast.Expr) -> str:
    """Render an expression in surface syntax."""
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Triv):
        return "()"
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.RealLit):
        return _float_source(expr.value)
    if isinstance(expr, ast.NatLit):
        return str(expr.value)
    if isinstance(expr, ast.IfExpr):
        return (
            f"if {pretty_expr(expr.cond)} then {pretty_expr(expr.then)} "
            f"else {pretty_expr(expr.orelse)}"
        )
    if isinstance(expr, ast.PrimOp):
        return f"({_operand(expr.left)} {expr.op.value} {_operand(expr.right)})"
    if isinstance(expr, ast.PrimUnOp):
        if expr.op in (ast.UnOp.EXP, ast.UnOp.LOG, ast.UnOp.SQRT):
            return f"{expr.op.value}({pretty_expr(expr.operand)})"
        return f"{expr.op.value}{_operand(expr.operand)}"
    if isinstance(expr, ast.Lam):
        return f"fun({expr.param}) {pretty_expr(expr.body)}"
    if isinstance(expr, ast.App):
        return f"{_operand(expr.func)}({pretty_expr(expr.arg)})"
    if isinstance(expr, ast.Let):
        return f"let {expr.var} = {pretty_expr(expr.bound)} in {pretty_expr(expr.body)}"
    if isinstance(expr, ast.Tuple_):
        return "(" + ", ".join(pretty_expr(e) for e in expr.items) + ")"
    if isinstance(expr, ast.Proj):
        return f"{_operand(expr.tuple_expr)}.{expr.index}"
    if isinstance(expr, ast.DistExpr):
        if not expr.args:
            return expr.kind.value
        return expr.kind.value + "(" + ", ".join(pretty_expr(a) for a in expr.args) + ")"
    return repr(expr)


# ---------------------------------------------------------------------------
# Commands and procedures
# ---------------------------------------------------------------------------


def pretty_command(cmd: ast.Command, indent: int = 0) -> str:
    """Render a command in surface syntax (multi-line)."""
    pad = "  " * indent

    if isinstance(cmd, ast.Ret):
        return f"{pad}return({pretty_expr(cmd.expr)})"
    if isinstance(cmd, ast.Bnd):
        first = pretty_command(cmd.first, indent).lstrip()
        rest = pretty_command(cmd.second, indent)
        binder = "" if cmd.var.startswith("_ignore") else f"{cmd.var} <- "
        return f"{pad}{binder}{first};\n{rest}"
    if isinstance(cmd, ast.SampleRecv):
        return f"{pad}sample.recv{{{cmd.channel}}}({pretty_expr(cmd.dist)})"
    if isinstance(cmd, ast.SampleSend):
        return f"{pad}sample.send{{{cmd.channel}}}({pretty_expr(cmd.dist)})"
    if isinstance(cmd, ast.Observe):
        return f"{pad}observe({pretty_expr(cmd.dist)}, {pretty_expr(cmd.value)})"
    if isinstance(cmd, ast.CondSend):
        return (
            f"{pad}if.send{{{cmd.channel}}} {pretty_expr(cmd.cond)} {{\n"
            f"{pretty_command(cmd.then, indent + 1)}\n{pad}}} else {{\n"
            f"{pretty_command(cmd.orelse, indent + 1)}\n{pad}}}"
        )
    if isinstance(cmd, ast.CondRecv):
        return (
            f"{pad}if.recv{{{cmd.channel}}} {{\n"
            f"{pretty_command(cmd.then, indent + 1)}\n{pad}}} else {{\n"
            f"{pretty_command(cmd.orelse, indent + 1)}\n{pad}}}"
        )
    if isinstance(cmd, ast.CondPure):
        return (
            f"{pad}if {pretty_expr(cmd.cond)} {{\n"
            f"{pretty_command(cmd.then, indent + 1)}\n{pad}}} else {{\n"
            f"{pretty_command(cmd.orelse, indent + 1)}\n{pad}}}"
        )
    if isinstance(cmd, ast.Call):
        return f"{pad}call {cmd.proc}({pretty_expr(cmd.arg)})"
    return f"{pad}{cmd!r}"


def pretty_procedure(proc: ast.Procedure) -> str:
    """Render a whole procedure in surface syntax."""
    params = ", ".join(proc.params)
    header = f"proc {proc.name}({params})"
    if proc.consumes:
        header += f" consume {proc.consumes}"
    if proc.provides:
        header += f" provide {proc.provides}"
    return f"{header} {{\n{pretty_command(proc.body, 1)}\n}}"


def pretty_program(program: ast.Program) -> str:
    """Render a whole program in surface syntax."""
    return "\n\n".join(pretty_procedure(p) for p in program.procedures)


# ---------------------------------------------------------------------------
# Guide types and traces
# ---------------------------------------------------------------------------


def pretty_guide_type(guide_type: ty.GuideType) -> str:
    """Render a guide type with the paper's connectives."""
    if isinstance(guide_type, ty.End):
        return "1"
    if isinstance(guide_type, ty.TyVar):
        return guide_type.name
    if isinstance(guide_type, ty.OpApp):
        return f"{guide_type.operator}[{pretty_guide_type(guide_type.arg)}]"
    if isinstance(guide_type, ty.SendVal):
        return f"{guide_type.payload} /\\ {pretty_guide_type(guide_type.cont)}"
    if isinstance(guide_type, ty.RecvVal):
        return f"{guide_type.payload} => {pretty_guide_type(guide_type.cont)}"
    if isinstance(guide_type, ty.Offer):
        return (
            f"({pretty_guide_type(guide_type.then)} (+) {pretty_guide_type(guide_type.orelse)})"
        )
    if isinstance(guide_type, ty.Choose):
        return f"({pretty_guide_type(guide_type.then)} & {pretty_guide_type(guide_type.orelse)})"
    return repr(guide_type)


def pretty_type_table(table: ty.TypeTable) -> str:
    """Render the typedefs and signatures of a type table."""
    lines = []
    for name, typedef in sorted(table.typedefs.items()):
        lines.append(f"typedef {name}[{typedef.param}] = {pretty_guide_type(typedef.body)}")
    for name, sig in sorted(table.signatures.items()):
        lines.append(f"proc {name} : {sig}")
    return "\n".join(lines)


def pretty_trace(trace: Sequence[tr.Message]) -> str:
    """Render a guidance trace."""
    return tr.format_trace(trace)
