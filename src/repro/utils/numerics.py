"""Numerically stable helpers for working with log weights."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def log_sum_exp(log_values: Sequence[float]) -> float:
    """Stable ``log(sum(exp(x_i)))``; returns ``-inf`` for an empty input.

    Accepts lists and NumPy arrays; array inputs take a vectorized path (the
    particle engines call this with 10k+ element weight vectors).
    """
    if isinstance(log_values, np.ndarray):
        kept = log_values[log_values > -np.inf]
        if kept.size == 0:
            return -math.inf
        peak = float(np.max(kept))
        return peak + math.log(float(np.sum(np.exp(kept - peak))))
    finite = [x for x in log_values if x > -math.inf]
    if not finite:
        return -math.inf
    peak = max(finite)
    total = sum(math.exp(x - peak) for x in finite)
    return peak + math.log(total)


def log_mean_exp(log_values: Sequence[float]) -> float:
    """Stable ``log(mean(exp(x_i)))``."""
    if len(log_values) == 0:
        return -math.inf
    return log_sum_exp(log_values) - math.log(len(log_values))


def normalize_log_weights(log_weights: Sequence[float]) -> np.ndarray:
    """Convert log weights into normalised probabilities.

    All-zero (``-inf``) weight vectors normalise to the uniform distribution
    so downstream resampling never divides by zero; callers that need to
    detect weight collapse should check :func:`effective_sample_size` or the
    raw weights instead.
    """
    array = np.asarray(log_weights, dtype=float)
    if array.size == 0:
        return array
    if np.all(np.isneginf(array)):
        return np.full(array.shape, 1.0 / array.size)
    peak = np.max(array[np.isfinite(array)])
    weights = np.exp(np.clip(array - peak, -745.0, 0.0))
    weights[np.isneginf(array)] = 0.0
    total = weights.sum()
    if total == 0.0:
        return np.full(array.shape, 1.0 / array.size)
    return weights / total


def effective_sample_size(log_weights: Sequence[float]) -> float:
    """Kish effective sample size of a set of importance weights."""
    weights = normalize_log_weights(log_weights)
    if weights.size == 0:
        return 0.0
    return float(1.0 / np.sum(weights**2))


def weighted_mean(values: Sequence[float], log_weights: Sequence[float]) -> float:
    """Self-normalised importance-sampling estimate of a posterior mean."""
    weights = normalize_log_weights(log_weights)
    return float(np.dot(np.asarray(values, dtype=float), weights))


def weighted_variance(values: Sequence[float], log_weights: Sequence[float]) -> float:
    """Self-normalised importance-sampling estimate of a posterior variance."""
    weights = normalize_log_weights(log_weights)
    array = np.asarray(values, dtype=float)
    mean = float(np.dot(array, weights))
    return float(np.dot((array - mean) ** 2, weights))


def weighted_mean_se(values: Sequence[float], log_weights: Sequence[float]) -> tuple:
    """Posterior-mean estimate with its ESS-based Monte Carlo standard error.

    The error scale ``sqrt(Var_w(x) / ESS)`` is the standard self-normalised
    importance-sampling approximation; engines whose weights have collapsed
    (ESS near zero) report a correspondingly large standard error, which the
    fuzzer's agreement oracle uses to widen its tolerance automatically.
    """
    mean = weighted_mean(values, log_weights)
    variance = weighted_variance(values, log_weights)
    ess = effective_sample_size(log_weights)
    se = math.sqrt(max(variance, 0.0) / ess) if ess > 0 else float("inf")
    return mean, se
