"""Differential oracles: run one generated pair through every configuration.

Three oracle families, following the differential-testing playbook of
parallel-execution validators:

1. **Bitwise parity.**  Under common random numbers, the interpreted and
   compiled particle backends must produce bit-identical weight vectors and
   latent values — at one shard *and* under the shard plan — and re-running
   any configuration must reproduce it exactly (no hidden global state).
2. **Static acceptance implies dynamic soundness.**  A pair the typechecker
   certifies must never raise a support, density, or protocol error at
   runtime, under any engine, backend, or shard plan.
3. **Posterior agreement.**  ``is``, ``smc``, and ``svi`` are different
   estimators of the *same* posterior; their self-normalised means for the
   first latent site must agree within a tolerance scaled by each
   estimator's Monte Carlo standard error.

Every run is seeded from the case seed, so a verdict is deterministic: a
seed that passes passes forever, and a violation is reproducible from the
``repro fuzz --seed N`` command embedded in its report.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.session import ProgramSession
from repro.errors import ReproError
from repro.fuzz.generator import FuzzCase, FuzzConfig
from repro.fuzz.spec import count_latent_sites, obs_signature
from repro.obs import REGISTRY
from repro.utils.numerics import weighted_mean_se


@dataclass(frozen=True)
class Violation:
    """One oracle failure for one generated case."""

    seed: int
    kind: str
    detail: str
    config_a: str = ""
    config_b: str = ""

    def describe(self) -> str:
        """One-line rendering for reports and logs."""
        configs = ""
        if self.config_a or self.config_b:
            configs = f" [{self.config_a}" + (f" vs {self.config_b}" if self.config_b else "") + "]"
        return f"seed {self.seed}: {self.kind}{configs}: {self.detail}"


@dataclass
class CaseReport:
    """Outcome of running every oracle against one case."""

    seed: int
    violations: List[Violation] = field(default_factory=list)
    #: Which oracle checks actually ran (e.g. compiled parity is skipped for
    #: recursive pairs that fall back to the interpreter).
    checks: Dict[str, bool] = field(default_factory=dict)
    posterior_means: Dict[str, float] = field(default_factory=dict)
    #: Per-case cost profile: wall time per engine configuration, kernel
    #: compile time, and the registry delta the case produced — embedded in
    #: counterexample reports so a failing seed's cost is visible without a
    #: re-run.
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no oracle flagged the case."""
        return not self.violations


# ---------------------------------------------------------------------------
# Observation synthesis
# ---------------------------------------------------------------------------


def default_obs_values(case: FuzzCase) -> Tuple[object, ...]:
    """In-support observation values for a case's static obs signature.

    Values are drawn from a case-seeded stream, so the whole differential
    run remains a pure function of ``(seed, config)``.
    """
    rng = np.random.default_rng([0x0B5EBE, case.seed])
    values: List[object] = []
    for support, cat_n in obs_signature(case.spec):
        if support == "real":
            values.append(float(round(rng.normal(0.0, 1.5), 3)))
        elif support == "preal":
            values.append(float(round(abs(rng.normal(1.2, 0.6)) + 0.1, 3)))
        elif support == "ureal":
            values.append(float(round(rng.uniform(0.1, 0.9), 3)))
        elif support == "bool":
            values.append(bool(rng.random() < 0.5))
        elif support == "nat":
            values.append(int(rng.poisson(2.0)))
        elif support == "cat":
            values.append(int(rng.integers(0, cat_n)))
        else:  # pragma: no cover - exhaustive over SUPPORTS
            raise ValueError(support)
    return tuple(values)


# ---------------------------------------------------------------------------
# Result comparison helpers
# ---------------------------------------------------------------------------


def _population(result) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(site-0 values, log weights)`` population behind an engine result."""
    raw = getattr(result, "final_pass", None) or result.raw
    if hasattr(raw, "run"):
        return raw.run.site_values(0), np.asarray(raw.log_weights)
    return raw.site_values(0), np.asarray(raw.log_weights)


def bitwise_mismatch(result_a, result_b, num_sites: int) -> Optional[str]:
    """Describe the first bitwise difference between two ``is`` results.

    Compares the importance log-weight vectors, the model/guide weight
    decomposition, and the per-particle values of every guaranteed latent
    site.  Returns ``None`` when the populations are identical.
    """
    a, b = result_a.raw, result_b.raw
    la, lb = np.asarray(a.log_weights), np.asarray(b.log_weights)
    if la.shape != lb.shape:
        return f"population sizes differ: {la.shape} vs {lb.shape}"
    if not np.array_equal(la, lb, equal_nan=True):
        idx = int(np.flatnonzero(~_eq_nan(la, lb))[0])
        return f"log weights differ first at particle {idx}: {la[idx]!r} vs {lb[idx]!r}"
    for name in ("model_log_weights", "guide_log_weights"):
        va, vb = np.asarray(getattr(a.run, name)), np.asarray(getattr(b.run, name))
        if not np.array_equal(va, vb, equal_nan=True):
            idx = int(np.flatnonzero(~_eq_nan(va, vb))[0])
            return f"{name} differ first at particle {idx}: {va[idx]!r} vs {vb[idx]!r}"
    for site in range(num_sites):
        va, vb = a.run.site_values(site), b.run.site_values(site)
        if not np.array_equal(va, vb, equal_nan=True):
            idx = int(np.flatnonzero(~_eq_nan(va, vb))[0])
            return (
                f"latent site {site} values differ first at particle {idx}: "
                f"{va[idx]!r} vs {vb[idx]!r}"
            )
    return None


def _eq_nan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    both_nan = np.isnan(a) & np.isnan(b)
    with np.errstate(invalid="ignore"):
        return (a == b) | both_nan


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


def run_case(case: FuzzCase, config: Optional[FuzzConfig] = None) -> CaseReport:
    """Run every oracle against one generated case.

    The report carries a cost profile (``report.metrics``) alongside the
    verdict: total wall time, per-configuration engine wall times, kernel
    compile time, and the flat metrics-registry delta the case produced.
    """
    config = config or FuzzConfig()
    report = CaseReport(seed=case.seed)
    mark = REGISTRY.mark()
    started = time.perf_counter()
    try:
        _run_oracles(case, config, report)
    finally:
        delta = REGISTRY.delta(mark)
        report.metrics["total_wall_s"] = time.perf_counter() - started
        report.metrics["kernel_compile_s"] = delta.get("repro_kernel_compile_seconds_sum", 0.0)
        report.metrics["registry_delta"] = delta
    return report


def _run_oracles(case: FuzzCase, config: FuzzConfig, report: CaseReport) -> None:
    """The oracle battery behind :func:`run_case` (mutates ``report``)."""
    # Oracle 0: the generator must produce certified pairs (a rejection here
    # is a finding about either the generator or the typechecker).
    try:
        session = ProgramSession.from_sources(case.model_source, case.guide_source)
    except ReproError as exc:
        report.violations.append(
            Violation(case.seed, "generator-ill-typed", f"{type(exc).__name__}: {exc}")
        )
        return
    if not session.certified:
        report.violations.append(
            Violation(case.seed, "uncertified", str(session.certification_reason))
        )
        return

    obs = default_obs_values(case) or None
    engine_seed = case.seed * 9176 + 11
    num_sites = count_latent_sites(case.spec)
    results: Dict[str, object] = {}

    def run(label: str, engine: str, **kwargs):
        """One engine run; any exception is an oracle-2 violation."""
        run_started = time.perf_counter()
        try:
            result = session.infer(
                engine, obs_values=obs, seed=kwargs.pop("seed", engine_seed), **kwargs
            )
        except ReproError as exc:
            report.violations.append(
                Violation(case.seed, "runtime-error", f"{type(exc).__name__}: {exc}", label)
            )
            return None
        except Exception as exc:  # noqa: BLE001 - a crash IS the finding
            report.violations.append(
                Violation(case.seed, "crash", f"{type(exc).__name__}: {exc}", label)
            )
            return None
        finally:
            report.metrics.setdefault("engine_wall_s", {})[label] = (
                time.perf_counter() - run_started
            )
        results[label] = result
        return result

    if len(config.shard_counts) != 2 or config.shard_counts[0] >= config.shard_counts[1]:
        raise ValueError(
            f"shard_counts must be an increasing pair, got {config.shard_counts!r}"
        )
    shard_lo, shard_hi = config.shard_counts
    p = config.particles
    base = run(f"is/interp/shards={shard_lo}", "is", num_particles=p, backend="interp", shards=shard_lo)

    # Oracle 1a: determinism — an identical configuration reruns identically.
    rerun = run(f"is/interp/shards={shard_lo}/rerun", "is", num_particles=p, backend="interp", shards=shard_lo)
    if base is not None and rerun is not None:
        detail = bitwise_mismatch(base, rerun, num_sites)
        report.checks["determinism"] = True
        if detail:
            report.violations.append(
                Violation(case.seed, "nondeterminism", detail, f"is/interp/shards={shard_lo}")
            )

    # Oracle 1b: backend parity at both shard counts, for both compiled
    # tiers — interp × compiled × compiled+mega must agree bitwise under
    # common random numbers (or, outside the compiled fragment, all three
    # must take the identical interpretive fallback).
    for shards in (shard_lo, shard_hi):
        interp = base if shards == shard_lo else run(
            f"is/interp/shards={shards}", "is", num_particles=p, backend="interp", shards=shards
        )
        if interp is None:
            continue
        for jit in ("none", "mega"):
            tier = "compiled" if jit == "none" else f"compiled+{jit}"
            compiled = run(
                f"is/{tier}/shards={shards}", "is", num_particles=p,
                backend="compiled", jit=jit, shards=shards,
            )
            if compiled is None:
                continue
            label = "backend-parity" if session.compiled_backend_supported else "backend-fallback-parity"
            report.checks[f"{label}/{tier}/shards={shards}"] = True
            detail = bitwise_mismatch(interp, compiled, num_sites)
            if detail:
                report.violations.append(
                    Violation(
                        case.seed,
                        "backend-parity",
                        detail,
                        f"is/interp/shards={shards}",
                        f"is/{tier}/shards={shards}",
                    )
                )

    # Oracle 1c: the shard plan is a pure function of (seed, particles,
    # shards) — the worker-pool path must be bit-identical to inline.
    if config.check_workers and base is not None:
        sharded = results.get(f"is/interp/shards={shard_hi}")
        pooled = run(
            f"is/interp/shards={shard_hi}/workers={config.workers}",
            "is",
            num_particles=p,
            backend="interp",
            shards=shard_hi,
            workers=config.workers,
        )
        if sharded is not None and pooled is not None:
            report.checks["worker-parity"] = True
            detail = bitwise_mismatch(sharded, pooled, num_sites)
            if detail:
                report.violations.append(
                    Violation(
                        case.seed,
                        "worker-parity",
                        detail,
                        f"is/interp/shards={shard_hi}",
                        f"workers={config.workers}",
                    )
                )

    # Oracle 3: cross-engine posterior agreement on the first latent site.
    if base is not None and num_sites > 0:
        spread_run = run(
            "is/interp/spread-seed", "is", num_particles=p, backend="interp",
            shards=shard_lo, seed=engine_seed + 1,
        )
        estimates: Dict[str, Tuple[float, float]] = {}
        for label, result in (("is", base), ("is-spread", spread_run)):
            if result is not None:
                estimates[label] = weighted_mean_se(*_population(result))
        if obs is not None:
            smc = run(
                "smc/interp", "smc", num_particles=config.smc_particles, backend="interp",
                shards=shard_lo,
            )
            if smc is not None:
                estimates["smc"] = weighted_mean_se(*_population(smc))
        # The svi engine seeds its final posterior pass from the request
        # seed, so an offset keeps its estimate independent of the ``is``
        # population — otherwise the agreement check compares a draw with
        # itself and can never fire.
        svi = run(
            "svi/interp", "svi", num_particles=config.svi_fit_particles,
            num_steps=config.svi_steps, final_particles=p, backend="interp",
            shards=shard_lo, seed=engine_seed + 2,
        )
        if svi is not None:
            estimates["svi"] = weighted_mean_se(*_population(svi))

        report.posterior_means = {k: m for k, (m, _) in estimates.items()}
        if "is" in estimates:
            m_is, se_is = estimates["is"]
            spread = abs(m_is - estimates["is-spread"][0]) if "is-spread" in estimates else 0.0
            for label in ("smc", "svi"):
                if label not in estimates:
                    continue
                m_other, se_other = estimates[label]
                scale = math.sqrt(se_is**2 + se_other**2) + spread
                tol = config.agreement_atol + config.agreement_k * scale
                report.checks[f"agreement/{label}"] = True
                if not (abs(m_is - m_other) <= tol or (math.isnan(m_is) and math.isnan(m_other))):
                    report.violations.append(
                        Violation(
                            case.seed,
                            "posterior-disagreement",
                            f"site-0 mean {m_is:.4f} (is) vs {m_other:.4f} ({label}); "
                            f"|diff|={abs(m_is - m_other):.4f} > tol={tol:.4f} "
                            f"(se_is={se_is:.4f}, se_{label}={se_other:.4f}, spread={spread:.4f})",
                            "is/interp",
                            f"{label}/interp",
                        )
                    )


# ---------------------------------------------------------------------------
# Campaign-level reporting
# ---------------------------------------------------------------------------


def repro_command(seed: int, config: FuzzConfig, shrink: bool = True) -> str:
    """The exact CLI invocation that reproduces one seed's verdict."""
    parts = [f"python -m repro.cli fuzz --seed {seed} --particles {config.particles}"]
    if config.check_workers:
        parts.append("--check-workers")
    if not config.allow_recursion:
        parts.append("--no-recursion")
    if shrink:
        parts.append("--shrink")
    return " ".join(parts)


def render_failure(
    case: FuzzCase,
    report: CaseReport,
    config: FuzzConfig,
    shrunk: Optional[FuzzCase] = None,
) -> str:
    """A self-contained counterexample report: violations, program, repro."""
    lines = [f"FUZZ VIOLATION (seed {case.seed})", "-" * 40]
    for violation in report.violations:
        lines.append(violation.describe())
    shown = shrunk or case
    title = "shrunk counterexample" if shrunk is not None else "counterexample (unshrunk)"
    lines += [
        "",
        f"# {title}: model",
        shown.model_source.rstrip(),
        "",
        f"# {title}: guide",
        shown.guide_source.rstrip(),
        "",
        f"reproduce with: {repro_command(case.seed, config)}",
    ]
    return "\n".join(lines)
