"""Greedy counterexample minimisation over program specs.

The shrinker never edits surface syntax: it proposes structurally smaller
*specs* (drop a node, hoist a branch arm, unroll a recursion, simplify
parameter expressions) and keeps a candidate only when the failure predicate
still holds on the re-emitted program.  Because emission repairs dangling
variable references (:func:`repro.fuzz.spec.repair_expr`), every candidate
is well-formed — the predicate decides relevance, not validity.

The default predicate re-runs the differential harness and requires a
violation of one of the *original* kinds, so shrinking cannot drift onto an
unrelated failure.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Sequence, Set

from repro.core import ast
from repro.fuzz.generator import FuzzCase, FuzzConfig
from repro.fuzz.spec import (
    Branch,
    LatentSite,
    Node,
    ObsSite,
    ProgramSpec,
    PureLet,
    Recurse,
    emit_sources,
    spec_size,
    with_nodes,
)

_CANONICAL_PARAMS = {
    ast.DistKind.BER: (ast.RealLit(0.5),),
    ast.DistKind.UNIF: (),
    ast.DistKind.BETA: (ast.RealLit(1.5), ast.RealLit(1.5)),
    ast.DistKind.GAMMA: (ast.RealLit(1.5), ast.RealLit(1.0)),
    ast.DistKind.NORMAL: (ast.RealLit(0.0), ast.RealLit(1.0)),
    ast.DistKind.GEO: (ast.RealLit(0.4),),
    ast.DistKind.POIS: (ast.RealLit(1.5),),
}


def _canonical_params(family: ast.DistKind, arity: int) -> tuple:
    if family is ast.DistKind.CAT:
        return tuple(ast.RealLit(1.0) for _ in range(arity))
    return _CANONICAL_PARAMS[family]


def _hoisted_branch(node: Branch, arm: str) -> List[Node]:
    """Replace a branch with one arm's nodes plus pure bindings of its var."""
    nodes, ret_m, ret_g = (
        (node.then, node.then_ret_model, node.then_ret_guide)
        if arm == "then"
        else (node.orelse, node.orelse_ret_model, node.orelse_ret_guide)
    )
    return list(nodes) + [
        PureLet(side="model", var=node.var, support="real", expr=ret_m),
        PureLet(side="guide", var=node.var, support="real", expr=ret_g),
    ]


def _unrolled_recursion(node: Recurse) -> List[Node]:
    """Replace a recursion with one straight-line unrolling of its body."""
    return list(node.body) + [
        PureLet(side="model", var=node.var, support="real", expr=node.acc_update),
        PureLet(side="guide", var=node.var, support="real", expr=node.guide_ret),
    ]


def _simplified_node(node: Node) -> Optional[Node]:
    """A copy of ``node`` with canonical literal parameters, or ``None``."""
    if isinstance(node, LatentSite):
        simplified = replace(
            node,
            model_params=_canonical_params(node.model_family, len(node.model_params)),
            guide_params=_canonical_params(node.guide_family, len(node.guide_params)),
        )
        return None if simplified == node else simplified
    if isinstance(node, ObsSite):
        simplified = replace(
            node, model_params=_canonical_params(node.family, len(node.model_params))
        )
        return None if simplified == node else simplified
    if isinstance(node, Branch):
        simplified = replace(node, cond=ast.BoolLit(True))
        return None if simplified == node else simplified
    return None


def _drop_arm_obs(node: Branch) -> Optional[Branch]:
    """Drop the first observation from *both* arms (keeping them mirrored)."""

    def without_first_obs(nodes: Sequence[Node]) -> Optional[List[Node]]:
        out = list(nodes)
        for i, child in enumerate(out):
            if isinstance(child, ObsSite):
                del out[i]
                return out
        return None

    then = without_first_obs(node.then)
    orelse = without_first_obs(node.orelse)
    if then is None or orelse is None:
        return None
    return replace(node, then=tuple(then), orelse=tuple(orelse))


def _candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """Structurally smaller (or simpler) variants, most aggressive first."""
    nodes = list(spec.nodes)
    # 1. Drop whole top-level nodes (later nodes first: their bindings are
    #    least referenced, so dropping them changes the least).
    for i in reversed(range(len(nodes))):
        if len(nodes) > 1:
            yield with_nodes(spec, nodes[:i] + nodes[i + 1 :])
    # 2. Collapse branches to one arm and recursions to one unrolling.
    for i, node in enumerate(nodes):
        if isinstance(node, Branch):
            for arm in ("then", "orelse"):
                yield with_nodes(spec, nodes[:i] + _hoisted_branch(node, arm) + nodes[i + 1 :])
            dropped = _drop_arm_obs(node)
            if dropped is not None:
                yield with_nodes(spec, nodes[:i] + [dropped] + nodes[i + 1 :])
        elif isinstance(node, Recurse):
            yield with_nodes(spec, nodes[:i] + _unrolled_recursion(node) + nodes[i + 1 :])
            if len(node.body) > 1:
                yield with_nodes(
                    spec,
                    nodes[:i] + [replace(node, body=node.body[:1])] + nodes[i + 1 :],
                )
    # 3. Canonicalise parameters node by node.
    for i, node in enumerate(nodes):
        simplified = _simplified_node(node)
        if simplified is not None:
            yield with_nodes(spec, nodes[:i] + [simplified] + nodes[i + 1 :])
    # 4. Simplify the return expressions.
    if not isinstance(spec.ret_model, ast.RealLit):
        yield replace(spec, ret_model=ast.RealLit(0.0))
    if not isinstance(spec.ret_guide, ast.RealLit):
        yield replace(spec, ret_guide=ast.RealLit(0.0))


def _case_from_spec(seed: int, spec: ProgramSpec) -> FuzzCase:
    emitted = emit_sources(spec)
    return FuzzCase(
        seed=seed,
        spec=spec,
        model_source=emitted.model_source,
        guide_source=emitted.guide_source,
    )


def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    max_attempts: int = 150,
) -> FuzzCase:
    """Greedily minimise ``case`` while ``still_fails`` keeps returning True.

    ``still_fails`` receives a re-emitted candidate case; the caller decides
    what counts as "the same failure" (the CLI requires a violation of one
    of the originally observed kinds).  The search is a fixpoint loop over
    :func:`_candidates`, bounded by ``max_attempts`` predicate evaluations.
    """
    current = case
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate_spec in _candidates(current.spec):
            if attempts >= max_attempts:
                break
            if spec_size(candidate_spec) > spec_size(current.spec):
                continue
            candidate = _case_from_spec(case.seed, candidate_spec)
            if candidate.model_source == current.model_source and (
                candidate.guide_source == current.guide_source
            ):
                continue
            attempts += 1
            try:
                keeps_failing = still_fails(candidate)
            except Exception:  # noqa: BLE001 - a crashing candidate is kept out
                keeps_failing = False
            if keeps_failing:
                current = candidate
                improved = True
                break
    return current


def default_predicate(
    config: FuzzConfig, kinds: Set[str]
) -> Callable[[FuzzCase], bool]:
    """A predicate requiring a violation of one of the given kinds."""
    from repro.fuzz.oracles import run_case

    def still_fails(candidate: FuzzCase) -> bool:
        report = run_case(candidate, config)
        return any(v.kind in kinds for v in report.violations)

    return still_fails
