"""Guide-typed program fuzzer: generation, differential oracles, shrinking.

Public surface::

    from repro.fuzz import FuzzConfig, generate          # type-directed generation
    from repro.fuzz import run_case, CaseReport          # differential oracles
    from repro.fuzz import shrink_case                   # counterexample minimisation
    from repro.fuzz import mutations                     # negative (must-reject) mutants

See ``docs/fuzzing.md`` for the design and the reproduction workflow.
"""

from repro.fuzz.generator import FuzzCase, FuzzConfig, generate
from repro.fuzz.oracles import CaseReport, Violation, run_case
from repro.fuzz.shrinker import shrink_case
from repro.fuzz.spec import ProgramSpec, emit_sources, obs_signature

__all__ = [
    "CaseReport",
    "FuzzCase",
    "FuzzConfig",
    "ProgramSpec",
    "Violation",
    "emit_sources",
    "generate",
    "obs_signature",
    "run_case",
    "shrink_case",
]
