"""Shrinkable intermediate representation of generated model/guide pairs.

The fuzzer never mutates surface syntax or raw ASTs directly: every
generated program is described by a :class:`ProgramSpec` — a small tree of
*dual* nodes, each of which knows how to emit both the model-side and the
guide-side surface syntax.  Working at this level gives two guarantees that
make fuzzing tractable:

1. **Well-typedness by construction.**  A :class:`LatentSite` always pairs a
   model ``sample.recv`` with a guide ``sample.send`` of the *same support
   type*; a :class:`Branch` always pairs a model ``if.send`` with a guide
   ``if.recv`` and mirrors the observation signature across its arms (the
   guide-type rules require the provided ``obs`` protocol to agree between
   branches); a :class:`Recurse` emits structurally dual recursive helper
   procedures.  Emission therefore produces certified pairs unless the type
   system itself is broken — which is exactly what the differential oracles
   are hunting for.

2. **Sound shrinking and mutation.**  Dropping or reordering nodes can leave
   dangling variable references in parameter expressions; the emitter
   repairs them by substituting a type-correct literal
   (:func:`repair_expr`), so *every* spec — including shrunk and mutated
   ones — still emits parseable, basic-typed programs.

Emission is a pure function of the spec (no randomness), so the shrinker can
re-emit candidates deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Set, Tuple, Union

from repro.core import ast
from repro.utils.pretty import pretty_expr

#: Support classes a latent or observed site can have.  ``cat`` carries the
#: category count out-of-band (``cat_n``) because ``Cat(n)`` has support ℕn.
SUPPORTS = ("real", "preal", "ureal", "bool", "nat", "cat")


# ---------------------------------------------------------------------------
# Nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LatentSite:
    """A dual latent sample site: model ``sample.recv`` / guide ``sample.send``.

    ``model_family``/``guide_family`` may differ (e.g. a ``Beta`` model site
    proposed from a ``Unif`` guide) but must share the same support type, so
    the latent protocols stay equal.
    """

    var: str
    support: str
    model_family: ast.DistKind
    model_params: Tuple[ast.Expr, ...]
    guide_family: ast.DistKind
    guide_params: Tuple[ast.Expr, ...]
    cat_n: int = 0


@dataclass(frozen=True)
class ObsSite:
    """A model-only observation: ``sample.send`` on the ``obs`` channel."""

    support: str
    family: ast.DistKind
    model_params: Tuple[ast.Expr, ...]
    cat_n: int = 0


@dataclass(frozen=True)
class PureLet:
    """A pure binding ``x <- return(e)`` on one side only."""

    side: str  # "model" | "guide"
    var: str
    support: str
    expr: ast.Expr


@dataclass(frozen=True)
class PureCond:
    """An uncommunicated conditional with pure arms, on one side only.

    Emits ``x <- if e { return(e1) } else { return(e2) };`` — both arms are
    ``return`` commands, so the conditional induces no channel protocol and
    exercises the ``CondPure`` typing rule.
    """

    side: str  # "model" | "guide"
    var: str
    cond: ast.Expr
    then_expr: ast.Expr
    orelse_expr: ast.Expr


@dataclass(frozen=True)
class Branch:
    """A branch announced on the latent channel: ``if.send`` / ``if.recv``.

    The two arms may follow different *latent* protocols (that is what the
    ⊕/& connectives capture) but must emit the same sequence of observation
    support types — the generator enforces this by construction and the
    shrinker drops arm observations pairwise.
    """

    var: str
    cond: ast.Expr  # model-side Boolean over the enclosing model scope
    then: Tuple["Node", ...]
    orelse: Tuple["Node", ...]
    then_ret_model: ast.Expr
    then_ret_guide: ast.Expr
    orelse_ret_model: ast.Expr
    orelse_ret_guide: ast.Expr


@dataclass(frozen=True)
class Recurse:
    """A geometric-stopping recursive helper pair (model + dual guide).

    The model helper consumes the latent channel only (observations inside a
    recursive loop cannot satisfy branch agreement on ``obs``), threads a
    ``real`` accumulator, and announces continuation with an ``if.send`` on
    a Bernoulli draw; the guide helper mirrors every latent action.
    """

    var: str
    helper: str
    body: Tuple[LatentSite, ...]
    cont_var: str
    model_cont_p: float
    guide_cont_p: float
    acc_init: ast.Expr  # model-scope expression
    acc_update: ast.Expr  # over {"acc"} ∪ body vars (model side)
    guide_ret: ast.Expr  # over body vars (guide side)


Node = Union[LatentSite, ObsSite, PureLet, PureCond, Branch, Recurse]


@dataclass(frozen=True)
class ProgramSpec:
    """A full generated program: top-level nodes plus return expressions."""

    seed: int
    nodes: Tuple[Node, ...]
    ret_model: ast.Expr
    ret_guide: ast.Expr
    #: Every variable any node may bind, mapped to its support class — used
    #: by :func:`repair_expr` to substitute literals for dangling references.
    var_types: Dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Expression repair
# ---------------------------------------------------------------------------

_REPAIR_LITERALS = {
    "real": ast.RealLit(0.0),
    "preal": ast.RealLit(1.0),
    "ureal": ast.RealLit(0.5),
    "bool": ast.BoolLit(True),
    "nat": ast.NatLit(1),
    "cat": ast.NatLit(0),
}


def repair_expr(expr: ast.Expr, scope: Set[str], var_types: Dict[str, str]) -> ast.Expr:
    """Replace references to out-of-scope variables with type-correct literals.

    Shrinking/mutation can remove the node that bound a variable some later
    parameter expression mentions; substituting the variable's support-class
    literal keeps the emitted program well-typed without cascading edits.
    """
    if isinstance(expr, ast.Var):
        if expr.name in scope:
            return expr
        return _REPAIR_LITERALS[var_types.get(expr.name, "real")]
    if isinstance(expr, (ast.Triv, ast.BoolLit, ast.RealLit, ast.NatLit)):
        return expr
    if isinstance(expr, ast.IfExpr):
        return ast.IfExpr(
            repair_expr(expr.cond, scope, var_types),
            repair_expr(expr.then, scope, var_types),
            repair_expr(expr.orelse, scope, var_types),
        )
    if isinstance(expr, ast.PrimOp):
        return ast.PrimOp(
            expr.op,
            repair_expr(expr.left, scope, var_types),
            repair_expr(expr.right, scope, var_types),
        )
    if isinstance(expr, ast.PrimUnOp):
        return ast.PrimUnOp(expr.op, repair_expr(expr.operand, scope, var_types))
    raise TypeError(f"fuzz specs only use first-order expressions, got {expr!r}")


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EmittedPair:
    """The two surface-syntax sources a spec emits."""

    model_source: str
    guide_source: str


def _dist_source(
    family: ast.DistKind, params: Sequence[ast.Expr], scope: Set[str], var_types
) -> str:
    repaired = tuple(repair_expr(p, scope, var_types) for p in params)
    return pretty_expr(ast.DistExpr(family, repaired))


def _expr_source(expr: ast.Expr, scope: Set[str], var_types) -> str:
    return pretty_expr(repair_expr(expr, scope, var_types))


class _Emitter:
    """Stateful walk over a spec producing model and guide source lines."""

    def __init__(self, spec: ProgramSpec):
        self.spec = spec
        self.var_types = spec.var_types
        self.model_helpers: List[str] = []
        self.guide_helpers: List[str] = []

    # -- statements -----------------------------------------------------------

    def emit_nodes(
        self,
        nodes: Sequence[Node],
        model_scope: Set[str],
        guide_scope: Set[str],
        indent: int,
    ) -> Tuple[List[str], List[str]]:
        model_lines: List[str] = []
        guide_lines: List[str] = []
        pad = "  " * indent
        for node in nodes:
            if isinstance(node, LatentSite):
                mdist = _dist_source(node.model_family, node.model_params, model_scope, self.var_types)
                gdist = _dist_source(node.guide_family, node.guide_params, guide_scope, self.var_types)
                model_lines.append(f"{pad}{node.var} <- sample.recv{{latent}}({mdist});")
                guide_lines.append(f"{pad}{node.var} <- sample.send{{latent}}({gdist});")
                model_scope.add(node.var)
                guide_scope.add(node.var)
            elif isinstance(node, ObsSite):
                dist = _dist_source(node.family, node.model_params, model_scope, self.var_types)
                model_lines.append(f"{pad}_ <- sample.send{{obs}}({dist});")
            elif isinstance(node, PureLet):
                scope = model_scope if node.side == "model" else guide_scope
                line = f"{pad}{node.var} <- return({_expr_source(node.expr, scope, self.var_types)});"
                (model_lines if node.side == "model" else guide_lines).append(line)
                scope.add(node.var)
            elif isinstance(node, PureCond):
                scope = model_scope if node.side == "model" else guide_scope
                cond = _expr_source(node.cond, scope, self.var_types)
                then = _expr_source(node.then_expr, scope, self.var_types)
                orelse = _expr_source(node.orelse_expr, scope, self.var_types)
                line = (
                    f"{pad}{node.var} <- if {cond} {{ return({then}) }} "
                    f"else {{ return({orelse}) }};"
                )
                (model_lines if node.side == "model" else guide_lines).append(line)
                scope.add(node.var)
            elif isinstance(node, Branch):
                self._emit_branch(node, model_scope, guide_scope, indent, model_lines, guide_lines)
            elif isinstance(node, Recurse):
                self._emit_recurse(node, model_scope, guide_scope, pad, model_lines, guide_lines)
            else:  # pragma: no cover - exhaustive over Node
                raise TypeError(f"unknown spec node {node!r}")
        return model_lines, guide_lines

    def _emit_branch(self, node, model_scope, guide_scope, indent, model_lines, guide_lines):
        pad = "  " * indent
        cond = _expr_source(node.cond, model_scope, self.var_types)
        arms = {}
        for arm_name, arm_nodes, ret_m, ret_g in (
            ("then", node.then, node.then_ret_model, node.then_ret_guide),
            ("orelse", node.orelse, node.orelse_ret_model, node.orelse_ret_guide),
        ):
            arm_mscope, arm_gscope = set(model_scope), set(guide_scope)
            m_lines, g_lines = self.emit_nodes(arm_nodes, arm_mscope, arm_gscope, indent + 1)
            inner = "  " * (indent + 1)
            m_lines.append(f"{inner}return({_expr_source(ret_m, arm_mscope, self.var_types)})")
            g_lines.append(f"{inner}return({_expr_source(ret_g, arm_gscope, self.var_types)})")
            arms[arm_name] = (m_lines, g_lines)
        model_lines.append(f"{pad}{node.var} <- if.send{{latent}} {cond} {{")
        model_lines.extend(arms["then"][0])
        model_lines.append(f"{pad}}} else {{")
        model_lines.extend(arms["orelse"][0])
        model_lines.append(f"{pad}}};")
        guide_lines.append(f"{pad}{node.var} <- if.recv{{latent}} {{")
        guide_lines.extend(arms["then"][1])
        guide_lines.append(f"{pad}}} else {{")
        guide_lines.extend(arms["orelse"][1])
        guide_lines.append(f"{pad}}};")
        model_scope.add(node.var)
        guide_scope.add(node.var)

    def _emit_recurse(self, node, model_scope, guide_scope, pad, model_lines, guide_lines):
        acc_init = _expr_source(node.acc_init, model_scope, self.var_types)
        model_lines.append(f"{pad}{node.var} <- call {node.helper}({acc_init});")
        guide_lines.append(f"{pad}{node.var} <- call {node.helper}Guide();")
        model_scope.add(node.var)
        guide_scope.add(node.var)

        helper_mscope: Set[str] = {"acc"}
        helper_gscope: Set[str] = set()
        m_body, g_body = self.emit_nodes(node.body, helper_mscope, helper_gscope, 1)
        update = _expr_source(node.acc_update, helper_mscope, self.var_types)
        guide_ret = _expr_source(node.guide_ret, helper_gscope, self.var_types)

        self.model_helpers.append(
            "\n".join(
                [
                    f"proc {node.helper}(acc: real) consume latent {{",
                    *m_body,
                    f"  {node.cont_var} <- sample.recv{{latent}}(Ber({node.model_cont_p!r}));",
                    f"  if.send{{latent}} {node.cont_var} {{",
                    f"    call {node.helper}({update})",
                    "  } else {",
                    f"    return({update})",
                    "  }",
                    "}",
                ]
            )
        )
        self.guide_helpers.append(
            "\n".join(
                [
                    f"proc {node.helper}Guide() provide latent {{",
                    *g_body,
                    f"  {node.cont_var} <- sample.send{{latent}}(Ber({node.guide_cont_p!r}));",
                    "  if.recv{latent} {",
                    f"    call {node.helper}Guide()",
                    "  } else {",
                    f"    return({guide_ret})",
                    "  }",
                    "}",
                ]
            )
        )


def emit_sources(spec: ProgramSpec) -> EmittedPair:
    """Emit a spec's model and guide surface-syntax sources."""
    emitter = _Emitter(spec)
    model_scope: Set[str] = set()
    guide_scope: Set[str] = set()
    model_lines, guide_lines = emitter.emit_nodes(spec.nodes, model_scope, guide_scope, 1)
    model_lines.append(f"  return({_expr_source(spec.ret_model, model_scope, spec.var_types)})")
    guide_lines.append(f"  return({_expr_source(spec.ret_guide, guide_scope, spec.var_types)})")

    model = "\n".join(
        ["proc Main() consume latent provide obs {", *model_lines, "}"]
        + [""] * (1 if emitter.model_helpers else 0)
        + emitter.model_helpers
    )
    guide = "\n".join(
        ["proc MainGuide() provide latent {", *guide_lines, "}"]
        + [""] * (1 if emitter.guide_helpers else 0)
        + emitter.guide_helpers
    )
    return EmittedPair(model_source=model + "\n", guide_source=guide + "\n")


# ---------------------------------------------------------------------------
# Static queries used by the differential harness and the shrinker
# ---------------------------------------------------------------------------


def obs_signature(spec: ProgramSpec) -> List[Tuple[str, int]]:
    """The static ``(support, cat_n)`` sequence of observation sites.

    Branch arms carry equal observation signatures by construction, so the
    sequence — and therefore the number of ``--obs`` values a generated
    program consumes — is the same on every control path.  Walking the
    ``then`` arm is enough.
    """
    out: List[Tuple[str, int]] = []

    def walk(nodes: Sequence[Node]) -> None:
        for node in nodes:
            if isinstance(node, ObsSite):
                out.append((node.support, node.cat_n))
            elif isinstance(node, Branch):
                walk(node.then)

    walk(spec.nodes)
    return out


def count_latent_sites(spec: ProgramSpec) -> int:
    """Latent sites on the guaranteed (straight-line, top-level) prefix.

    Sites inside branch arms and recursion bodies are reached by only some
    particles; this counts the sites every particle resolves, which is what
    the posterior-agreement oracle may safely index.
    """
    n = 0
    for node in spec.nodes:
        if isinstance(node, LatentSite):
            n += 1
    return n


def spec_size(spec: ProgramSpec) -> int:
    """Total node count (used by the shrinker to order candidates)."""

    def walk(nodes: Sequence[Node]) -> int:
        total = 0
        for node in nodes:
            total += 1
            if isinstance(node, Branch):
                total += walk(node.then) + walk(node.orelse)
            elif isinstance(node, Recurse):
                total += len(node.body)
        return total

    return walk(spec.nodes)


def with_nodes(spec: ProgramSpec, nodes: Sequence[Node]) -> ProgramSpec:
    """A copy of ``spec`` with a different top-level node sequence."""
    return replace(spec, nodes=tuple(nodes))
