"""Type-directed generation of random well-typed model/guide pairs.

The generator drives the grammar of :mod:`repro.core.ast` through the typing
rules of :mod:`repro.core.typecheck`: every random choice is made against a
typed scope, so parameter expressions are well-typed by construction and the
emitted pair certifies under :func:`check_model_guide_pair` (guide-type
inference) unless the type system itself is wrong.

Coverage knobs live on :class:`FuzzConfig`; :func:`generate` is a pure
function of ``(seed, config)`` and is the single entry point the CLI, the
pytest suites, and the corpus builder share.

Numeric ranges are deliberately tame (means in a few units, scales around 1,
probabilities away from 0/1) so the differential oracles downstream measure
*engine* disagreement rather than importance-weight degeneracy.  The type
system guarantees positivity/support constraints; the ranges only bound
magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core import ast
from repro.fuzz.spec import (
    Branch,
    LatentSite,
    Node,
    ObsSite,
    ProgramSpec,
    PureCond,
    PureLet,
    Recurse,
    emit_sources,
)

#: Entropy prefix mixed into every seed so fuzz streams are decoupled from
#: the engines' own seed usage.
_FUZZ_NAMESPACE = 0xF0220001


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for generation and for the differential harness.

    The generation half bounds program shape; the harness half (particle
    counts, tolerances) is carried here too so one object pins down a fuzz
    campaign end to end — a reproduction command only needs ``(seed,
    config)``.
    """

    # -- generation shape ------------------------------------------------------
    max_top_nodes: int = 7
    max_arm_nodes: int = 2
    max_branch_depth: int = 2
    allow_recursion: bool = True
    max_recursions: int = 1
    expr_depth: int = 2
    # -- differential harness --------------------------------------------------
    particles: int = 384
    smc_particles: int = 384
    svi_fit_particles: int = 128
    svi_steps: int = 2
    shard_counts: Tuple[int, ...] = (1, 4)
    check_workers: bool = False
    workers: int = 2
    agreement_atol: float = 0.1
    agreement_k: float = 8.0


@dataclass(frozen=True)
class FuzzCase:
    """One generated program with its emitted sources."""

    seed: int
    spec: ProgramSpec
    model_source: str
    guide_source: str


# ---------------------------------------------------------------------------
# Typed scopes
# ---------------------------------------------------------------------------


class _Scope:
    """An ordered typed scope: variable name -> support class."""

    def __init__(self) -> None:
        self.entries: List[Tuple[str, str]] = []

    def add(self, name: str, support: str) -> None:
        self.entries.append((name, support))

    def names(self) -> Set[str]:
        return {name for name, _ in self.entries}

    def of(self, supports: Sequence[str]) -> List[str]:
        return [name for name, s in self.entries if s in supports]

    def copy(self) -> "_Scope":
        child = _Scope()
        child.entries = list(self.entries)
        return child


#: Supports usable where a ``real``-typed expression is expected (scalar
#: subtyping: ureal <: preal <: real, nat/cat embed into real).
_REAL_LIKE = ("real", "preal", "ureal", "nat", "cat")
_PREAL_LIKE = ("preal", "ureal")


def _round(value: float, digits: int = 3) -> float:
    return float(round(float(value), digits))


def _real_lit(value: float) -> ast.Expr:
    """A literal in the parser's image: negatives via unary minus."""
    value = _round(value)
    if value < 0:
        return ast.PrimUnOp(ast.UnOp.NEG, ast.RealLit(-value))
    return ast.RealLit(value)


class _ExprGen:
    """Small typed expression generator over a scope."""

    def __init__(self, rng: np.random.Generator, depth: int):
        self.rng = rng
        self.depth = depth

    def _real_var(self, name: str, support: str) -> ast.Expr:
        """A scope variable as a *numeric*-typed expression.

        ℕ-typed variables (``nat``/``cat`` supports) are wrapped as
        ``(v * 1.0)``: the bare variable is integral-typed, and the scalar
        join of an integral with ℝ+/ℝ(0,1) does not exist, which would make
        conditional arms mixing the two ill-typed.  The wrap promotes the
        variable into the numeric tower where all joins are defined.
        """
        if support in ("nat", "cat"):
            return ast.PrimOp(ast.BinOp.MUL, ast.Var(name), ast.RealLit(1.0))
        return ast.Var(name)

    def real(self, scope: _Scope, depth: Optional[int] = None) -> ast.Expr:
        depth = self.depth if depth is None else depth
        rng = self.rng
        candidates = [(n, s) for n, s in scope.entries if s in _REAL_LIKE]
        roll = rng.random()
        if depth <= 0 or (roll < 0.35 or not candidates and roll < 0.7):
            return _real_lit(rng.uniform(-2.5, 2.5))
        if roll < 0.6 and candidates:
            name, support = candidates[int(rng.integers(len(candidates)))]
            return self._real_var(name, support)
        if roll < 0.8:
            op = ast.BinOp.ADD if rng.random() < 0.5 else ast.BinOp.SUB
            return ast.PrimOp(op, self.real(scope, depth - 1), self.real(scope, depth - 1))
        if roll < 0.9:
            return ast.PrimOp(
                ast.BinOp.MUL, self.real(scope, depth - 1), _real_lit(rng.uniform(-1.2, 1.2))
            )
        if roll < 0.96 and scope.of(("bool",)):
            return ast.IfExpr(
                ast.Var(str(rng.choice(scope.of(("bool",))))),
                self.real(scope, depth - 1),
                self.real(scope, depth - 1),
            )
        return ast.PrimUnOp(ast.UnOp.NEG, self.real(scope, depth - 1))

    def preal(self, scope: _Scope, depth: Optional[int] = None) -> ast.Expr:
        depth = self.depth if depth is None else depth
        rng = self.rng
        candidates = scope.of(_PREAL_LIKE)
        roll = rng.random()
        if depth <= 0 or roll < 0.4:
            return ast.RealLit(_round(rng.uniform(0.6, 2.5)))
        if roll < 0.6 and candidates:
            return ast.Var(str(rng.choice(candidates)))
        if roll < 0.75:
            return ast.PrimOp(
                ast.BinOp.ADD,
                ast.RealLit(_round(rng.uniform(0.4, 1.5))),
                self.preal(scope, depth - 1),
            )
        if roll < 0.85:
            return ast.PrimOp(
                ast.BinOp.MUL,
                ast.RealLit(_round(rng.uniform(0.5, 1.5))),
                self.preal(scope, depth - 1),
            )
        if roll < 0.94:
            # exp of a *bounded* real keeps scales far from overflow.
            inner = ast.PrimOp(
                ast.BinOp.MUL, self.real(scope, 1), ast.RealLit(_round(rng.uniform(0.1, 0.3)))
            )
            return ast.PrimUnOp(ast.UnOp.EXP, inner)
        return ast.PrimUnOp(ast.UnOp.SQRT, self.preal(scope, depth - 1))

    def ureal(self, scope: _Scope, depth: Optional[int] = None) -> ast.Expr:
        depth = self.depth if depth is None else depth
        rng = self.rng
        candidates = scope.of(("ureal",))
        roll = rng.random()
        if depth <= 0 or roll < 0.5 or not candidates:
            return ast.RealLit(_round(rng.uniform(0.1, 0.9)))
        if roll < 0.8:
            return ast.Var(str(rng.choice(candidates)))
        return ast.PrimOp(
            ast.BinOp.MUL,
            ast.Var(str(rng.choice(candidates))),
            ast.RealLit(_round(rng.uniform(0.3, 0.95))),
        )

    def boolean(self, scope: _Scope, depth: Optional[int] = None) -> ast.Expr:
        depth = self.depth if depth is None else depth
        rng = self.rng
        bools = scope.of(("bool",))
        roll = rng.random()
        if roll < 0.45 and bools:
            return ast.Var(str(rng.choice(bools)))
        if depth > 0 and roll < 0.55 and bools:
            return ast.PrimUnOp(ast.UnOp.NOT, self.boolean(scope, depth - 1))
        if depth > 0 and roll < 0.62:
            op = ast.BinOp.AND if rng.random() < 0.5 else ast.BinOp.OR
            return ast.PrimOp(op, self.boolean(scope, depth - 1), self.boolean(scope, depth - 1))
        op = self.rng.choice([ast.BinOp.LT, ast.BinOp.LE, ast.BinOp.GT, ast.BinOp.GE])
        return ast.PrimOp(op, self.real(scope, 1), _real_lit(rng.uniform(-1.5, 1.5)))


# ---------------------------------------------------------------------------
# Site generation
# ---------------------------------------------------------------------------

_SUPPORT_WEIGHTS = {
    "real": 0.30,
    "bool": 0.18,
    "ureal": 0.15,
    "preal": 0.15,
    "nat": 0.12,
    "cat": 0.10,
}


class _Generator:
    """One generation run: owns the RNG, the counters, and the var table."""

    def __init__(self, seed: int, config: FuzzConfig):
        self.rng = np.random.default_rng([_FUZZ_NAMESPACE, seed])
        self.config = config
        self.exprs = _ExprGen(self.rng, config.expr_depth)
        self.counter = 0
        self.recursions = 0
        self.var_types: Dict[str, str] = {"acc": "real"}

    def fresh(self, prefix: str, support: str) -> str:
        self.counter += 1
        name = f"{prefix}{self.counter}"
        self.var_types[name] = support
        return name

    def _pick_support(self) -> str:
        names = list(_SUPPORT_WEIGHTS)
        weights = np.array([_SUPPORT_WEIGHTS[n] for n in names])
        return str(self.rng.choice(names, p=weights / weights.sum()))

    # -- distributions ---------------------------------------------------------

    def _model_dist(self, support: str, scope: _Scope, cat_n: int) -> Tuple[ast.DistKind, Tuple[ast.Expr, ...]]:
        rng, e = self.rng, self.exprs
        if support == "real":
            return ast.DistKind.NORMAL, (e.real(scope), e.preal(scope))
        if support == "bool":
            return ast.DistKind.BER, (e.ureal(scope),)
        if support == "preal":
            return ast.DistKind.GAMMA, (e.preal(scope), e.preal(scope))
        if support == "ureal":
            if rng.random() < 0.4:
                return ast.DistKind.UNIF, ()
            return ast.DistKind.BETA, (e.preal(scope), e.preal(scope))
        if support == "nat":
            if rng.random() < 0.5:
                return ast.DistKind.GEO, (e.ureal(scope),)
            return ast.DistKind.POIS, (e.preal(scope),)
        if support == "cat":
            return ast.DistKind.CAT, tuple(e.preal(scope) for _ in range(cat_n))
        raise ValueError(support)

    def _guide_dist(
        self, support: str, model_family: ast.DistKind, scope: _Scope, cat_n: int
    ) -> Tuple[ast.DistKind, Tuple[ast.Expr, ...]]:
        """A guide-side family with the same support type, tamely parameterised.

        Scales/probabilities lean wide-and-central so importance weights stay
        bounded: the oracle is hunting engine disagreement, not weight
        degeneracy.  Discrete-count sites keep the model's family (a Geo
        model proposed from a Pois guide has provably unbounded weights).
        """
        rng, e = self.rng, self.exprs
        if support == "real":
            mean = e.real(scope) if rng.random() < 0.6 else _real_lit(rng.uniform(-1.5, 1.5))
            return ast.DistKind.NORMAL, (mean, ast.RealLit(_round(rng.uniform(1.0, 2.0))))
        if support == "bool":
            return ast.DistKind.BER, (ast.RealLit(_round(rng.uniform(0.25, 0.75))),)
        if support == "preal":
            return ast.DistKind.GAMMA, (
                ast.RealLit(_round(rng.uniform(0.9, 2.2))),
                ast.RealLit(_round(rng.uniform(0.5, 1.3))),
            )
        if support == "ureal":
            if rng.random() < 0.5:
                return ast.DistKind.UNIF, ()
            return ast.DistKind.BETA, (
                ast.RealLit(_round(rng.uniform(0.9, 2.5))),
                ast.RealLit(_round(rng.uniform(0.9, 2.5))),
            )
        if support == "nat":
            if model_family is ast.DistKind.GEO:
                return ast.DistKind.GEO, (ast.RealLit(_round(rng.uniform(0.25, 0.6))),)
            return ast.DistKind.POIS, (ast.RealLit(_round(rng.uniform(0.8, 3.0))),)
        if support == "cat":
            return ast.DistKind.CAT, tuple(
                ast.RealLit(_round(rng.uniform(0.5, 2.0))) for _ in range(cat_n)
            )
        raise ValueError(support)

    def latent_site(self, model_scope: _Scope, guide_scope: _Scope) -> LatentSite:
        support = self._pick_support()
        cat_n = int(self.rng.integers(2, 5)) if support == "cat" else 0
        model_family, model_params = self._model_dist(support, model_scope, cat_n)
        guide_family, guide_params = self._guide_dist(support, model_family, guide_scope, cat_n)
        var = self.fresh("x", support)
        site = LatentSite(
            var=var,
            support=support,
            model_family=model_family,
            model_params=model_params,
            guide_family=guide_family,
            guide_params=guide_params,
            cat_n=cat_n,
        )
        model_scope.add(var, support)
        guide_scope.add(var, support)
        return site

    def obs_site(self, model_scope: _Scope, support: Optional[str] = None, cat_n: int = 0) -> ObsSite:
        if support is None:
            support = self._pick_support()
            cat_n = int(self.rng.integers(2, 5)) if support == "cat" else 0
        family, params = self._model_dist(support, model_scope, cat_n)
        return ObsSite(support=support, family=family, model_params=params, cat_n=cat_n)

    def pure_node(self, model_scope: _Scope, guide_scope: _Scope) -> Node:
        side = "model" if self.rng.random() < 0.6 else "guide"
        scope = model_scope if side == "model" else guide_scope
        var = self.fresh("p", "real")
        if self.rng.random() < 0.5 and scope.of(("bool",)) or self.rng.random() < 0.25:
            node: Node = PureCond(
                side=side,
                var=var,
                cond=self.exprs.boolean(scope),
                then_expr=self.exprs.real(scope),
                orelse_expr=self.exprs.real(scope),
            )
        else:
            node = PureLet(side=side, var=var, support="real", expr=self.exprs.real(scope))
        scope.add(var, "real")
        return node

    # -- segments and branches -------------------------------------------------

    def segment(
        self,
        model_scope: _Scope,
        guide_scope: _Scope,
        obs_sig: Sequence[Tuple[str, int]],
        depth: int,
    ) -> Tuple[Node, ...]:
        """A node sequence emitting exactly the given observation signature."""
        nodes: List[Node] = []
        n_latent = int(self.rng.integers(0, self.config.max_arm_nodes + 1))
        for _ in range(n_latent):
            nodes.append(self.latent_site(model_scope, guide_scope))
        if depth < self.config.max_branch_depth and self.rng.random() < 0.3:
            nodes.append(self.branch(model_scope, guide_scope, depth + 1))
        # Interleave the required observations, preserving their order (the
        # guide-type rules require both arms to emit the same obs-payload
        # sequence, so later observations must not land before earlier ones).
        floor = 0
        for support, cat_n in obs_sig:
            pos = int(self.rng.integers(floor, len(nodes) + 1))
            nodes.insert(pos, self.obs_site(model_scope, support, cat_n))
            floor = pos + 1
        return tuple(nodes)

    def branch(self, model_scope: _Scope, guide_scope: _Scope, depth: int) -> Branch:
        cond = self.exprs.boolean(model_scope)
        if depth <= 1 and self.rng.random() < 0.6:
            n_obs = int(self.rng.integers(1, 3))
            obs_sig = []
            for _ in range(n_obs):
                support = self._pick_support()
                cat_n = int(self.rng.integers(2, 5)) if support == "cat" else 0
                obs_sig.append((support, cat_n))
        else:
            obs_sig = []
        then_m, then_g = model_scope.copy(), guide_scope.copy()
        then_nodes = self.segment(then_m, then_g, obs_sig, depth)
        else_m, else_g = model_scope.copy(), guide_scope.copy()
        orelse_nodes = self.segment(else_m, else_g, obs_sig, depth)
        var = self.fresh("b", "real")
        branch = Branch(
            var=var,
            cond=cond,
            then=then_nodes,
            orelse=orelse_nodes,
            then_ret_model=self.exprs.real(then_m),
            then_ret_guide=self.exprs.real(then_g),
            orelse_ret_model=self.exprs.real(else_m),
            orelse_ret_guide=self.exprs.real(else_g),
        )
        model_scope.add(var, "real")
        guide_scope.add(var, "real")
        return branch

    def recursion(self, model_scope: _Scope, guide_scope: _Scope) -> Recurse:
        self.recursions += 1
        helper = f"Loop{self.recursions}"
        body_m, body_g = _Scope(), _Scope()
        body_m.add("acc", "real")
        body: List[LatentSite] = []
        for _ in range(int(self.rng.integers(1, 3))):
            body.append(self.latent_site(body_m, body_g))
        real_vars = [s.var for s in body if s.support in _REAL_LIKE]
        step: ast.Expr = ast.Var(real_vars[0]) if real_vars else _real_lit(
            self.rng.uniform(0.2, 1.0)
        )
        acc_update = ast.PrimOp(ast.BinOp.ADD, ast.Var("acc"), step)
        cont_var = self.fresh("k", "bool")
        var = self.fresh("r", "real")
        node = Recurse(
            var=var,
            helper=helper,
            body=tuple(body),
            cont_var=cont_var,
            model_cont_p=_round(self.rng.uniform(0.25, 0.45)),
            guide_cont_p=_round(self.rng.uniform(0.3, 0.5)),
            acc_init=self.exprs.real(model_scope, 1),
            acc_update=acc_update,
            guide_ret=self.exprs.real(body_g, 1),
        )
        model_scope.add(var, "real")
        guide_scope.add(var, "real")
        return node

    # -- the top level ---------------------------------------------------------

    def program(self, seed: int) -> ProgramSpec:
        model_scope, guide_scope = _Scope(), _Scope()
        nodes: List[Node] = [self.latent_site(model_scope, guide_scope)]
        n_more = int(self.rng.integers(2, self.config.max_top_nodes))
        for _ in range(n_more):
            roll = self.rng.random()
            if roll < 0.42:
                nodes.append(self.latent_site(model_scope, guide_scope))
            elif roll < 0.60:
                nodes.append(self.obs_site(model_scope))
            elif roll < 0.76 and self.config.max_branch_depth > 0:
                nodes.append(self.branch(model_scope, guide_scope, 1))
            elif roll < 0.92:
                nodes.append(self.pure_node(model_scope, guide_scope))
            elif (
                self.config.allow_recursion
                and self.recursions < self.config.max_recursions
            ):
                nodes.append(self.recursion(model_scope, guide_scope))
            else:
                nodes.append(self.latent_site(model_scope, guide_scope))
        if not any(isinstance(n, ObsSite) for n in nodes):
            nodes.append(self.obs_site(model_scope))
        return ProgramSpec(
            seed=seed,
            nodes=tuple(nodes),
            ret_model=self.exprs.real(model_scope, 1),
            ret_guide=self.exprs.real(guide_scope, 1),
            var_types=dict(self.var_types),
        )


def generate(seed: int, config: Optional[FuzzConfig] = None) -> FuzzCase:
    """Generate the well-typed model/guide pair for ``(seed, config)``.

    Deterministic: the same inputs always produce byte-identical sources,
    which is what makes seeds reproduction commands and corpus pins.
    """
    config = config or FuzzConfig()
    spec = _Generator(seed, config).program(seed)
    emitted = emit_sources(spec)
    return FuzzCase(
        seed=seed,
        spec=spec,
        model_source=emitted.model_source,
        guide_source=emitted.guide_source,
    )


# ---------------------------------------------------------------------------
# Deterministic benchmark families
# ---------------------------------------------------------------------------

#: The parameterized model families the benchmark suite sweeps.  Unlike
#: :func:`generate`, family synthesis draws no random numbers at all: the
#: spec is a closed-form function of ``(family, size)``, so the emitted
#: sources can be pinned byte-for-byte in ``bench/snapshots/v1.json`` and
#: their posteriors derived exactly in :mod:`repro.bench.golden`.
BENCH_FAMILIES = ("hmm_chain", "mixture_width", "recursion_depth")

#: Fixed family constants, shared with the golden derivations: the HMM's
#: transition/emission table, the mixture's emission spacing, the walk's
#: step/observation scales.  Changing any of these is a snapshot bump.
HMM_CHAIN_INIT_P = 0.5
HMM_CHAIN_TRANS_P = (0.7, 0.3)  # P(s_t=1 | s_{t-1}=1), P(s_t=1 | s_{t-1}=0)
HMM_CHAIN_EMIT_MEANS = (1.0, -1.0)
HMM_CHAIN_EMIT_STD = 1.0
MIXTURE_COMPONENT_SPACING = 0.8
MIXTURE_EMIT_STD = 1.0
RECURSION_STEP_STD = 1.0
RECURSION_OBS_STD = 0.5


def recursion_cont_p(depth: int) -> float:
    """The continue probability giving the walk a mean length of ``depth``.

    Rounded to the literal the emitter prints, so golden derivations use
    exactly the probability the program runs with.
    """
    return _round(1.0 - 1.0 / depth)


def mixture_weights(width: int) -> Tuple[float, ...]:
    """The (unnormalized) component weights of ``mixture_width(K)``."""
    return tuple(_round(1.0 + 0.3 * k) for k in range(width))


def _hmm_chain_spec(size: int, seed: int) -> ProgramSpec:
    """A binary HMM unrolled to ``size`` steps, one emission per state."""
    if size < 1:
        raise ValueError(f"hmm_chain needs size >= 1, got {size}")
    hi, lo = HMM_CHAIN_TRANS_P
    nodes: List[Node] = []
    var_types: Dict[str, str] = {}
    prev: Optional[str] = None
    for t in range(1, size + 1):
        var = f"s{t}"
        var_types[var] = "bool"
        if prev is None:
            model_params = (ast.RealLit(HMM_CHAIN_INIT_P),)
            guide_params = (ast.RealLit(0.6),)
        else:
            model_params = (ast.IfExpr(ast.Var(prev), ast.RealLit(hi), ast.RealLit(lo)),)
            guide_params = (ast.IfExpr(ast.Var(prev), ast.RealLit(0.65), ast.RealLit(0.35)),)
        nodes.append(
            LatentSite(
                var=var,
                support="bool",
                model_family=ast.DistKind.BER,
                model_params=model_params,
                guide_family=ast.DistKind.BER,
                guide_params=guide_params,
            )
        )
        nodes.append(
            ObsSite(
                support="real",
                family=ast.DistKind.NORMAL,
                model_params=(
                    ast.IfExpr(
                        ast.Var(var),
                        _real_lit(HMM_CHAIN_EMIT_MEANS[0]),
                        _real_lit(HMM_CHAIN_EMIT_MEANS[1]),
                    ),
                    ast.RealLit(HMM_CHAIN_EMIT_STD),
                ),
            )
        )
        prev = var
    ret = ast.Var(f"s{size}")
    return ProgramSpec(seed=seed, nodes=tuple(nodes), ret_model=ret, ret_guide=ret, var_types=var_types)


def _mixture_width_spec(size: int, seed: int) -> ProgramSpec:
    """One categorical latent of ``size`` components with a Gaussian emission."""
    if size < 2:
        raise ValueError(f"mixture_width needs size >= 2, got {size}")
    model_params = tuple(ast.RealLit(w) for w in mixture_weights(size))
    guide_params = tuple(ast.RealLit(1.0) for _ in range(size))
    # ``z1 * spacing`` both promotes the ℕ-typed site into the numeric tower
    # (the same trick as _ExprGen._real_var) and spaces the component means.
    emission_mean = ast.PrimOp(
        ast.BinOp.MUL, ast.Var("z1"), ast.RealLit(MIXTURE_COMPONENT_SPACING)
    )
    nodes: Tuple[Node, ...] = (
        LatentSite(
            var="z1",
            support="cat",
            model_family=ast.DistKind.CAT,
            model_params=model_params,
            guide_family=ast.DistKind.CAT,
            guide_params=guide_params,
            cat_n=size,
        ),
        ObsSite(
            support="real",
            family=ast.DistKind.NORMAL,
            model_params=(emission_mean, ast.RealLit(MIXTURE_EMIT_STD)),
        ),
    )
    ret = ast.PrimOp(ast.BinOp.MUL, ast.Var("z1"), ast.RealLit(1.0))
    return ProgramSpec(
        seed=seed, nodes=nodes, ret_model=ret, ret_guide=ret, var_types={"z1": "cat"}
    )


def _recursion_depth_spec(size: int, seed: int) -> ProgramSpec:
    """A geometric-stopping walk whose mean length is ``size``."""
    if size < 2:
        raise ValueError(f"recursion_depth needs size >= 2, got {size}")
    cont_p = recursion_cont_p(size)
    body = (
        LatentSite(
            var="x1",
            support="real",
            model_family=ast.DistKind.NORMAL,
            model_params=(ast.RealLit(0.0), ast.RealLit(RECURSION_STEP_STD)),
            guide_family=ast.DistKind.NORMAL,
            guide_params=(ast.RealLit(0.0), ast.RealLit(1.2)),
        ),
    )
    # Model and guide share cont_p, so the continuation weights cancel and
    # the importance weights carry only the step proposals.
    walk = Recurse(
        var="r1",
        helper="Loop1",
        body=body,
        cont_var="k1",
        model_cont_p=cont_p,
        guide_cont_p=cont_p,
        acc_init=ast.RealLit(0.0),
        acc_update=ast.PrimOp(ast.BinOp.ADD, ast.Var("acc"), ast.Var("x1")),
        guide_ret=ast.Var("x1"),
    )
    nodes: Tuple[Node, ...] = (
        walk,
        ObsSite(
            support="real",
            family=ast.DistKind.NORMAL,
            model_params=(ast.Var("r1"), ast.RealLit(RECURSION_OBS_STD)),
        ),
    )
    ret = ast.Var("r1")
    return ProgramSpec(
        seed=seed,
        nodes=nodes,
        ret_model=ret,
        ret_guide=ret,
        var_types={"acc": "real", "x1": "real", "k1": "bool", "r1": "real"},
    )


_FAMILY_BUILDERS = {
    "hmm_chain": _hmm_chain_spec,
    "mixture_width": _mixture_width_spec,
    "recursion_depth": _recursion_depth_spec,
}


def synthesize_family(family: str, size: int) -> FuzzCase:
    """Build the pinned benchmark instance ``family(size)``.

    A pure function — identical inputs always yield byte-identical sources.
    The returned case reuses :class:`FuzzCase` so the differential harness's
    helpers (observation synthesis, site counting) apply unchanged; its
    ``seed`` is a synthetic label, not a generator seed.
    """
    try:
        builder = _FAMILY_BUILDERS[family]
    except KeyError:
        raise ValueError(
            f"unknown bench family {family!r}; available: {BENCH_FAMILIES}"
        ) from None
    seed = BENCH_FAMILIES.index(family) * 100000 + int(size)
    spec = builder(int(size), seed)
    emitted = emit_sources(spec)
    return FuzzCase(
        seed=seed,
        spec=spec,
        model_source=emitted.model_source,
        guide_source=emitted.guide_source,
    )
