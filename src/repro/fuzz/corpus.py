"""The pinned regression corpus: fuzz findings as deterministic tests.

A corpus entry pins the *emitted sources* and the expected typecheck verdict
to disk, so the regression suite keeps its meaning even when the generator
evolves: ``tests/fuzz/corpus/`` is checked against the live typechecker on
every run, independent of how the programs were originally produced.

``build_corpus`` writes one JSON file per entry — positives from a seed
sweep, negatives from the mutation operators — and is invoked by
``tests/fuzz/make_corpus.py`` when the corpus needs regenerating.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

from repro.fuzz.generator import FuzzConfig, generate
from repro.fuzz.mutations import ALL_MUTATIONS

#: Bump when the entry format changes; the corpus test refuses unknown
#: versions instead of mis-reading them.
CORPUS_FORMAT = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One pinned program pair with its expected verdict."""

    name: str
    seed: int
    kind: str  # "generated" | "mutant"
    mutation: Optional[str]
    expected: str  # "certified" | "rejected"
    model_source: str
    guide_source: str
    format: int = CORPUS_FORMAT


def entry_path(directory: Path, name: str) -> Path:
    """Where an entry of the given name lives."""
    return directory / f"{name}.json"


def save_entry(directory: Path, entry: CorpusEntry) -> Path:
    """Write one entry as pretty-printed JSON (stable diffs in review)."""
    path = entry_path(directory, entry.name)
    path.write_text(json.dumps(asdict(entry), indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_corpus(directory: Path) -> List[CorpusEntry]:
    """Load every entry in a corpus directory, sorted by name."""
    entries = []
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("format") != CORPUS_FORMAT:
            raise ValueError(f"{path}: unknown corpus format {data.get('format')!r}")
        entries.append(CorpusEntry(**data))
    return entries


def build_corpus(
    directory: Path,
    num_positive: int = 70,
    num_mutant_seeds: int = 30,
    config: Optional[FuzzConfig] = None,
) -> List[CorpusEntry]:
    """Generate and write the full corpus; returns the entries written.

    Positives come from seeds ``0..num_positive-1``; negatives apply every
    applicable mutation operator to seeds ``0..num_mutant_seeds-1`` in a
    round-robin (one operator per seed) so the corpus stays ~100 entries
    while covering all operators.
    """
    config = config or FuzzConfig()
    directory.mkdir(parents=True, exist_ok=True)
    entries: List[CorpusEntry] = []
    for seed in range(num_positive):
        case = generate(seed, config)
        entries.append(
            CorpusEntry(
                name=f"gen_{seed:04d}",
                seed=seed,
                kind="generated",
                mutation=None,
                expected="certified",
                model_source=case.model_source,
                guide_source=case.guide_source,
            )
        )
    for seed in range(num_mutant_seeds):
        case = generate(seed, config)
        mutation = ALL_MUTATIONS[seed % len(ALL_MUTATIONS)]
        mutant = mutation(case)
        if mutant is None:
            # Fall back to the always-applicable operators so every seed
            # contributes a negative entry.
            for fallback in ALL_MUTATIONS:
                mutant = fallback(case)
                if mutant is not None:
                    break
        if mutant is None:
            continue
        entries.append(
            CorpusEntry(
                name=f"mut_{seed:04d}_{mutant.name}",
                seed=seed,
                kind="mutant",
                mutation=mutant.name,
                expected="rejected",
                model_source=mutant.model_source,
                guide_source=mutant.guide_source,
            )
        )
    for entry in entries:
        save_entry(directory, entry)
    return entries
