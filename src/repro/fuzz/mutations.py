"""Negative mutations: systematically break well-typed pairs.

Each mutation takes a generated spec and produces a pair the typechecker
*must* reject: the model keeps its original source while the guide (or, for
``drop_branch``, the guide's branch structure) is perturbed in a way that
provably changes the latent protocol.  These pin down the soundness
boundary — the type system is only worth fuzzing if it also rejects the
near-misses, not just accepts the well-typed population.

Mutations return ``None`` when a spec has no applicable site, so callers
can sweep a seed range and assert on the mutants that exist.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import ast
from repro.fuzz.generator import FuzzCase
from repro.fuzz.shrinker import _canonical_params, _hoisted_branch
from repro.fuzz.spec import Branch, LatentSite, ProgramSpec, emit_sources, with_nodes

#: For each support class, a replacement family with a *different* support
#: (so the mutated site's payload type provably changes).
_SWAPPED_FAMILY: Dict[str, Tuple[str, ast.DistKind]] = {
    "real": ("preal", ast.DistKind.GAMMA),
    "preal": ("real", ast.DistKind.NORMAL),
    "ureal": ("real", ast.DistKind.NORMAL),
    "bool": ("real", ast.DistKind.NORMAL),
    "nat": ("real", ast.DistKind.NORMAL),
    "cat": ("real", ast.DistKind.NORMAL),
}


@dataclass(frozen=True)
class Mutant:
    """A pair expected to be rejected, with the mutation that produced it."""

    name: str
    seed: int
    model_source: str
    guide_source: str


def _guide_from(spec: ProgramSpec) -> str:
    return emit_sources(spec).guide_source


def swap_dist(case: FuzzCase) -> Optional[Mutant]:
    """Change one guide site's distribution family to a different support.

    The guide's latent protocol then sends a payload type the model does not
    expect at that position; the absolute-continuity check must refuse.
    """
    nodes = list(case.spec.nodes)
    for i, node in enumerate(nodes):
        if isinstance(node, LatentSite):
            new_support, family = _SWAPPED_FAMILY[node.support]
            mutated = replace(
                node,
                support=new_support,
                guide_family=family,
                guide_params=_canonical_params(family, 2),
            )
            spec = with_nodes(case.spec, nodes[:i] + [mutated] + nodes[i + 1 :])
            return Mutant("swap_dist", case.seed, case.model_source, _guide_from(spec))
    return None


def drop_site(case: FuzzCase) -> Optional[Mutant]:
    """Delete one latent site from the guide only (protocol too short)."""
    nodes = list(case.spec.nodes)
    for i, node in enumerate(nodes):
        if isinstance(node, LatentSite):
            spec = with_nodes(case.spec, nodes[:i] + nodes[i + 1 :])
            return Mutant("drop_site", case.seed, case.model_source, _guide_from(spec))
    return None


def reorder_sites(case: FuzzCase) -> Optional[Mutant]:
    """Swap two adjacent guide sites with different payload types.

    Sites with identical payloads commute at the protocol level (the guide
    type records only the type sequence), so the mutation applies only when
    a payload-distinct adjacent pair exists.
    """
    nodes = list(case.spec.nodes)
    for i in range(len(nodes) - 1):
        a, b = nodes[i], nodes[i + 1]
        if (
            isinstance(a, LatentSite)
            and isinstance(b, LatentSite)
            and (a.support, a.cat_n) != (b.support, b.cat_n)
        ):
            spec = with_nodes(case.spec, nodes[:i] + [b, a] + nodes[i + 2 :])
            return Mutant("reorder_sites", case.seed, case.model_source, _guide_from(spec))
    return None


def drop_branch(case: FuzzCase) -> Optional[Mutant]:
    """Remove a guide ``if.recv``, keeping the model's announced branch."""
    nodes = list(case.spec.nodes)
    for i, node in enumerate(nodes):
        if isinstance(node, Branch):
            spec = with_nodes(
                case.spec, nodes[:i] + _hoisted_branch(node, "then") + nodes[i + 1 :]
            )
            return Mutant("drop_branch", case.seed, case.model_source, _guide_from(spec))
    return None


#: Every mutation operator, in a stable order for sweeps and the corpus.
ALL_MUTATIONS: Tuple[Callable[[FuzzCase], Optional[Mutant]], ...] = (
    swap_dist,
    drop_site,
    reorder_sites,
    drop_branch,
)


def applicable_mutants(case: FuzzCase) -> List[Mutant]:
    """All mutants the case's structure supports."""
    out = []
    for mutation in ALL_MUTATIONS:
        mutant = mutation(case)
        if mutant is not None:
            out.append(mutant)
    return out


def is_rejected(model_source: str, guide_source: str) -> Tuple[bool, str]:
    """Whether the typechecker refuses a pair, and why.

    Rejection means either an exception from parsing/typechecking or an
    uncertified compatibility verdict; a clean certificate returns
    ``(False, "certified")``.
    """
    from repro.engine.session import ProgramSession
    from repro.errors import ReproError

    try:
        session = ProgramSession.from_sources(model_source, guide_source)
    except ReproError as exc:
        return True, f"{type(exc).__name__}: {exc}"
    if session.certified:
        return False, "certified"
    return True, str(session.certification_reason)
