"""Posterior summaries and weight diagnostics shared by the inference engines."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InferenceError
from repro.utils.numerics import effective_sample_size, normalize_log_weights


@dataclass(frozen=True)
class WeightDiagnostics:
    """Summary statistics of a set of importance weights."""

    num_samples: int
    num_zero_weight: int
    effective_sample_size: float
    max_normalized_weight: float

    @property
    def zero_weight_fraction(self) -> float:
        if self.num_samples == 0:
            return 0.0
        return self.num_zero_weight / self.num_samples

    @property
    def degenerate(self) -> bool:
        """True when a single particle dominates or most particles are impossible."""
        return self.max_normalized_weight > 0.99 or self.zero_weight_fraction > 0.9


def weight_diagnostics(log_weights: Sequence[float]) -> WeightDiagnostics:
    """Compute :class:`WeightDiagnostics` for a weight vector."""
    log_weights = list(log_weights)
    normalized = normalize_log_weights(log_weights)
    return WeightDiagnostics(
        num_samples=len(log_weights),
        num_zero_weight=sum(1 for w in log_weights if w == -math.inf),
        effective_sample_size=effective_sample_size(log_weights),
        max_normalized_weight=float(np.max(normalized)) if len(log_weights) else 0.0,
    )


def posterior_mean(values: Sequence[float], log_weights: Sequence[float]) -> float:
    """Self-normalised posterior mean of scalar values."""
    if len(values) != len(log_weights):
        raise InferenceError("values and log_weights must have the same length")
    if not values:
        raise InferenceError("cannot summarise an empty sample set")
    weights = normalize_log_weights(list(log_weights))
    return float(np.dot(np.asarray(values, dtype=float), weights))


def posterior_histogram(
    values: Sequence[float],
    log_weights: Optional[Sequence[float]] = None,
    bins: int = 40,
    value_range: Optional[Tuple[float, float]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Weighted, density-normalised histogram of posterior samples.

    Returns ``(bin_centers, density)``.  Used to regenerate Figure 2's
    prior-vs-posterior density plot as a table of (grid point, density)
    pairs.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise InferenceError("cannot build a histogram from an empty sample set")
    if log_weights is None:
        weights = np.full(array.shape, 1.0 / array.size)
    else:
        weights = normalize_log_weights(list(log_weights))
    counts, edges = np.histogram(array, bins=bins, range=value_range, weights=weights)
    widths = np.diff(edges)
    density = counts / np.where(widths > 0, widths, 1.0)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


def running_mean(values: Sequence[float]) -> List[float]:
    """Running (cumulative) mean of a chain; used for MCMC convergence checks."""
    means: List[float] = []
    total = 0.0
    for i, v in enumerate(values, start=1):
        total += v
        means.append(total / i)
    return means


def autocorrelation(values: Sequence[float], max_lag: int = 50) -> List[float]:
    """Autocorrelation function of a scalar chain up to ``max_lag``."""
    array = np.asarray(list(values), dtype=float)
    n = array.size
    if n < 2:
        return [1.0]
    centered = array - array.mean()
    variance = float(np.dot(centered, centered) / n)
    if variance == 0.0:
        return [1.0] + [0.0] * min(max_lag, n - 1)
    acf = []
    for lag in range(0, min(max_lag, n - 1) + 1):
        cov = float(np.dot(centered[: n - lag], centered[lag:]) / n)
        acf.append(cov / variance)
    return acf
